# Empty compiler generated dependencies file for bench_m2_fastpath_ablation.
# This may be replaced when dependencies are built.
