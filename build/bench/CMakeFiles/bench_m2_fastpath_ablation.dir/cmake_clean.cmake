file(REMOVE_RECURSE
  "CMakeFiles/bench_m2_fastpath_ablation.dir/bench_m2_fastpath_ablation.cpp.o"
  "CMakeFiles/bench_m2_fastpath_ablation.dir/bench_m2_fastpath_ablation.cpp.o.d"
  "bench_m2_fastpath_ablation"
  "bench_m2_fastpath_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m2_fastpath_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
