# Empty dependencies file for bench_table2_scalar_variants.
# This may be replaced when dependencies are built.
