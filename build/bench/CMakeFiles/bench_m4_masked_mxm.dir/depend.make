# Empty dependencies file for bench_m4_masked_mxm.
# This may be replaced when dependencies are built.
