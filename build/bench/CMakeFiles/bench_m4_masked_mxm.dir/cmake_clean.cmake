file(REMOVE_RECURSE
  "CMakeFiles/bench_m4_masked_mxm.dir/bench_m4_masked_mxm.cpp.o"
  "CMakeFiles/bench_m4_masked_mxm.dir/bench_m4_masked_mxm.cpp.o.d"
  "bench_m4_masked_mxm"
  "bench_m4_masked_mxm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m4_masked_mxm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
