# Empty dependencies file for bench_fig1_multithread.
# This may be replaced when dependencies are built.
