file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_multithread.dir/bench_fig1_multithread.cpp.o"
  "CMakeFiles/bench_fig1_multithread.dir/bench_fig1_multithread.cpp.o.d"
  "bench_fig1_multithread"
  "bench_fig1_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
