file(REMOVE_RECURSE
  "CMakeFiles/bench_m1_nonblocking.dir/bench_m1_nonblocking.cpp.o"
  "CMakeFiles/bench_m1_nonblocking.dir/bench_m1_nonblocking.cpp.o.d"
  "bench_m1_nonblocking"
  "bench_m1_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
