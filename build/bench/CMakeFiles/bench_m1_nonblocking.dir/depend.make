# Empty dependencies file for bench_m1_nonblocking.
# This may be replaced when dependencies are built.
