# Empty dependencies file for bench_table3_import_export.
# This may be replaced when dependencies are built.
