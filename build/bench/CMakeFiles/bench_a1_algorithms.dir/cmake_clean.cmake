file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_algorithms.dir/bench_a1_algorithms.cpp.o"
  "CMakeFiles/bench_a1_algorithms.dir/bench_a1_algorithms.cpp.o.d"
  "bench_a1_algorithms"
  "bench_a1_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
