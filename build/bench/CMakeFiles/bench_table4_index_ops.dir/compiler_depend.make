# Empty compiler generated dependencies file for bench_table4_index_ops.
# This may be replaced when dependencies are built.
