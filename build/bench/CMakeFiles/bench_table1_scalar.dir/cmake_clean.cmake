file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scalar.dir/bench_table1_scalar.cpp.o"
  "CMakeFiles/bench_table1_scalar.dir/bench_table1_scalar.cpp.o.d"
  "bench_table1_scalar"
  "bench_table1_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
