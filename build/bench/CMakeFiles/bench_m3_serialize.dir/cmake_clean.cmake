file(REMOVE_RECURSE
  "CMakeFiles/bench_m3_serialize.dir/bench_m3_serialize.cpp.o"
  "CMakeFiles/bench_m3_serialize.dir/bench_m3_serialize.cpp.o.d"
  "bench_m3_serialize"
  "bench_m3_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m3_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
