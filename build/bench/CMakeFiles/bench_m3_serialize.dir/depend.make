# Empty dependencies file for bench_m3_serialize.
# This may be replaced when dependencies are built.
