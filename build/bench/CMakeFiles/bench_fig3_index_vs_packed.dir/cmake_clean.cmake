file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_index_vs_packed.dir/bench_fig3_index_vs_packed.cpp.o"
  "CMakeFiles/bench_fig3_index_vs_packed.dir/bench_fig3_index_vs_packed.cpp.o.d"
  "bench_fig3_index_vs_packed"
  "bench_fig3_index_vs_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_index_vs_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
