# Empty dependencies file for bench_fig3_index_vs_packed.
# This may be replaced when dependencies are built.
