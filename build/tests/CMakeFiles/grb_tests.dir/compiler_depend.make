# Empty compiler generated dependencies file for grb_tests.
# This may be replaced when dependencies are built.
