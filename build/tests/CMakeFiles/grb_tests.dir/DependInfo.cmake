
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms/algorithms_test.cpp" "tests/CMakeFiles/grb_tests.dir/algorithms/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/algorithms/algorithms_test.cpp.o.d"
  "/root/repo/tests/algorithms/bc_test.cpp" "tests/CMakeFiles/grb_tests.dir/algorithms/bc_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/algorithms/bc_test.cpp.o.d"
  "/root/repo/tests/algorithms/kcore_test.cpp" "tests/CMakeFiles/grb_tests.dir/algorithms/kcore_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/algorithms/kcore_test.cpp.o.d"
  "/root/repo/tests/capi/capi_surface_test.cpp" "tests/CMakeFiles/grb_tests.dir/capi/capi_surface_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/capi/capi_surface_test.cpp.o.d"
  "/root/repo/tests/capi/enum_values_test.cpp" "tests/CMakeFiles/grb_tests.dir/capi/enum_values_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/capi/enum_values_test.cpp.o.d"
  "/root/repo/tests/capi/scalar_variants_test.cpp" "tests/CMakeFiles/grb_tests.dir/capi/scalar_variants_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/capi/scalar_variants_test.cpp.o.d"
  "/root/repo/tests/containers/matrix_test.cpp" "tests/CMakeFiles/grb_tests.dir/containers/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/containers/matrix_test.cpp.o.d"
  "/root/repo/tests/containers/scalar_test.cpp" "tests/CMakeFiles/grb_tests.dir/containers/scalar_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/containers/scalar_test.cpp.o.d"
  "/root/repo/tests/containers/vector_test.cpp" "tests/CMakeFiles/grb_tests.dir/containers/vector_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/containers/vector_test.cpp.o.d"
  "/root/repo/tests/core/descriptor_test.cpp" "tests/CMakeFiles/grb_tests.dir/core/descriptor_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/core/descriptor_test.cpp.o.d"
  "/root/repo/tests/core/index_unary_test.cpp" "tests/CMakeFiles/grb_tests.dir/core/index_unary_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/core/index_unary_test.cpp.o.d"
  "/root/repo/tests/core/monoid_semiring_test.cpp" "tests/CMakeFiles/grb_tests.dir/core/monoid_semiring_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/core/monoid_semiring_test.cpp.o.d"
  "/root/repo/tests/core/ops_test.cpp" "tests/CMakeFiles/grb_tests.dir/core/ops_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/core/ops_test.cpp.o.d"
  "/root/repo/tests/core/type_test.cpp" "tests/CMakeFiles/grb_tests.dir/core/type_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/core/type_test.cpp.o.d"
  "/root/repo/tests/exec/context_test.cpp" "tests/CMakeFiles/grb_tests.dir/exec/context_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/exec/context_test.cpp.o.d"
  "/root/repo/tests/exec/parallel_context_test.cpp" "tests/CMakeFiles/grb_tests.dir/exec/parallel_context_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/exec/parallel_context_test.cpp.o.d"
  "/root/repo/tests/exec/thread_pool_test.cpp" "tests/CMakeFiles/grb_tests.dir/exec/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/exec/thread_pool_test.cpp.o.d"
  "/root/repo/tests/exec/threading_test.cpp" "tests/CMakeFiles/grb_tests.dir/exec/threading_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/exec/threading_test.cpp.o.d"
  "/root/repo/tests/exec/wait_test.cpp" "tests/CMakeFiles/grb_tests.dir/exec/wait_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/exec/wait_test.cpp.o.d"
  "/root/repo/tests/io/import_export_test.cpp" "tests/CMakeFiles/grb_tests.dir/io/import_export_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/io/import_export_test.cpp.o.d"
  "/root/repo/tests/io/serialize_test.cpp" "tests/CMakeFiles/grb_tests.dir/io/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/io/serialize_test.cpp.o.d"
  "/root/repo/tests/ops/apply_select_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/apply_select_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/apply_select_test.cpp.o.d"
  "/root/repo/tests/ops/ewise_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/ewise_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/ewise_test.cpp.o.d"
  "/root/repo/tests/ops/extract_assign_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/extract_assign_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/extract_assign_test.cpp.o.d"
  "/root/repo/tests/ops/masked_mxm_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/masked_mxm_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/masked_mxm_test.cpp.o.d"
  "/root/repo/tests/ops/mxm_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/mxm_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/mxm_test.cpp.o.d"
  "/root/repo/tests/ops/reduce_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/reduce_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/reduce_test.cpp.o.d"
  "/root/repo/tests/ops/transpose_kron_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/transpose_kron_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/transpose_kron_test.cpp.o.d"
  "/root/repo/tests/ops/types_sweep_test.cpp" "tests/CMakeFiles/grb_tests.dir/ops/types_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/ops/types_sweep_test.cpp.o.d"
  "/root/repo/tests/property/blocking_equiv_test.cpp" "tests/CMakeFiles/grb_tests.dir/property/blocking_equiv_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/property/blocking_equiv_test.cpp.o.d"
  "/root/repo/tests/property/fuzz_ops_test.cpp" "tests/CMakeFiles/grb_tests.dir/property/fuzz_ops_test.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/property/fuzz_ops_test.cpp.o.d"
  "/root/repo/tests/test_main.cpp" "tests/CMakeFiles/grb_tests.dir/test_main.cpp.o" "gcc" "tests/CMakeFiles/grb_tests.dir/test_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphblas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
