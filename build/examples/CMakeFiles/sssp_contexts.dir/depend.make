# Empty dependencies file for sssp_contexts.
# This may be replaced when dependencies are built.
