file(REMOVE_RECURSE
  "CMakeFiles/sssp_contexts.dir/sssp_contexts.cpp.o"
  "CMakeFiles/sssp_contexts.dir/sssp_contexts.cpp.o.d"
  "sssp_contexts"
  "sssp_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
