# Empty compiler generated dependencies file for streaming_ingest.
# This may be replaced when dependencies are built.
