file(REMOVE_RECURSE
  "CMakeFiles/interop_io.dir/interop_io.cpp.o"
  "CMakeFiles/interop_io.dir/interop_io.cpp.o.d"
  "interop_io"
  "interop_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
