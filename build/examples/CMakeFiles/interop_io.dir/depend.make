# Empty dependencies file for interop_io.
# This may be replaced when dependencies are built.
