file(REMOVE_RECURSE
  "CMakeFiles/fig1_multithread.dir/fig1_multithread.cpp.o"
  "CMakeFiles/fig1_multithread.dir/fig1_multithread.cpp.o.d"
  "fig1_multithread"
  "fig1_multithread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
