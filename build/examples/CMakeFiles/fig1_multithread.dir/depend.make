# Empty dependencies file for fig1_multithread.
# This may be replaced when dependencies are built.
