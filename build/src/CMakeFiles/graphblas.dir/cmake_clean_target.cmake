file(REMOVE_RECURSE
  "libgraphblas.a"
)
