
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bc.cpp" "src/CMakeFiles/graphblas.dir/algorithms/bc.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/bc.cpp.o.d"
  "/root/repo/src/algorithms/bfs.cpp" "src/CMakeFiles/graphblas.dir/algorithms/bfs.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/bfs.cpp.o.d"
  "/root/repo/src/algorithms/components.cpp" "src/CMakeFiles/graphblas.dir/algorithms/components.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/components.cpp.o.d"
  "/root/repo/src/algorithms/kcore.cpp" "src/CMakeFiles/graphblas.dir/algorithms/kcore.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/kcore.cpp.o.d"
  "/root/repo/src/algorithms/ktruss.cpp" "src/CMakeFiles/graphblas.dir/algorithms/ktruss.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/ktruss.cpp.o.d"
  "/root/repo/src/algorithms/lcc.cpp" "src/CMakeFiles/graphblas.dir/algorithms/lcc.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/lcc.cpp.o.d"
  "/root/repo/src/algorithms/mis.cpp" "src/CMakeFiles/graphblas.dir/algorithms/mis.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/mis.cpp.o.d"
  "/root/repo/src/algorithms/pagerank.cpp" "src/CMakeFiles/graphblas.dir/algorithms/pagerank.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/pagerank.cpp.o.d"
  "/root/repo/src/algorithms/sssp.cpp" "src/CMakeFiles/graphblas.dir/algorithms/sssp.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/sssp.cpp.o.d"
  "/root/repo/src/algorithms/triangle.cpp" "src/CMakeFiles/graphblas.dir/algorithms/triangle.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/algorithms/triangle.cpp.o.d"
  "/root/repo/src/capi/capi.cpp" "src/CMakeFiles/graphblas.dir/capi/capi.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/capi/capi.cpp.o.d"
  "/root/repo/src/containers/matrix.cpp" "src/CMakeFiles/graphblas.dir/containers/matrix.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/containers/matrix.cpp.o.d"
  "/root/repo/src/containers/scalar.cpp" "src/CMakeFiles/graphblas.dir/containers/scalar.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/containers/scalar.cpp.o.d"
  "/root/repo/src/containers/vector.cpp" "src/CMakeFiles/graphblas.dir/containers/vector.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/containers/vector.cpp.o.d"
  "/root/repo/src/core/binary_op.cpp" "src/CMakeFiles/graphblas.dir/core/binary_op.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/binary_op.cpp.o.d"
  "/root/repo/src/core/descriptor.cpp" "src/CMakeFiles/graphblas.dir/core/descriptor.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/descriptor.cpp.o.d"
  "/root/repo/src/core/global.cpp" "src/CMakeFiles/graphblas.dir/core/global.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/global.cpp.o.d"
  "/root/repo/src/core/index_unary_op.cpp" "src/CMakeFiles/graphblas.dir/core/index_unary_op.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/index_unary_op.cpp.o.d"
  "/root/repo/src/core/info.cpp" "src/CMakeFiles/graphblas.dir/core/info.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/info.cpp.o.d"
  "/root/repo/src/core/monoid.cpp" "src/CMakeFiles/graphblas.dir/core/monoid.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/monoid.cpp.o.d"
  "/root/repo/src/core/semiring.cpp" "src/CMakeFiles/graphblas.dir/core/semiring.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/semiring.cpp.o.d"
  "/root/repo/src/core/type.cpp" "src/CMakeFiles/graphblas.dir/core/type.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/type.cpp.o.d"
  "/root/repo/src/core/unary_op.cpp" "src/CMakeFiles/graphblas.dir/core/unary_op.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/core/unary_op.cpp.o.d"
  "/root/repo/src/exec/context.cpp" "src/CMakeFiles/graphblas.dir/exec/context.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/exec/context.cpp.o.d"
  "/root/repo/src/exec/object_base.cpp" "src/CMakeFiles/graphblas.dir/exec/object_base.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/exec/object_base.cpp.o.d"
  "/root/repo/src/exec/thread_pool.cpp" "src/CMakeFiles/graphblas.dir/exec/thread_pool.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/exec/thread_pool.cpp.o.d"
  "/root/repo/src/io/import_export.cpp" "src/CMakeFiles/graphblas.dir/io/import_export.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/io/import_export.cpp.o.d"
  "/root/repo/src/io/mmio.cpp" "src/CMakeFiles/graphblas.dir/io/mmio.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/io/mmio.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/graphblas.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/io/serialize.cpp.o.d"
  "/root/repo/src/ops/apply.cpp" "src/CMakeFiles/graphblas.dir/ops/apply.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/apply.cpp.o.d"
  "/root/repo/src/ops/assign.cpp" "src/CMakeFiles/graphblas.dir/ops/assign.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/assign.cpp.o.d"
  "/root/repo/src/ops/build.cpp" "src/CMakeFiles/graphblas.dir/ops/build.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/build.cpp.o.d"
  "/root/repo/src/ops/diag.cpp" "src/CMakeFiles/graphblas.dir/ops/diag.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/diag.cpp.o.d"
  "/root/repo/src/ops/element.cpp" "src/CMakeFiles/graphblas.dir/ops/element.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/element.cpp.o.d"
  "/root/repo/src/ops/ewise_matrix.cpp" "src/CMakeFiles/graphblas.dir/ops/ewise_matrix.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/ewise_matrix.cpp.o.d"
  "/root/repo/src/ops/ewise_vector.cpp" "src/CMakeFiles/graphblas.dir/ops/ewise_vector.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/ewise_vector.cpp.o.d"
  "/root/repo/src/ops/extract.cpp" "src/CMakeFiles/graphblas.dir/ops/extract.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/extract.cpp.o.d"
  "/root/repo/src/ops/fastpath.cpp" "src/CMakeFiles/graphblas.dir/ops/fastpath.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/fastpath.cpp.o.d"
  "/root/repo/src/ops/kronecker.cpp" "src/CMakeFiles/graphblas.dir/ops/kronecker.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/kronecker.cpp.o.d"
  "/root/repo/src/ops/mxm.cpp" "src/CMakeFiles/graphblas.dir/ops/mxm.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/mxm.cpp.o.d"
  "/root/repo/src/ops/mxv.cpp" "src/CMakeFiles/graphblas.dir/ops/mxv.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/mxv.cpp.o.d"
  "/root/repo/src/ops/reduce.cpp" "src/CMakeFiles/graphblas.dir/ops/reduce.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/reduce.cpp.o.d"
  "/root/repo/src/ops/select.cpp" "src/CMakeFiles/graphblas.dir/ops/select.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/select.cpp.o.d"
  "/root/repo/src/ops/transpose.cpp" "src/CMakeFiles/graphblas.dir/ops/transpose.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/transpose.cpp.o.d"
  "/root/repo/src/ops/validate.cpp" "src/CMakeFiles/graphblas.dir/ops/validate.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/validate.cpp.o.d"
  "/root/repo/src/ops/vxm.cpp" "src/CMakeFiles/graphblas.dir/ops/vxm.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/vxm.cpp.o.d"
  "/root/repo/src/ops/writeback_matrix.cpp" "src/CMakeFiles/graphblas.dir/ops/writeback_matrix.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/writeback_matrix.cpp.o.d"
  "/root/repo/src/ops/writeback_vector.cpp" "src/CMakeFiles/graphblas.dir/ops/writeback_vector.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/ops/writeback_vector.cpp.o.d"
  "/root/repo/src/util/generator.cpp" "src/CMakeFiles/graphblas.dir/util/generator.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/util/generator.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/graphblas.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/graphblas.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/graphblas.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
