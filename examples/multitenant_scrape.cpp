// Multi-tenant observability: two GrB_Contexts doing independent work,
// every counter attributed to its tenant, one Prometheus scrape.
//
//   $ GRB_METRICS=/dev/stdout ./multitenant_scrape
//
// Each tenant gets its own context; its containers are homed there, so
// API calls, deferred executions, latency histograms, and memory all
// carry that context's id.  GxB_Context_stats reads one tenant's slice
// by name; GxB_Stats_prometheus (or the GRB_METRICS finalize dump)
// labels every per-op series with context="<id>" so a scraper can
// aggregate or alert per tenant.  README "Per-context scrape" shows the
// matching PromQL.
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "graphblas/GraphBLAS.h"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

namespace {

// One tenant: a small path graph homed in `ctx`, squared via mxm.
void tenant(GrB_Context ctx, GrB_Index n, int rounds) {
  GrB_Matrix a = nullptr, p2 = nullptr;
  if (GrB_Matrix_new(&a, GrB_FP64, n, n, ctx) != GrB_SUCCESS) return;
  for (GrB_Index i = 0; i + 1 < n; ++i)
    GrB_Matrix_setElement(a, 1.0, i, i + 1);
  GrB_wait(a, GrB_MATERIALIZE);
  if (GrB_Matrix_new(&p2, GrB_FP64, n, n, ctx) != GrB_SUCCESS) return;
  for (int r = 0; r < rounds; ++r) {
    GrB_mxm(p2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
            GrB_NULL);
    GrB_wait(p2, GrB_MATERIALIZE);
  }
  GrB_free(&p2);
  GrB_free(&a);
}

}  // namespace

int main() {
  TRY(GrB_init(GrB_NONBLOCKING));
  TRY(GxB_Stats_enable(1));

  // Two tenants, two contexts, concurrent work.
  GrB_Context tenant_a = nullptr, tenant_b = nullptr;
  TRY(GrB_Context_new(&tenant_a, GrB_NONBLOCKING, nullptr, nullptr));
  TRY(GrB_Context_new(&tenant_b, GrB_NONBLOCKING, nullptr, nullptr));
  std::thread ta(tenant, tenant_a, 64, 8);
  std::thread tb(tenant, tenant_b, 32, 3);
  ta.join();
  tb.join();

  // Read one tenant's slice by dotted name.
  uint64_t calls_a = 0, calls_b = 0;
  TRY(GxB_Context_stats(tenant_a, "GrB_mxm.calls", &calls_a));
  TRY(GxB_Context_stats(tenant_b, "GrB_mxm.calls", &calls_b));
  std::printf("tenant A: %llu mxm calls, tenant B: %llu mxm calls\n",
              (unsigned long long)calls_a, (unsigned long long)calls_b);

  // The scrape carries both tenants as context="..." labels.  With
  // GRB_METRICS=<path> set, GrB_finalize writes the same exposition.
  GrB_Index need = 0;
  TRY(GxB_Stats_prometheus(nullptr, &need));
  std::vector<char> buf(need + 4096);
  GrB_Index len = buf.size();
  TRY(GxB_Stats_prometheus(buf.data(), &len));
  int context_series = 0;
  for (const char* p = buf.data(); (p = strstr(p, ",context=\"")) != nullptr;
       ++p)
    ++context_series;
  std::printf("exposition: %llu bytes, %d context-labeled series\n",
              (unsigned long long)(len - 1), context_series);

  TRY(GrB_free(&tenant_a));
  TRY(GrB_free(&tenant_b));
  TRY(GrB_finalize());
  return 0;
}
