// PageRank on a generated R-MAT graph.
//
//   $ ./pagerank [scale] [edge_factor] [damping] [iters]
//
// Prints the top-10 ranked vertices and basic statistics.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/timer.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  GrB_Index edge_factor = argc > 2 ? std::atoll(argv[2]) : 8;
  double damping = argc > 3 ? std::atof(argv[3]) : 0.85;
  int iters = argc > 4 ? std::atoi(argv[4]) : 50;

  TRY(GrB_init(GrB_NONBLOCKING));
  GrB_Matrix a = nullptr;
  grb::Timer timer;
  TRY(static_cast<GrB_Info>(
      grb::rmat_matrix(&a, scale, edge_factor, grb::RmatParams{}, nullptr)));
  GrB_Index n, nnz;
  TRY(GrB_Matrix_nrows(&n, a));
  TRY(GrB_Matrix_nvals(&nnz, a));
  std::printf("R-MAT scale %d: %llu vertices, %llu edges (built in %.1f ms)\n",
              scale, (unsigned long long)n, (unsigned long long)nnz,
              timer.millis());

  timer.reset();
  GrB_Vector rank = nullptr;
  TRY(grb_algo::pagerank(&rank, a, damping, iters, 1e-9));
  std::printf("pagerank: %.1f ms\n", timer.millis());

  std::vector<GrB_Index> idx(n);
  std::vector<double> val(n);
  GrB_Index nv = n;
  TRY(GrB_Vector_extractTuples(idx.data(), val.data(), &nv, rank));
  std::vector<size_t> order(nv);
  for (size_t k = 0; k < nv; ++k) order[k] = k;
  std::partial_sort(order.begin(),
                    order.begin() + std::min<size_t>(10, order.size()),
                    order.end(),
                    [&](size_t x, size_t y) { return val[x] > val[y]; });
  double sum = 0;
  for (size_t k = 0; k < nv; ++k) sum += val[k];
  std::printf("rank sum = %.6f (should be ~1)\n", sum);
  std::printf("top-10:\n");
  for (size_t k = 0; k < std::min<size_t>(10, order.size()); ++k) {
    std::printf("  #%zu vertex %llu rank %.6f\n", k + 1,
                (unsigned long long)idx[order[k]], val[order[k]]);
  }
  TRY(GrB_free(&rank));
  TRY(GrB_free(&a));
  TRY(GrB_finalize());
  return 0;
}
