// SSSP under hierarchical execution contexts (paper §IV / Figure 2).
//
// Creates a nested GrB_Context with an explicit thread budget via the
// documented grb::ContextConfig `exec` structure, homes the graph in it
// with the context-taking constructor, runs Bellman-Ford, then re-homes
// the result into the top-level context with GrB_Context_switch.
#include <cstdio>
#include <cstdlib>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/timer.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  int nthreads = argc > 2 ? std::atoi(argv[2]) : 2;

  TRY(GrB_init(GrB_NONBLOCKING));

  // Nested context with an explicit resource budget (Figure 2's `exec`).
  GrB_ContextConfig config;
  config.nthreads = nthreads;
  config.chunk = 1024;
  GrB_Context ctx = nullptr;
  TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &config));

  GrB_Matrix a = nullptr;
  TRY(static_cast<GrB_Info>(
      grb::rmat_matrix(&a, scale, 8, grb::RmatParams{}, ctx)));
  GrB_Index n;
  TRY(GrB_Matrix_nrows(&n, a));
  std::printf("graph homed in a %d-thread nested context (%llu vertices)\n",
              nthreads, (unsigned long long)n);

  // The distance vector must share the matrix's context (paper §IV:
  // "all the GraphBLAS matrices and vectors in a method share a
  // context").  bfs/sssp allocate outputs in the top-level context, so
  // run the kernel loop here with context-matched temporaries.
  GrB_Vector d = nullptr, t = nullptr;
  TRY(GrB_Vector_new(&d, GrB_FP64, n, ctx));
  TRY(GrB_Vector_new(&t, GrB_FP64, n, ctx));
  TRY(GrB_Vector_setElement(d, 0.0, 0));
  grb::Timer timer;
  for (GrB_Index iter = 0; iter < n; ++iter) {
    TRY(GrB_vxm(t, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, d, a,
                GrB_NULL));
    TRY(GrB_eWiseAdd(t, GrB_NULL, GrB_NULL, GrB_MIN_FP64, t, d, GrB_NULL));
    GrB_Index nd, nt;
    TRY(GrB_Vector_nvals(&nd, d));
    TRY(GrB_Vector_nvals(&nt, t));
    std::swap(d, t);
    if (nd == nt && iter > 2) break;  // settled (structure stabilized)
  }
  TRY(GrB_wait(d, GrB_MATERIALIZE));
  std::printf("relaxation loop: %.1f ms\n", timer.millis());

  GrB_Index reached = 0;
  TRY(GrB_Vector_nvals(&reached, d));
  double total = 0;
  TRY(GrB_reduce(&total, GrB_NULL, GrB_PLUS_MONOID_FP64, d, GrB_NULL));
  std::printf("reached %llu vertices, distance mass %.2f\n",
              (unsigned long long)reached, total);

  // Re-home the result into the top-level context and free the nested
  // context; the object remains usable afterwards.
  TRY(GrB_Context_switch(d, GrB_NULL));
  TRY(GrB_free(&t));
  TRY(GrB_free(&a));
  TRY(GrB_free(&ctx));
  double check = 0;
  TRY(GrB_reduce(&check, GrB_NULL, GrB_PLUS_MONOID_FP64, d, GrB_NULL));
  std::printf("after context switch, distance mass still %.2f\n", check);
  TRY(GrB_free(&d));
  TRY(GrB_finalize());
  std::printf("sssp_contexts OK\n");
  return 0;
}
