// Explain-your-plan demo: enable the decision audit, run a small mxm,
// then ask the library why it executed the way it did.
//
//   $ ./explain_demo
//
// GxB_Explain prints every adaptive choice the library made — storage
// format adaptation, SpGEMM accumulator selection, masked-dot strategy,
// fusion planning, serial-vs-parallel dispatch — with the predicted
// cost next to what was actually measured, so a mispredicting
// heuristic is visible instead of just slow.
#include <cstdio>
#include <string>

#include "graphblas/GraphBLAS.h"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main() {
  TRY(GrB_init(GrB_NONBLOCKING));
  TRY(GxB_Stats_enable(1));  // stats imply the decision audit

  // A directed cycle plus chords: enough structure that mxm exercises
  // the adaptive SpGEMM path without drowning the explain output.
  const GrB_Index n = 16;
  GrB_Index src[2 * 16], dst[2 * 16];
  double w[2 * 16];
  GrB_Index nnz = 0;
  for (GrB_Index v = 0; v < n; ++v) {
    src[nnz] = v, dst[nnz] = (v + 1) % n, w[nnz] = 1.0, ++nnz;
    src[nnz] = v, dst[nnz] = (v + 5) % n, w[nnz] = 1.0, ++nnz;
  }

  GrB_Matrix a, c;
  TRY(GrB_Matrix_new(&a, GrB_FP64, n, n));
  TRY(GrB_Matrix_build(a, src, dst, w, nnz, GrB_PLUS_FP64));
  TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
              GrB_NULL));
  GrB_Index nv;
  TRY(GrB_Matrix_nvals(&nv, c));  // force materialization (nonblocking)
  std::printf("C = A*A has %llu entries\n", (unsigned long long)nv);

  // Two-call sizing protocol, same as GxB_Stats_json: first call with a
  // null buffer reports the needed length, second call fills it.
  GrB_Index len = 0;
  TRY(GxB_Explain(GrB_NULL, GrB_NULL, &len));
  std::string text(len, '\0');
  TRY(GxB_Explain(GrB_NULL, text.data(), &len));
  std::printf("%s", text.c_str());

  TRY(GrB_free(&a));
  TRY(GrB_free(&c));
  TRY(GrB_finalize());
  return 0;
}
