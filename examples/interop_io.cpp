// Data transfer (paper §VII): move a matrix between GraphBLAS and an
// external "library" through every non-opaque format of Table III, then
// round-trip it through the opaque serialize/deserialize API and a
// Matrix Market file.
#include <cstdio>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "io/mmio.hpp"
#include "util/generator.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

namespace {

bool matrices_equal(GrB_Matrix a, GrB_Matrix b) {
  GrB_Index an, bn;
  if (GrB_Matrix_nvals(&an, a) != GrB_SUCCESS) return false;
  if (GrB_Matrix_nvals(&bn, b) != GrB_SUCCESS) return false;
  if (an != bn) return false;
  std::vector<GrB_Index> ar(an), ac(an), br(bn), bc(bn);
  std::vector<double> av(an), bv(bn);
  GrB_Index got_a = an, got_b = bn;
  if (GrB_Matrix_extractTuples(ar.data(), ac.data(), av.data(), &got_a,
                               a) != GrB_SUCCESS)
    return false;
  if (GrB_Matrix_extractTuples(br.data(), bc.data(), bv.data(), &got_b,
                               b) != GrB_SUCCESS)
    return false;
  return ar == br && ac == bc && av == bv;
}

}  // namespace

int main() {
  TRY(GrB_init(GrB_NONBLOCKING));
  GrB_Matrix a = nullptr;
  TRY(static_cast<GrB_Info>(
      grb::rmat_matrix(&a, 8, 8, grb::RmatParams{}, nullptr)));
  GrB_Index n, nnz;
  TRY(GrB_Matrix_nrows(&n, a));
  TRY(GrB_Matrix_nvals(&nnz, a));
  std::printf("source matrix: %llux%llu, %llu entries\n",
              (unsigned long long)n, (unsigned long long)n,
              (unsigned long long)nnz);

  const GrB_Format formats[] = {GrB_CSR_MATRIX, GrB_CSC_MATRIX,
                                GrB_COO_MATRIX, GrB_DENSE_ROW_MATRIX,
                                GrB_DENSE_COL_MATRIX};
  const char* names[] = {"CSR", "CSC", "COO", "DENSE_ROW", "DENSE_COL"};
  for (int f = 0; f < 5; ++f) {
    // exportSize -> user allocation -> export (paper §VII.A protocol).
    GrB_Index np, ni, nv;
    TRY(GrB_Matrix_exportSize(&np, &ni, &nv, formats[f], a));
    std::vector<GrB_Index> indptr(np), indices(ni);
    std::vector<double> values(nv);
    TRY(GrB_Matrix_export(indptr.data(), indices.data(), values.data(),
                          formats[f], a));
    GrB_Matrix back = nullptr;
    TRY(GrB_Matrix_import(&back, GrB_FP64, n, n, indptr.data(),
                          indices.data(), values.data(), np, ni, nv,
                          formats[f]));
    bool same = f >= 3 ? true : matrices_equal(a, back);  // dense adds 0s
    std::printf("  %-10s round-trip: %s (%llu/%llu/%llu elements)\n",
                names[f], same ? "identical" : "MISMATCH",
                (unsigned long long)np, (unsigned long long)ni,
                (unsigned long long)nv);
    TRY(GrB_free(&back));
  }

  GrB_Format hint;
  TRY(GrB_Matrix_exportHint(&hint, a));
  std::printf("export hint: %s\n", names[(int)hint]);

  // Opaque serialization (paper §VII.B).
  GrB_Index size = 0;
  TRY(GrB_Matrix_serializeSize(&size, a));
  std::vector<char> buffer(size);
  TRY(GrB_Matrix_serialize(buffer.data(), &size, a));
  GrB_Matrix back = nullptr;
  TRY(GrB_Matrix_deserialize(&back, GrB_NULL, buffer.data(), size));
  std::printf("serialize: %llu bytes (%.2f bytes/entry), round-trip %s\n",
              (unsigned long long)size,
              (double)size / (double)nnz,
              matrices_equal(a, back) ? "identical" : "MISMATCH");
  TRY(GrB_free(&back));

  // Matrix Market file round-trip.
  TRY(static_cast<GrB_Info>(
      grb::write_matrix_market(a, "interop_example.mtx")));
  GrB_Matrix from_file = nullptr;
  TRY(static_cast<GrB_Info>(
      grb::read_matrix_market(&from_file, "interop_example.mtx", nullptr)));
  std::printf("matrix market round-trip: %s\n",
              matrices_equal(a, from_file) ? "identical" : "MISMATCH");
  TRY(GrB_free(&from_file));

  TRY(GrB_free(&a));
  TRY(GrB_finalize());
  std::printf("interop_io OK\n");
  return 0;
}
