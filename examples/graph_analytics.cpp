// The whole algorithm library on one generated graph — a one-stop demo
// of what the GraphBLAS 2.0 API supports end to end.
//
//   $ ./graph_analytics [scale] [edge_factor]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/timer.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  GrB_Index edge_factor = argc > 2 ? std::atoll(argv[2]) : 8;

  TRY(GrB_init(GrB_NONBLOCKING));
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix g = nullptr;
  TRY(static_cast<GrB_Info>(
      grb::rmat_matrix(&g, scale, edge_factor, params, nullptr)));
  GrB_Index n, m;
  TRY(GrB_Matrix_nrows(&n, g));
  TRY(GrB_Matrix_nvals(&m, g));
  std::printf("graph: %llu vertices, %llu directed edges (symmetrized "
              "R-MAT scale %d)\n\n",
              (unsigned long long)n, (unsigned long long)m, scale);

  grb::Timer t;

  t.reset();
  GrB_Vector level = nullptr;
  TRY(grb_algo::bfs_level(&level, g, 0));
  GrB_Index reached;
  TRY(GrB_Vector_nvals(&reached, level));
  int32_t ecc = 0;
  TRY(GrB_reduce(&ecc, GrB_NULL, GrB_MAX_MONOID_INT32, level, GrB_NULL));
  std::printf("BFS from 0:        reaches %llu vertices, eccentricity %d "
              "(%.1f ms)\n",
              (unsigned long long)reached, ecc, t.millis());
  GrB_free(&level);

  t.reset();
  GrB_Vector comp = nullptr;
  TRY(grb_algo::connected_components(&comp, g));
  std::vector<int64_t> labels(n);
  std::vector<GrB_Index> idx(n);
  GrB_Index got = n;
  TRY(GrB_Vector_extractTuples(idx.data(), labels.data(), &got, comp));
  std::sort(labels.begin(), labels.begin() + got);
  GrB_Index ncomp =
      std::unique(labels.begin(), labels.begin() + got) - labels.begin();
  std::printf("components:        %llu (%.1f ms)\n",
              (unsigned long long)ncomp, t.millis());
  GrB_free(&comp);

  t.reset();
  uint64_t ntri = 0;
  TRY(grb_algo::triangle_count(&ntri, g));
  std::printf("triangles:         %llu (%.1f ms)\n",
              (unsigned long long)ntri, t.millis());

  t.reset();
  GrB_Vector core = nullptr;
  TRY(grb_algo::kcore(&core, g));
  int64_t max_core = 0;
  TRY(GrB_reduce(&max_core, GrB_NULL, GrB_MAX_MONOID_INT64, core,
                 GrB_NULL));
  std::printf("degeneracy:        max coreness %lld (%.1f ms)\n",
              (long long)max_core, t.millis());
  GrB_free(&core);

  t.reset();
  GrB_Vector rank = nullptr;
  TRY(grb_algo::pagerank(&rank, g, 0.85, 50, 1e-9));
  double top = 0;
  TRY(GrB_reduce(&top, GrB_NULL, GrB_MAX_MONOID_FP64, rank, GrB_NULL));
  std::printf("pagerank:          max rank %.5f (%.1f ms)\n", top,
              t.millis());
  GrB_free(&rank);

  t.reset();
  const GrB_Index sources[] = {0, 1, 2, 3};
  GrB_Vector bc = nullptr;
  TRY(grb_algo::betweenness_centrality(&bc, g, sources, 4));
  double max_bc = 0;
  GrB_Index bc_n = 0;
  TRY(GrB_Vector_nvals(&bc_n, bc));
  if (bc_n > 0)
    TRY(GrB_reduce(&max_bc, GrB_NULL, GrB_MAX_MONOID_FP64, bc, GrB_NULL));
  std::printf("betweenness (4s):  max %.2f (%.1f ms)\n", max_bc,
              t.millis());
  GrB_free(&bc);

  t.reset();
  GrB_Vector iset = nullptr;
  TRY(grb_algo::mis(&iset, g, 99));
  GrB_Index mis_size = 0;
  TRY(GrB_Vector_nvals(&mis_size, iset));
  std::printf("indep. set:        %llu vertices (%.1f ms)\n",
              (unsigned long long)mis_size, t.millis());
  GrB_free(&iset);

  t.reset();
  GrB_Vector lcc = nullptr;
  TRY(grb_algo::local_clustering_coefficient(&lcc, g));
  double sum_lcc = 0;
  GrB_Index lcc_n = 0;
  TRY(GrB_Vector_nvals(&lcc_n, lcc));
  TRY(GrB_reduce(&sum_lcc, GrB_NULL, GrB_PLUS_MONOID_FP64, lcc, GrB_NULL));
  std::printf("mean clustering:   %.4f (%.1f ms)\n",
              lcc_n ? sum_lcc / lcc_n : 0.0, t.millis());
  GrB_free(&lcc);

  TRY(GrB_free(&g));
  TRY(GrB_finalize());
  std::printf("\ngraph_analytics OK\n");
  return 0;
}
