// Quickstart: build a small directed graph, run one mxm, then BFS.
//
//   $ ./quickstart
//
// The graph (7 vertices):
//     0 -> 1, 0 -> 3, 1 -> 4, 1 -> 6, 2 -> 5, 3 -> 0, 3 -> 2,
//     4 -> 5, 5 -> 2, 6 -> 2, 6 -> 3, 6 -> 4
#include <cstdio>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main() {
  TRY(GrB_init(GrB_NONBLOCKING));
  unsigned version, subversion;
  TRY(GrB_getVersion(&version, &subversion));
  std::printf("GraphBLAS %u.%u\n", version, subversion);

  const GrB_Index n = 7;
  GrB_Index src[] = {0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6, 6};
  GrB_Index dst[] = {1, 3, 4, 6, 5, 0, 2, 5, 2, 2, 3, 4};
  double weights[] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};

  GrB_Matrix a;
  TRY(GrB_Matrix_new(&a, GrB_FP64, n, n));
  TRY(GrB_Matrix_build(a, src, dst, weights, 12, GrB_PLUS_FP64));

  // Number of length-2 paths between every pair: P2 = A * A.
  GrB_Matrix p2;
  TRY(GrB_Matrix_new(&p2, GrB_FP64, n, n));
  TRY(GrB_mxm(p2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
              GrB_NULL));
  GrB_Index npaths;
  TRY(GrB_Matrix_nvals(&npaths, p2));
  double total = 0;
  TRY(GrB_reduce(&total, GrB_NULL, GrB_PLUS_MONOID_FP64, p2, GrB_NULL));
  std::printf("length-2 paths: %llu pairs, %.0f paths total\n",
              (unsigned long long)npaths, total);

  // BFS levels from vertex 0.
  GrB_Vector level;
  TRY(grb_algo::bfs_level(&level, a, 0));
  std::printf("BFS levels from 0:");
  for (GrB_Index v = 0; v < n; ++v) {
    int32_t d;
    GrB_Info info = GrB_Vector_extractElement(&d, level, v);
    if (info == GrB_SUCCESS) {
      std::printf(" %llu:%d", (unsigned long long)v, d);
    } else {
      std::printf(" %llu:unreachable", (unsigned long long)v);
    }
  }
  std::printf("\n");

  TRY(GrB_free(&level));
  TRY(GrB_free(&p2));
  TRY(GrB_free(&a));
  TRY(GrB_finalize());
  std::printf("quickstart OK\n");
  return 0;
}
