// Streaming edge ingest with nonblocking mode (the pattern the paper's
// §III deferral machinery enables): edges arrive in batches of O(1)
// setElement calls; the library folds them at each GrB_wait; analytics
// run incrementally between batches.
//
//   $ ./streaming_ingest [scale] [batches]
#include <cstdio>
#include <cstdlib>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"
#include "util/prng.hpp"
#include "util/timer.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  int batches = argc > 2 ? std::atoi(argv[2]) : 8;
  const GrB_Index n = GrB_Index{1} << scale;
  const GrB_Index edges_per_batch = 4 * n / batches;

  TRY(GrB_init(GrB_NONBLOCKING));
  GrB_Matrix graph;
  TRY(GrB_Matrix_new(&graph, GrB_FP64, n, n));

  grb::Prng rng(7);
  std::printf("streaming %llu edges into a %llu-vertex graph in %d "
              "batches\n",
              (unsigned long long)(edges_per_batch * batches),
              (unsigned long long)n, batches);

  double total_ingest_ms = 0, total_fold_ms = 0;
  for (int b = 0; b < batches; ++b) {
    grb::Timer ingest;
    for (GrB_Index e = 0; e < edges_per_batch; ++e) {
      GrB_Index u = rng.below(n), v = rng.below(n);
      // O(1) pending-tuple append; nothing is folded yet.
      TRY(GrB_Matrix_setElement(graph, rng.uniform() + 0.1, u, v));
    }
    double ingest_ms = ingest.millis();
    grb::Timer fold;
    TRY(GrB_wait(graph, GrB_MATERIALIZE));  // one fold per batch
    double fold_ms = fold.millis();
    total_ingest_ms += ingest_ms;
    total_fold_ms += fold_ms;

    // Incremental analytics on the graph so far.
    GrB_Index nnz = 0;
    TRY(GrB_Matrix_nvals(&nnz, graph));
    GrB_Vector level;
    TRY(grb_algo::bfs_level(&level, graph, 0));
    GrB_Index reached = 0;
    TRY(GrB_Vector_nvals(&reached, level));
    GrB_free(&level);
    std::printf(
        "  batch %2d: ingest %6.2f ms, fold %6.2f ms, %8llu edges, "
        "BFS reaches %llu\n",
        b + 1, ingest_ms, fold_ms, (unsigned long long)nnz,
        (unsigned long long)reached);
  }
  std::printf("totals: ingest %.1f ms (%.0f ns/edge), folding %.1f ms\n",
              total_ingest_ms,
              1e6 * total_ingest_ms / (edges_per_batch * batches),
              total_fold_ms);

  TRY(GrB_free(&graph));
  TRY(GrB_finalize());
  std::printf("streaming_ingest OK\n");
  return 0;
}
