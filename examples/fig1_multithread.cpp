// The paper's Figure 1 program: two threads sharing a GraphBLAS matrix
// Esh, synchronized with GrB_wait(Esh, GrB_COMPLETE) plus an
// acquire/release flag.
//
// Figure 1 uses OpenMP; the paper's footnote 1 notes the spec works with
// any multithreading API following the C/C++ memory model, so this
// reproduction uses std::thread and std::atomic with explicit
// memory_order_release / memory_order_acquire — exactly the memory
// orders §III prescribes.
#include <atomic>
#include <cstdio>
#include <thread>

#include "graphblas/GraphBLAS.h"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

namespace {

constexpr GrB_Index kN = 64;

// "A user written function (not shown)" — Figure 1 line 21.
void load_and_initialize(GrB_Matrix* mats, int count) {
  for (int m = 0; m < count; ++m) {
    TRY(GrB_Matrix_new(&mats[m], GrB_FP64, kN, kN));
    for (GrB_Index i = 0; i < kN; ++i) {
      TRY(GrB_Matrix_setElement(mats[m], 1.0 + (double)((i + m) % 7), i,
                                (i * (m + 3) + 1) % kN));
      TRY(GrB_Matrix_setElement(mats[m], 0.5, i, (i + m + 1) % kN));
    }
  }
}

}  // namespace

int main() {
  std::atomic<int> flag{0};  // Synchronization flag (Figure 1 line 6)
  GrB_Matrix Esh = nullptr, Hres = nullptr, Dres = nullptr;

  TRY(GrB_init(GrB_NONBLOCKING));

  std::thread t0([&] {
    GrB_Matrix A, B, C, D;
    GrB_Matrix local[4];
    load_and_initialize(local, 4);
    A = local[0];
    B = local[1];
    C = local[2];
    D = local[3];
    TRY(GrB_Matrix_new(&Esh, GrB_FP64, kN, kN));
    TRY(GrB_Matrix_new(&Dres, GrB_FP64, kN, kN));

    // simplified ... most args omitted  (Figure 1 lines 24-25)
    TRY(GrB_mxm(C, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, A, B,
                GrB_NULL));
    TRY(GrB_mxm(Esh, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, D, C,
                GrB_NULL));

    TRY(GrB_wait(Esh, GrB_COMPLETE));  // line 27

    // #pragma omp atomic write release  (lines 29-30)
    flag.store(1, std::memory_order_release);

    TRY(GrB_mxm(Dres, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, A,
                Esh, GrB_NULL));
    TRY(GrB_wait(Dres, GrB_COMPLETE));  // line 33

    TRY(GrB_free(&A));
    TRY(GrB_free(&B));
    TRY(GrB_free(&C));
    TRY(GrB_free(&D));
  });

  std::thread t1([&] {
    GrB_Matrix E, F, G;
    GrB_Matrix local[3];
    load_and_initialize(local, 3);
    E = local[0];
    F = local[1];
    G = local[2];
    TRY(GrB_Matrix_new(&Hres, GrB_FP64, kN, kN));

    // local computation (line 43)
    TRY(GrB_mxm(G, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, E, F,
                GrB_NULL));

    // spin on the flag with acquire order (lines 45-48)
    while (flag.load(std::memory_order_acquire) == 0) {
    }

    TRY(GrB_mxm(Hres, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, G,
                Esh, GrB_NULL));
    TRY(GrB_wait(Hres, GrB_COMPLETE));  // line 50

    TRY(GrB_free(&E));
    TRY(GrB_free(&F));
    TRY(GrB_free(&G));
  });

  t0.join();
  t1.join();
  // "Dres and Hres are available at this point." (line 54)
  GrB_Index dn, hn;
  TRY(GrB_Matrix_nvals(&dn, Dres));
  TRY(GrB_Matrix_nvals(&hn, Hres));
  double dsum = 0, hsum = 0;
  TRY(GrB_reduce(&dsum, GrB_NULL, GrB_PLUS_MONOID_FP64, Dres, GrB_NULL));
  TRY(GrB_reduce(&hsum, GrB_NULL, GrB_PLUS_MONOID_FP64, Hres, GrB_NULL));
  std::printf("Dres: %llu entries, sum %.3f\n", (unsigned long long)dn,
              dsum);
  std::printf("Hres: %llu entries, sum %.3f\n", (unsigned long long)hn,
              hsum);

  TRY(GrB_free(&Esh));
  TRY(GrB_free(&Hres));
  TRY(GrB_free(&Dres));
  TRY(GrB_finalize());
  std::printf("fig1_multithread OK\n");
  return 0;
}
