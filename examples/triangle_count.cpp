// Triangle counting with the GraphBLAS 2.0 select operation.
//
//   $ ./triangle_count [scale] [edge_factor]
//
// Demonstrates GrB_select + GrB_TRIL (paper §VIII.C) on a symmetrized
// R-MAT graph, with k-truss and local clustering coefficient as bonus
// consumers of the same machinery.
#include <cstdio>
#include <cstdlib>

#include "algorithms/algorithms.hpp"
#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/timer.hpp"

#define TRY(expr)                                                     \
  do {                                                                \
    GrB_Info info_ = (expr);                                          \
    if (info_ != GrB_SUCCESS) {                                       \
      std::fprintf(stderr, "%s failed: %d\n", #expr, (int)info_);     \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main(int argc, char** argv) {
  int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  GrB_Index edge_factor = argc > 2 ? std::atoll(argv[2]) : 8;

  TRY(GrB_init(GrB_NONBLOCKING));
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix a = nullptr;
  TRY(static_cast<GrB_Info>(
      grb::rmat_matrix(&a, scale, edge_factor, params, nullptr)));
  GrB_Index n, nnz;
  TRY(GrB_Matrix_nrows(&n, a));
  TRY(GrB_Matrix_nvals(&nnz, a));
  std::printf("graph: %llu vertices, %llu (directed) edges\n",
              (unsigned long long)n, (unsigned long long)nnz);

  grb::Timer timer;
  uint64_t ntri = 0;
  TRY(grb_algo::triangle_count(&ntri, a));
  std::printf("triangles: %llu (%.1f ms)\n", (unsigned long long)ntri,
              timer.millis());

  timer.reset();
  GrB_Matrix truss = nullptr;
  TRY(grb_algo::ktruss(&truss, a, 4));
  GrB_Index truss_edges = 0;
  TRY(GrB_Matrix_nvals(&truss_edges, truss));
  std::printf("4-truss: %llu edge slots (%.1f ms)\n",
              (unsigned long long)truss_edges, timer.millis());

  timer.reset();
  GrB_Vector lcc = nullptr;
  TRY(grb_algo::local_clustering_coefficient(&lcc, a));
  double mean = 0;
  GrB_Index lccn = 0;
  TRY(GrB_Vector_nvals(&lccn, lcc));
  TRY(GrB_reduce(&mean, GrB_NULL, GrB_PLUS_MONOID_FP64, lcc, GrB_NULL));
  if (lccn > 0) mean /= static_cast<double>(lccn);
  std::printf("mean clustering coefficient: %.4f over %llu vertices "
              "(%.1f ms)\n",
              mean, (unsigned long long)lccn, timer.millis());

  TRY(GrB_free(&lcc));
  TRY(GrB_free(&truss));
  TRY(GrB_free(&a));
  TRY(GrB_finalize());
  return 0;
}
