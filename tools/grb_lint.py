#!/usr/bin/env python3
"""grb_lint: GraphBLAS C-API spec-conformance linter.

Statically checks the contracts of the GraphBLAS 2.0 error model that the
type system cannot express:

  no-throw-escape         Every public GrB_* entry point in GraphBLAS.h is a
                          single `return grb_detail::guarded(...)` statement,
                          so no C++ exception can cross the C boundary, and
                          the header contains no naked `throw`.
  null-check-before-deref A GrB_* veneer that dereferences a caller argument
                          checks it against nullptr first (API errors must be
                          detected eagerly and deterministically, paper §V).
  info-string-coverage    GrB_Info (C enum), grb::Info (core enum) and the
                          info_name() switch agree: same values, same names,
                          and every code has a printable string.
  descriptor-coverage     Descriptor::set dispatches every DescField, and all
                          31 non-default predefined descriptors are declared
                          with their canonical GrB_DESC_* names.
  ops-validate-first      Every public operation in src/ops/*.cpp validates
                          its object arguments (validate_objects) before it
                          snapshots inputs or defers work.
  poison-has-message      Every poison()/poison_locked() call site registers
                          a non-empty GrB_error string, and the deferred-
                          execution machinery poisons with info_name() text.
  gxb-stats-parity        The observability surface is complete: every
                          required GxB_* stats/memory/flight-recorder entry
                          point (Stats_enable/get/reset/json/prometheus,
                          Memory_report, Object_memory, FlightRecorder_dump,
                          Trace_start/dump) is defined in GraphBLAS.h AND
                          listed in the GxB_EXTENSIONS registry.
Retired rules (delegated to the AST tier, tools/grb_analyze.py — see
DESIGN.md §13; grb_lint stays the fast regex tier and must never
re-grow a rule the analyzer owns, or the two tools can disagree):

  fusion-barrier-coverage Every value-observing read path drains the
                          deferred-op queue before touching published
                          container data.  Now enforced by grb_analyze's
                          `barrier-before-read` rule on the ordered
                          event stream of each function body (calls
                          resolved through the call graph, so nvals()
                          delegation is real resolution, not a regex),
                          which this rule only approximated textually.

Findings can be suppressed with a trailing or preceding-line comment:
    // grb-lint: allow(rule-id)

Usage: grb_lint.py [--repo DIR] [--json REPORT]
Exit status: 0 if no unsuppressed findings, 1 otherwise, 2 on usage error.
"""

import argparse
import json
import os
import re
import sys

HANDLE_TYPES = {
    "GrB_Type", "GrB_UnaryOp", "GrB_BinaryOp", "GrB_IndexUnaryOp",
    "GrB_Monoid", "GrB_Semiring", "GrB_Descriptor", "GrB_Scalar",
    "GrB_Vector", "GrB_Matrix", "GrB_Context",
}

# Canonical letter order for predefined descriptor names (REPLACE,
# STRUCTURE, COMP, TRAN0, TRAN1 — the order the spec's names use).
DESC_LETTERS = [(1, "R"), (4, "S"), (2, "C"), (8, "T0"), (16, "T1")]

# Helper declarations in ops/common.hpp that are not operations themselves.
OPS_HELPER_NAMES = {"validate_objects", "check_cast", "check_accum"}

# The observability entry points that must always exist together: a build
# that exposes counters must also expose the Prometheus exposition, the
# memory-attribution reports, and the flight-recorder dump (DESIGN.md §11).
GXB_STATS_SURFACE = (
    "GxB_Stats_enable",
    "GxB_Stats_get",
    "GxB_Stats_reset",
    "GxB_Stats_json",
    "GxB_Stats_prometheus",
    "GxB_Trace_start",
    "GxB_Trace_dump",
    "GxB_Memory_report",
    "GxB_Object_memory",
    "GxB_FlightRecorder_dump",
)


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self, repo):
        return {
            "rule": self.rule,
            "file": os.path.relpath(self.path, repo),
            "line": self.line,
            "message": self.message,
        }


class Linter:
    def __init__(self, repo):
        self.repo = repo
        self.findings = []
        self.suppressed = 0
        self.entry_points = 0
        self._suppress_lines = {}  # path -> {line -> set(rules)}

    # -- suppression ------------------------------------------------------

    def _suppressions(self, path):
        if path not in self._suppress_lines:
            table = {}
            try:
                lines = open(path).read().splitlines()
            except OSError:
                lines = []
            for i, text in enumerate(lines, 1):
                for m in re.finditer(r"grb-lint:\s*allow\(([\w,\s-]+)\)",
                                     text):
                    rules = {r.strip() for r in m.group(1).split(",")}
                    # A marker covers its own line and the next one.
                    table.setdefault(i, set()).update(rules)
                    table.setdefault(i + 1, set()).update(rules)
            self._suppress_lines[path] = table
        return self._suppress_lines[path]

    def report(self, rule, path, line, message):
        allowed = self._suppressions(path).get(line, set())
        if rule in allowed:
            self.suppressed += 1
            return
        self.findings.append(Finding(rule, path, line, message))

    # -- source utilities -------------------------------------------------

    @staticmethod
    def strip_comments(text):
        """Blank out // and /* */ comments, preserving line structure."""
        out = []
        i, n = 0, len(text)
        while i < n:
            if text.startswith("//", i):
                j = text.find("\n", i)
                j = n if j < 0 else j
                out.append(" " * (j - i))
                i = j
            elif text.startswith("/*", i):
                j = text.find("*/", i)
                j = n if j < 0 else j + 2
                out.append("".join(c if c == "\n" else " "
                                   for c in text[i:j]))
                i = j
            elif text[i] == '"':
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                out.append(text[i:j + 1])
                i = j + 1
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    def read(self, rel):
        path = os.path.join(self.repo, rel)
        with open(path) as f:
            return path, f.read()

    @staticmethod
    def expand_function_macros(text):
        """Expand #define macros whose bodies define GrB_* functions.

        Returns text with each macro invocation replaced by the expanded
        body on the invocation's original line (newlines collapsed so
        line numbers of the rest of the file are preserved).
        """
        macros = {}
        out_lines = []
        lines = text.splitlines()
        i = 0
        while i < len(lines):
            line = lines[i]
            m = re.match(r"#define\s+(\w+)\(([\w,\s]*)\)\s*\\", line)
            if m:
                name, params = m.group(1), m.group(2)
                body = []
                i += 1
                while i < len(lines):
                    raw = lines[i]
                    body.append(raw.rstrip("\\").rstrip())
                    if not raw.rstrip().endswith("\\"):
                        break
                    i += 1
                body_text = "\n".join(body)
                if "inline GrB_Info" in body_text:
                    macros[name] = ([p.strip() for p in params.split(",")
                                     if p.strip()], body_text)
                out_lines.append("")  # keep line count stable
                for _ in body:
                    out_lines.append("")
                i += 1
                continue
            expanded = False
            for name, (params, body_text) in macros.items():
                m = re.match(r"%s\(([^)]*)\)\s*$" % re.escape(name), line)
                if m:
                    args = [a.strip() for a in m.group(1).split(",")]
                    if len(args) == len(params):
                        inst = body_text
                        for p, a in zip(params, args):
                            inst = re.sub(r"\b%s\b" % re.escape(p), a, inst)
                        # Collapse to one line so later lines keep numbers.
                        out_lines.append(inst.replace("\n", " "))
                        expanded = True
                        break
            if not expanded:
                out_lines.append(line)
            i += 1
        return "\n".join(out_lines)

    @staticmethod
    def parse_functions(text, name_re):
        """Yield (name, line, params, body) for functions matching name_re."""
        for m in re.finditer(r"inline GrB_Info (%s)\s*\(" % name_re, text):
            name = m.group(1)
            line = text.count("\n", 0, m.start()) + 1
            i = m.end() - 1
            depth = 0
            start = i
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            params = text[start + 1:i]
            # Find the opening brace (skip declarations, none expected).
            j = text.find("{", i)
            if j < 0:
                continue
            depth = 0
            k = j
            while k < len(text):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            yield name, line, params, text[j + 1:k]

    @staticmethod
    def split_params(params):
        """Split a parameter list at top-level commas -> [(type, name)]."""
        parts, depth, cur = [], 0, []
        for ch in params:
            if ch in "<([":
                depth += 1
            elif ch in ">)]":
                depth -= 1
            if ch == "," and depth == 0:
                parts.append("".join(cur))
                cur = []
            else:
                cur.append(ch)
        if cur:
            parts.append("".join(cur))
        out = []
        for p in parts:
            p = p.split("=")[0].strip()
            if not p:
                continue
            m = re.match(r"(.+?)\s*(\w+)$", p)
            if m:
                out.append((m.group(1).strip(), m.group(2)))
        return out

    # -- rules ------------------------------------------------------------

    def check_header(self):
        path, raw = self.read("include/graphblas/GraphBLAS.h")
        text = self.expand_function_macros(raw)

        for m in re.finditer(r"\bthrow\b", self.strip_comments(text)):
            line = text.count("\n", 0, m.start()) + 1
            self.report("no-throw-escape", path, line,
                        "naked `throw` in the C API header")

        for name, line, params, body in self.parse_functions(text, r"GrB_\w+"):
            self.entry_points += 1
            stripped = body.strip()
            if not stripped.startswith(
                    "return grb_detail::guarded([&]() -> GrB_Info {"):
                self.report(
                    "no-throw-escape", path, line,
                    "%s does not route through grb_detail::guarded(); an "
                    "exception could escape to the C caller" % name)
            self._check_null_before_deref(path, name, line, params, body)

    def _check_null_before_deref(self, path, name, line, params, body):
        for ptype, pname in self.split_params(params):
            is_handle = ptype.rstrip("&").strip() in HANDLE_TYPES
            is_pointer = "*" in ptype
            if not (is_handle or is_pointer):
                continue
            deref = re.search(
                r"(\b%s->|\*\s*%s\b\s*=|\(\s*\*\s*%s\s*\))"
                % (pname, pname, pname), body)
            if not deref:
                continue
            guard = re.search(r"\b%s\s*==\s*nullptr" % pname, body)
            if guard is None or guard.start() > deref.start():
                self.report(
                    "null-check-before-deref", path, line,
                    "%s dereferences parameter `%s` without a preceding "
                    "nullptr check" % (name, pname))

    def check_gxb_extensions(self):
        """GxB_* extension entry points: guarded veneer + registry parity.

        Every `inline GrB_Info GxB_*` function must (a) route through
        grb_detail::guarded like the GrB_* surface, (b) null-check handle
        and pointer parameters before dereferencing, and (c) appear in the
        GxB_EXTENSIONS string table so GxB_Extension_name introspection
        stays truthful.  Stale or duplicate table entries are flagged too.
        """
        path, raw = self.read("include/graphblas/GraphBLAS.h")
        text = self.expand_function_macros(raw)

        m = re.search(r"GxB_EXTENSIONS\[\]\s*=\s*\{(.*?)\};", text, re.S)
        table = []
        table_line = 1
        if m:
            table_line = text.count("\n", 0, m.start()) + 1
            table = re.findall(r'"(GxB_\w+)"', m.group(1))
        else:
            self.report("gxb-extension-registry", path, 1,
                        "GxB_EXTENSIONS registry table not found in the "
                        "C API header")

        defined = set()
        for name, line, params, body in self.parse_functions(text,
                                                             r"GxB_\w+"):
            self.entry_points += 1
            defined.add(name)
            if not body.strip().startswith(
                    "return grb_detail::guarded([&]() -> GrB_Info {"):
                self.report(
                    "no-throw-escape", path, line,
                    "%s does not route through grb_detail::guarded(); an "
                    "exception could escape to the C caller" % name)
            self._check_null_before_deref(path, name, line, params, body)
            if name not in table:
                self.report(
                    "gxb-extension-registry", path, line,
                    "%s is not listed in the GxB_EXTENSIONS registry" % name)

        seen = set()
        for name in table:
            if name not in defined:
                self.report(
                    "gxb-extension-registry", path, table_line,
                    "GxB_EXTENSIONS lists %s but no such entry point is "
                    "defined" % name)
            if name in seen:
                self.report("gxb-extension-registry", path, table_line,
                            "GxB_EXTENSIONS lists %s twice" % name)
            seen.add(name)

    def check_gxb_stats_parity(self):
        """The stats/memory/flight-recorder surface ships as one unit.

        Each name in GXB_STATS_SURFACE must be defined as an entry point
        in GraphBLAS.h and listed in the GxB_EXTENSIONS registry, so no
        partial observability API (say, counters without the Prometheus
        exposition, or memory gauges without the report) can land.
        """
        path, raw = self.read("include/graphblas/GraphBLAS.h")
        text = self.expand_function_macros(raw)

        m = re.search(r"GxB_EXTENSIONS\[\]\s*=\s*\{(.*?)\};", text, re.S)
        table = set(re.findall(r'"(GxB_\w+)"', m.group(1))) if m else set()

        defined = {name for name, _, _, _
                   in self.parse_functions(text, r"GxB_\w+")}
        for name in GXB_STATS_SURFACE:
            if name not in defined:
                self.report(
                    "gxb-stats-parity", path, 1,
                    "%s is missing from GraphBLAS.h; the observability "
                    "surface (stats + memory + flight recorder) must ship "
                    "complete" % name)
            elif name not in table:
                self.report(
                    "gxb-stats-parity", path, 1,
                    "%s is defined but not listed in GxB_EXTENSIONS; "
                    "introspection would hide part of the observability "
                    "surface" % name)

    def check_info_strings(self):
        hdr_path, hdr = self.read("include/graphblas/GraphBLAS.h")
        core_path, core = self.read("src/core/info.hpp")
        impl_path, impl = self.read("src/core/info.cpp")

        m = re.search(r"enum GrB_Info \{(.*?)\};", hdr, re.S)
        c_values = {}
        if m:
            for name, val in re.findall(r"GrB_([A-Z_]+)\s*=\s*(-?\d+)",
                                        m.group(1)):
                c_values[name] = int(val)

        m = re.search(r"enum class Info : int \{(.*?)\};", core, re.S)
        core_values = {}
        if m:
            for name, val in re.findall(r"k(\w+)\s*=\s*(-?\d+)", m.group(1)):
                core_values[name] = int(val)

        def camel_to_snake(name):
            return re.sub(r"(?<!^)(?=[A-Z])", "_", name).upper()

        for cname, cval in core_values.items():
            snake = camel_to_snake(cname)
            if snake not in c_values:
                self.report("info-string-coverage", hdr_path, 1,
                            "grb::Info::k%s has no GrB_%s in the C enum"
                            % (cname, snake))
            elif c_values[snake] != cval:
                self.report("info-string-coverage", hdr_path, 1,
                            "GrB_%s = %d but grb::Info::k%s = %d"
                            % (snake, c_values[snake], cname, cval))
        for cname, cval in c_values.items():
            if cval not in core_values.values():
                self.report("info-string-coverage", core_path, 1,
                            "GrB_%s (%d) missing from grb::Info" %
                            (cname, cval))

        cases = dict(re.findall(r'case Info::k(\w+):\s*return "([^"]*)";',
                                impl))
        for cname in core_values:
            line = 1
            lm = re.search(r"const char\* info_name", impl)
            if lm:
                line = impl.count("\n", 0, lm.start()) + 1
            if cname not in cases:
                self.report("info-string-coverage", impl_path, line,
                            "info_name() has no case for Info::k%s" % cname)
            elif cases[cname] != "GrB_" + camel_to_snake(cname):
                self.report("info-string-coverage", impl_path, line,
                            'info_name(Info::k%s) returns "%s", expected '
                            '"GrB_%s"' % (cname, cases[cname],
                                          camel_to_snake(cname)))

    def check_descriptors(self):
        impl_path, impl = self.read("src/core/descriptor.cpp")
        hdr_path, hdr = self.read("include/graphblas/GraphBLAS.h")

        m = re.search(r"Info Descriptor::set\(", impl)
        set_line = impl.count("\n", 0, m.start()) + 1 if m else 1
        for field in ("kOutp", "kMask", "kInp0", "kInp1"):
            if not re.search(r"case DescField::%s\b" % field, impl):
                self.report("descriptor-coverage", impl_path, set_line,
                            "Descriptor::set does not dispatch DescField::%s"
                            % field)

        declared = {}
        for m in re.finditer(r"GRB_DESC\((\w+),\s*(\d+)\)", hdr):
            name, bits = m.group(1), int(m.group(2))
            line = hdr.count("\n", 0, m.start()) + 1
            if name == "NAME":
                continue  # the macro definition itself
            canonical = "GrB_DESC_" + "".join(
                letter for bit, letter in DESC_LETTERS if bits & bit)
            if name != canonical:
                self.report("descriptor-coverage", hdr_path, line,
                            "descriptor bits %d declared as %s, canonical "
                            "name is %s" % (bits, name, canonical))
            if bits in declared:
                self.report("descriptor-coverage", hdr_path, line,
                            "descriptor bits %d declared twice" % bits)
            declared[bits] = name
        for bits in range(1, 32):
            if bits not in declared:
                canonical = "GrB_DESC_" + "".join(
                    letter for bit, letter in DESC_LETTERS if bits & bit)
                self.report("descriptor-coverage", hdr_path, 1,
                            "predefined descriptor %s (bits %d) is not "
                            "declared" % (canonical, bits))

    def _ops_entry_names(self):
        _, common = self.read("src/ops/common.hpp")
        names = set()
        for m in re.finditer(r"^Info (\w+)\(", common, re.M):
            if m.group(1) not in OPS_HELPER_NAMES:
                names.add(m.group(1))
        return names

    def check_ops_validate_first(self):
        names = self._ops_entry_names()
        ops_dir = os.path.join(self.repo, "src", "ops")
        for fname in sorted(os.listdir(ops_dir)):
            if not fname.endswith(".cpp"):
                continue
            path = os.path.join(ops_dir, fname)
            text = self.strip_comments(open(path).read())
            # File-local helpers that perform validation on behalf of the
            # public entry points (e.g. validate_apply_v).
            validators = set()
            for m in re.finditer(r"^Info (\w+)\(", text, re.M):
                name = m.group(1)
                j = text.find("{", m.end())
                if j < 0:
                    continue
                depth, k = 0, j
                while k < len(text):
                    if text[k] == "{":
                        depth += 1
                    elif text[k] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                if name not in names and \
                        "validate_objects(" in text[j:k]:
                    validators.add(name)
            for m in re.finditer(r"^Info (\w+)\(", text, re.M):
                name = m.group(1)
                if name not in names:
                    continue
                line = text.count("\n", 0, m.start()) + 1
                j = text.find("{", m.end())
                if j < 0:
                    continue
                depth, k = 0, j
                while k < len(text):
                    if text[k] == "{":
                        depth += 1
                    elif text[k] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                body = text[j:k]
                effects = [body.find("snapshot("), body.find("defer_or_run(")]
                effects = [e for e in effects if e >= 0]
                if not effects:
                    continue  # pure forwarder / computes nothing itself
                checks = [body.find("validate_objects(")] + [
                    body.find(h + "(") for h in validators]
                checks = [c for c in checks if c >= 0]
                v = min(checks) if checks else -1
                if v < 0:
                    self.report(
                        "ops-validate-first", path, line,
                        "%s snapshots or defers without calling "
                        "validate_objects" % name)
                elif v > min(effects):
                    self.report(
                        "ops-validate-first", path, line,
                        "%s calls validate_objects only after taking a "
                        "snapshot or deferring" % name)

    def check_poison_messages(self):
        src_dir = os.path.join(self.repo, "src")
        for root, _, files in os.walk(src_dir):
            for fname in sorted(files):
                if not fname.endswith((".cpp", ".hpp")):
                    continue
                path = os.path.join(root, fname)
                text = self.strip_comments(open(path).read())
                for m in re.finditer(r"\bpoison(?:_locked)?\(", text):
                    line = text.count("\n", 0, m.start()) + 1
                    prefix = text[:m.start()].rstrip()
                    # Skip declarations/definitions of poison itself.
                    if prefix.endswith(("void", "::", "void ObjectBase")) or \
                            re.search(r"void\s+(ObjectBase::)?$", prefix):
                        continue
                    i, depth = m.end() - 1, 0
                    args, cur = [], []
                    while i < len(text):
                        ch = text[i]
                        if ch in "([{":
                            depth += 1
                            if depth == 1:
                                i += 1
                                continue
                        elif ch in ")]}":
                            depth -= 1
                            if depth == 0:
                                args.append("".join(cur).strip())
                                break
                        if ch == "," and depth == 1:
                            args.append("".join(cur).strip())
                            cur = []
                        else:
                            cur.append(ch)
                        i += 1
                    if len(args) < 2 or args[1] in ('""', "{}", ""):
                        self.report(
                            "poison-has-message", path, line,
                            "poison() without an error message: deferred "
                            "failures must register a GrB_error string")

        # The deferred-execution machinery itself must poison with a
        # printable info_name() message on both failure paths.  The drain
        # loop lives in complete_impl(); complete() is a thin watchdog/
        # attribution wrapper around it.
        path, text = self.read("src/exec/object_base.cpp")
        for fn in ("defer_or_run", "Info ObjectBase::complete_impl"):
            m = re.search(re.escape(fn), text)
            if not m:
                self.report("poison-has-message", path, 1,
                            "%s not found in object_base.cpp" % fn)
                continue
            j = text.find("{", m.end())
            depth, k = 0, j
            while k < len(text):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body = text[j:k]
            if "poison" not in body or "info_name" not in body:
                self.report(
                    "poison-has-message", path,
                    text.count("\n", 0, m.start()) + 1,
                    "%s must poison failed deferred work with an "
                    "info_name() message" % fn)

    # RETIRED: check_fusion_barrier_coverage (PR 7).  The barrier-
    # before-read contract is now enforced by tools/grb_analyze.py
    # (`barrier-before-read`), which checks the ordered event stream of
    # each read path and resolves barrier delegation (e.g. nvals())
    # through the whole-program call graph instead of a same-body regex.
    # Keeping a weaker copy here would let the two tiers disagree about
    # the same contract; this tier deliberately no longer knows it.

    # -- driver -----------------------------------------------------------

    RULES = ("no-throw-escape", "null-check-before-deref",
             "info-string-coverage", "descriptor-coverage",
             "ops-validate-first", "poison-has-message",
             "gxb-extension-registry", "gxb-stats-parity")

    def run(self):
        self.check_header()
        self.check_gxb_extensions()
        self.check_gxb_stats_parity()
        self.check_info_strings()
        self.check_descriptors()
        self.check_ops_validate_first()
        self.check_poison_messages()
        return self.findings


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--json", default=None,
                    help="write a machine-readable findings report here")
    args = ap.parse_args(argv)

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isfile(os.path.join(repo, "include", "graphblas",
                                       "GraphBLAS.h")):
        print("grb_lint: %s does not look like the repo root" % repo,
              file=sys.stderr)
        return 2

    linter = Linter(repo)
    findings = linter.run()

    for f in findings:
        print("%s:%d: [%s] %s" % (os.path.relpath(f.path, repo), f.line,
                                  f.rule, f.message))
    print("grb_lint: %d entry points, %d finding(s), %d suppressed"
          % (linter.entry_points, len(findings), linter.suppressed))

    if args.json:
        report = {
            "tool": "grb_lint",
            "rules": list(Linter.RULES),
            "entry_points": linter.entry_points,
            "suppressed": linter.suppressed,
            "findings": [f.as_dict(repo) for f in findings],
        }
        with open(args.json, "w") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
