#!/usr/bin/env python3
"""Compare two BENCH_*.json result sets and flag median regressions.

Each input is either a single BENCH_*.json file produced by the
JsonTrajectoryReporter (bench/bench_util.hpp) or a directory holding
several of them.  Benchmarks are keyed by (binary, name, params); for
every key present in both sets the median_ns ratio new/old is printed,
and any slowdown beyond --threshold (default 10%) is flagged as a
REGRESSION.  Exits nonzero when at least one regression is found, so CI
can gate on it; keys present in only one set are reported but do not
fail the comparison (benchmarks come and go across PRs).

Usage: bench_compare.py OLD NEW [--threshold 0.10] [--json out.json]

Pure stdlib; no dependencies.
"""

import argparse
import json
import os
import sys


def load_set(path):
    """Return {(binary, name, params): median_ns} from a file or dir.

    Missing or malformed files are warned about and skipped — a crashed
    or interrupted benchmark run must not take the whole comparison down
    with a traceback.  Only real regressions produce a nonzero exit.
    """
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, f)
            for f in os.listdir(path)
            if f.startswith("BENCH_") and f.endswith(".json")
        )
        if not files:
            print(f"warning: no BENCH_*.json files under {path}",
                  file=sys.stderr)
    else:
        files = [path]
    rows = {}
    for fname in files:
        try:
            with open(fname, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except OSError as e:
            print(f"warning: skipping {fname}: {e}", file=sys.stderr)
            continue
        except json.JSONDecodeError as e:
            print(f"warning: skipping {fname}: malformed JSON ({e})",
                  file=sys.stderr)
            continue
        if not isinstance(doc, dict):
            print(f"warning: skipping {fname}: not a JSON object",
                  file=sys.stderr)
            continue
        binary = doc.get("binary", os.path.basename(fname))
        bench_list = doc.get("benchmarks", [])
        if not isinstance(bench_list, list):
            print(f"warning: skipping {fname}: 'benchmarks' is not a list",
                  file=sys.stderr)
            continue
        for b in bench_list:
            try:
                key = (binary, b["name"], b.get("params", ""))
                rows[key] = float(b["median_ns"])
            except (TypeError, KeyError, ValueError) as e:
                print(
                    f"warning: skipping malformed benchmark entry in "
                    f"{fname}: {e!r}",
                    file=sys.stderr,
                )
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline BENCH json file or directory")
    ap.add_argument("new", help="candidate BENCH json file or directory")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="slowdown fraction that counts as a regression (default 0.10)",
    )
    ap.add_argument("--json", help="write the comparison table to this file")
    args = ap.parse_args()

    old = load_set(args.old)
    new = load_set(args.new)
    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    table = []
    regressions = 0
    for key in common:
        ratio = new[key] / old[key] if old[key] > 0 else float("inf")
        regressed = ratio > 1.0 + args.threshold
        regressions += regressed
        table.append(
            {
                "binary": key[0],
                "name": key[1],
                "params": key[2],
                "old_ns": old[key],
                "new_ns": new[key],
                "ratio": ratio,
                "regression": regressed,
            }
        )

    width = max((len(f"{r['name']}{r['params']}") for r in table), default=4)
    print(f"{'benchmark':<{width}}  {'old_ms':>10}  {'new_ms':>10}  ratio")
    for r in table:
        label = f"{r['name']}{r['params']}"
        tag = "  REGRESSION" if r["regression"] else ""
        print(
            f"{label:<{width}}  {r['old_ns'] / 1e6:>10.3f}"
            f"  {r['new_ns'] / 1e6:>10.3f}  {r['ratio']:>5.2f}x{tag}"
        )
    for key in only_old:
        print(f"only in baseline: {key[1]}{key[2]} ({key[0]})")
    for key in only_new:
        print(f"only in candidate: {key[1]}{key[2]} ({key[0]})")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(
                {"threshold": args.threshold, "rows": table}, f, indent=1
            )

    if not common:
        # Not a gating failure: sets legitimately diverge when benchmarks
        # are renamed or a run produced no usable files (warned above).
        print(
            "warning: no common benchmarks between the two sets",
            file=sys.stderr,
        )
        return 0
    if regressions:
        print(
            f"{regressions} regression(s) beyond "
            f"{args.threshold:.0%} slowdown"
        )
        return 1
    print(f"OK: {len(common)} benchmarks within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
