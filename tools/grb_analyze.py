#!/usr/bin/env python3
"""grb_analyze: AST-grounded whole-program conformance analyzer.

The second tier of the repo's static-analysis stack (DESIGN.md §13).
tools/grb_lint.py is the fast regex tier: single-file, pattern-shaped
contracts.  grb_analyze builds a whole-program model — every function
definition in src/ and include/, its ordered body events (calls, lock
scopes, allocations, throws, atomic operations, container-data accesses)
and the call graph over them — and enforces the cross-function contracts
the regex tier cannot see:

  no-alloc-under-lock     No path reachable from a hot-path critical
                          section (spgemm / fused_exec / ewise / the
                          deferred-drain machinery in object_base), or
                          from the grb_detail catch-all veneer's handler
                          bodies, may throw, call operator new, or grow a
                          std:: container — unless the allocation flows
                          through the tracked allocator (obs/memory.hpp).
                          An allocation under a lock can throw bad_alloc
                          with the lock held and stalls every waiter
                          behind the allocator.
  barrier-before-read     Control-flow replacement for grb_lint's retired
                          fusion-barrier-coverage regex rule: every
                          value-observing read path (extract_element,
                          extract_tuples, nvals, export, serialize) must
                          call snapshot()/complete()/flush_pending() —
                          directly or through a callee that does (e.g.
                          nvals() delegation) — before dereferencing
                          published container data.  Checked on the
                          ordered event list, not line order.
  fusion-grant-coverage   Every Deferred enqueue site (defer_or_run /
                          ObjectBase::enqueue) supplies an explicit
                          FuseNode capability grant — relying on the
                          defaulted parameter means nobody audited the
                          method's fusion legality.  kMap/kZip grants
                          (the fusable capabilities) may only originate
                          in kernels registered in the
                          GRB_FUSABLE_KERNEL_FILES table in
                          src/ops/fused_exec.hpp, and the table must
                          stay in parity with the granting files.
  atomic-order-explicit   Every std::atomic load/store/RMW in src/obs/
                          and src/exec/ names an explicit memory_order.
                          A defaulted seq_cst on a hot-path counter is a
                          silent fence; making the order visible makes
                          the cost and the intent reviewable.
  entry-point-parity      Every GrB_*/GxB_* entry point named in
                          GraphBLAS.h is implemented (no declaration
                          without a definition), routes through the
                          grb_detail::guarded no-throw veneer as its
                          first action, and — for GxB_* — is listed in
                          the GxB_EXTENSIONS registry (both directions,
                          no duplicates).

Frontends
  --frontend=clang  libclang via clang.cindex, driven by
                    compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
                    is on in the default preset).
  --frontend=text   A self-contained reduced-C++ frontend: a length-
                    preserving lexer, brace-matched function extraction,
                    and an ordered event scan.  No dependencies.
  --frontend=auto   (default) clang when clang.cindex + a compilation
                    database are available, otherwise text — with a
                    notice, never an error, so the gate runs everywhere.

Both frontends build the same Program model; the rules are frontend-
agnostic.  The text frontend is authoritative for CI (deterministic,
dependency-free); the clang frontend cross-checks it where available.

Suppressions
  Checked-in file (tools/grb_analyze_suppressions.json):
      {"suppressions": [{"rule": ..., "file": ..., "symbol": ...,
                         "reason": ...}]}
  matching by (rule, file, enclosing function).  `symbol` may be "*" to
  cover a whole file.  Inline markers also work, on the finding's line
  or the one above:
      // grb-analyze: allow(rule-id)
  Every suppression must carry a reason; an unused file suppression is
  itself reported (stale-suppression) so the file cannot rot.

Usage: grb_analyze.py [--repo DIR] [--json REPORT] [--frontend F]
                      [--suppressions FILE] [--verbose]
Exit status: 0 if no unsuppressed findings, 1 otherwise, 2 on usage or
infrastructure error.
"""

import argparse
import bisect
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Configuration: the contract surface
# ---------------------------------------------------------------------------

# Files whose critical sections are no-alloc zones: the hot kernel paths
# named by the contract (spgemm / fused_exec / ewise) plus the deferred-
# drain machinery that every nonblocking completion runs through.
LOCK_ZONE_FILES = (
    "src/containers/format.cpp",
    "src/containers/format.hpp",
    "src/ops/spgemm.cpp",
    "src/ops/spgemm.hpp",
    "src/ops/fused_exec.cpp",
    "src/ops/ewise_vector.cpp",
    "src/ops/ewise_matrix.cpp",
    "src/exec/object_base.cpp",
    "src/exec/object_base.hpp",
    "src/exec/fusion.cpp",
    "src/exec/thread_pool.cpp",
    "src/exec/thread_pool.hpp",
)

# Files holding the value-observing read paths (write paths — import,
# deserialize, build, set_element — queue work and need no barrier).
READ_BARRIER_FILES = (
    "src/ops/element.cpp",
    "src/containers/vector.cpp",
    "src/containers/matrix.cpp",
    "src/containers/scalar.cpp",
    "src/containers/format.cpp",
    "src/io/import_export.cpp",
    "src/io/serialize.cpp",
)
READ_NAME_RE = re.compile(
    r"(extract_element|extract_tuples|nvals|export(?:_size|_hint)?"
    r"|serialize(?:_size)?)$")
WRITE_NAME_RE = re.compile(r"import|deserialize|build|set_element")

# Barrier functions: draining the deferred queue (complete runs the
# fusion planner; snapshot calls complete before publishing).
BARRIER_FNS = {"snapshot", "snapshot_native", "complete", "flush_pending",
               "wait"}

# Published container data (the snapshot payload or the raw arrays).
ACCESS_RE = re.compile(
    r"\bsnap\s*->|\bdata_\b|\bcurrent_data\s*\(|->\s*(?:vals|ind|ptr)\b")

# Directories whose atomics must name an explicit memory_order.
ATOMIC_ORDER_DIRS = ("src/obs", "src/exec")
ATOMIC_METHODS = {
    "load", "store", "exchange",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong",
}

# Direct allocation indicators: names whose call allocates.
ALLOC_FREE_FNS = {"make_shared", "make_unique", "to_string", "strdup"}
ALLOC_METHODS = {
    "push_back", "emplace_back", "emplace", "resize", "reserve",
    "insert", "append", "substr", "assign", "push_front",
}
# Types whose construction allocates (declaration `T x(...)` / `T x{...}`).
ALLOC_TYPES = {"string", "vector", "ValueBuf", "ValueArray", "TrackedVec"}
# The tracked allocator itself: allocation flowing through it is the
# sanctioned path (obs/memory.hpp accounts it); cut the closure there.
TRACKED_ALLOC_FNS = {"TrackedAlloc", "allocate", "deallocate"}

# Receiver-call method names never resolved through the call graph: the
# text frontend merges overloads by base name, and these names collide
# with std:: container / synchronization members (queue_.clear() must not
# resolve to Matrix::clear, cv_lock.wait() must not resolve to
# ObjectBase::wait).  Direct allocation through the allocating subset is
# still caught by the ALLOC_METHODS event scan.
NO_RESOLVE_METHODS = {
    "clear", "wait", "swap", "reset", "get", "size", "empty", "lock",
    "unlock", "notify_one", "notify_all", "load", "store", "exchange",
    "c_str", "str", "data", "begin", "end", "find", "count", "at",
    "front", "back",
}

# Lock-scope declarations recognized by the frontends.
LOCK_DECL_RE = re.compile(
    r"\b(?:MutexLock|CvLock|std::lock_guard\s*<[^;>]*>|"
    r"std::unique_lock\s*<[^;>]*>)\s+(\w+)\s*[({]")

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "new", "delete", "else", "do", "case", "goto", "break", "continue",
    "true", "false", "nullptr", "const", "constexpr", "static", "inline",
    "virtual", "explicit", "typename", "template", "using", "namespace",
    "class", "struct", "enum", "union", "public", "private", "protected",
    "operator", "this", "auto", "void", "int", "bool", "char", "float",
    "double", "unsigned", "signed", "long", "short", "noexcept",
    "override", "final", "mutable", "co_return", "co_await", "co_yield",
    "alignof", "decltype", "default",
}

RULES = (
    "no-alloc-under-lock",
    "barrier-before-read",
    "fusion-grant-coverage",
    "decision-audit-coverage",
    "atomic-order-explicit",
    "entry-point-parity",
    "stale-suppression",
)


# ---------------------------------------------------------------------------
# Source utilities (shared with the grb_lint tier by construction)
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank comments and string/char literal contents, preserving length.

    Every replaced character becomes a space (newlines survive), so byte
    offsets and line numbers in the stripped text match the original.
    String literals keep their quotes but lose their contents, so tokens
    inside strings can never look like code.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(q + " " * (j - i - 1) + q)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor(text):
    """Blank out preprocessor lines (incl. continuations), keep length."""
    out = []
    for chunk in re.split(r"(\n)", text):
        if chunk == "\n":
            out.append(chunk)
            continue
        out.append(chunk)
    # Work line-wise on the joined text to honor continuations.
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            j = i
            while j < len(lines) and lines[j].rstrip().endswith("\\"):
                lines[j] = " " * len(lines[j])
                j += 1
            if j < len(lines):
                lines[j] = " " * len(lines[j])
            i = j + 1
        else:
            i += 1
    return "\n".join(lines)


def expand_function_macros(text):
    """Expand #define macros whose bodies define GrB_* entry points.

    Mirrors the grb_lint tier: each invocation is replaced by the
    expanded body collapsed onto the invocation's line, so line numbers
    of the rest of the file are preserved.
    """
    macros = {}
    out_lines = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"#define\s+(\w+)\(([\w,\s]*)\)\s*\\", line)
        if m:
            name, params = m.group(1), m.group(2)
            body = []
            i += 1
            while i < len(lines):
                raw = lines[i]
                body.append(raw.rstrip("\\").rstrip())
                if not raw.rstrip().endswith("\\"):
                    break
                i += 1
            body_text = "\n".join(body)
            if "inline GrB_Info" in body_text:
                macros[name] = ([p.strip() for p in params.split(",")
                                 if p.strip()], body_text)
            out_lines.append("")
            for _ in body:
                out_lines.append("")
            i += 1
            continue
        expanded = False
        for name, (params, body_text) in macros.items():
            m = re.match(r"%s\(([^)]*)\)\s*$" % re.escape(name), line)
            if m:
                args = [a.strip() for a in m.group(1).split(",")]
                if len(args) == len(params):
                    inst = body_text
                    for p, a in zip(params, args):
                        inst = re.sub(r"\b%s\b" % re.escape(p), a, inst)
                    out_lines.append(inst.replace("\n", " "))
                    expanded = True
                    break
        if not expanded:
            out_lines.append(line)
        i += 1
    return "\n".join(out_lines)


def match_paren(text, open_pos):
    """Index of the char matching the opener at open_pos (or -1)."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    close = pairs[text[open_pos]]
    opener = text[open_pos]
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == opener:
            depth += 1
        elif c == close:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_level_args(argtext):
    """Split an argument list at top-level commas.

    Depth is tracked with a bracket stack over ()[]{} only; '<'/'>' are
    ignored entirely — treating them as brackets misreads `->` and `<`
    comparisons inside lambda arguments, which silently inflates the arg
    count.  The cost is that a top-level template-argument comma
    (`foo<A, B>` as a bare argument) over-splits; none of the checked
    call shapes can contain one.
    """
    parts, cur = [], []
    stack = []
    closer = {"(": ")", "[": "]", "{": "}"}
    for ch in argtext:
        if ch in closer:
            stack.append(closer[ch])
        elif stack and ch == stack[-1]:
            stack.pop()
        if ch == "," and not stack:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


# ---------------------------------------------------------------------------
# Program model
# ---------------------------------------------------------------------------

class Event:
    """One ordered occurrence inside a function body."""
    CALL = "call"          # name, receiver, args
    THROW = "throw"
    ALLOC = "alloc"        # what
    ATOMIC = "atomic"      # method, has_order
    ACCESS = "access"      # container-data access (barrier rule)
    GRANT = "grant"        # FuseNode kMap/kZip capability assignment

    __slots__ = ("kind", "pos", "line", "name", "receiver", "args",
                 "has_order", "what")

    def __init__(self, kind, pos, line, name=None, receiver=None,
                 args=None, has_order=False, what=None):
        self.kind = kind
        self.pos = pos
        self.line = line
        self.name = name
        self.receiver = receiver
        self.args = args
        self.has_order = has_order
        self.what = what


class LockScope:
    __slots__ = ("start", "end", "line")

    def __init__(self, start, end, line):
        self.start = start
        self.end = end
        self.line = line


class Function:
    __slots__ = ("name", "qual", "file", "line", "events", "locks",
                 "requires_lock", "body_start", "body_end", "signature")

    def __init__(self, name, qual, file, line, signature=""):
        self.name = name          # base name, e.g. "complete"
        self.qual = qual          # qualified, e.g. "ObjectBase::complete"
        self.file = file          # repo-relative path
        self.line = line
        self.signature = signature
        self.events = []
        self.locks = []           # LockScope list
        self.requires_lock = False
        self.body_start = 0
        self.body_end = 0

    def calls(self):
        return [e for e in self.events if e.kind == Event.CALL]


class Program:
    def __init__(self):
        self.functions = []       # all Function defs, program order
        self.by_name = {}         # base name -> [Function]
        self.files = {}           # rel path -> stripped text
        self.raw_files = {}       # rel path -> raw text
        self.frontend = "text"

    def add(self, fn):
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)

    def resolve(self, name):
        """Functions a call to `name` may reach (overloads merged)."""
        base = name.rsplit("::", 1)[-1]
        return self.by_name.get(base, [])


# ---------------------------------------------------------------------------
# Text frontend: a reduced C++ parser (length-preserving, brace-matched)
# ---------------------------------------------------------------------------

FN_CANDIDATE_RE = re.compile(r"([A-Za-z_~][\w]*(?:\s*::\s*~?[A-Za-z_]\w*)*)"
                             r"\s*\(")


class TextFrontend:
    """Builds the Program model without a compiler.

    Limitations are deliberate and documented: no template
    instantiation, overloads merged by base name, lambda bodies attributed
    to their enclosing function.  Every rule is written to stay sound
    under those approximations (conservative for zone rules, exact for
    the site-shaped rules).
    """

    def __init__(self, repo, verbose=False):
        self.repo = repo
        self.verbose = verbose

    def build(self, rel_files):
        prog = Program()
        prog.frontend = "text"
        for rel in rel_files:
            path = os.path.join(self.repo, rel)
            try:
                with open(path) as f:
                    raw = f.read()
            except OSError:
                continue
            if rel.endswith("GraphBLAS.h"):
                raw_for_parse = expand_function_macros(raw)
            else:
                raw_for_parse = raw
            stripped = strip_comments_and_strings(raw_for_parse)
            stripped = blank_preprocessor(stripped)
            prog.files[rel] = stripped
            prog.raw_files[rel] = raw
            self._parse_file(prog, rel, stripped)
        return prog

    # -- function extraction ------------------------------------------------

    def _parse_file(self, prog, rel, text):
        newlines = [m.start() for m in re.finditer("\n", text)]

        def line_of(pos):
            return bisect.bisect_right(newlines, pos) + 1

        # Regions where function definitions may start: anywhere outside
        # an already-recorded function body.
        pos = 0
        n = len(text)
        body_spans = []
        while pos < n:
            m = FN_CANDIDATE_RE.search(text, pos)
            if not m:
                break
            name_tok = m.group(1)
            base = name_tok.rsplit("::", 1)[-1].strip()
            if base in CXX_KEYWORDS or base.startswith("~"):
                pos = m.end()
                continue
            # Inside an existing body? skip.
            if any(s <= m.start() < e for s, e in body_spans):
                pos = m.end()
                continue
            open_paren = m.end() - 1
            close_paren = match_paren(text, open_paren)
            if close_paren < 0:
                pos = m.end()
                continue
            ok, body_open, sig_tail = self._definition_tail(
                text, close_paren + 1)
            if not ok:
                pos = m.end()
                continue
            body_close = match_paren(text, body_open)
            if body_close < 0:
                pos = m.end()
                continue
            qual = re.sub(r"\s+", "", name_tok)
            fn = Function(base, qual, rel, line_of(m.start()),
                          signature=text[m.start():body_open])
            fn.body_start = body_open
            fn.body_end = body_close
            fn.requires_lock = "GRB_REQUIRES(" in sig_tail
            self._scan_body(fn, text, body_open + 1, body_close, line_of)
            # Constructor init lists can allocate too: scan the tail
            # between ')' and '{' for new/alloc events.
            if ":" in sig_tail:
                self._scan_body(fn, text, close_paren + 1, body_open,
                                line_of)
            prog.add(fn)
            body_spans.append((body_open, body_close))
            pos = body_close + 1

    @staticmethod
    def _definition_tail(text, pos):
        """After a param list: is this a definition?  Find the body '{'.

        Accepts cv-qualifiers, ref-qualifiers, noexcept, override/final,
        annotation macros with arguments (GRB_REQUIRES(mu_) etc.),
        trailing return types, and constructor initializer lists.
        Rejects declarations (';'), '= default/delete', and anything
        that doesn't end in a brace.
        """
        tail_chars = []
        n = len(text)
        i = pos
        while i < n:
            c = text[i]
            if c == "{":
                return True, i, "".join(tail_chars)
            if c == ";":
                return False, -1, "".join(tail_chars)
            if c == "=":
                # `= default;` / `= delete;` / `= 0;`
                return False, -1, "".join(tail_chars)
            if c == "(":
                j = match_paren(text, i)
                if j < 0:
                    return False, -1, ""
                tail_chars.append(text[i:j + 1])
                i = j + 1
                continue
            if c in ")>,":
                # A stray closer here means we mis-parsed (e.g. we were
                # inside an expression, not a signature).
                return False, -1, ""
            tail_chars.append(c)
            i += 1
        return False, -1, ""

    # -- event scanning -----------------------------------------------------

    COMPOUND_RE_TMPL = (r"(?:(?<![\w.>])%s\s*(?:\+\+|--|[+\-&|^]=|=(?!=))"
                        r"|(?:\+\+|--)\s*%s\b)")

    def _scan_body(self, fn, text, start, end, line_of):
        body = text[start:end]
        events = fn.events

        # Lock scopes.
        for m in LOCK_DECL_RE.finditer(body):
            scope_end = self._scope_end(body, m.start())
            fn.locks.append(LockScope(start + m.start(),
                                      start + scope_end,
                                      line_of(start + m.start())))

        # Throws (the bare keyword; rethrow included).
        for m in re.finditer(r"\bthrow\b", body):
            events.append(Event(Event.THROW, start + m.start(),
                                line_of(start + m.start())))

        # operator new (skip `= delete`-style tokens; strings stripped).
        for m in re.finditer(r"\bnew\b", body):
            events.append(Event(Event.ALLOC, start + m.start(),
                                line_of(start + m.start()),
                                what="operator new"))
        for m in re.finditer(r"\bmake_(?:shared|unique)\s*<", body):
            events.append(Event(Event.ALLOC, start + m.start(),
                                line_of(start + m.start()),
                                what=m.group(0).rstrip("<").strip()))

        # Allocating local construction: `std::vector<...> x(...)` etc.
        for m in re.finditer(
                r"\b(?:std::)?(%s)\b\s*(?:<[^;{}]*?>)?\s+\w+\s*[({]"
                % "|".join(ALLOC_TYPES), body):
            events.append(Event(Event.ALLOC, start + m.start(),
                                line_of(start + m.start()),
                                what="%s construction" % m.group(1)))
        # `std::string(...)` temporaries (concatenation chains).
        for m in re.finditer(r"\bstd::string\s*\(", body):
            events.append(Event(Event.ALLOC, start + m.start(),
                                line_of(start + m.start()),
                                what="std::string temporary"))

        # FuseNode capability grants.
        for m in re.finditer(
                r"\bkind\s*=(?!=)\s*(?:FuseNode::)?Kind::k(Map|Zip)\b",
                body):
            events.append(Event(Event.GRANT, start + m.start(),
                                line_of(start + m.start()),
                                what="k" + m.group(1)))

        # Data accesses (barrier rule).
        for m in ACCESS_RE.finditer(body):
            events.append(Event(Event.ACCESS, start + m.start(),
                                line_of(start + m.start()),
                                what=m.group(0).strip()))

        # Calls (with receiver + args captured).
        for m in FN_CANDIDATE_RE.finditer(body):
            name_tok = re.sub(r"\s+", "", m.group(1))
            base = name_tok.rsplit("::", 1)[-1]
            if base in CXX_KEYWORDS:
                continue
            prev, recv = self._prev_token(body, m.start(1))
            if prev == "decl":
                # `Type name(...)`: a declaration; the constructor call
                # is modeled by the ALLOC_TYPES scan above.
                continue
            open_paren = m.end() - 1
            close_paren = match_paren(body, open_paren)
            args = body[open_paren + 1:close_paren] if close_paren > 0 else ""
            pos = start + m.start(1)
            ev = Event(Event.CALL, pos, line_of(pos), name=name_tok,
                       receiver=recv, args=args)
            events.append(ev)
            if base in ALLOC_METHODS and recv is not None:
                events.append(Event(Event.ALLOC, pos, line_of(pos),
                                    what="%s.%s()" % (recv, base)))
            if base in ALLOC_FREE_FNS:
                events.append(Event(Event.ALLOC, pos, line_of(pos),
                                    what="%s()" % base))
            if base in ATOMIC_METHODS and recv is not None:
                events.append(Event(Event.ATOMIC, pos, line_of(pos),
                                    name=base, receiver=recv,
                                    has_order="memory_order" in args))

        events.sort(key=lambda e: e.pos)

    @staticmethod
    def _prev_token(body, pos):
        """Classify the token before a callee name.

        Returns ("decl", None) when the name is preceded by another
        identifier/'>'/'*'/'&' (i.e. `Type name(` — a declaration),
        ("recv", receiver) for `obj.name(` / `obj->name(`, and
        ("call", None) otherwise.
        """
        i = pos - 1
        while i >= 0 and body[i] in " \t\n":
            i -= 1
        if i < 0:
            return "call", None
        c = body[i]
        if c == "." or (c == ">" and i > 0 and body[i - 1] == "-"):
            j = i - (1 if c == "." else 2)
            k = j
            while k >= 0 and (body[k].isalnum() or body[k] in "_]"):
                if body[k] == "]":
                    depth = 0
                    while k >= 0:
                        if body[k] == "]":
                            depth += 1
                        elif body[k] == "[":
                            depth -= 1
                            if depth == 0:
                                break
                        k -= 1
                k -= 1
            recv = body[k + 1:j + 1].strip()
            return "recv", recv or "?"
        if c.isalnum() or c == "_":
            j = i
            while j >= 0 and (body[j].isalnum() or body[j] == "_"):
                j -= 1
            word = body[j + 1:i + 1]
            if word in CXX_KEYWORDS or word in ("and", "or", "not"):
                return "call", None
            return "decl", None
        if c in ">*&" :
            # `Foo<T> name(` / `Foo* name(` / `Foo& name(` — declaration —
            # but `->name(` was handled above and `a > b (…)` is not valid
            # C++ at a call site, so this classification is safe.
            return "decl", None
        return "call", None

    @staticmethod
    def _scope_end(body, pos):
        """End of the innermost brace scope containing pos."""
        depth = 0
        for i in range(pos, len(body)):
            c = body[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth < 0:
                    return i
        return len(body)


# ---------------------------------------------------------------------------
# Clang frontend (optional): same Program model via libclang
# ---------------------------------------------------------------------------

class ClangFrontendUnavailable(Exception):
    pass


class ClangFrontend:
    """libclang-based frontend, driven by compile_commands.json.

    Builds the same Program model as the text frontend from real ASTs:
    exact function extents, receiver types for atomics (no heuristics),
    and lock scopes from VarDecls of the annotated RAII types.  Raises
    ClangFrontendUnavailable when clang.cindex or the compilation
    database cannot be loaded; the driver falls back to the text
    frontend with a notice.
    """

    LOCK_TYPES = ("MutexLock", "CvLock", "lock_guard", "unique_lock")

    def __init__(self, repo, compile_commands=None, verbose=False):
        self.repo = repo
        self.verbose = verbose
        try:
            from clang import cindex  # noqa: deferred import by design
        except ImportError as e:
            raise ClangFrontendUnavailable(
                "python bindings for libclang not importable: %s" % e)
        self.cindex = cindex
        cc = compile_commands or os.path.join(repo, "build")
        try:
            self.db = cindex.CompilationDatabase.fromDirectory(cc)
        except cindex.CompilationDatabaseError:
            raise ClangFrontendUnavailable(
                "no compile_commands.json under %s (configure with the "
                "default preset: CMAKE_EXPORT_COMPILE_COMMANDS is on)" % cc)
        try:
            self.index = cindex.Index.create()
        except Exception as e:  # libclang shared object missing
            raise ClangFrontendUnavailable("libclang not loadable: %s" % e)

    def build(self, rel_files):
        ci = self.cindex
        prog = Program()
        prog.frontend = "clang"
        wanted = set(rel_files)
        for rel in rel_files:
            path = os.path.join(self.repo, rel)
            try:
                with open(path) as f:
                    raw = f.read()
            except OSError:
                continue
            prog.raw_files[rel] = raw
            prog.files[rel] = strip_comments_and_strings(raw)
        parsed = set()
        for cmd in self.db.getAllCompileCommands():
            src = os.path.relpath(
                os.path.join(cmd.directory, cmd.filename), self.repo)
            args = [a for a in cmd.arguments][1:]
            args = [a for a in args if a not in (cmd.filename, "-c", "-o")]
            try:
                tu = self.index.parse(
                    os.path.join(self.repo, src), args=args,
                    options=ci.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES
                    * 0)
            except ci.TranslationUnitLoadError:
                continue
            for cur in tu.cursor.walk_preorder():
                if not cur.location.file:
                    continue
                rel = os.path.relpath(str(cur.location.file), self.repo)
                if rel not in wanted or rel in parsed and False:
                    continue
                if cur.kind in (ci.CursorKind.FUNCTION_DECL,
                                ci.CursorKind.CXX_METHOD,
                                ci.CursorKind.CONSTRUCTOR) and \
                        cur.is_definition():
                    key = (rel, cur.location.line, cur.spelling)
                    if key in parsed:
                        continue
                    parsed.add(key)
                    prog.add(self._build_fn(cur, rel))
        return prog

    def _build_fn(self, cur, rel):
        ci = self.cindex
        qual = cur.spelling
        parent = cur.semantic_parent
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            qual = "%s::%s" % (parent.spelling, cur.spelling)
        fn = Function(cur.spelling, qual, rel, cur.location.line)
        toks = " ".join(t.spelling for t in cur.get_tokens()[:40]) \
            if False else ""
        fn.requires_lock = "GRB_REQUIRES" in toks
        for node in cur.walk_preorder():
            line = node.location.line
            pos = node.location.offset or 0
            if node.kind == ci.CursorKind.CALL_EXPR and node.spelling:
                recv = None
                args_txt = ""
                fn.events.append(Event(Event.CALL, pos, line,
                                       name=node.spelling, receiver=recv,
                                       args=args_txt))
                if node.spelling in ATOMIC_METHODS:
                    has_order = any(
                        "memory_order" in (a.type.spelling or "")
                        for a in node.get_arguments() if a is not None)
                    fn.events.append(Event(Event.ATOMIC, pos, line,
                                           name=node.spelling,
                                           has_order=has_order))
                if node.spelling in ALLOC_METHODS | ALLOC_FREE_FNS:
                    fn.events.append(Event(Event.ALLOC, pos, line,
                                           what=node.spelling))
            elif node.kind == ci.CursorKind.CXX_THROW_EXPR:
                fn.events.append(Event(Event.THROW, pos, line))
            elif node.kind == ci.CursorKind.CXX_NEW_EXPR:
                fn.events.append(Event(Event.ALLOC, pos, line,
                                       what="operator new"))
            elif node.kind == ci.CursorKind.VAR_DECL and any(
                    t in node.type.spelling for t in self.LOCK_TYPES):
                ext = node.semantic_parent.extent if node.semantic_parent \
                    else node.extent
                fn.events.append(Event(Event.CALL, pos, line, name="_lock"))
                fn.locks.append(LockScope(pos, ext.end.offset or pos, line))
        fn.events.sort(key=lambda e: e.pos)
        return fn


# ---------------------------------------------------------------------------
# Findings, suppressions, reporting
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, file, line, message, function=None, path=None):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.function = function
        self.path = path or []

    def as_dict(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message}
        if self.function:
            d["function"] = self.function
        if self.path:
            d["path"] = self.path
        return d


class Suppressions:
    def __init__(self, repo, path):
        self.entries = []
        self.used = [False] * 0
        self.repo = repo
        self.path = path
        if path and os.path.isfile(path):
            with open(path) as f:
                data = json.load(f)
            self.entries = data.get("suppressions", [])
        self.used = [False] * len(self.entries)
        self._inline = {}

    def _inline_allows(self, rel, line):
        if rel not in self._inline:
            table = {}
            path = os.path.join(self.repo, rel)
            try:
                lines = open(path).read().splitlines()
            except OSError:
                lines = []
            for i, text in enumerate(lines, 1):
                for m in re.finditer(
                        r"grb-analyze:\s*allow\(([\w,\s-]+)\)", text):
                    rules = {r.strip() for r in m.group(1).split(",")}
                    table.setdefault(i, set()).update(rules)
                    table.setdefault(i + 1, set()).update(rules)
            self._inline[rel] = table
        return self._inline[rel]

    def matches(self, finding):
        for i, e in enumerate(self.entries):
            if e.get("rule") != finding.rule:
                continue
            if e.get("file") != finding.file:
                continue
            sym = e.get("symbol", "*")
            if sym != "*" and sym != (finding.function or ""):
                continue
            self.used[i] = True
            return True
        allows = self._inline_allows(finding.file, finding.line)
        return finding.rule in allows.get(finding.line, set())

    def stale(self):
        out = []
        for i, e in enumerate(self.entries):
            if not self.used[i]:
                out.append(e)
        return out


class Reporter:
    def __init__(self, suppressions):
        self.suppressions = suppressions
        self.findings = []
        self.suppressed = 0

    def report(self, rule, file, line, message, function=None, path=None):
        f = Finding(rule, file, line, message, function, path)
        if self.suppressions.matches(f):
            self.suppressed += 1
            return
        self.findings.append(f)


# ---------------------------------------------------------------------------
# Call-graph closures
# ---------------------------------------------------------------------------

class Closures:
    """Memoized transitive properties over the (name-resolved) call graph."""

    def __init__(self, prog):
        self.prog = prog
        self._alloc = {}
        self._barrier = {}

    def _closure(self, fn, memo, direct, cut_names):
        key = id(fn)
        if key in memo:
            return memo[key]
        memo[key] = None  # cycle guard: in progress -> assume False
        hit = direct(fn)
        if hit is not None:
            memo[key] = hit
            return hit
        for ev in fn.calls():
            base = (ev.name or "").rsplit("::", 1)[-1]
            if base in cut_names:
                continue
            for callee in self.prog.resolve(ev.name or ""):
                if callee is fn:
                    continue
                sub = self._closure(callee, memo, direct, cut_names)
                if sub:
                    memo[key] = (ev, callee, sub)
                    return memo[key]
        memo[key] = False
        return False

    def alloc_path(self, fn):
        """Falsy, or a breadcrumb describing why fn may allocate/throw."""
        def direct(f):
            for ev in f.events:
                if ev.kind == Event.ALLOC:
                    return (ev, None, True)
                if ev.kind == Event.THROW:
                    return (ev, None, True)
            return None
        return self._closure(fn, self._alloc, direct, TRACKED_ALLOC_FNS)

    def has_barrier(self, fn):
        def direct(f):
            for ev in f.calls():
                base = (ev.name or "").rsplit("::", 1)[-1]
                if base in BARRIER_FNS:
                    return (ev, None, True)
            return None
        return bool(self._closure(fn, self._barrier, direct, set()))

    @staticmethod
    def describe(fn, hit):
        """Render a breadcrumb chain 'fn > callee > ... > event'."""
        chain = [fn.qual]
        cur = hit
        while cur and cur is not True:
            ev, callee, nxt = cur
            if callee is None:
                what = ev.what or ("throw" if ev.kind == Event.THROW
                                   else ev.name or ev.kind)
                chain.append("%s (line %d)" % (what, ev.line))
                break
            chain.append(callee.qual)
            cur = nxt
        return " > ".join(chain)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def rule_no_alloc_under_lock(prog, repo, rep):
    closures = Closures(prog)
    for fn in prog.functions:
        if fn.file not in LOCK_ZONE_FILES:
            continue
        zones = list(fn.locks)
        if fn.requires_lock:
            zones.append(LockScope(fn.body_start, fn.body_end, fn.line))
        if not zones:
            continue
        seen_lines = set()
        for ev in fn.events:
            in_zone = any(z.start <= ev.pos < z.end for z in zones)
            if not in_zone:
                continue
            if ev.kind in (Event.ALLOC, Event.THROW):
                what = ev.what or "throw"
                if ev.line in seen_lines:
                    continue
                seen_lines.add(ev.line)
                rep.report(
                    "no-alloc-under-lock", fn.file, ev.line,
                    "%s %s inside a critical section of %s: an "
                    "allocation here can throw bad_alloc with the lock "
                    "held and serializes the allocator behind it"
                    % (fn.qual,
                       "throws" if ev.kind == Event.THROW else
                       "allocates (%s)" % what, fn.qual),
                    function=fn.qual)
            elif ev.kind == Event.CALL:
                base = (ev.name or "").rsplit("::", 1)[-1]
                if base in TRACKED_ALLOC_FNS or base in ALLOC_METHODS:
                    continue  # direct events already reported above
                if ev.receiver is not None and base in NO_RESOLVE_METHODS:
                    continue  # std member name; would cross-resolve
                for callee in prog.resolve(ev.name or ""):
                    hit = closures.alloc_path(callee)
                    if hit:
                        if ev.line in seen_lines:
                            break
                        seen_lines.add(ev.line)
                        rep.report(
                            "no-alloc-under-lock", fn.file, ev.line,
                            "%s calls %s inside a critical section, and "
                            "that call can allocate or throw: %s"
                            % (fn.qual, ev.name,
                               Closures.describe(callee, hit)),
                            function=fn.qual,
                            path=Closures.describe(callee, hit).split(" > "))
                        break


def rule_guarded_catch_zone(prog, repo, rep):
    """The catch-all veneer's handler bodies must be straight-line returns.

    Part of the no-alloc-under-lock family: the handlers run while the
    exception is in flight — allocating there can itself throw and
    terminate() across the C boundary.
    """
    rel = "include/graphblas/GraphBLAS.h"
    text = prog.files.get(rel)
    if text is None:
        return
    for m in re.finditer(r"\bcatch\s*\(", text):
        close = match_paren(text, m.end() - 1)
        if close < 0:
            continue
        brace = text.find("{", close)
        if brace < 0:
            continue
        end = match_paren(text, brace)
        body = text[brace + 1:end]
        line = text.count("\n", 0, m.start()) + 1
        if re.search(r"\bnew\b|\bthrow\b(?!\s*;)|make_shared|std::string\s*\(",
                     body):
            rep.report(
                "no-alloc-under-lock", rel, line,
                "catch handler in the no-throw veneer allocates or "
                "rethrows; handlers must reduce to an error-code return")


def rule_barrier_before_read(prog, repo, rep):
    closures = Closures(prog)
    for fn in prog.functions:
        if fn.file not in READ_BARRIER_FILES:
            continue
        if not READ_NAME_RE.search(fn.name) or WRITE_NAME_RE.search(fn.name):
            continue
        first_access = None
        first_barrier = None
        for ev in fn.events:
            if ev.kind == Event.ACCESS and first_access is None:
                first_access = ev
            elif ev.kind == Event.CALL and first_barrier is None:
                base = (ev.name or "").rsplit("::", 1)[-1]
                if base in BARRIER_FNS:
                    first_barrier = ev
                else:
                    for callee in prog.resolve(ev.name or ""):
                        if closures.has_barrier(callee):
                            first_barrier = ev
                            break
            if first_access is not None and first_barrier is not None:
                break
        if first_access is None:
            continue  # dimensions only; no deferred-visible data
        if first_barrier is None:
            rep.report(
                "barrier-before-read", fn.file, first_access.line,
                "%s reads container data (%s) without draining the "
                "deferred-op queue: no snapshot()/complete()/"
                "flush_pending() on any path before the access"
                % (fn.qual, first_access.what), function=fn.qual)
        elif first_barrier.pos > first_access.pos:
            rep.report(
                "barrier-before-read", fn.file, first_access.line,
                "%s touches container data (%s) before its barrier "
                "(%s at line %d); the fusion planner must run before "
                "any read" % (fn.qual, first_access.what,
                              first_barrier.name, first_barrier.line),
                function=fn.qual)


def rule_fusion_grant_coverage(prog, repo, rep):
    # (a) Every enqueue site supplies an explicit FuseNode argument.
    for fn in prog.functions:
        if not fn.file.startswith(("src/",)):
            continue
        for ev in fn.calls():
            base = (ev.name or "").rsplit("::", 1)[-1]
            if base not in ("defer_or_run", "enqueue"):
                continue
            if fn.name == base:
                continue  # the forwarding definition itself
            args = split_top_level_args(ev.args or "")
            need = 3 if base == "defer_or_run" else 2
            if ev.receiver is not None and base == "defer_or_run":
                continue  # not the free function
            if base == "enqueue" and ev.receiver is None and \
                    "::" not in (ev.name or ""):
                continue  # unrelated local enqueue
            if len(args) < need:
                rep.report(
                    "fusion-grant-coverage", fn.file, ev.line,
                    "%s enqueues deferred work through %s without an "
                    "explicit FuseNode grant; the defaulted opaque node "
                    "means this method's fusion legality was never "
                    "audited — pass FuseNode{} (audited-opaque) or a "
                    "real capability" % (fn.qual, base),
                    function=fn.qual)

    # (b) kMap/kZip grants only from registered fusable kernels.
    reg_rel = "src/ops/fused_exec.hpp"
    reg_text = prog.files.get(reg_rel)
    registered = []
    if reg_text is not None:
        raw = prog.raw_files.get(reg_rel, "")
        m = re.search(r"GRB_FUSABLE_KERNEL_FILES((?:.|\n)*?)(?:\n\s*\n|$)",
                      raw)
        if m:
            registered = re.findall(r'"([^"]+)"', m.group(1))
        else:
            rep.report(
                "fusion-grant-coverage", reg_rel, 1,
                "GRB_FUSABLE_KERNEL_FILES registration table not found "
                "in fused_exec.hpp; kMap/kZip grant origins cannot be "
                "audited")
    granting = {}
    for fn in prog.functions:
        for ev in fn.events:
            if ev.kind == Event.GRANT:
                granting.setdefault(fn.file, []).append((fn, ev))
    for file, grants in sorted(granting.items()):
        if file in (reg_rel, "src/exec/fusion.cpp", "src/exec/fusion.hpp"):
            continue
        if registered and file not in registered:
            fn, ev = grants[0]
            rep.report(
                "fusion-grant-coverage", file, ev.line,
                "%s grants the fusable capability %s but %s is not "
                "listed in GRB_FUSABLE_KERNEL_FILES (fused_exec.hpp); "
                "only registered kernels may be planned into fused "
                "passes" % (fn.qual, ev.what, file), function=fn.qual)
    for file in registered:
        if file not in granting:
            rep.report(
                "fusion-grant-coverage", reg_rel, 1,
                "GRB_FUSABLE_KERNEL_FILES lists %s but no kMap/kZip "
                "grant originates there; stale registration" % file)


def rule_decision_audit_coverage(prog, repo, rep):
    # GRB_DECISION_SITES (obs/decision.hpp) names every translation unit
    # hosting an adaptive cost-model branch.  Parity both ways: a file
    # emitting a DecisionRecord outside src/obs/ must be registered, and
    # a registered file must actually emit — so a new heuristic cannot
    # land unaudited and a removed one cannot leave a stale entry.
    reg_rel = "src/obs/decision.hpp"
    reg_text = prog.files.get(reg_rel)
    registered = []
    if reg_text is not None:
        raw = prog.raw_files.get(reg_rel, "")
        m = re.search(r"GRB_DECISION_SITES((?:.|\n)*?)(?:\n\s*\n|$)", raw)
        if m:
            registered = re.findall(r'"([^"]+)"', m.group(1))
        else:
            rep.report(
                "decision-audit-coverage", reg_rel, 1,
                "GRB_DECISION_SITES registry not found in decision.hpp; "
                "adaptive-decision emitters cannot be audited")
    emitting = {}
    for fn in prog.functions:
        for ev in fn.calls():
            base = (ev.name or "").rsplit("::", 1)[-1]
            if base != "decision_record":
                continue
            emitting.setdefault(fn.file, []).append((fn, ev))
    for file, emits in sorted(emitting.items()):
        if file.startswith("src/obs/"):
            continue  # the audit machinery itself
        if registered and file not in registered:
            fn, ev = emits[0]
            rep.report(
                "decision-audit-coverage", file, ev.line,
                "%s emits a DecisionRecord but %s is not listed in "
                "GRB_DECISION_SITES (obs/decision.hpp); register the "
                "site so GxB_Explain coverage matches the code"
                % (fn.qual, file), function=fn.qual)
    for file in registered:
        if file not in emitting:
            rep.report(
                "decision-audit-coverage", reg_rel, 1,
                "GRB_DECISION_SITES lists %s but no decision_record "
                "call originates there; stale registration" % file)


def rule_atomic_order_explicit(prog, repo, rep):
    # Method-call form, from the event stream.
    for fn in prog.functions:
        if not fn.file.startswith(ATOMIC_ORDER_DIRS):
            continue
        for ev in fn.events:
            if ev.kind != Event.ATOMIC:
                continue
            if not ev.has_order:
                rep.report(
                    "atomic-order-explicit", fn.file, ev.line,
                    "%s: %s.%s() without an explicit memory_order "
                    "defaults to seq_cst — name the ordering so the "
                    "fence cost is visible and intentional"
                    % (fn.qual, ev.receiver or "<atomic>", ev.name),
                    function=fn.qual)
    # Operator form (++ / -- / += / = on declared atomics).  The name is
    # only trusted when the enclosing function does not declare a local
    # of the same name (a `uint64_t head = r->head.load(...)` shadow must
    # not be mistaken for the atomic member), and an identifier directly
    # before the name means the match is itself a declaration.
    for rel, text in prog.files.items():
        if not rel.startswith(ATOMIC_ORDER_DIRS):
            continue
        names = set(re.findall(
            r"std::atomic\s*<[^;>]*>\s*(\w+)\s*[{=;\[]", text))
        fns = [f for f in prog.functions if f.file == rel]
        for name in sorted(names):
            shadow_re = re.compile(
                r"[\w>*&]\s+%s\s*[=;,)({\[]" % re.escape(name))
            pat = re.compile(
                r"(?:(?<![\w.>])%s\s*(?:\+\+|--|[+\-&|^]=|=(?!=))"
                r"|(?:\+\+|--)\s*%s\b)" % (re.escape(name), re.escape(name)))
            for m in pat.finditer(text):
                fn = next((f for f in fns
                           if f.body_start <= m.start() < f.body_end), None)
                if fn is not None and shadow_re.search(
                        text[fn.body_start:fn.body_end]):
                    continue
                i = m.start() - 1
                while i >= 0 and text[i] in " \t\n":
                    i -= 1
                if i >= 0 and (text[i].isalnum() or text[i] in "_>*&"):
                    continue  # `type name = ...`: a declaration
                line = text.count("\n", 0, m.start()) + 1
                rep.report(
                    "atomic-order-explicit", rel, line,
                    "operator-form access to std::atomic `%s` is an "
                    "implicit seq_cst; use load/store/fetch_* with an "
                    "explicit memory_order" % name,
                    function=fn.qual if fn else None)


def rule_entry_point_parity(prog, repo, rep):
    rel = "include/graphblas/GraphBLAS.h"
    raw = prog.raw_files.get(rel)
    if raw is None:
        return
    text = expand_function_macros(raw)
    stripped = strip_comments_and_strings(text)

    defined = {}
    for m in re.finditer(r"inline GrB_Info ((?:GrB|GxB)_\w+)\s*\(",
                         stripped):
        close = match_paren(stripped, m.end() - 1)
        if close < 0:
            continue
        brace = stripped.find("{", close)
        semi = stripped.find(";", close)
        line = stripped.count("\n", 0, m.start()) + 1
        if brace < 0 or (0 <= semi < brace):
            continue  # declaration; handled below
        end = match_paren(stripped, brace)
        body = text[brace + 1:end]
        defined[m.group(1)] = (line, body)

    # Declarations without a definition anywhere in the header.
    for m in re.finditer(r"\bGrB_Info\s+((?:GrB|GxB)_\w+)\s*\(", stripped):
        close = match_paren(stripped, m.end() - 1)
        if close < 0:
            continue
        after = stripped[close + 1:close + 80].lstrip()
        if after.startswith(";") and m.group(1) not in defined:
            line = stripped.count("\n", 0, m.start()) + 1
            rep.report(
                "entry-point-parity", rel, line,
                "%s is declared but never implemented; every entry "
                "point named in the C API header must ship with its "
                "definition" % m.group(1))

    # Guarded-veneer routing: the body's first action is the veneer call.
    for name, (line, body) in sorted(defined.items()):
        if not body.strip().startswith(
                "return grb_detail::guarded("):
            rep.report(
                "entry-point-parity", rel, line,
                "%s does not route through grb_detail::guarded() as its "
                "first action; an exception could cross the C boundary"
                % name)

    # GxB registry parity, both directions, no duplicates.
    m = re.search(r"GxB_EXTENSIONS\[\]\s*=\s*\{(.*?)\};", text, re.S)
    table = re.findall(r'"(GxB_\w+)"', m.group(1)) if m else []
    table_line = text.count("\n", 0, m.start()) + 1 if m else 1
    gxb_defined = {n for n in defined if n.startswith("GxB_")}
    for name in sorted(gxb_defined):
        if name not in table:
            rep.report(
                "entry-point-parity", rel, defined[name][0],
                "%s is implemented but missing from the GxB_EXTENSIONS "
                "registry; introspection would hide it" % name)
    seen = set()
    for name in table:
        if name not in gxb_defined:
            rep.report(
                "entry-point-parity", rel, table_line,
                "GxB_EXTENSIONS lists %s but no such entry point is "
                "implemented" % name)
        if name in seen:
            rep.report(
                "entry-point-parity", rel, table_line,
                "GxB_EXTENSIONS lists %s twice" % name)
        seen.add(name)


RULE_FNS = (
    rule_no_alloc_under_lock,
    rule_guarded_catch_zone,
    rule_barrier_before_read,
    rule_fusion_grant_coverage,
    rule_decision_audit_coverage,
    rule_atomic_order_explicit,
    rule_entry_point_parity,
)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(repo):
    rels = []
    for top in ("src", "include"):
        base = os.path.join(repo, top)
        for root, _, files in os.walk(base):
            for fname in sorted(files):
                if fname.endswith((".cpp", ".hpp", ".h")):
                    rels.append(os.path.relpath(os.path.join(root, fname),
                                                repo))
    return sorted(rels)


def build_program(repo, frontend, compile_commands, verbose):
    rels = collect_files(repo)
    notice = None
    if frontend in ("clang", "auto"):
        try:
            fe = ClangFrontend(repo, compile_commands, verbose)
            return fe.build(rels), None
        except ClangFrontendUnavailable as e:
            if frontend == "clang":
                raise
            notice = ("clang frontend unavailable (%s); "
                      "falling back to the text frontend" % e)
    return TextFrontend(repo, verbose).build(rels), notice


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--json", default=None,
                    help="write a machine-readable findings report here")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None,
                    help="directory holding compile_commands.json "
                         "(default: <repo>/build)")
    ap.add_argument("--suppressions", default=None,
                    help="suppression file (default: "
                         "<repo>/tools/grb_analyze_suppressions.json)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    repo = os.path.abspath(repo)
    if not os.path.isfile(os.path.join(repo, "include", "graphblas",
                                       "GraphBLAS.h")):
        print("grb_analyze: %s does not look like a repo root "
              "(no include/graphblas/GraphBLAS.h)" % repo, file=sys.stderr)
        return 2

    supp_path = args.suppressions
    if supp_path is None:
        default = os.path.join(repo, "tools",
                               "grb_analyze_suppressions.json")
        supp_path = default if os.path.isfile(default) else None

    try:
        prog, notice = build_program(repo, args.frontend,
                                     args.compile_commands, args.verbose)
    except ClangFrontendUnavailable as e:
        print("grb_analyze: SKIPPED: %s" % e)
        return 0 if args.frontend == "clang" else 2
    if notice:
        print("grb_analyze: NOTICE: %s" % notice)

    suppressions = Suppressions(repo, supp_path)
    rep = Reporter(suppressions)
    for rule_fn in RULE_FNS:
        rule_fn(prog, repo, rep)

    # A suppression nobody needs anymore is itself a finding: the file
    # must describe the tree, not its history.
    for e in suppressions.stale():
        rep.findings.append(Finding(
            "stale-suppression", e.get("file", "?"), 0,
            "suppression for rule %r on %s (%s) matched nothing; "
            "remove it" % (e.get("rule"), e.get("file"),
                           e.get("symbol", "*"))))

    for f in rep.findings:
        loc = "%s:%d" % (f.file, f.line)
        print("%s: [%s] %s" % (loc, f.rule, f.message))
    print("grb_analyze: frontend=%s functions=%d finding(s)=%d "
          "suppressed=%d"
          % (prog.frontend, len(prog.functions), len(rep.findings),
             rep.suppressed))

    if args.json:
        report = {
            "tool": "grb_analyze",
            "frontend": prog.frontend,
            "rules": list(RULES),
            "functions": len(prog.functions),
            "suppressed": rep.suppressed,
            "findings": [f.as_dict() for f in rep.findings],
        }
        with open(args.json, "w") as out:
            json.dump(report, out, indent=2)
            out.write("\n")

    return 1 if rep.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
