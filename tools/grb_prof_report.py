#!/usr/bin/env python3
"""Join the profiler and decision-audit streams into one report.

Input is a stats JSON document — the GxB_Stats_json payload, which the
library also dumps at finalize when GRB_STATS_JSON=path is set.  Two of
its blocks are joined here:

  * "prof"      — per-(context, op, strategy) hardware counters from the
                  perf_event_open groups (or the degraded CPU-time
                  backend when perf is unavailable);
  * "decisions" — per-site cost-model audit counters: how often each
                  adaptive site ran, and how often its predicted cost
                  was off by more than 2x from what was measured.

The kernel table derives IPC (instructions/cycle) and miss rates
(cache/branch misses per 1000 instructions) per profiled region; under
a degraded backend those columns print "-" and only CPU time is shown.
The decision table derives the mispredict rate and the aggregate
predicted/measured units ratio per site; any site whose mispredict
rate exceeds --threshold (default 0.25) is flagged and the exit status
is 1, so the report doubles as a cost-model regression gate.

Usage: grb_prof_report.py stats.json [--threshold FRAC] [--json]
Exit status: 0 clean, 1 when a decision site is flagged, 2 on usage
error.  Pure stdlib; no dependencies.
"""

import argparse
import json
import sys


def rate(num, den):
    return num / den if den else 0.0


def fmt_count(v, den, scale=1.0):
    """cache/branch misses per 1000 instructions, '-' when unprofiled."""
    if not den:
        return "-"
    return "%.2f" % (v / den * scale)


def kernel_rows(prof):
    rows = []
    for r in prof.get("regions", []):
        cycles = r.get("cycles", 0)
        instr = r.get("instructions", 0)
        rows.append({
            "ctx": r.get("ctx", 0),
            "op": r.get("op", "?"),
            "strategy": r.get("strategy", "?"),
            "count": r.get("count", 0),
            "cycles": cycles,
            "instructions": instr,
            "ipc": rate(instr, cycles),
            "cache_miss_per_ki": rate(r.get("cache_misses", 0) * 1000.0,
                                      instr),
            "branch_miss_per_ki": rate(r.get("branch_misses", 0) * 1000.0,
                                       instr),
            "cpu_ms": r.get("cpu_ns", 0) / 1e6,
        })
    rows.sort(key=lambda r: -r["cpu_ms"])
    return rows


def decision_rows(decisions, threshold):
    rows = []
    for site, c in sorted(decisions.get("sites", {}).items()):
        measured = c.get("measured", 0)
        mis = c.get("mispredicts", 0)
        mrate = rate(mis, measured)
        rows.append({
            "site": site,
            "records": c.get("records", 0),
            "measured": measured,
            "mispredicts": mis,
            "mispredict_rate": mrate,
            "pred_over_meas": rate(c.get("predicted_units", 0),
                                   c.get("measured_units", 0)),
            "flagged": measured > 0 and mrate > threshold,
        })
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("stats", help="stats JSON document (GxB_Stats_json "
                                  "payload / GRB_STATS_JSON dump); - for "
                                  "stdin")
    ap.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                    help="flag decision sites whose mispredict rate "
                         "exceeds FRAC (default 0.25)")
    ap.add_argument("--json", action="store_true",
                    help="emit the joined report as JSON instead of text")
    args = ap.parse_args()

    try:
        if args.stats == "-":
            doc = json.load(sys.stdin)
        else:
            with open(args.stats, "r", encoding="utf-8") as f:
                doc = json.load(f)
    except (OSError, ValueError) as exc:
        print("grb_prof_report: cannot read %s: %s" % (args.stats, exc),
              file=sys.stderr)
        return 2

    prof = doc.get("prof", {})
    decisions = doc.get("decisions", {})
    if not prof and not decisions:
        print("grb_prof_report: %s has neither a \"prof\" nor a "
              "\"decisions\" block — is it a stats JSON document?"
              % args.stats, file=sys.stderr)
        return 2

    backend = prof.get("backend", "none")
    hw = backend == "perf"  # cycle/instruction columns are real
    kernels = kernel_rows(prof)
    sites = decision_rows(decisions, args.threshold)
    flagged = [s for s in sites if s["flagged"]]

    if args.json:
        json.dump({"backend": backend, "threshold": args.threshold,
                   "kernels": kernels, "decision_sites": sites,
                   "flagged": [s["site"] for s in flagged]},
                  sys.stdout, indent=2)
        print()
        return 1 if flagged else 0

    print("profiler backend: %s%s"
          % (backend, "" if hw else
             " (degraded: hardware counter columns unavailable)"))
    if kernels:
        print("\nper-kernel regions (sorted by CPU time):")
        print("  %-4s %-16s %-10s %8s %6s %9s %9s %10s"
              % ("ctx", "op", "strategy", "count", "IPC",
                 "cmiss/ki", "bmiss/ki", "cpu_ms"))
        for r in kernels:
            print("  %-4d %-16s %-10s %8d %6s %9s %9s %10.3f"
                  % (r["ctx"], r["op"], r["strategy"], r["count"],
                     "%.2f" % r["ipc"] if hw else "-",
                     fmt_count(r["cache_miss_per_ki"], 1) if hw else "-",
                     fmt_count(r["branch_miss_per_ki"], 1) if hw else "-",
                     r["cpu_ms"]))
    else:
        print("\nno profiled regions (enable with GRB_PROF=1)")

    if sites:
        print("\ndecision sites (mispredict threshold %.2f):"
              % args.threshold)
        print("  %-16s %8s %9s %11s %7s %10s"
              % ("site", "records", "measured", "mispredicts", "rate",
                 "pred/meas"))
        for s in sites:
            print("  %-16s %8d %9d %11d %6.1f%% %10s%s"
                  % (s["site"], s["records"], s["measured"],
                     s["mispredicts"], 100.0 * s["mispredict_rate"],
                     "%.2f" % s["pred_over_meas"]
                     if s["pred_over_meas"] else "-",
                     "  <-- FLAGGED" if s["flagged"] else ""))
    else:
        print("\nno decision counters (enable with GxB_Stats_enable or "
              "GRB_DECISIONS=1)")

    if flagged:
        print("\nFLAGGED: %d site(s) above the mispredict threshold: %s"
              % (len(flagged), ", ".join(s["site"] for s in flagged)))
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # report | head must not traceback
        sys.exit(0)
