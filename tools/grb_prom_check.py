#!/usr/bin/env python3
"""Validate a GraphBLAS Prometheus exposition (GRB_METRICS / GxB_Stats_prometheus).

A tiny text-format (version 0.0.4) parser: every non-comment line must be

    metric_name{label="value",...} <number>

with metric and label names matching the Prometheus charset, and every
metric must be introduced by # HELP / # TYPE comments.  On top of the
syntax, the GraphBLAS exposition contract is enforced:

  * per-op latency summaries carry quantile="0.5" and quantile="0.99"
    series (plus _sum/_count), so p50/p99 are always scrapeable;
  * the memory gauges grb_memory_live_bytes / grb_memory_peak_bytes are
    present — the attribution layer is always on;
  * label values use only the text-format escapes (\\, \", \n);
  * no family is introduced by two # TYPE lines (a scraper keeps one and
    silently drops the other exposition);
  * no two samples of one metric share an identical label set (the later
    sample would overwrite the earlier in the scrape);
  * with --require-contexts N, the per-op series must carry at least N
    distinct context="..." tenant labels.

Usage: grb_prom_check.py metrics.prom [--require-op NAME]
                                      [--require-contexts N]
Exit status: 0 when valid, 1 on any violation, 2 on usage error.
Pure stdlib; no dependencies.
"""

import argparse
import re
import sys

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')
LINE_RE = re.compile(
    r"^(%s)(?:\{([^}]*)\})?\s+(-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    r"|[+-]?Inf|NaN))$" % NAME_RE)

REQUIRED_GAUGES = ("grb_memory_live_bytes", "grb_memory_peak_bytes")
REQUIRED_QUANTILES = ("0.5", "0.99")
# The only escapes the text format (version 0.0.4) defines inside a
# quoted label value.
BAD_ESCAPE_RE = re.compile(r"\\(?![\\\"n])")


def parse(path):
    """Return (samples, typed, errors).

    samples: list of (metric, {label: value}, float-ok) tuples;
    typed:   {metric_family: type} from # TYPE comments.
    """
    samples, typed, helped, errors = [], {}, set(), []
    seen = {}  # (metric, sorted label items) -> first line number
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) < 4:
                    errors.append("%d: malformed HELP line" % lineno)
                else:
                    helped.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "summary", "histogram",
                        "untyped"):
                    errors.append("%d: malformed TYPE line" % lineno)
                elif parts[2] in typed:
                    errors.append(
                        "%d: duplicate # TYPE for family %s"
                        % (lineno, parts[2]))
                else:
                    typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue  # other comments are legal
            m = LINE_RE.match(line)
            if not m:
                errors.append("%d: unparseable sample line: %s"
                              % (lineno, line[:80]))
                continue
            name, labelstr, _value = m.groups()
            labels = {}
            if labelstr:
                consumed = sum(len(lm.group(0))
                               for lm in LABEL_RE.finditer(labelstr))
                if consumed != len(labelstr):
                    errors.append("%d: malformed label set {%s}"
                                  % (lineno, labelstr))
                    continue
                labels = {lm.group(1): lm.group(2)
                          for lm in LABEL_RE.finditer(labelstr)}
                for lname, lvalue in labels.items():
                    if BAD_ESCAPE_RE.search(lvalue):
                        errors.append(
                            '%d: label %s="%s" uses an escape other '
                            "than \\\\, \\\", \\n" % (lineno, lname, lvalue))
            key = (name, tuple(sorted(labels.items())))
            if key in seen:
                errors.append(
                    "%d: duplicate sample %s{%s} (first at line %d)"
                    % (lineno, name,
                       ",".join("%s=%r" % kv
                                for kv in sorted(labels.items())),
                       seen[key]))
            else:
                seen[key] = lineno
            samples.append((name, labels))
            family = re.sub(r"_(sum|count|bucket)$", "", name)
            if family not in typed and name not in typed:
                errors.append("%d: sample %s has no preceding # TYPE"
                              % (lineno, name))
            if family not in helped and name not in helped:
                errors.append("%d: sample %s has no preceding # HELP"
                              % (lineno, name))
    return samples, typed, errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics", help="Prometheus text exposition file")
    ap.add_argument("--require-op", action="append", default=[],
                    metavar="NAME",
                    help="require latency quantiles for this GrB op "
                         "(repeatable)")
    ap.add_argument("--require-contexts", type=int, default=0, metavar="N",
                    help="require at least N distinct context=\"...\" "
                         "tenant labels on the per-op series")
    args = ap.parse_args()

    try:
        samples, typed, errors = parse(args.metrics)
    except OSError as exc:
        print("grb_prom_check: cannot read %s: %s" % (args.metrics, exc),
              file=sys.stderr)
        return 2

    names = {name for name, _ in samples}
    for gauge in REQUIRED_GAUGES:
        if gauge not in names:
            errors.append("required memory gauge %s is missing" % gauge)
        elif typed.get(gauge) != "gauge":
            errors.append("%s must be # TYPE gauge" % gauge)

    # Latency summaries: every op with a latency series must expose the
    # required quantiles plus _sum and _count.
    ops = {labels.get("op") for name, labels in samples
           if name == "grb_op_latency_ns" and "op" in labels}
    for op in sorted(ops | set(args.require_op)):
        got = {labels.get("quantile") for name, labels in samples
               if name == "grb_op_latency_ns" and labels.get("op") == op}
        for q in REQUIRED_QUANTILES:
            if q not in got:
                errors.append(
                    "grb_op_latency_ns{op=\"%s\"} lacks quantile=\"%s\""
                    % (op, q))
        for suffix in ("_sum", "_count"):
            if not any(name == "grb_op_latency_ns" + suffix
                       and labels.get("op") == op
                       for name, labels in samples):
                errors.append("grb_op_latency_ns%s{op=\"%s\"} is missing"
                              % (suffix, op))
    if typed.get("grb_op_latency_ns") not in (None, "summary"):
        errors.append("grb_op_latency_ns must be # TYPE summary")

    # Tenant attribution: count distinct context labels on the per-op
    # call counters (every attributed series carries one).
    contexts = {labels["context"] for name, labels in samples
                if name == "grb_op_calls_total" and "context" in labels}
    if args.require_contexts and len(contexts) < args.require_contexts:
        errors.append(
            "expected >= %d distinct context labels on the per-op "
            "series, found %d (%s)"
            % (args.require_contexts, len(contexts),
               ", ".join(sorted(contexts)) or "none"))

    for e in errors:
        print("grb_prom_check: %s" % e, file=sys.stderr)
    print("grb_prom_check: %d samples, %d families, %d op summaries, "
          "%d context(s), %d error(s)"
          % (len(samples), len(typed), len(ops), len(contexts),
             len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
