#!/usr/bin/env python3
"""Validate a GraphBLAS Prometheus exposition (GRB_METRICS / GxB_Stats_prometheus).

A tiny text-format (version 0.0.4) parser: every non-comment line must be

    metric_name{label="value",...} <number>

with metric and label names matching the Prometheus charset, and every
metric must be introduced by # HELP / # TYPE comments.  On top of the
syntax, the GraphBLAS exposition contract is enforced:

  * per-op latency summaries carry quantile="0.5" and quantile="0.99"
    series (plus _sum/_count), so p50/p99 are always scrapeable;
  * the memory gauges grb_memory_live_bytes / grb_memory_peak_bytes are
    present — the attribution layer is always on;
  * label values use only the text-format escapes (\\, \", \n);
  * no family is introduced by two # TYPE lines (a scraper keeps one and
    silently drops the other exposition);
  * no two samples of one metric share an identical label set (the later
    sample would overwrite the earlier in the scrape);
  * with --require-contexts N, the per-op series must carry at least N
    distinct context="..." tenant labels;
  * whenever the decision-audit families (grb_decision_*_total) appear,
    they carry every registered site label and the per-site invariant
    mispredicts <= measured <= records holds; --require-decisions makes
    their absence an error;
  * grb_prof_backend_info, when present, names a known profiler backend;
    --require-prof-backend NAME (or "any") makes its absence an error.

Usage: grb_prom_check.py metrics.prom [--require-op NAME]
                                      [--require-contexts N]
                                      [--require-decisions]
                                      [--require-prof-backend NAME]
Exit status: 0 when valid, 1 on any violation, 2 on usage error.
Pure stdlib; no dependencies.
"""

import argparse
import re
import sys

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(?:,|$)')
LINE_RE = re.compile(
    r"^(%s)(?:\{([^}]*)\})?\s+(-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    r"|[+-]?Inf|NaN))$" % NAME_RE)

REQUIRED_GAUGES = ("grb_memory_live_bytes", "grb_memory_peak_bytes")
REQUIRED_QUANTILES = ("0.5", "0.99")
# Decision-audit exposition contract: the three families move together
# and carry one series per registered site (obs/decision.hpp).
DECISION_FAMILIES = ("grb_decision_records_total",
                     "grb_decision_measured_total",
                     "grb_decision_mispredicts_total")
DECISION_SITES = ("exec_path", "spgemm_accum", "masked_dot",
                  "format_adapt", "transpose_cache", "fusion_plan")
PROF_BACKENDS = ("perf", "thread-cputime", "getrusage")
# The only escapes the text format (version 0.0.4) defines inside a
# quoted label value.
BAD_ESCAPE_RE = re.compile(r"\\(?![\\\"n])")


def parse(path):
    """Return (samples, typed, errors).

    samples: list of (metric, {label: value}, sample-value) tuples;
    typed:   {metric_family: type} from # TYPE comments.
    """
    samples, typed, helped, errors = [], {}, set(), []
    seen = {}  # (metric, sorted label items) -> first line number
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) < 4:
                    errors.append("%d: malformed HELP line" % lineno)
                else:
                    helped.add(parts[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "summary", "histogram",
                        "untyped"):
                    errors.append("%d: malformed TYPE line" % lineno)
                elif parts[2] in typed:
                    errors.append(
                        "%d: duplicate # TYPE for family %s"
                        % (lineno, parts[2]))
                else:
                    typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue  # other comments are legal
            m = LINE_RE.match(line)
            if not m:
                errors.append("%d: unparseable sample line: %s"
                              % (lineno, line[:80]))
                continue
            name, labelstr, value = m.groups()
            labels = {}
            if labelstr:
                consumed = sum(len(lm.group(0))
                               for lm in LABEL_RE.finditer(labelstr))
                if consumed != len(labelstr):
                    errors.append("%d: malformed label set {%s}"
                                  % (lineno, labelstr))
                    continue
                labels = {lm.group(1): lm.group(2)
                          for lm in LABEL_RE.finditer(labelstr)}
                for lname, lvalue in labels.items():
                    if BAD_ESCAPE_RE.search(lvalue):
                        errors.append(
                            '%d: label %s="%s" uses an escape other '
                            "than \\\\, \\\", \\n" % (lineno, lname, lvalue))
            key = (name, tuple(sorted(labels.items())))
            if key in seen:
                errors.append(
                    "%d: duplicate sample %s{%s} (first at line %d)"
                    % (lineno, name,
                       ",".join("%s=%r" % kv
                                for kv in sorted(labels.items())),
                       seen[key]))
            else:
                seen[key] = lineno
            samples.append((name, labels, float(value)))
            family = re.sub(r"_(sum|count|bucket)$", "", name)
            if family not in typed and name not in typed:
                errors.append("%d: sample %s has no preceding # TYPE"
                              % (lineno, name))
            if family not in helped and name not in helped:
                errors.append("%d: sample %s has no preceding # HELP"
                              % (lineno, name))
    return samples, typed, errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics", help="Prometheus text exposition file")
    ap.add_argument("--require-op", action="append", default=[],
                    metavar="NAME",
                    help="require latency quantiles for this GrB op "
                         "(repeatable)")
    ap.add_argument("--require-contexts", type=int, default=0, metavar="N",
                    help="require at least N distinct context=\"...\" "
                         "tenant labels on the per-op series")
    ap.add_argument("--require-decisions", action="store_true",
                    help="require the decision-audit counter families "
                         "to be present")
    ap.add_argument("--require-prof-backend", metavar="NAME", default=None,
                    help="require grb_prof_backend_info; NAME is a "
                         "backend (perf, thread-cputime, getrusage) or "
                         "\"any\"")
    args = ap.parse_args()

    try:
        samples, typed, errors = parse(args.metrics)
    except OSError as exc:
        print("grb_prom_check: cannot read %s: %s" % (args.metrics, exc),
              file=sys.stderr)
        return 2

    names = {name for name, _, _ in samples}
    for gauge in REQUIRED_GAUGES:
        if gauge not in names:
            errors.append("required memory gauge %s is missing" % gauge)
        elif typed.get(gauge) != "gauge":
            errors.append("%s must be # TYPE gauge" % gauge)

    # Latency summaries: every op with a latency series must expose the
    # required quantiles plus _sum and _count.
    ops = {labels.get("op") for name, labels, _ in samples
           if name == "grb_op_latency_ns" and "op" in labels}
    for op in sorted(ops | set(args.require_op)):
        got = {labels.get("quantile") for name, labels, _ in samples
               if name == "grb_op_latency_ns" and labels.get("op") == op}
        for q in REQUIRED_QUANTILES:
            if q not in got:
                errors.append(
                    "grb_op_latency_ns{op=\"%s\"} lacks quantile=\"%s\""
                    % (op, q))
        for suffix in ("_sum", "_count"):
            if not any(name == "grb_op_latency_ns" + suffix
                       and labels.get("op") == op
                       for name, labels, _ in samples):
                errors.append("grb_op_latency_ns%s{op=\"%s\"} is missing"
                              % (suffix, op))
    if typed.get("grb_op_latency_ns") not in (None, "summary"):
        errors.append("grb_op_latency_ns must be # TYPE summary")

    # Tenant attribution: count distinct context labels on the per-op
    # call counters (every attributed series carries one).
    contexts = {labels["context"] for name, labels, _ in samples
                if name == "grb_op_calls_total" and "context" in labels}
    if args.require_contexts and len(contexts) < args.require_contexts:
        errors.append(
            "expected >= %d distinct context labels on the per-op "
            "series, found %d (%s)"
            % (args.require_contexts, len(contexts),
               ", ".join(sorted(contexts)) or "none"))

    # Decision audit: the three families move together — when any one
    # appears, every registered site must be present in all three, the
    # families must be counters, and the per-site invariant
    # mispredicts <= measured <= records must hold.
    decisions = {}  # site -> {family: value}
    for name, labels, value in samples:
        if name in DECISION_FAMILIES and "site" in labels:
            decisions.setdefault(labels["site"], {})[name] = value
    if args.require_decisions and not decisions:
        errors.append("decision-audit families (%s) are missing"
                      % ", ".join(DECISION_FAMILIES))
    if decisions:
        for fam in DECISION_FAMILIES:
            if typed.get(fam) not in (None, "counter"):
                errors.append("%s must be # TYPE counter" % fam)
        for site in DECISION_SITES:
            if site not in decisions:
                errors.append(
                    "decision families lack site=\"%s\" — the exposition "
                    "must enumerate every registered site" % site)
        for site in sorted(decisions):
            vals = decisions[site]
            missing = [f for f in DECISION_FAMILIES if f not in vals]
            if missing:
                errors.append(
                    "site \"%s\" is missing from %s — the decision "
                    "families must move together" % (site,
                                                     ", ".join(missing)))
                continue
            rec = vals["grb_decision_records_total"]
            mea = vals["grb_decision_measured_total"]
            mis = vals["grb_decision_mispredicts_total"]
            if not (mis <= mea <= rec):
                errors.append(
                    "site \"%s\" violates mispredicts <= measured <= "
                    "records (%g, %g, %g)" % (site, mis, mea, rec))

    # Profiler backend: at most one info series, naming a known backend.
    backends = {labels.get("backend", "") for name, labels, _ in samples
                if name == "grb_prof_backend_info"}
    for b in sorted(backends):
        if b not in PROF_BACKENDS:
            errors.append(
                "grb_prof_backend_info names unknown backend \"%s\" "
                "(expected one of %s)" % (b, ", ".join(PROF_BACKENDS)))
    if len(backends) > 1:
        errors.append("grb_prof_backend_info exposes %d backends; the "
                      "process has exactly one" % len(backends))
    if args.require_prof_backend:
        if not backends:
            errors.append("grb_prof_backend_info is missing "
                          "(--require-prof-backend)")
        elif (args.require_prof_backend != "any"
              and args.require_prof_backend not in backends):
            errors.append(
                "expected profiler backend \"%s\", exposition reports %s"
                % (args.require_prof_backend,
                   ", ".join("\"%s\"" % b for b in sorted(backends))))

    for e in errors:
        print("grb_prom_check: %s" % e, file=sys.stderr)
    print("grb_prom_check: %d samples, %d families, %d op summaries, "
          "%d context(s), %d error(s)"
          % (len(samples), len(typed), len(ops), len(contexts),
             len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
