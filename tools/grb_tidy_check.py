#!/usr/bin/env python3
"""grb_tidy_check: run clang-tidy and fail on NEW warnings only.

A bare `clang-tidy` stage is write-only CI: its output scrolls by, and
the warning count drifts up one "harmless" finding at a time.  This
wrapper makes the stage regression-proof with a checked-in per-check
baseline (tools/clang_tidy_baseline.json):

  * Every warning is aggregated per check name (`bugprone-foo`, ...).
  * A check whose count EXCEEDS its baseline fails the gate — someone
    added a new instance of a known-bad pattern.
  * A check below its baseline prints a notice asking for `--update`,
    so earned headroom is banked instead of silently re-spent.
  * A check absent from the baseline fails (new warning class).

The baseline starts in capture mode (`"counts": null`) when no
clang-tidy-capable machine has ratified it yet: the stage then runs
clang-tidy, reports, and asks for `--update` without failing, because a
number invented without running the tool would make the first real CI
run fail on day one.  `--update` (run on a machine with clang-tidy)
rewrites the baseline with the observed counts and flips the stage to
enforcing.

clang-tidy reads the checks list from .clang-tidy and the compilation
database from the build directory (CMAKE_EXPORT_COMPILE_COMMANDS is on
in the default preset).

Usage: grb_tidy_check.py [--build-dir DIR] [--baseline FILE] [--update]
Exit: 0 clean/skipped, 1 regression, 2 infrastructure error.
"""

import argparse
import collections
import json
import os
import re
import shutil
import subprocess
import sys

WARNING_RE = re.compile(r"warning:.*\[([\w.,-]+)\]\s*$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def tidy_sources(root):
    out = subprocess.run(
        ["git", "ls-files", "src/**/*.cpp"], cwd=root,
        capture_output=True, text=True)
    return [f for f in out.stdout.splitlines() if f]


def run_tidy(root, build_dir, files):
    """Returns {check-name: count} over all files."""
    counts = collections.Counter()
    proc = subprocess.run(
        ["clang-tidy", "-p", build_dir, "--quiet"] + files,
        cwd=root, capture_output=True, text=True)
    for line in proc.stdout.splitlines():
        m = WARNING_RE.search(line)
        if m:
            # A diagnostic can name several checks: count each.
            for check in m.group(1).split(","):
                counts[check.strip()] += 1
    return dict(counts)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=None,
                    help="compilation-database dir (default: <repo>/build)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: "
                         "tools/clang_tidy_baseline.json)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline with the observed counts")
    args = ap.parse_args(argv)

    root = repo_root()
    build_dir = args.build_dir or os.path.join(root, "build")
    baseline_path = args.baseline or os.path.join(
        root, "tools", "clang_tidy_baseline.json")

    if shutil.which("clang-tidy") is None:
        print("grb_tidy_check: SKIPPED: clang-tidy not found")
        return 0
    if not os.path.isfile(os.path.join(build_dir, "compile_commands.json")):
        print("grb_tidy_check: SKIPPED: no compile_commands.json in %s "
              "(configure with the default preset first)" % build_dir)
        return 0

    files = tidy_sources(root)
    if not files:
        print("grb_tidy_check: no library sources found", file=sys.stderr)
        return 2
    counts = run_tidy(root, build_dir, files)

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError:
        baseline = {"counts": None}
    base_counts = baseline.get("counts")

    if args.update:
        with open(baseline_path, "w") as f:
            json.dump({"comment": baseline.get("comment", []),
                       "counts": dict(sorted(counts.items()))}, f, indent=2)
            f.write("\n")
        print("grb_tidy_check: baseline updated: %d check(s), %d warning(s)"
              % (len(counts), sum(counts.values())))
        return 0

    total = sum(counts.values())
    if base_counts is None:
        print("grb_tidy_check: NOTICE: baseline is in capture mode; "
              "observed %d warning(s) across %d check(s).  Run "
              "`tools/grb_tidy_check.py --update` on this machine and "
              "commit the baseline to make this stage enforcing."
              % (total, len(counts)))
        for check, n in sorted(counts.items()):
            print("  %-48s %d" % (check, n))
        return 0

    failed = False
    for check, n in sorted(counts.items()):
        allowed = base_counts.get(check, 0)
        if n > allowed:
            print("grb_tidy_check: REGRESSION: %s: %d warning(s), "
                  "baseline allows %d" % (check, n, allowed))
            failed = True
        elif n < allowed:
            print("grb_tidy_check: NOTICE: %s improved (%d < baseline %d); "
                  "run --update to bank it" % (check, n, allowed))
    for check, allowed in sorted(base_counts.items()):
        if allowed > 0 and check not in counts:
            print("grb_tidy_check: NOTICE: %s fully fixed (baseline %d); "
                  "run --update to bank it" % (check, allowed))
    if failed:
        return 1
    print("grb_tidy_check: OK: %d warning(s), no check above baseline"
          % total)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
