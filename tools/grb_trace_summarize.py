#!/usr/bin/env python3
"""Summarize a GraphBLAS Chrome trace-event dump (GRB_TRACE / GxB_Trace_dump).

Reads the trace JSON and prints:
  * top-N spans by total and by self time (self = duration minus the
    durations of directly nested spans on the same thread), split by
    category ("api" = GrB_*/GxB_* entry points, "deferred" = deferred
    method executions during complete());
  * a histogram of the deferral gap (time between a method call and its
    deferred execution, the "gap_us" span argument) — the paper's
    nonblocking-mode latency made visible;
  * the enqueue->exec attribution table built from Chrome flow events:
    each deferred method carries a flow id emitted as an "s" record
    inside the enqueuing API span and a "t" record at the execution
    site, so chains (which entry point produced which deferred/fused
    work) are linked exactly, not guessed from names.  Chains rank by
    total execution self time.

Usage: grb_trace_summarize.py trace.json [--top N] [--json]

Exits nonzero if the file cannot be parsed or holds no span events, so
it doubles as a ctest check on the trace-producing pipeline.
Pure stdlib; no dependencies.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    """Return (events, dropped): span list and the dump's dropped count."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    dropped = doc.get("droppedEvents", 0) if isinstance(doc, dict) else 0
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    return events, dropped


def self_times(spans):
    """Self time per span: duration minus directly nested child durations.

    `spans` is a list of dicts with ts/dur (microseconds) on one thread.
    Chrome 'X' events on a thread nest properly by construction (they
    come from scoped RAII hooks), so a stack sweep suffices.
    """
    out = [s["dur"] for s in spans]
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i]["ts"], -spans[i]["dur"]))
    stack = []  # indices of currently open spans
    for i in order:
        s = spans[i]
        while stack and spans[stack[-1]]["ts"] + spans[stack[-1]]["dur"] <= s["ts"]:
            stack.pop()
        if stack:
            out[stack[-1]] -= s["dur"]
        stack.append(i)
    return out


def flow_chains(events, spans):
    """Link "s" (enqueue) flow records to their "t" (execution) ends.

    Each end binds to its enclosing 'X' span by (tid, ts) — the same
    rule the trace viewer uses to draw the arrow.  Returns
    ({(enqueue_op, exec_name): [count, gap_us, exec_self_us]},
     linked, unmatched); spans must already carry "_self" annotations.
    """
    starts, steps = {}, {}
    for e in events:
        if e.get("ph") == "s" and e.get("id") is not None:
            starts.setdefault(e["id"], e)
        elif e.get("ph") == "t" and e.get("id") is not None:
            steps.setdefault(e["id"], e)
    by_tid = defaultdict(list)
    for sp in spans:
        by_tid[sp.get("tid", 0)].append(sp)

    def enclosing(tid, ts):
        best = None
        for sp in by_tid.get(tid, ()):
            if sp["ts"] <= ts <= sp["ts"] + sp["dur"]:
                if best is None or sp["dur"] < best["dur"]:
                    best = sp
        return best

    chains = defaultdict(lambda: [0, 0.0, 0.0])
    linked = unmatched = 0
    for fid, s_ev in starts.items():
        t_ev = steps.get(fid)
        if t_ev is None:
            unmatched += 1
            continue
        linked += 1
        exec_span = enclosing(t_ev.get("tid", 0), t_ev["ts"])
        exec_name = exec_span["name"] if exec_span is not None \
            else t_ev.get("name", "?")
        row = chains[(s_ev.get("name", "?"), exec_name)]
        row[0] += 1
        row[1] += max(t_ev["ts"] - s_ev["ts"], 0.0)
        row[2] += exec_span.get("_self", 0.0) if exec_span is not None \
            else 0.0
    unmatched += sum(1 for fid in steps if fid not in starts)
    return chains, linked, unmatched


def fmt_us(us):
    if us >= 1e6:
        return "%.2fs" % (us / 1e6)
    if us >= 1e3:
        return "%.2fms" % (us / 1e3)
    return "%.1fus" % us


def print_table(title, rows, top):
    print("\n%s" % title)
    print("  %-44s %8s %12s %12s" % ("name", "count", "total", "mean"))
    for name, count, total in rows[:top]:
        print("  %-44s %8d %12s %12s"
              % (name[:44], count, fmt_us(total), fmt_us(total / count)))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--top", type=int, default=15, metavar="N",
                    help="rows per table (default 15)")
    ap.add_argument("--json", action="store_true",
                    help="emit the summary as JSON instead of tables")
    args = ap.parse_args()

    try:
        events, dropped = load_events(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        print("grb_trace_summarize: cannot read %s: %s" % (args.trace, exc),
              file=sys.stderr)
        return 2

    if dropped:
        print("=" * 64, file=sys.stderr)
        print("WARNING: %d span event(s) were DROPPED from this trace —"
              % dropped, file=sys.stderr)
        print("the span buffer overflowed while recording.  Totals below"
              " UNDERCOUNT the real workload.", file=sys.stderr)
        print("=" * 64, file=sys.stderr)

    spans = [e for e in events if e.get("ph") == "X"]
    counters = [e for e in events if e.get("ph") == "C"]
    if not spans:
        print("grb_trace_summarize: no span ('X') events in %s" % args.trace,
              file=sys.stderr)
        return 3

    bad = [e for e in spans
           if not isinstance(e.get("ts"), (int, float))
           or not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0]
    if bad:
        print("grb_trace_summarize: %d malformed span events" % len(bad),
              file=sys.stderr)
        return 4

    # Total and self time per (cat, name).
    total = defaultdict(lambda: [0, 0.0])   # name -> [count, total_us]
    self_tot = defaultdict(float)           # name -> self_us
    by_tid = defaultdict(list)
    for s in spans:
        key = (s.get("cat", "api"), s["name"])
        total[key][0] += 1
        total[key][1] += s["dur"]
        by_tid[s.get("tid", 0)].append(s)
    for tid_spans in by_tid.values():
        for s, self_us in zip(tid_spans, self_times(tid_spans)):
            self_tot[(s.get("cat", "api"), s["name"])] += self_us
            s["_self"] = self_us

    def table(cat, metric):
        rows = []
        for (c, name), (count, tot) in total.items():
            if c != cat:
                continue
            val = tot if metric == "total" else self_tot[(c, name)]
            rows.append((name, count, val))
        rows.sort(key=lambda r: -r[2])
        return rows

    # Deferral-gap histogram (log2 microsecond buckets).
    gaps = [e.get("args", {}).get("gap_us", 0)
            for e in spans if e.get("cat") == "deferred"]
    hist = defaultdict(int)
    for g in gaps:
        b = 0
        while (1 << (b + 1)) <= max(g, 1) and b < 24:
            b += 1
        hist[b] += 1

    # Enqueue->exec chains from the flow events.
    chains, flows_linked, flows_unmatched = flow_chains(events, spans)
    chain_rows = sorted(
        ((enq, ex, n, gap, self_us)
         for (enq, ex), (n, gap, self_us) in chains.items()),
        key=lambda r: -r[4])

    if args.json:
        out = {
            "spans": len(spans),
            "counters": len(counters),
            "dropped": dropped,
            "flows_linked": flows_linked,
            "flows_unmatched": flows_unmatched,
            "chains": [{"enqueue": enq, "exec": ex, "count": n,
                        "gap_us": gap, "exec_self_us": self_us}
                       for enq, ex, n, gap, self_us
                       in chain_rows[:args.top]],
            "api": [{"name": n, "count": c, "total_us": t}
                    for n, c, t in table("api", "total")[:args.top]],
            "api_self": [{"name": n, "count": c, "self_us": t}
                         for n, c, t in table("api", "self")[:args.top]],
            "deferred": [{"name": n, "count": c, "total_us": t}
                         for n, c, t in table("deferred", "total")[:args.top]],
            "gap_histogram_us": {str(1 << b): n
                                 for b, n in sorted(hist.items())},
        }
        print(json.dumps(out, indent=2))
        return 0

    print("%s: %d span events, %d counter samples, %d threads"
          % (args.trace, len(spans), len(counters), len(by_tid)))
    print_table("Top API spans by total time", table("api", "total"), args.top)
    print_table("Top API spans by self time", table("api", "self"), args.top)
    if any(c == "deferred" for c, _ in total):
        print_table("Deferred method executions",
                    table("deferred", "total"), args.top)
        print("\nDeferral gap (call -> deferred execution):")
        for b, n in sorted(hist.items()):
            lo, hi = 1 << b, 1 << (b + 1)
            bar = "#" * min(n, 60)
            print("  %8s-%-8s %6d %s" % (fmt_us(lo), fmt_us(hi), n, bar))
    if chain_rows:
        print("\nEnqueue -> exec chains (%d flow(s) linked, %d unmatched),"
              " by exec self time" % (flows_linked, flows_unmatched))
        print("  %-52s %6s %10s %10s"
              % ("enqueue op -> executed as", "count", "gap", "self"))
        for enq, ex, n, gap, self_us in chain_rows[:args.top]:
            label = "%s -> %s" % (enq, ex)
            print("  %-52s %6d %10s %10s"
                  % (label[:52], n, fmt_us(gap), fmt_us(self_us)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
