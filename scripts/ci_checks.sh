#!/usr/bin/env bash
# Pre-merge static-contract gate.  Run from the repo root:
#
#   scripts/ci_checks.sh
#
# Stages (in order; the final summary names each stage PASS/FAIL/SKIP so
# a failed stage is identifiable from the last lines of CI output):
#
#    1. grb_lint       — fast regex spec-conformance tier (pure Python)
#    2. grb_analyze    — AST/call-graph conformance tier: no-alloc-under-
#                        lock zones, barrier-before-read, fusion grant
#                        coverage, atomic memory-order explicitness,
#                        entry-point parity (libclang when available,
#                        self-contained text frontend otherwise)
#    3. build+ctest    — default preset, full tier-1 suite
#    4. format-ablate  — the differential suites rerun under each forced
#                        GRB_FORMAT=csr|hyper|bitmap|dense: every storage
#                        format must reproduce the CSR baseline bitwise
#                        (DESIGN.md §15)
#    5. telemetry      — obs-labeled tests: counter oracles plus the
#                        GRB_TRACE → grb_trace_summarize.py pipeline
#    6. observability  — quickstart under GRB_FLIGHT_RECORDER + GRB_METRICS;
#                        the Prometheus exposition must parse and carry the
#                        per-op quantiles + memory gauges (grb_prom_check.py)
#    7. attribution    — per-context tenant attribution: the watchdog
#                        suite (a synthetic stall must trip a flight-
#                        recorder dump naming the owning context) plus the
#                        multitenant_scrape example, whose exposition must
#                        carry two distinct context="..." label sets
#                        (grb_prom_check.py --require-contexts 2)
#    8. explain        — decision audit + profiler degradation: the
#                        explain_demo pipeline runs with perf events
#                        forced unavailable (GRB_PERF_EVENTS=0); the
#                        GxB_Explain output must carry a plan, the
#                        GRB_STATS_JSON dump must join cleanly in
#                        grb_prof_report.py, the exposition must carry
#                        the decision families and a degraded (non-perf)
#                        profiler backend (grb_prom_check.py
#                        --require-decisions --require-prof-backend),
#                        and the forced-fallback profiler test must pass
#    9. thread-safety  — Clang -Wthread-safety -Werror=thread-safety build
#                        (skipped when clang++ is absent; the annotations
#                        compile as no-ops elsewhere)
#   10. clang-tidy     — bugprone-*/concurrency-*/performance-* profile
#                        gated by the per-check warning-count baseline
#                        (tools/grb_tidy_check.py; skipped when clang-tidy
#                        is absent)
#   11. bench          — every bench binary runs from bench_artifacts/ so
#                        each BENCH_*.json is archived (previously only the
#                        m4/m5/m6 gate trio ran here and every other
#                        bench's JSON landed in whatever cwd it was run
#                        from and was lost).  The gate benches (m4/m5/m6/m7)
#                        run 3 repetitions; the rest run with a short
#                        min-time just to refresh their trajectories.
#                        tools/bench_compare.py diffs against
#                        bench_artifacts/baseline/ when present (advisory:
#                        shared boxes are noisy)
#   12. asan           — AddressSanitizer build + tsan-labeled tests
#                        (skipped unless GRB_CI_ASAN=1)
#   13. ubsan          — UndefinedBehaviorSanitizer build + tsan-labeled
#                        tests (skipped unless GRB_CI_UBSAN=1)
#   14. tsan           — ThreadSanitizer build + tsan-labeled tests
#                        (skipped unless GRB_CI_TSAN=1; the slowest stage,
#                        and the tsan preset also runs in its own lane)
#
# Any stage that runs and fails fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
failed=0

stage_names=()
stage_results=()

note() { printf '\n== stage %s ==\n' "$*"; }

# record <name> <status>  where status is PASS, FAIL, or SKIP
record() {
  stage_names+=("$1")
  stage_results+=("$2")
  if [ "$2" = FAIL ]; then failed=1; fi
}

note "1/14 grb_lint (regex spec conformance)"
if python3 tools/grb_lint.py --json grb_lint_report.json; then
  record grb_lint PASS
else
  record grb_lint FAIL
fi

note "2/14 grb_analyze (AST/call-graph conformance)"
if python3 tools/grb_analyze.py --json grb_analyze_report.json; then
  record grb_analyze PASS
else
  record grb_analyze FAIL
fi

note "3/14 default build + tests"
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"
if (cd build && ctest --output-on-failure -j "$JOBS"); then
  record build+ctest PASS
else
  record build+ctest FAIL
fi

note "4/14 format ablation (differential suites under each GRB_FORMAT)"
# Every forced storage format must reproduce the CSR baseline bitwise.
# The differential suites build their own inputs, so the env override
# genuinely changes what the publishes store.
ablate_ok=1
for fmt in csr hyper bitmap dense; do
  echo "-- GRB_FORMAT=$fmt"
  GRB_FORMAT=$fmt ./build/tests/grb_parallel_tests \
      --gtest_filter='DiffOracle.*:SpgemmDiff.*:FusionDiff.*:FormatDiff.*:DescTranspose.*' \
      --gtest_brief=1 || ablate_ok=0
done
if [ "$ablate_ok" = 1 ]; then record format-ablate PASS; else record format-ablate FAIL; fi

note "5/14 telemetry (obs-labeled tests: counters + trace pipeline)"
if (cd build && ctest -L obs --output-on-failure); then
  record telemetry PASS
else
  record telemetry FAIL
fi

note "6/14 observability (flight recorder + GRB_METRICS exposition)"
obs_ok=1
obs_dir=$(mktemp -d)
GRB_FLIGHT_RECORDER=1024 GRB_METRICS="$obs_dir/metrics.prom" \
  ./build/examples/quickstart >/dev/null || obs_ok=0
if [ -s "$obs_dir/metrics.prom" ]; then
  python3 tools/grb_prom_check.py "$obs_dir/metrics.prom" \
      --require-op GrB_mxm || obs_ok=0
else
  echo "FAILED: GRB_METRICS produced no exposition at $obs_dir/metrics.prom"
  obs_ok=0
fi
rm -rf "$obs_dir"
if [ "$obs_ok" = 1 ]; then record observability PASS; else record observability FAIL; fi

note "7/14 attribution (watchdog stall report + two-tenant scrape)"
attr_ok=1
# Synthetic stalls must trip the watchdog and name the owning context.
(cd build && ctest -R WatchdogTest --output-on-failure) || attr_ok=0
# Two concurrent tenants must surface as distinct context="..." labels.
attr_dir=$(mktemp -d)
GRB_METRICS="$attr_dir/metrics.prom" \
  ./build/examples/multitenant_scrape >/dev/null || attr_ok=0
if [ -s "$attr_dir/metrics.prom" ]; then
  python3 tools/grb_prom_check.py "$attr_dir/metrics.prom" \
      --require-op GrB_mxm --require-contexts 2 || attr_ok=0
else
  echo "FAILED: multitenant_scrape produced no exposition at" \
       "$attr_dir/metrics.prom"
  attr_ok=0
fi
rm -rf "$attr_dir"
if [ "$attr_ok" = 1 ]; then record attribution PASS; else record attribution FAIL; fi

note "8/14 explain (decision audit + profiler forced degradation)"
# GRB_PERF_EVENTS=0 models a locked-down box (perf_event_open denied):
# the profiler must come up on the CPU-time fallback, the decision
# audit must still explain the plan, and every downstream consumer —
# the stats-JSON join, the Prometheus exposition — must hold together.
exp_ok=1
exp_dir=$(mktemp -d)
GRB_PERF_EVENTS=0 GRB_PROF=1 \
  GRB_STATS_JSON="$exp_dir/stats.json" GRB_METRICS="$exp_dir/metrics.prom" \
  ./build/examples/explain_demo >"$exp_dir/explain.txt" || exp_ok=0
if ! grep -q "decision audit:" "$exp_dir/explain.txt"; then
  echo "FAILED: explain_demo produced no plan:"
  cat "$exp_dir/explain.txt"
  exp_ok=0
fi
python3 tools/grb_prof_report.py "$exp_dir/stats.json" || exp_ok=0
python3 tools/grb_prom_check.py "$exp_dir/metrics.prom" \
    --require-decisions --require-prof-backend any || exp_ok=0
if grep -q 'grb_prof_backend_info{backend="perf"}' "$exp_dir/metrics.prom"
then
  echo "FAILED: GRB_PERF_EVENTS=0 did not force the profiler off perf"
  exp_ok=0
fi
# The forced-fallback unit tests under the same denial.
GRB_PERF_EVENTS=0 ./build/tests/grb_obs_tests \
    --gtest_filter='ProfFallbackTest.*:ExplainTest.*' --gtest_brief=1 \
    || exp_ok=0
rm -rf "$exp_dir"
if [ "$exp_ok" = 1 ]; then record explain PASS; else record explain FAIL; fi

note "9/14 thread-safety analysis (clang)"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DGRB_THREAD_SAFETY_ANALYSIS=ON >/dev/null
  if cmake --build build-tsa -j "$JOBS"; then
    record thread-safety PASS
  else
    record thread-safety FAIL
  fi
else
  echo "SKIPPED: clang++ not found; capability annotations are no-ops" \
       "under this toolchain"
  record thread-safety SKIP
fi

note "10/14 clang-tidy (bugprone/concurrency/performance vs baseline)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The default preset exports compile_commands.json; grb_tidy_check
  # fails only on warnings above the checked-in per-check baseline.
  if python3 tools/grb_tidy_check.py --build-dir build; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  echo "SKIPPED: clang-tidy not found"
  record clang-tidy SKIP
fi

note "11/14 benchmarks (all benches, BENCH_*.json archived)"
bench_ok=1
cmake --build build -j "$JOBS"
mkdir -p bench_artifacts
# Gate benches: 3 repetitions, medians only — these are the trajectories
# bench_compare.py holds against the baseline.
gate_benches="bench_m4_masked_mxm bench_m5_spgemm_adaptive bench_m6_fusion \
bench_m7_formats"
for bench in $gate_benches; do
  (cd bench_artifacts && \
   "../build/bench/$bench" --benchmark_repetitions=3 \
       --benchmark_report_aggregates_only=true \
       >/dev/null) || bench_ok=0
done
# Everything else: one short pass, purely so every bench's BENCH_*.json
# lands in bench_artifacts/ instead of being scattered (or never written)
# — each binary dumps its JSON into whatever cwd it runs from.
for exe in build/bench/bench_*; do
  [ -x "$exe" ] || continue
  name=$(basename "$exe")
  case " $gate_benches " in *" $name "*) continue ;; esac
  (cd bench_artifacts && "../$exe" --benchmark_min_time=0.05 >/dev/null) \
    || bench_ok=0
done
echo "archived: $(ls bench_artifacts/BENCH_*.json 2>/dev/null | tr '\n' ' ')"
if [ -d bench_artifacts/baseline ]; then
  # Advisory only: flag >10% median slowdowns against the stored
  # baseline without failing the gate (shared boxes are noisy).
  python3 tools/bench_compare.py bench_artifacts/baseline bench_artifacts \
    || echo "NOTICE: bench regressions above; gate not failed (advisory)"
else
  echo "no bench_artifacts/baseline/ — copy BENCH_*.json there to enable" \
       "regression comparison"
fi
if [ "$bench_ok" = 1 ]; then record bench PASS; else record bench FAIL; fi

# sanitizer_stage <name> <preset> <gate-env-name>
sanitizer_stage() {
  local name=$1 preset=$2 gate=$3
  if [ "${!gate:-0}" = "1" ]; then
    local ok=1
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j "$JOBS" || ok=0
    if [ "$ok" = 1 ]; then ctest --preset "$preset" || ok=0; fi
    if [ "$ok" = 1 ]; then record "$name" PASS; else record "$name" FAIL; fi
  else
    echo "SKIPPED: set $gate=1 to run the $name stage here"
    record "$name" SKIP
  fi
}

note "12/14 address sanitizer (tsan-labeled tests under asan)"
sanitizer_stage asan asan GRB_CI_ASAN

note "13/14 undefined-behavior sanitizer (tsan-labeled tests under ubsan)"
sanitizer_stage ubsan ubsan GRB_CI_UBSAN

note "14/14 thread sanitizer (tsan-labeled tests)"
sanitizer_stage tsan tsan GRB_CI_TSAN

printf '\n== summary ==\n'
for i in "${!stage_names[@]}"; do
  printf '  %-14s %s\n' "${stage_names[$i]}" "${stage_results[$i]}"
done
if [ "$failed" -ne 0 ]; then
  bad=""
  for i in "${!stage_names[@]}"; do
    if [ "${stage_results[$i]}" = FAIL ]; then bad="$bad ${stage_names[$i]}"; fi
  done
  printf 'FAILED:%s\n' "$bad"
  exit 1
fi
echo "OK: all executed stages passed"
