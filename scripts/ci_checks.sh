#!/usr/bin/env bash
# Pre-merge static-contract gate.  Run from the repo root:
#
#   scripts/ci_checks.sh
#
# Stages (in order):
#   1. grb_lint        — spec-conformance linter (pure Python, always runs)
#   2. build + ctest   — default preset, full tier-1 suite
#   3. telemetry       — obs-labeled tests: counter oracles plus the
#                        GRB_TRACE → grb_trace_summarize.py pipeline
#   4. observability   — quickstart under GRB_FLIGHT_RECORDER + GRB_METRICS;
#                        the Prometheus exposition must parse and carry the
#                        per-op quantiles + memory gauges (grb_prom_check.py)
#   5. thread-safety   — Clang -Wthread-safety -Werror=thread-safety build
#                        (skipped with a notice when clang++ is absent;
#                        the annotations compile as no-ops elsewhere)
#   6. clang-tidy      — bugprone-*/concurrency-*/performance-* profile
#                        (skipped with a notice when clang-tidy is absent)
#   7. bench           — bench_m4_masked_mxm + bench_m5_spgemm_adaptive
#                        + bench_m6_fusion,
#                        archiving BENCH_*.json under bench_artifacts/;
#                        when bench_artifacts/baseline/ holds a prior
#                        set, tools/bench_compare.py diffs against it
#                        (advisory: >10% regressions are reported but do
#                        not fail the gate — the box may be noisy)
#   8. tsan            — ThreadSanitizer build + tsan-labeled tests
#                        (skipped unless GRB_CI_TSAN=1; it is the slowest
#                        stage and the tsan preset also runs in its own lane)
#
# Any stage that runs and fails fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
failed=0

note() { printf '\n== %s ==\n' "$*"; }

note "grb_lint (spec conformance)"
python3 tools/grb_lint.py --json grb_lint_report.json || failed=1

note "default build + tests"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS") || failed=1

note "telemetry (obs-labeled tests: counters + trace pipeline)"
(cd build && ctest -L obs --output-on-failure) || failed=1

note "observability (flight recorder + GRB_METRICS Prometheus exposition)"
obs_dir=$(mktemp -d)
GRB_FLIGHT_RECORDER=1024 GRB_METRICS="$obs_dir/metrics.prom" \
  ./build/examples/quickstart >/dev/null || failed=1
if [ -s "$obs_dir/metrics.prom" ]; then
  python3 tools/grb_prom_check.py "$obs_dir/metrics.prom" \
      --require-op GrB_mxm || failed=1
else
  echo "FAILED: GRB_METRICS produced no exposition at $obs_dir/metrics.prom"
  failed=1
fi
rm -rf "$obs_dir"

note "thread-safety analysis (clang)"
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DGRB_THREAD_SAFETY_ANALYSIS=ON >/dev/null
  cmake --build build-tsa -j "$JOBS" || failed=1
else
  echo "SKIPPED: clang++ not found; capability annotations are no-ops" \
       "under this toolchain"
fi

note "clang-tidy (bugprone/concurrency/performance)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Library sources only; tests follow looser idioms.
  mapfile -t tidy_files < <(git ls-files 'src/**/*.cpp')
  clang-tidy -p build --quiet "${tidy_files[@]}" || failed=1
else
  echo "SKIPPED: clang-tidy not found"
fi

note "benchmarks (m4 masked mxm + m5 adaptive spgemm + m6 fusion)"
cmake --build build -j "$JOBS" \
      --target bench_m4_masked_mxm bench_m5_spgemm_adaptive bench_m6_fusion
mkdir -p bench_artifacts
for bench in bench_m4_masked_mxm bench_m5_spgemm_adaptive bench_m6_fusion; do
  (cd bench_artifacts && \
   "../build/bench/$bench" --benchmark_repetitions=3 \
       --benchmark_report_aggregates_only=true \
       >/dev/null) || failed=1
done
echo "archived: $(ls bench_artifacts/BENCH_*.json 2>/dev/null | tr '\n' ' ')"
if [ -d bench_artifacts/baseline ]; then
  # Advisory only: flag >10% median slowdowns against the stored
  # baseline without failing the gate (shared boxes are noisy).
  python3 tools/bench_compare.py bench_artifacts/baseline bench_artifacts \
    || echo "NOTICE: bench regressions above; gate not failed (advisory)"
else
  echo "no bench_artifacts/baseline/ — copy BENCH_*.json there to enable" \
       "regression comparison"
fi

note "thread sanitizer (tsan-labeled tests)"
if [ "${GRB_CI_TSAN:-0}" = "1" ]; then
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan || failed=1
else
  echo "SKIPPED: set GRB_CI_TSAN=1 to run the ThreadSanitizer stage here"
fi

if [ "$failed" -ne 0 ]; then
  note "FAILED"
  exit 1
fi
note "OK"
