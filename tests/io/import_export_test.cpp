// Import/export (paper §VII.A / Table III): per-format round-trips
// following the exportSize -> allocate -> export protocol, plus the
// format-definition details Table III pins down.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

struct FormatCase {
  const char* name;
  GrB_Format format;
};

class FormatSweep : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatSweep, MatrixRoundTrip) {
  GrB_Format fmt = GetParam().format;
  for (uint64_t seed : {1u, 2u, 3u}) {
    ref::Mat rm = testutil::random_mat(23, 17, 0.3, seed);
    GrB_Matrix a = testutil::make_matrix(rm);
    GrB_Index np, ni, nv;
    ASSERT_EQ(GrB_Matrix_exportSize(&np, &ni, &nv, fmt, a), GrB_SUCCESS);
    std::vector<GrB_Index> indptr(np), indices(ni);
    std::vector<double> values(nv);
    ASSERT_EQ(GrB_Matrix_export(indptr.data(), indices.data(),
                                values.data(), fmt, a),
              GrB_SUCCESS);
    GrB_Matrix back = nullptr;
    ASSERT_EQ(GrB_Matrix_import(&back, GrB_FP64, 23, 17, indptr.data(),
                                indices.data(), values.data(), np, ni, nv,
                                fmt),
              GrB_SUCCESS);
    if (fmt == GrB_DENSE_ROW_MATRIX || fmt == GrB_DENSE_COL_MATRIX) {
      // Dense round-trips materialize absent entries as 0.
      ref::Mat want(23, 17);
      for (GrB_Index i = 0; i < 23; ++i)
        for (GrB_Index j = 0; j < 17; ++j)
          want.at(i, j) = rm.at(i, j).value_or(0.0);
      EXPECT_MATRIX_EQ(back, want);
    } else {
      EXPECT_MATRIX_EQ(back, rm);
    }
    GrB_free(&a);
    GrB_free(&back);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMatrixFormats, FormatSweep,
    ::testing::Values(FormatCase{"CSR", GrB_CSR_MATRIX},
                      FormatCase{"CSC", GrB_CSC_MATRIX},
                      FormatCase{"COO", GrB_COO_MATRIX},
                      FormatCase{"DenseRow", GrB_DENSE_ROW_MATRIX},
                      FormatCase{"DenseCol", GrB_DENSE_COL_MATRIX}),
    [](const ::testing::TestParamInfo<FormatCase>& info) {
      return info.param.name;
    });

TEST(ImportExportTest, CsrLayoutIsExactlyTableIII) {
  // 2x3 matrix with entries (0,1)=5, (1,0)=7, (1,2)=9.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 2, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 5.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 7.0, 1, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 9.0, 1, 2), GrB_SUCCESS);
  GrB_Index indptr[3], indices[3];
  double values[3];
  ASSERT_EQ(GrB_Matrix_export(indptr, indices, values, GrB_CSR_MATRIX, a),
            GrB_SUCCESS);
  EXPECT_EQ(indptr[0], 0u);
  EXPECT_EQ(indptr[1], 1u);
  EXPECT_EQ(indptr[2], 3u);
  EXPECT_EQ(indices[0], 1u);  // column indices
  EXPECT_EQ(indices[1], 0u);
  EXPECT_EQ(indices[2], 2u);
  EXPECT_EQ(values[0], 5.0);
  EXPECT_EQ(values[1], 7.0);
  EXPECT_EQ(values[2], 9.0);
  GrB_free(&a);
}

TEST(ImportExportTest, CooUsesTableIIIParameterNaming) {
  // Table III (quirk followed verbatim): for GrB_COO_MATRIX `indptr`
  // holds COLUMN indices and `indices` holds ROW indices.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 4.0, 2, 1), GrB_SUCCESS);
  GrB_Index indptr[1], indices[1];
  double values[1];
  ASSERT_EQ(GrB_Matrix_export(indptr, indices, values, GrB_COO_MATRIX, a),
            GrB_SUCCESS);
  EXPECT_EQ(indices[0], 2u);  // row
  EXPECT_EQ(indptr[0], 1u);   // column
  EXPECT_EQ(values[0], 4.0);
  GrB_free(&a);
}

TEST(ImportExportTest, CsrImportSortsUnsortedRows) {
  // Table III: "elements of each row are not required to be sorted".
  GrB_Index indptr[] = {0, 3};
  GrB_Index indices[] = {2, 0, 1};
  double values[] = {20.0, 0.5, 1.5};
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_import(&a, GrB_FP64, 1, 3, indptr, indices, values,
                              2, 3, 3, GrB_CSR_MATRIX),
            GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 0.5);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 20.0);
  GrB_free(&a);
}

TEST(ImportExportTest, DenseLayouts) {
  // DENSE_ROW: (i,j) at i*ncols + j; DENSE_COL: (i,j) at i + j*nrows.
  double row_major[] = {1, 2, 3, 4, 5, 6};  // 2x3
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_import(&a, GrB_FP64, 2, 3, nullptr, nullptr,
                              row_major, 0, 0, 6, GrB_DENSE_ROW_MATRIX),
            GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 6.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);
  GrB_free(&a);
  ASSERT_EQ(GrB_Matrix_import(&a, GrB_FP64, 2, 3, nullptr, nullptr,
                              row_major, 0, 0, 6, GrB_DENSE_COL_MATRIX),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 6.0);  // col-major: (1,2) at 1 + 2*2 = 5
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 3.0);  // (0,1) at 0 + 1*2 = 2
  GrB_free(&a);
}

TEST(ImportExportTest, VectorSparseAndDense) {
  ref::Vec rv = testutil::random_vec(31, 0.4, 9);
  GrB_Vector v = testutil::make_vector(rv);
  for (GrB_Format fmt : {GrB_SPARSE_VECTOR, GrB_DENSE_VECTOR}) {
    GrB_Index ni, nv;
    ASSERT_EQ(GrB_Vector_exportSize(&ni, &nv, fmt, v), GrB_SUCCESS);
    std::vector<GrB_Index> indices(ni);
    std::vector<double> values(nv);
    ASSERT_EQ(GrB_Vector_export(indices.data(), values.data(), fmt, v),
              GrB_SUCCESS);
    GrB_Vector back = nullptr;
    ASSERT_EQ(GrB_Vector_import(&back, GrB_FP64, 31, indices.data(),
                                values.data(), ni, nv, fmt),
              GrB_SUCCESS);
    if (fmt == GrB_SPARSE_VECTOR) {
      EXPECT_VECTOR_EQ(back, rv);
    } else {
      ref::Vec want(31);
      for (GrB_Index i = 0; i < 31; ++i) want.at(i) = rv.at(i).value_or(0.0);
      EXPECT_VECTOR_EQ(back, want);
    }
    GrB_free(&back);
  }
  GrB_free(&v);
}

TEST(ImportExportTest, ExportHints) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  GrB_Format hint;
  ASSERT_EQ(GrB_Matrix_exportHint(&hint, a), GrB_SUCCESS);
  EXPECT_EQ(hint, GrB_CSR_MATRIX);
  GrB_free(&a);
  // Vector hint flips with density.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_exportHint(&hint, v), GrB_SUCCESS);
  EXPECT_EQ(hint, GrB_SPARSE_VECTOR);
  for (GrB_Index i = 0; i < 10; ++i)
    ASSERT_EQ(GrB_Vector_setElement(v, 1.0, i), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_exportHint(&hint, v), GrB_SUCCESS);
  EXPECT_EQ(hint, GrB_DENSE_VECTOR);
  GrB_free(&v);
}

TEST(ImportExportTest, ImportValidation) {
  GrB_Matrix a = nullptr;
  GrB_Index indptr[] = {0, 2, 1};  // non-monotone
  GrB_Index indices[] = {0, 1};
  double values[] = {1, 2};
  EXPECT_EQ(GrB_Matrix_import(&a, GrB_FP64, 2, 2, indptr, indices, values,
                              3, 2, 2, GrB_CSR_MATRIX),
            GrB_INVALID_VALUE);
  GrB_Index bad_col[] = {0, 9};
  GrB_Index ok_ptr[] = {0, 1, 2};
  EXPECT_EQ(GrB_Matrix_import(&a, GrB_FP64, 2, 2, ok_ptr, bad_col, values,
                              3, 2, 2, GrB_CSR_MATRIX),
            GrB_INVALID_INDEX);
  // Duplicate COO coordinates are rejected.
  GrB_Index rows2[] = {1, 1};
  GrB_Index cols2[] = {1, 1};
  EXPECT_EQ(GrB_Matrix_import(&a, GrB_FP64, 2, 2, cols2, rows2, values, 2,
                              2, 2, GrB_COO_MATRIX),
            GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_Matrix_import(nullptr, GrB_FP64, 2, 2, ok_ptr, indices,
                              values, 3, 2, 2, GrB_CSR_MATRIX),
            GrB_NULL_POINTER);
}

TEST(ImportExportTest, ImportCopiesTheArrays) {
  // The paper's import constructs a NEW object from user data; mutating
  // the user arrays afterwards must not affect the matrix.
  GrB_Index indptr[] = {0, 1};
  GrB_Index indices[] = {0};
  double values[] = {42.0};
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_import(&a, GrB_FP64, 1, 1, indptr, indices, values,
                              2, 1, 1, GrB_CSR_MATRIX),
            GrB_SUCCESS);
  values[0] = -1.0;
  indices[0] = 99;
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 42.0);
  GrB_free(&a);
}

}  // namespace
