// Serialize/deserialize (paper §VII.B): round-trips, the size protocol,
// UDT payloads, and corruption detection.
#include <gtest/gtest.h>

#include "io/mmio.hpp"
#include "tests/grb_test_util.hpp"

namespace {

TEST(SerializeTest, MatrixRoundTrip) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    ref::Mat rm = testutil::random_mat(19, 27, 0.25, seed);
    GrB_Matrix a = testutil::make_matrix(rm);
    GrB_Index size = 0;
    ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
    std::vector<char> buf(size);
    GrB_Index written = size;
    ASSERT_EQ(GrB_Matrix_serialize(buf.data(), &written, a), GrB_SUCCESS);
    EXPECT_EQ(written, size);
    GrB_Matrix back = nullptr;
    ASSERT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written),
              GrB_SUCCESS);
    EXPECT_MATRIX_EQ(back, rm);
    GrB_free(&a);
    GrB_free(&back);
  }
}

TEST(SerializeTest, VectorRoundTrip) {
  ref::Vec rv = testutil::random_vec(40, 0.3, 5);
  GrB_Vector v = testutil::make_vector(rv);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Vector_serializeSize(&size, v), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Vector_serialize(buf.data(), &written, v), GrB_SUCCESS);
  GrB_Vector back = nullptr;
  ASSERT_EQ(GrB_Vector_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(back, rv);
  GrB_free(&v);
  GrB_free(&back);
}

TEST(SerializeTest, EmptyContainers) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT32, 7, 3), GrB_SUCCESS);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Matrix_serialize(buf.data(), &written, a), GrB_SUCCESS);
  GrB_Matrix back = nullptr;
  ASSERT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_SUCCESS);
  GrB_Index nr, nc, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, back), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&nc, back), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, back), GrB_SUCCESS);
  EXPECT_EQ(nr, 7u);
  EXPECT_EQ(nc, 3u);
  EXPECT_EQ(nv, 0u);
  GrB_free(&a);
  GrB_free(&back);
}

TEST(SerializeTest, PreservesType) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT16, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, int16_t{-7}, 2), GrB_SUCCESS);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Vector_serializeSize(&size, v), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Vector_serialize(buf.data(), &written, v), GrB_SUCCESS);
  GrB_Vector back = nullptr;
  ASSERT_EQ(GrB_Vector_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_SUCCESS);
  EXPECT_EQ(back->type(), grb::TypeInt16());
  int16_t out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, back, 2), GrB_SUCCESS);
  EXPECT_EQ(out, -7);
  // Deserializing with a mismatched explicit type is a domain error.
  GrB_Vector wrong = nullptr;
  EXPECT_EQ(GrB_Vector_deserialize(&wrong, GrB_FP64, buf.data(), written),
            GrB_DOMAIN_MISMATCH);
  GrB_free(&v);
  GrB_free(&back);
}

TEST(SerializeTest, UdtRequiresCallerType) {
  struct Payload {
    double x;
    int32_t tag;
  };
  GrB_Type t = nullptr;
  ASSERT_EQ(GrB_Type_new(&t, sizeof(Payload)), GrB_SUCCESS);
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, t, 2, 2), GrB_SUCCESS);
  Payload p{2.5, 7};
  ASSERT_EQ(GrB_Matrix_setElement_UDT(a, &p, t, 1, 0), GrB_SUCCESS);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Matrix_serialize(buf.data(), &written, a), GrB_SUCCESS);
  // Without the type handle the payload is unreadable.
  GrB_Matrix back = nullptr;
  EXPECT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_NULL_POINTER);
  ASSERT_EQ(GrB_Matrix_deserialize(&back, t, buf.data(), written),
            GrB_SUCCESS);
  Payload out{0, 0};
  EXPECT_EQ(GrB_Matrix_extractElement_UDT(&out, t, back, 1, 0),
            GrB_SUCCESS);
  EXPECT_EQ(out.x, 2.5);
  EXPECT_EQ(out.tag, 7);
  GrB_free(&a);
  GrB_free(&back);
  GrB_free(&t);
}

TEST(SerializeTest, InsufficientBuffer) {
  ref::Mat rm = testutil::random_mat(10, 10, 0.5, 6);
  GrB_Matrix a = testutil::make_matrix(rm);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index too_small = size / 2;
  EXPECT_EQ(GrB_Matrix_serialize(buf.data(), &too_small, a),
            GrB_INSUFFICIENT_SPACE);
  GrB_free(&a);
}

TEST(SerializeTest, CorruptionIsDetected) {
  ref::Mat rm = testutil::random_mat(12, 12, 0.4, 7);
  GrB_Matrix a = testutil::make_matrix(rm);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Matrix_serialize(buf.data(), &written, a), GrB_SUCCESS);
  GrB_Matrix back = nullptr;
  // Flip a byte in the middle: checksum mismatch.
  buf[written / 2] ^= 0x5a;
  EXPECT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_INVALID_OBJECT);
  buf[written / 2] ^= 0x5a;
  // Truncation is also rejected.
  EXPECT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(),
                                   written - 9),
            GrB_INVALID_OBJECT);
  // A vector payload does not deserialize as a matrix.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index vsize = 0;
  ASSERT_EQ(GrB_Vector_serializeSize(&vsize, v), GrB_SUCCESS);
  std::vector<char> vbuf(vsize);
  GrB_Index vwritten = vsize;
  ASSERT_EQ(GrB_Vector_serialize(vbuf.data(), &vwritten, v), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, vbuf.data(), vwritten),
            GrB_INVALID_OBJECT);
  GrB_free(&a);
  GrB_free(&v);
}

TEST(SerializeTest, CompressionBeatsRawCsrOnClusteredIndices) {
  // The varint-delta format should use fewer bytes than the 8-byte-per-
  // index CSR export for a banded matrix — the substance behind the
  // paper's "can save space" claim (measured at scale in bench_m3).
  GrB_Matrix a = nullptr;
  const GrB_Index n = 256;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i)
    for (GrB_Index d = 0; d < 4 && i + d < n; ++d)
      ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, i, i + d), GrB_SUCCESS);
  GrB_Index ser_size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&ser_size, a), GrB_SUCCESS);
  GrB_Index np, ni, nv;
  ASSERT_EQ(GrB_Matrix_exportSize(&np, &ni, &nv, GrB_CSR_MATRIX, a),
            GrB_SUCCESS);
  GrB_Index csr_bytes = np * 8 + ni * 8 + nv * 8;
  EXPECT_LT(ser_size, csr_bytes);
  GrB_free(&a);
}

TEST(MmioTest, FileRoundTrip) {
  ref::Mat rm = testutil::random_mat(14, 14, 0.3, 8);
  GrB_Matrix a = testutil::make_matrix(rm);
  ASSERT_EQ(grb::write_matrix_market(a, "mmio_test_tmp.mtx"),
            grb::Info::kSuccess);
  GrB_Matrix back = nullptr;
  ASSERT_EQ(grb::read_matrix_market(&back, "mmio_test_tmp.mtx", nullptr),
            grb::Info::kSuccess);
  EXPECT_MATRIX_EQ(back, rm);
  GrB_free(&a);
  GrB_free(&back);
  std::remove("mmio_test_tmp.mtx");
}

TEST(MmioTest, RejectsGarbage) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(grb::read_matrix_market(&a, "/nonexistent/file.mtx", nullptr),
            grb::Info::kInvalidValue);
}

}  // namespace
