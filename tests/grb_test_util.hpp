// Shared test scaffolding: library lifecycle, conversions between
// GraphBLAS containers and the dense reference engine, comparisons, and
// deterministic random instance generation.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "tests/reference/dense_ref.hpp"
#include "util/prng.hpp"

namespace testutil {

// The library is initialized once per process in GrB_NONBLOCKING mode;
// tests that need blocking semantics home objects in a blocking context
// (mode is a per-context property).
class GrbEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override { ASSERT_EQ(GrB_finalize(), GrB_SUCCESS); }
};

// A per-process blocking context (never freed; GrB_finalize reclaims it).
inline GrB_Context blocking_context() {
  static GrB_Context ctx = [] {
    GrB_Context c = nullptr;
    EXPECT_EQ(GrB_Context_new(&c, GrB_BLOCKING, GrB_NULL, GrB_NULL),
              GrB_SUCCESS);
    return c;
  }();
  return ctx;
}

// ---- construction helpers ---------------------------------------------------

inline GrB_Matrix make_matrix(const ref::Mat& m,
                              GrB_Context ctx = GrB_NULL) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&a, GrB_FP64, m.nrows, m.ncols, ctx),
            GrB_SUCCESS);
  std::vector<GrB_Index> ri, ci;
  std::vector<double> vals;
  for (GrB_Index i = 0; i < m.nrows; ++i)
    for (GrB_Index j = 0; j < m.ncols; ++j)
      if (m.at(i, j)) {
        ri.push_back(i);
        ci.push_back(j);
        vals.push_back(*m.at(i, j));
      }
  EXPECT_EQ(GrB_Matrix_build(a, ri.data(), ci.data(), vals.data(),
                             ri.size(), GrB_NULL),
            GrB_SUCCESS);
  return a;
}

inline GrB_Vector make_vector(const ref::Vec& v,
                              GrB_Context ctx = GrB_NULL) {
  GrB_Vector u = nullptr;
  EXPECT_EQ(GrB_Vector_new(&u, GrB_FP64, v.n, ctx), GrB_SUCCESS);
  std::vector<GrB_Index> idx;
  std::vector<double> vals;
  for (GrB_Index i = 0; i < v.n; ++i)
    if (v.at(i)) {
      idx.push_back(i);
      vals.push_back(*v.at(i));
    }
  EXPECT_EQ(GrB_Vector_build(u, idx.data(), vals.data(), idx.size(),
                             GrB_NULL),
            GrB_SUCCESS);
  return u;
}

inline ref::Mat to_ref(GrB_Matrix a) {
  GrB_Index nr, nc, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&nc, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  std::vector<GrB_Index> ri(nv), ci(nv);
  std::vector<double> vals(nv);
  GrB_Index got = nv;
  EXPECT_EQ(
      GrB_Matrix_extractTuples(ri.data(), ci.data(), vals.data(), &got, a),
      GrB_SUCCESS);
  ref::Mat m(nr, nc);
  for (GrB_Index k = 0; k < got; ++k) m.at(ri[k], ci[k]) = vals[k];
  return m;
}

inline ref::Vec to_ref(GrB_Vector u) {
  GrB_Index n, nv;
  EXPECT_EQ(GrB_Vector_size(&n, u), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_nvals(&nv, u), GrB_SUCCESS);
  std::vector<GrB_Index> idx(nv);
  std::vector<double> vals(nv);
  GrB_Index got = nv;
  EXPECT_EQ(GrB_Vector_extractTuples(idx.data(), vals.data(), &got, u),
            GrB_SUCCESS);
  ref::Vec v(n);
  for (GrB_Index k = 0; k < got; ++k) v.at(idx[k]) = vals[k];
  return v;
}

// ---- comparisons -------------------------------------------------------------

inline ::testing::AssertionResult mats_equal(const ref::Mat& want,
                                             const ref::Mat& got) {
  if (want.nrows != got.nrows || want.ncols != got.ncols)
    return ::testing::AssertionFailure()
           << "shape " << got.nrows << "x" << got.ncols << " != "
           << want.nrows << "x" << want.ncols;
  for (GrB_Index i = 0; i < want.nrows; ++i) {
    for (GrB_Index j = 0; j < want.ncols; ++j) {
      const ref::Cell& w = want.at(i, j);
      const ref::Cell& g = got.at(i, j);
      if (w.has_value() != g.has_value())
        return ::testing::AssertionFailure()
               << "(" << i << "," << j << ") presence "
               << g.has_value() << " != " << w.has_value();
      if (w && *w != *g)
        return ::testing::AssertionFailure()
               << "(" << i << "," << j << ") " << *g << " != " << *w;
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult vecs_equal(const ref::Vec& want,
                                             const ref::Vec& got) {
  if (want.n != got.n)
    return ::testing::AssertionFailure()
           << "size " << got.n << " != " << want.n;
  for (GrB_Index i = 0; i < want.n; ++i) {
    const ref::Cell& w = want.at(i);
    const ref::Cell& g = got.at(i);
    if (w.has_value() != g.has_value())
      return ::testing::AssertionFailure()
             << "(" << i << ") presence " << g.has_value()
             << " != " << w.has_value();
    if (w && *w != *g)
      return ::testing::AssertionFailure()
             << "(" << i << ") " << *g << " != " << *w;
  }
  return ::testing::AssertionSuccess();
}

#define EXPECT_MATRIX_EQ(grb_matrix, want) \
  EXPECT_TRUE(::testutil::mats_equal((want), ::testutil::to_ref(grb_matrix)))
#define EXPECT_VECTOR_EQ(grb_vector, want) \
  EXPECT_TRUE(::testutil::vecs_equal((want), ::testutil::to_ref(grb_vector)))

// ---- random instances ---------------------------------------------------------

// Random matrix with integer-valued doubles in [1, 9] (exact arithmetic
// under +,*,min,max regardless of evaluation order).
inline ref::Mat random_mat(GrB_Index nrows, GrB_Index ncols, double density,
                           uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nrows, ncols);
  for (auto& c : m.cells)
    if (rng.uniform() < density)
      c = static_cast<double>(1 + rng.below(9));
  return m;
}

inline ref::Vec random_vec(GrB_Index n, double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(n);
  for (auto& c : v.cells)
    if (rng.uniform() < density)
      c = static_cast<double>(1 + rng.below(9));
  return v;
}

// Common binary functions for the reference engine.
inline double fn_plus(double a, double b) { return a + b; }
inline double fn_times(double a, double b) { return a * b; }
inline double fn_min(double a, double b) { return a < b ? a : b; }
inline double fn_max(double a, double b) { return a > b ? a : b; }
inline double fn_first(double a, double) { return a; }
inline double fn_second(double, double b) { return b; }
inline double fn_minus(double a, double b) { return a - b; }

}  // namespace testutil
