// The masked dot-product mxm strategy must be indistinguishable from the
// Gustavson path for every structural-mask multiply.
#include <gtest/gtest.h>

#include "ops/mxm.hpp"
#include "tests/grb_test_util.hpp"
#include "util/generator.hpp"

namespace {

struct StrategyGuard {
  explicit StrategyGuard(grb::MxmStrategy s) { grb::set_mxm_strategy(s); }
  ~StrategyGuard() { grb::set_mxm_strategy(grb::MxmStrategy::kAuto); }
};

ref::Mat run_masked_mxm(const ref::Mat& ra, const ref::Mat& rb,
                        const ref::Mat& rm, GrB_Semiring ring,
                        GrB_Descriptor desc, grb::MxmStrategy strategy) {
  StrategyGuard guard(strategy);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix m = testutil::make_matrix(rm);
  GrB_Matrix c = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&c, GrB_FP64, ra.nrows,
                           desc == GrB_DESC_ST1 ? rb.nrows : rb.ncols),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, m, GrB_NULL, ring, a, b, desc), GrB_SUCCESS);
  ref::Mat out = testutil::to_ref(c);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
  GrB_free(&m);
  return out;
}

TEST(MaskedMxmTest, DotMatchesGustavsonRandom) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ref::Mat ra = testutil::random_mat(18, 18, 0.25, seed * 3 + 1);
    ref::Mat rb = testutil::random_mat(18, 18, 0.25, seed * 3 + 2);
    ref::Mat rm = testutil::random_mat(18, 18, 0.15, seed * 3 + 3);
    for (GrB_Semiring ring :
         {GrB_PLUS_TIMES_SEMIRING_FP64, GrB_MIN_PLUS_SEMIRING_FP64}) {
      ref::Mat dot = run_masked_mxm(ra, rb, rm, ring, GrB_DESC_S,
                                    grb::MxmStrategy::kMaskedDot);
      ref::Mat gus = run_masked_mxm(ra, rb, rm, ring, GrB_DESC_S,
                                    grb::MxmStrategy::kGustavson);
      EXPECT_TRUE(testutil::mats_equal(gus, dot)) << "seed " << seed;
    }
  }
}

TEST(MaskedMxmTest, DotMatchesOnTrianglePattern) {
  // The C<L,struct> = L * L' shape triangle counting uses.
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix g = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&g, 7, 4, params, nullptr),
            grb::Info::kSuccess);
  GrB_Index n;
  ASSERT_EQ(GrB_Matrix_nrows(&n, g), GrB_SUCCESS);
  GrB_Matrix l = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&l, GrB_FP64, n, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_select(l, GrB_NULL, GrB_NULL, GrB_TRIL, g, int64_t{-1},
                       GrB_NULL),
            GrB_SUCCESS);
  ref::Mat rl = testutil::to_ref(l);
  ref::Mat dot = run_masked_mxm(rl, rl, rl, GrB_PLUS_TIMES_SEMIRING_FP64,
                                GrB_DESC_ST1, grb::MxmStrategy::kMaskedDot);
  ref::Mat gus = run_masked_mxm(rl, rl, rl, GrB_PLUS_TIMES_SEMIRING_FP64,
                                GrB_DESC_ST1, grb::MxmStrategy::kGustavson);
  EXPECT_TRUE(testutil::mats_equal(gus, dot));
  GrB_free(&g);
  GrB_free(&l);
}

TEST(MaskedMxmTest, AutoStrategyIsCorrectEitherWay) {
  // Whatever Auto picks must match the reference oracle.
  ref::Mat ra = testutil::random_mat(15, 15, 0.3, 41);
  ref::Mat rb = testutil::random_mat(15, 15, 0.3, 42);
  ref::Mat rm = testutil::random_mat(15, 15, 0.08, 43);  // sparse mask
  ref::Mat got = run_masked_mxm(ra, rb, rm, GrB_PLUS_TIMES_SEMIRING_FP64,
                                GrB_DESC_S, grb::MxmStrategy::kAuto);
  ref::Mat t = ref::mxm(ra, rb, testutil::fn_plus, testutil::fn_times);
  ref::Spec spec;
  spec.have_mask = true;
  spec.structure = true;
  ref::Mat c_empty(15, 15);
  ref::Mat want = ref::writeback(c_empty, t, &rm, spec);
  EXPECT_TRUE(testutil::mats_equal(want, got));
}

TEST(MaskedMxmTest, DotPathHonorsUserDefinedSemiring) {
  // The generic (function-pointer) masked-dot kernel path.
  GrB_BinaryOp plus = nullptr, times = nullptr;
  auto plus_fn = [](void* z, const void* x, const void* y) {
    double a, b;
    std::memcpy(&a, x, 8);
    std::memcpy(&b, y, 8);
    double r = a + b;
    std::memcpy(z, &r, 8);
  };
  auto times_fn = [](void* z, const void* x, const void* y) {
    double a, b;
    std::memcpy(&a, x, 8);
    std::memcpy(&b, y, 8);
    double r = a * b;
    std::memcpy(z, &r, 8);
  };
  ASSERT_EQ(GrB_BinaryOp_new(&plus, plus_fn, GrB_FP64, GrB_FP64, GrB_FP64),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_BinaryOp_new(&times, times_fn, GrB_FP64, GrB_FP64,
                             GrB_FP64),
            GrB_SUCCESS);
  GrB_Monoid add = nullptr;
  ASSERT_EQ(GrB_Monoid_new(&add, plus, 0.0), GrB_SUCCESS);
  GrB_Semiring ring = nullptr;
  ASSERT_EQ(GrB_Semiring_new(&ring, add, times), GrB_SUCCESS);

  ref::Mat ra = testutil::random_mat(12, 12, 0.3, 51);
  ref::Mat rb = testutil::random_mat(12, 12, 0.3, 52);
  ref::Mat rm = testutil::random_mat(12, 12, 0.2, 53);
  ref::Mat dot = run_masked_mxm(ra, rb, rm, ring, GrB_DESC_S,
                                grb::MxmStrategy::kMaskedDot);
  ref::Mat gus = run_masked_mxm(ra, rb, rm, ring, GrB_DESC_S,
                                grb::MxmStrategy::kGustavson);
  EXPECT_TRUE(testutil::mats_equal(gus, dot));
  GrB_free(&ring);
  GrB_free(&add);
  GrB_free(&plus);
  GrB_free(&times);
}

TEST(MaskedMxmTest, ValueMaskNeverUsesDotPath) {
  // A VALUE mask (no GrB_DESC_S) must not take the structural-dot path:
  // falsy mask entries would otherwise be computed.  Force kMaskedDot and
  // check results still honor the value mask (the dispatch condition
  // requires structure, so the force is ignored).
  StrategyGuard guard(grb::MxmStrategy::kMaskedDot);
  ref::Mat ra = testutil::random_mat(10, 10, 0.4, 61);
  ref::Mat rb = testutil::random_mat(10, 10, 0.4, 62);
  ref::Mat rm(10, 10);
  for (GrB_Index i = 0; i < 10; ++i)
    for (GrB_Index j = 0; j < 10; ++j)
      rm.at(i, j) = (i + j) % 3 == 0 ? 0.0 : 1.0;  // falsy entries present
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix m = testutil::make_matrix(rm);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 10, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, m, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, b,
                    GrB_NULL),
            GrB_SUCCESS);
  ref::Mat t = ref::mxm(ra, rb, testutil::fn_plus, testutil::fn_times);
  ref::Spec spec;
  spec.have_mask = true;  // value mask
  ref::Mat c_empty(10, 10);
  EXPECT_MATRIX_EQ(c, ref::writeback(c_empty, t, &rm, spec));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
  GrB_free(&m);
}

}  // namespace
