// GrB_extract and GrB_assign in all their variants, against the dense
// reference.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_plus;

TEST(ExtractTest, VectorSubset) {
  ref::Vec ru = testutil::random_vec(20, 0.6, 1);
  GrB_Vector u = testutil::make_vector(ru);
  std::vector<GrB_Index> idx = {3, 17, 0, 3, 9};  // repeats + unsorted
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, idx.size()), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(w, GrB_NULL, GrB_NULL, u, idx.data(), idx.size(),
                        GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::extract(ru, idx));
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ExtractTest, VectorAll) {
  ref::Vec ru = testutil::random_vec(12, 0.5, 2);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 12), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(w, GrB_NULL, GrB_NULL, u, GrB_ALL, 0, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ru);
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ExtractTest, MatrixSubmatrix) {
  ref::Mat ra = testutil::random_mat(10, 12, 0.5, 3);
  GrB_Matrix a = testutil::make_matrix(ra);
  std::vector<GrB_Index> rows = {7, 2, 2, 9};
  std::vector<GrB_Index> cols = {0, 11, 5};
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, rows.size(), cols.size()),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(c, GrB_NULL, GrB_NULL, a, rows.data(), rows.size(),
                        cols.data(), cols.size(), GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::extract(ra, rows, cols));
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ExtractTest, MatrixAllAndTransposed) {
  ref::Mat ra = testutil::random_mat(8, 6, 0.5, 4);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(c, GrB_NULL, GrB_NULL, a, GrB_ALL, 0, GrB_ALL, 0,
                        GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ra);
  GrB_free(&c);
  // Transposed extract: C = A'(I, J).
  std::vector<GrB_Index> rows = {5, 0};  // indices into A' rows (A cols)
  std::vector<GrB_Index> cols = {1, 7};
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 2, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(c, GrB_NULL, GrB_NULL, a, rows.data(), 2,
                        cols.data(), 2, GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::extract(ref::transpose(ra), rows, cols));
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ExtractTest, ColumnExtract) {
  ref::Mat ra = testutil::random_mat(9, 7, 0.6, 5);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(w, GrB_NULL, GrB_NULL, a, GrB_ALL, 0, 3, GrB_NULL),
            GrB_SUCCESS);
  ref::Vec want(9);
  for (GrB_Index i = 0; i < 9; ++i) want.at(i) = ra.at(i, 3);
  EXPECT_VECTOR_EQ(w, want);
  // Row extraction via T0: w = A(4, :).
  GrB_Vector r = nullptr;
  ASSERT_EQ(GrB_Vector_new(&r, GrB_FP64, 7), GrB_SUCCESS);
  ASSERT_EQ(GrB_extract(r, GrB_NULL, GrB_NULL, a, GrB_ALL, 0, 4,
                        GrB_DESC_T0),
            GrB_SUCCESS);
  ref::Vec want_row(7);
  for (GrB_Index j = 0; j < 7; ++j) want_row.at(j) = ra.at(4, j);
  EXPECT_VECTOR_EQ(r, want_row);
  GrB_free(&a);
  GrB_free(&w);
  GrB_free(&r);
}

TEST(ExtractTest, OutOfRangeIndexIsApiError) {
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 2), GrB_SUCCESS);
  GrB_Index idx[] = {0, 7};
  EXPECT_EQ(GrB_extract(w, GrB_NULL, GrB_NULL, u, idx, 2, GrB_NULL),
            GrB_INVALID_INDEX);
  GrB_free(&u);
  GrB_free(&w);
}

// ---- assign -------------------------------------------------------------------

TEST(AssignTest, VectorBasic) {
  ref::Vec rw = testutil::random_vec(15, 0.4, 10);
  ref::Vec ru = testutil::random_vec(4, 0.9, 11);
  std::vector<GrB_Index> idx = {2, 7, 11, 14};
  GrB_Vector w = testutil::make_vector(rw);
  GrB_Vector u = testutil::make_vector(ru);
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, u, idx.data(), idx.size(),
                       GrB_NULL),
            GrB_SUCCESS);
  ref::Spec spec;
  EXPECT_VECTOR_EQ(w, ref::assign(rw, ru, idx, nullptr, spec));
  GrB_free(&w);
  GrB_free(&u);
}

TEST(AssignTest, VectorHolesDeleteWithoutAccum) {
  // A hole in the source deletes the target entry (no accum)...
  GrB_Vector w = nullptr, u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(w, 1.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(w, 2.0, 3), GrB_SUCCESS);
  GrB_Index idx[] = {1, 3};
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, u, idx, 2, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nv = 9;
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 0u);
  // ... but with an accumulator the old entries survive.
  ASSERT_EQ(GrB_Vector_setElement(w, 1.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_PLUS_FP64, u, idx, 2, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  GrB_free(&w);
  GrB_free(&u);
}

TEST(AssignTest, VectorMaskedReplaceSweep) {
  ref::Vec rw = testutil::random_vec(18, 0.5, 12);
  ref::Vec ru = testutil::random_vec(6, 0.7, 13);
  ref::Vec rm = testutil::random_vec(18, 0.5, 14);
  std::vector<GrB_Index> idx = {0, 3, 6, 9, 12, 15};
  struct Combo {
    GrB_Descriptor desc;
    bool structure, comp, replace;
    bool accum;
  };
  const Combo combos[] = {
      {GrB_NULL, false, false, false, false},
      {GrB_DESC_R, false, false, true, false},
      {GrB_DESC_S, true, false, false, true},
      {GrB_DESC_RC, false, true, true, false},
  };
  for (const Combo& cb : combos) {
    GrB_Vector w = testutil::make_vector(rw);
    GrB_Vector u = testutil::make_vector(ru);
    GrB_Vector m = testutil::make_vector(rm);
    ASSERT_EQ(GrB_assign(w, m, cb.accum ? GrB_PLUS_FP64 : GrB_NULL, u,
                         idx.data(), idx.size(), cb.desc),
              GrB_SUCCESS);
    ref::Spec spec;
    spec.have_mask = true;
    spec.structure = cb.structure;
    spec.comp = cb.comp;
    spec.replace = cb.replace;
    if (cb.accum) spec.accum = fn_plus;
    EXPECT_VECTOR_EQ(w, ref::assign(rw, ru, idx, &rm, spec));
    GrB_free(&w);
    GrB_free(&u);
    GrB_free(&m);
  }
}

TEST(AssignTest, MatrixGrid) {
  ref::Mat rc = testutil::random_mat(9, 9, 0.3, 20);
  ref::Mat ra = testutil::random_mat(3, 2, 0.8, 21);
  std::vector<GrB_Index> rows = {1, 4, 7};
  std::vector<GrB_Index> cols = {2, 5};
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Matrix a = testutil::make_matrix(ra);
  ASSERT_EQ(GrB_assign(c, GrB_NULL, GrB_NULL, a, rows.data(), rows.size(),
                       cols.data(), cols.size(), GrB_NULL),
            GrB_SUCCESS);
  ref::Spec spec;
  EXPECT_MATRIX_EQ(c, ref::assign(rc, ra, rows, cols, nullptr, spec));
  GrB_free(&c);
  GrB_free(&a);
}

TEST(AssignTest, MatrixAccumMasked) {
  ref::Mat rc = testutil::random_mat(8, 8, 0.4, 22);
  ref::Mat ra = testutil::random_mat(2, 3, 0.9, 23);
  ref::Mat rm = testutil::random_mat(8, 8, 0.5, 24);
  std::vector<GrB_Index> rows = {6, 1};
  std::vector<GrB_Index> cols = {0, 4, 7};
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix m = testutil::make_matrix(rm);
  ASSERT_EQ(GrB_assign(c, m, GrB_PLUS_FP64, a, rows.data(), rows.size(),
                       cols.data(), cols.size(), GrB_DESC_S),
            GrB_SUCCESS);
  ref::Spec spec;
  spec.have_mask = true;
  spec.structure = true;
  spec.accum = fn_plus;
  EXPECT_MATRIX_EQ(c, ref::assign(rc, ra, rows, cols, &rm, spec));
  GrB_free(&c);
  GrB_free(&a);
  GrB_free(&m);
}

TEST(AssignTest, ScalarToVectorRegion) {
  ref::Vec rw = testutil::random_vec(10, 0.4, 30);
  GrB_Vector w = testutil::make_vector(rw);
  GrB_Index idx[] = {1, 5, 8};
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, 7.5, idx, 3, GrB_NULL),
            GrB_SUCCESS);
  ref::Vec want = rw;
  for (GrB_Index i : {1, 5, 8}) want.at(i) = 7.5;
  EXPECT_VECTOR_EQ(w, want);
  // Scalar to ALL makes the vector dense.
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, 1.0, GrB_ALL, 0, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 10u);
  GrB_free(&w);
}

TEST(AssignTest, ScalarToMatrixRegionWithAccum) {
  ref::Mat rc = testutil::random_mat(6, 6, 0.5, 31);
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Index rows[] = {0, 3};
  GrB_Index cols[] = {1, 4};
  ASSERT_EQ(GrB_assign(c, GrB_NULL, GrB_PLUS_FP64, 10.0, rows, 2, cols, 2,
                       GrB_NULL),
            GrB_SUCCESS);
  ref::Mat want = rc;
  for (GrB_Index r : {0, 3})
    for (GrB_Index k : {1, 4})
      want.at(r, k) = want.at(r, k) ? *want.at(r, k) + 10.0 : 10.0;
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&c);
}

TEST(AssignTest, GrBScalarVariantAndEmptyDeletes) {
  // Table II GrB_Scalar-assign: a full scalar assigns its value; an
  // EMPTY scalar deletes the targeted entries.
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 6), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 6; ++i)
    ASSERT_EQ(GrB_Vector_setElement(w, double(i + 1), i), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 99.0), GrB_SUCCESS);
  GrB_Index idx[] = {0, 2};
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, s, idx, 2, GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 99.0);
  // Now with an empty scalar: deletes at the targeted indices.
  ASSERT_EQ(GrB_Scalar_clear(s), GrB_SUCCESS);
  ASSERT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, s, idx, 2, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 4u);
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_NO_VALUE);
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  GrB_free(&w);
  GrB_free(&s);
}

TEST(AssignTest, RowAndColAssign) {
  ref::Mat rc = testutil::random_mat(5, 7, 0.4, 40);
  ref::Vec ru = testutil::random_vec(7, 0.8, 41);
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Vector u = testutil::make_vector(ru);
  ASSERT_EQ(GrB_Row_assign(c, GrB_NULL, GrB_NULL, u, 2, GrB_ALL, 0,
                           GrB_NULL),
            GrB_SUCCESS);
  ref::Mat want = rc;
  for (GrB_Index j = 0; j < 7; ++j) want.at(2, j) = ru.at(j);
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&u);
  // Column assign.
  ref::Vec rv = testutil::random_vec(5, 0.8, 42);
  GrB_Vector v = testutil::make_vector(rv);
  ASSERT_EQ(GrB_Col_assign(c, GrB_NULL, GrB_NULL, v, GrB_ALL, 0, 3,
                           GrB_NULL),
            GrB_SUCCESS);
  for (GrB_Index i = 0; i < 5; ++i) want.at(i, 3) = rv.at(i);
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&c);
  GrB_free(&v);
}

TEST(AssignTest, DimensionErrors) {
  GrB_Vector w = nullptr, u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 3), GrB_SUCCESS);
  GrB_Index idx[] = {0, 1};  // wrong count vs u
  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, u, idx, 2, GrB_NULL),
            GrB_DIMENSION_MISMATCH);
  GrB_Index bad[] = {0, 1, 9};
  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, u, bad, 3, GrB_NULL),
            GrB_INVALID_INDEX);
  GrB_free(&w);
  GrB_free(&u);
}

}  // namespace
