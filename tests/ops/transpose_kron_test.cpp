// GrB_transpose and GrB_kronecker against the dense reference.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_plus;
using testutil::fn_times;

TEST(TransposeTest, Basic) {
  ref::Mat ra = testutil::random_mat(7, 11, 0.5, 1);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 11, 7), GrB_SUCCESS);
  ASSERT_EQ(GrB_transpose(c, GrB_NULL, GrB_NULL, a, GrB_NULL), GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::transpose(ra));
  GrB_free(&a);
  GrB_free(&c);
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  ref::Mat ra = testutil::random_mat(9, 9, 0.4, 2);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 9, 9), GrB_SUCCESS);
  // With GrB_DESC_T0 the transposes cancel: C = A.
  ASSERT_EQ(GrB_transpose(c, GrB_NULL, GrB_NULL, a, GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ra);
  GrB_free(&a);
  GrB_free(&c);
}

TEST(TransposeTest, MaskedAccum) {
  ref::Mat ra = testutil::random_mat(8, 8, 0.4, 3);
  ref::Mat rc = testutil::random_mat(8, 8, 0.3, 4);
  ref::Mat rm = testutil::random_mat(8, 8, 0.5, 5);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Matrix m = testutil::make_matrix(rm);
  ASSERT_EQ(GrB_transpose(c, m, GrB_PLUS_FP64, a, GrB_DESC_S),
            GrB_SUCCESS);
  ref::Spec spec;
  spec.have_mask = true;
  spec.structure = true;
  spec.accum = fn_plus;
  EXPECT_MATRIX_EQ(c, ref::writeback(rc, ref::transpose(ra), &rm, spec));
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&m);
}

TEST(TransposeTest, DimensionMismatch) {
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 3, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_transpose(c, GrB_NULL, GrB_NULL, a, GrB_NULL),
            GrB_DIMENSION_MISMATCH);
  GrB_free(&a);
  GrB_free(&c);
}

TEST(KroneckerTest, SmallExact) {
  // kron([[1,2],[0,3]], [[0,5],[6,0]]) has a closed form.
  ref::Mat ra(2, 2);
  ra.at(0, 0) = 1;
  ra.at(0, 1) = 2;
  ra.at(1, 1) = 3;
  ref::Mat rb(2, 2);
  rb.at(0, 1) = 5;
  rb.at(1, 0) = 6;
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(c, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::kronecker(ra, rb, fn_times));
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, c, 0, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 5.0);  // a00*b01
  EXPECT_EQ(GrB_Matrix_extractElement(&out, c, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 12.0);  // a01*b10
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(KroneckerTest, RandomRectangular) {
  ref::Mat ra = testutil::random_mat(3, 4, 0.6, 6);
  ref::Mat rb = testutil::random_mat(5, 2, 0.6, 7);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 15, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(c, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::kronecker(ra, rb, fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(KroneckerTest, TransposedInputs) {
  ref::Mat ra = testutil::random_mat(3, 4, 0.6, 8);
  ref::Mat rb = testutil::random_mat(2, 5, 0.6, 9);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  // C = kron(A', B'): (4*5) x (3*2)
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 20, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(c, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_DESC_T0T1),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(
      c, ref::kronecker(ref::transpose(ra), ref::transpose(rb), fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(KroneckerTest, SemiringAndMonoidVariantsUseMul) {
  ref::Mat ra = testutil::random_mat(2, 2, 1.0, 10);
  ref::Mat rb = testutil::random_mat(3, 3, 0.7, 11);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c1 = nullptr, c2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c1, GrB_FP64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c2, GrB_FP64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(c1, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, a, b, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(c2, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                          b, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c1, ref::kronecker(ra, rb, fn_times));
  EXPECT_MATRIX_EQ(c2, ref::kronecker(ra, rb, fn_plus));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c1);
  GrB_free(&c2);
}

}  // namespace
