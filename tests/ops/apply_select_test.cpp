// apply (unary / bound-binary / index-unary) and select (paper §VIII),
// including a faithful reconstruction of the paper's Figure 3 example.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_plus;

TEST(ApplyTest, UnaryVectorAndMatrix) {
  ref::Vec ru = testutil::random_vec(20, 0.5, 1);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 20), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::apply(ru, [](double x) { return -x; }));
  GrB_free(&u);
  GrB_free(&w);

  ref::Mat ra = testutil::random_mat(9, 9, 0.4, 2);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 9, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_MINV_FP64, a, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::apply(ra, [](double x) { return 1.0 / x; }));
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ApplyTest, UnaryTransposedMatrix) {
  ref::Mat ra = testutil::random_mat(6, 11, 0.5, 3);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 11, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, a,
                      GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::transpose(ra));
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ApplyTest, BindFirstAndSecond) {
  ref::Vec ru = testutil::random_vec(15, 0.6, 4);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 15), GrB_SUCCESS);
  // w = 100 - u  (bind-first on MINUS)
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_MINUS_FP64, 100.0, u,
                      GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::apply(ru, [](double x) { return 100.0 - x; }));
  // w = u - 1  (bind-second)
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_MINUS_FP64, u, 1.0,
                      GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::apply(ru, [](double x) { return x - 1.0; }));
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ApplyTest, BindOnMatrixWithGrBScalar) {
  ref::Mat ra = testutil::random_mat(7, 7, 0.5, 5);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 7, 7), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 3.0), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, s,
                      GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::apply(ra, [](double x) { return x * 3.0; }));
  // Empty scalar -> GrB_EMPTY_OBJECT (§VI uniform behaviour).
  ASSERT_EQ(GrB_Scalar_clear(s), GrB_SUCCESS);
  EXPECT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, s,
                      GrB_NULL),
            GrB_EMPTY_OBJECT);
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&s);
}

// ---- index-unary apply (§VIII.B) -------------------------------------------

TEST(ApplyIndexTest, RowIndexOnVector) {
  ref::Vec ru = testutil::random_vec(10, 0.5, 6);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_INT64, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, u,
                      int64_t{5}, GrB_NULL),
            GrB_SUCCESS);
  // Every stored entry's value becomes its index + 5.
  ref::Vec want(10);
  for (GrB_Index i = 0; i < 10; ++i)
    if (ru.at(i)) want.at(i) = double(i + 5);
  EXPECT_VECTOR_EQ(w, want);
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ApplyIndexTest, ColIndexReplacesEdgeDestinations) {
  // The paper's §VIII.B use case: replace edge weights with destination
  // vertex ids via COLINDEX.
  ref::Mat ra = testutil::random_mat(8, 8, 0.4, 7);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_INT64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_COLINDEX_INT64, a,
                      int64_t{0}, GrB_NULL),
            GrB_SUCCESS);
  ref::Mat want(8, 8);
  for (GrB_Index i = 0; i < 8; ++i)
    for (GrB_Index j = 0; j < 8; ++j)
      if (ra.at(i, j)) want.at(i, j) = double(j);
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ApplyIndexTest, TransposeAppliesPostTransposeIndices) {
  // Paper §VIII.B: "the index values used correspond to locations AFTER
  // the transpose is applied".
  ref::Mat ra = testutil::random_mat(5, 9, 0.5, 8);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_INT64, 9, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, a,
                      int64_t{0}, GrB_DESC_T0),
            GrB_SUCCESS);
  ref::Mat at = ref::transpose(ra);
  ref::Mat want(9, 5);
  for (GrB_Index i = 0; i < 9; ++i)
    for (GrB_Index j = 0; j < 5; ++j)
      if (at.at(i, j)) want.at(i, j) = double(i);
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&a);
  GrB_free(&c);
}

TEST(ApplyIndexTest, DiagIndexValues) {
  ref::Mat ra = testutil::random_mat(6, 6, 0.6, 9);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_INT32, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_DIAGINDEX_INT32, a,
                      int32_t{0}, GrB_NULL),
            GrB_SUCCESS);
  ref::Mat want(6, 6);
  for (GrB_Index i = 0; i < 6; ++i)
    for (GrB_Index j = 0; j < 6; ++j)
      if (ra.at(i, j))
        want.at(i, j) = double(int64_t(j) - int64_t(i));
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&a);
  GrB_free(&c);
}

// ---- select (§VIII.C) --------------------------------------------------------

TEST(SelectTest, TrilTriuDiagOffdiag) {
  ref::Mat ra = testutil::random_mat(10, 10, 0.5, 10);
  GrB_Matrix a = testutil::make_matrix(ra);
  struct Case {
    GrB_IndexUnaryOp op;
    int64_t s;
    std::function<bool(GrB_Index, GrB_Index, double)> keep;
  };
  const Case cases[] = {
      {GrB_TRIL, 0,
       [](GrB_Index i, GrB_Index j, double) { return j <= i; }},
      {GrB_TRIL, -1,
       [](GrB_Index i, GrB_Index j, double) { return j + 1 <= i; }},
      {GrB_TRIU, 0,
       [](GrB_Index i, GrB_Index j, double) { return j >= i; }},
      {GrB_TRIU, 2,
       [](GrB_Index i, GrB_Index j, double) { return j >= i + 2; }},
      {GrB_DIAG, 0,
       [](GrB_Index i, GrB_Index j, double) { return i == j; }},
      {GrB_OFFDIAG, 0,
       [](GrB_Index i, GrB_Index j, double) { return i != j; }},
      {GrB_ROWLE, 4,
       [](GrB_Index i, GrB_Index, double) { return i <= 4; }},
      {GrB_ROWGT, 4,
       [](GrB_Index i, GrB_Index, double) { return i > 4; }},
      {GrB_COLLE, 3,
       [](GrB_Index, GrB_Index j, double) { return j <= 3; }},
      {GrB_COLGT, 3,
       [](GrB_Index, GrB_Index j, double) { return j > 3; }},
  };
  for (const Case& tc : cases) {
    GrB_Matrix c = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 10, 10), GrB_SUCCESS);
    ASSERT_EQ(GrB_select(c, GrB_NULL, GrB_NULL, tc.op, a, tc.s, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_MATRIX_EQ(c, ref::select(ra, tc.keep));
    GrB_free(&c);
  }
  GrB_free(&a);
}

TEST(SelectTest, ValueComparisons) {
  ref::Mat ra = testutil::random_mat(12, 12, 0.5, 11);
  GrB_Matrix a = testutil::make_matrix(ra);
  struct Case {
    GrB_IndexUnaryOp op;
    std::function<bool(double)> keep;
  };
  const double s = 5.0;
  const Case cases[] = {
      {GrB_VALUEEQ_FP64, [&](double v) { return v == s; }},
      {GrB_VALUENE_FP64, [&](double v) { return v != s; }},
      {GrB_VALUELT_FP64, [&](double v) { return v < s; }},
      {GrB_VALUELE_FP64, [&](double v) { return v <= s; }},
      {GrB_VALUEGT_FP64, [&](double v) { return v > s; }},
      {GrB_VALUEGE_FP64, [&](double v) { return v >= s; }},
  };
  for (const Case& tc : cases) {
    GrB_Matrix c = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 12, 12), GrB_SUCCESS);
    ASSERT_EQ(GrB_select(c, GrB_NULL, GrB_NULL, tc.op, a, s, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_MATRIX_EQ(c, ref::select(ra, [&](GrB_Index, GrB_Index, double v) {
                       return tc.keep(v);
                     }));
    GrB_free(&c);
  }
  GrB_free(&a);
}

TEST(SelectTest, VectorSelect) {
  ref::Vec ru = testutil::random_vec(25, 0.6, 12);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 25), GrB_SUCCESS);
  ASSERT_EQ(GrB_select(w, GrB_NULL, GrB_NULL, GrB_ROWLE, u, int64_t{10},
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(
      w, ref::select(ru, [](GrB_Index i, double) { return i <= 10; }));
  ASSERT_EQ(GrB_select(w, GrB_NULL, GrB_NULL, GrB_VALUEGE_FP64, u, 4.0,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(
      w, ref::select(ru, [](GrB_Index, double v) { return v >= 4.0; }));
  GrB_free(&u);
  GrB_free(&w);
}

TEST(SelectTest, SelectKeepsValuesUnchanged) {
  // Select is a functional MASK: survivors keep their original value
  // (unlike apply, which computes new ones).
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 7.25, 2, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_select(c, GrB_NULL, GrB_NULL, GrB_TRIL, a, int64_t{0},
                       GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, c, 2, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 7.25);
  GrB_free(&a);
  GrB_free(&c);
}

// ---- Figure 3 ------------------------------------------------------------------

// The paper's §VIII.A user-defined operator: keep strictly-upper entries
// with value > s.
void my_triu_eq_INT32(void* out, const void* in, GrB_Index* indices,
                      GrB_Index n, const void* s) {
  (void)n;
  int32_t a, sv;
  std::memcpy(&a, in, 4);
  std::memcpy(&sv, s, 4);
  bool z = (indices[1] > indices[0]) && (a > sv);
  std::memcpy(out, &z, sizeof(bool));
}

TEST(Fig3Test, SelectAndApplyOnWeightedGraph) {
  // A small weighted digraph standing in for Figure 3(a); the figure's
  // pixel values are not in the text, so the *operations* are reproduced
  // exactly on a concrete instance and checked against first principles.
  const GrB_Index n = 5;
  GrB_Index ri[] = {0, 0, 1, 2, 2, 3, 3, 4, 4};
  GrB_Index ci[] = {1, 3, 2, 0, 4, 1, 4, 0, 2};
  int32_t w[] = {2, 5, 1, 4, 3, 7, 2, 6, 1};
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT32, n, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_build(a, ri, ci, w, 9, GrB_NULL), GrB_SUCCESS);

  // (b) top: select with the user-defined myTriuEq operator, s = 0.
  GrB_IndexUnaryOp my_op = nullptr;
  ASSERT_EQ(GrB_IndexUnaryOp_new(&my_op, &my_triu_eq_INT32, GrB_BOOL,
                                 GrB_INT32, GrB_INT32),
            GrB_SUCCESS);
  GrB_Matrix sel = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&sel, GrB_INT32, n, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_select(sel, GrB_NULL, GrB_NULL, my_op, a, int32_t{2},
                       GrB_NULL),
            GrB_SUCCESS);
  // Expected survivors: strictly-upper entries with value > 2:
  // (0,3)=5, (2,4)=3.  ((0,1)=2 fails the value test.)
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, sel), GrB_SUCCESS);
  EXPECT_EQ(nv, 2u);
  int32_t out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, sel, 0, 3), GrB_SUCCESS);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, sel, 2, 4), GrB_SUCCESS);
  EXPECT_EQ(out, 3);

  // (b) bottom / paper's apply snippet: replace values with the column
  // index plus one, GrB_apply(C, NULL, NULL, GrB_COLINDEX, A, 1, NULL).
  GrB_Matrix app = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&app, GrB_INT64, n, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(app, GrB_NULL, GrB_NULL, GrB_COLINDEX_INT64, a,
                      int64_t{1}, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, app), GrB_SUCCESS);
  EXPECT_EQ(nv, 9u);  // apply keeps the full structure
  int64_t iv = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&iv, app, 0, 3), GrB_SUCCESS);
  EXPECT_EQ(iv, 4);  // j + 1
  EXPECT_EQ(GrB_Matrix_extractElement(&iv, app, 4, 0), GrB_SUCCESS);
  EXPECT_EQ(iv, 1);

  GrB_free(&a);
  GrB_free(&sel);
  GrB_free(&app);
  GrB_free(&my_op);
}

TEST(SelectTest, MaskedAccumSelect) {
  ref::Mat ra = testutil::random_mat(8, 8, 0.5, 13);
  ref::Mat rc = testutil::random_mat(8, 8, 0.3, 14);
  ref::Mat rm = testutil::random_mat(8, 8, 0.5, 15);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c = testutil::make_matrix(rc);
  GrB_Matrix m = testutil::make_matrix(rm);
  ASSERT_EQ(GrB_select(c, m, GrB_PLUS_FP64, GrB_TRIU, a, int64_t{0},
                       GrB_DESC_S),
            GrB_SUCCESS);
  ref::Mat t = ref::select(
      ra, [](GrB_Index i, GrB_Index j, double) { return j >= i; });
  ref::Spec spec;
  spec.have_mask = true;
  spec.structure = true;
  spec.accum = fn_plus;
  EXPECT_MATRIX_EQ(c, ref::writeback(rc, t, &rm, spec));
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&m);
}

}  // namespace
