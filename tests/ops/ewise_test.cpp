// eWiseAdd / eWiseMult vs. the dense reference, swept over every
// combination of {mask kind} x {accum} x {replace} via TEST_P.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_max;
using testutil::fn_min;
using testutil::fn_plus;
using testutil::fn_times;

struct WritebackCase {
  bool have_mask;
  bool structure;
  bool comp;
  bool replace;
  bool accum;
};

// All 2*2*2*2 mask/accum/replace combinations (mask flags only matter
// when a mask is present, so 16 + the 2 no-mask accum cases suffice; the
// redundant ones are cheap and kept for clarity).
std::vector<WritebackCase> all_cases() {
  std::vector<WritebackCase> cases;
  for (int have_mask = 0; have_mask < 2; ++have_mask)
    for (int structure = 0; structure < 2; ++structure)
      for (int comp = 0; comp < 2; ++comp)
        for (int replace = 0; replace < 2; ++replace)
          for (int accum = 0; accum < 2; ++accum)
            cases.push_back({have_mask != 0, structure != 0, comp != 0,
                             replace != 0, accum != 0});
  return cases;
}

GrB_Descriptor make_desc(const WritebackCase& c) {
  unsigned bits = (c.replace ? 1u : 0u) | (c.comp ? 2u : 0u) |
                  (c.structure ? 4u : 0u);
  return bits == 0 ? GrB_NULL : grb::predefined_descriptor(bits);
}

ref::Spec make_spec(const WritebackCase& c) {
  ref::Spec s;
  s.have_mask = c.have_mask;
  s.structure = c.structure;
  s.comp = c.comp;
  s.replace = c.replace;
  if (c.accum) s.accum = testutil::fn_plus;
  return s;
}

class EwiseSweep : public ::testing::TestWithParam<WritebackCase> {};

// A mask whose values include explicit zeros (so structure vs. value
// masking differ).
ref::Vec mask_vec(GrB_Index n, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec m(n);
  for (auto& c : m.cells) {
    double r = rng.uniform();
    if (r < 0.4) {
      c = 1.0;
    } else if (r < 0.6) {
      c = 0.0;  // present but falsy
    }
  }
  return m;
}

ref::Mat mask_mat(GrB_Index nr, GrB_Index nc, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells) {
    double r = rng.uniform();
    if (r < 0.4) {
      c = 1.0;
    } else if (r < 0.6) {
      c = 0.0;
    }
  }
  return m;
}

TEST_P(EwiseSweep, VectorAddAndMult) {
  const WritebackCase c = GetParam();
  const GrB_Index n = 29;
  ref::Vec ru = testutil::random_vec(n, 0.5, 101);
  ref::Vec rv = testutil::random_vec(n, 0.5, 202);
  ref::Vec rw = testutil::random_vec(n, 0.3, 303);
  ref::Vec rm = mask_vec(n, 404);
  ref::Spec spec = make_spec(c);

  for (bool add : {true, false}) {
    GrB_Vector u = testutil::make_vector(ru);
    GrB_Vector v = testutil::make_vector(rv);
    GrB_Vector w = testutil::make_vector(rw);
    GrB_Vector m = c.have_mask ? testutil::make_vector(rm) : GrB_NULL;
    GrB_BinaryOp accum = c.accum ? GrB_PLUS_FP64 : GrB_NULL;
    GrB_Info info =
        add ? GrB_eWiseAdd(w, m, accum, GrB_TIMES_FP64, u, v, make_desc(c))
            : GrB_eWiseMult(w, m, accum, GrB_TIMES_FP64, u, v,
                            make_desc(c));
    ASSERT_EQ(info, GrB_SUCCESS);
    ref::Vec t = add ? ref::ewise_add(ru, rv, fn_times)
                     : ref::ewise_mult(ru, rv, fn_times);
    ref::Vec want =
        ref::writeback(rw, t, c.have_mask ? &rm : nullptr, spec);
    EXPECT_VECTOR_EQ(w, want);
    GrB_free(&u);
    GrB_free(&v);
    GrB_free(&w);
    if (m != GrB_NULL) GrB_free(&m);
  }
}

TEST_P(EwiseSweep, MatrixAddAndMult) {
  const WritebackCase c = GetParam();
  const GrB_Index nr = 13, nc = 17;
  ref::Mat ra = testutil::random_mat(nr, nc, 0.4, 111);
  ref::Mat rb = testutil::random_mat(nr, nc, 0.4, 222);
  ref::Mat rc = testutil::random_mat(nr, nc, 0.25, 333);
  ref::Mat rm = mask_mat(nr, nc, 444);
  ref::Spec spec = make_spec(c);

  for (bool add : {true, false}) {
    GrB_Matrix a = testutil::make_matrix(ra);
    GrB_Matrix b = testutil::make_matrix(rb);
    GrB_Matrix out = testutil::make_matrix(rc);
    GrB_Matrix m = c.have_mask ? testutil::make_matrix(rm) : GrB_NULL;
    GrB_BinaryOp accum = c.accum ? GrB_PLUS_FP64 : GrB_NULL;
    GrB_Info info =
        add ? GrB_eWiseAdd(out, m, accum, GrB_MIN_FP64, a, b, make_desc(c))
            : GrB_eWiseMult(out, m, accum, GrB_MIN_FP64, a, b,
                            make_desc(c));
    ASSERT_EQ(info, GrB_SUCCESS);
    ref::Mat t = add ? ref::ewise_add(ra, rb, fn_min)
                     : ref::ewise_mult(ra, rb, fn_min);
    ref::Mat want =
        ref::writeback(rc, t, c.have_mask ? &rm : nullptr, spec);
    EXPECT_MATRIX_EQ(out, want);
    GrB_free(&a);
    GrB_free(&b);
    GrB_free(&out);
    if (m != GrB_NULL) GrB_free(&m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWritebackModes, EwiseSweep, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<WritebackCase>& info) {
      const WritebackCase& c = info.param;
      std::string name;
      name += c.have_mask ? "Mask" : "NoMask";
      if (c.have_mask) {
        name += c.structure ? "Struct" : "Value";
        name += c.comp ? "Comp" : "";
      } else {
        name += c.structure ? "S" : "";  // keep names unique
        name += c.comp ? "C" : "";
      }
      name += c.replace ? "Replace" : "Merge";
      name += c.accum ? "Accum" : "NoAccum";
      return name;
    });

TEST(EwiseTest, MatrixTransposedInputs) {
  ref::Mat ra = testutil::random_mat(9, 12, 0.4, 11);
  ref::Mat rb = testutil::random_mat(12, 9, 0.4, 22);
  ref::Mat rc(9, 12);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix out = testutil::make_matrix(rc);
  // out = A + B' (T1).
  ASSERT_EQ(GrB_eWiseAdd(out, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, b,
                         GrB_DESC_T1),
            GrB_SUCCESS);
  ref::Mat want = ref::ewise_add(ra, ref::transpose(rb), fn_plus);
  EXPECT_MATRIX_EQ(out, want);
  // out2 = A' + B (T0), shape flips.
  ref::Mat rc2(12, 9);
  GrB_Matrix out2 = testutil::make_matrix(rc2);
  ASSERT_EQ(GrB_eWiseAdd(out2, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, b,
                         GrB_DESC_T0),
            GrB_SUCCESS);
  ref::Mat want2 = ref::ewise_add(ref::transpose(ra), rb, fn_plus);
  EXPECT_MATRIX_EQ(out2, want2);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&out);
  GrB_free(&out2);
}

TEST(EwiseTest, MonoidAndSemiringVariants) {
  ref::Vec ru = testutil::random_vec(15, 0.6, 5);
  ref::Vec rv = testutil::random_vec(15, 0.6, 6);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector v = testutil::make_vector(rv);
  GrB_Vector w1 = nullptr, w2 = nullptr, w3 = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w1, GrB_FP64, 15), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w2, GrB_FP64, 15), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w3, GrB_FP64, 15), GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w1, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, v,
                         GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w2, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, u, v,
                         GrB_NULL),
            GrB_SUCCESS);
  // Semiring variant uses the MULTIPLY op (TIMES for PLUS_TIMES).
  ASSERT_EQ(GrB_eWiseAdd(w3, GrB_NULL, GrB_NULL,
                         GrB_PLUS_TIMES_SEMIRING_FP64, u, v, GrB_NULL),
            GrB_SUCCESS);
  ref::Vec want_plus = ref::ewise_add(ru, rv, fn_plus);
  ref::Vec want_times = ref::ewise_add(ru, rv, fn_times);
  EXPECT_VECTOR_EQ(w1, want_plus);
  EXPECT_VECTOR_EQ(w2, want_plus);
  EXPECT_VECTOR_EQ(w3, want_times);
  GrB_free(&u);
  GrB_free(&v);
  GrB_free(&w1);
  GrB_free(&w2);
  GrB_free(&w3);
}

TEST(EwiseTest, TypecastAcrossDomains) {
  // INT32 inputs, FP64 op, INT8 output: values cast on the way in/out.
  GrB_Vector u = nullptr, v = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_INT32, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT32, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_INT8, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 100, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 50, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, v,
                         GrB_NULL),
            GrB_SUCCESS);
  int32_t out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, int32_t(int8_t(150)));  // 150 wraps in INT8
  GrB_free(&u);
  GrB_free(&v);
  GrB_free(&w);
}

TEST(EwiseTest, DimensionAndDomainErrors) {
  GrB_Vector u = nullptr, v = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, v,
                         GrB_NULL),
            GrB_DIMENSION_MISMATCH);
  GrB_Type udt = nullptr;
  ASSERT_EQ(GrB_Type_new(&udt, 8), GrB_SUCCESS);
  GrB_Vector x = nullptr;
  ASSERT_EQ(GrB_Vector_new(&x, udt, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, x,
                         GrB_NULL),
            GrB_DOMAIN_MISMATCH);
  EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL,
                         static_cast<GrB_BinaryOp>(nullptr), u, u, GrB_NULL),
            GrB_NULL_POINTER);
  GrB_free(&u);
  GrB_free(&v);
  GrB_free(&w);
  GrB_free(&x);
  GrB_free(&udt);
}

}  // namespace
