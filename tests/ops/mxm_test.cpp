// mxm / mxv / vxm against the dense reference: semirings, masks, accum,
// transposes, casting, and fast-path/generic-path agreement.
#include <gtest/gtest.h>

#include "ops/mxm.hpp"
#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_min;
using testutil::fn_plus;
using testutil::fn_second;
using testutil::fn_times;

struct SemiringCase {
  const char* name;
  GrB_Semiring semiring;
  ref::BinFn add;
  ref::BinFn mul;
};

std::vector<SemiringCase> semiring_cases() {
  return {
      {"PlusTimes", GrB_PLUS_TIMES_SEMIRING_FP64, testutil::fn_plus,
       testutil::fn_times},
      {"MinPlus", GrB_MIN_PLUS_SEMIRING_FP64, testutil::fn_min,
       testutil::fn_plus},
      {"MaxPlus", GrB_MAX_PLUS_SEMIRING_FP64, testutil::fn_max,
       testutil::fn_plus},
      {"MinTimes", GrB_MIN_TIMES_SEMIRING_FP64, testutil::fn_min,
       testutil::fn_times},
      {"MinSecond", GrB_MIN_SECOND_SEMIRING_FP64, testutil::fn_min,
       testutil::fn_second},
      {"PlusMin", GrB_PLUS_MIN_SEMIRING_FP64, testutil::fn_plus,
       testutil::fn_min},
  };
}

class SemiringSweep : public ::testing::TestWithParam<SemiringCase> {};

TEST_P(SemiringSweep, MxmUnmasked) {
  const SemiringCase& sc = GetParam();
  ref::Mat ra = testutil::random_mat(11, 14, 0.35, 1);
  ref::Mat rb = testutil::random_mat(14, 9, 0.35, 2);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 11, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, sc.semiring, a, b, GrB_NULL),
            GrB_SUCCESS);
  ref::Mat want = ref::mxm(ra, rb, sc.add, sc.mul);
  EXPECT_MATRIX_EQ(c, want);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST_P(SemiringSweep, MxvAndVxm) {
  const SemiringCase& sc = GetParam();
  ref::Mat ra = testutil::random_mat(13, 10, 0.4, 3);
  ref::Vec ru = testutil::random_vec(10, 0.6, 4);
  ref::Vec rt = testutil::random_vec(13, 0.6, 5);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector t = testutil::make_vector(rt);
  GrB_Vector w = nullptr, z = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 13), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&z, GrB_FP64, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, sc.semiring, a, u, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_vxm(z, GrB_NULL, GrB_NULL, sc.semiring, t, a, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::mxv(ra, ru, sc.add, sc.mul));
  EXPECT_VECTOR_EQ(z, ref::vxm(rt, ra, sc.add, sc.mul));
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&t);
  GrB_free(&w);
  GrB_free(&z);
}

INSTANTIATE_TEST_SUITE_P(
    Semirings, SemiringSweep, ::testing::ValuesIn(semiring_cases()),
    [](const ::testing::TestParamInfo<SemiringCase>& info) {
      return info.param.name;
    });

TEST(MxmTest, MaskedAccumReplaceCombos) {
  ref::Mat ra = testutil::random_mat(12, 12, 0.3, 7);
  ref::Mat rb = testutil::random_mat(12, 12, 0.3, 8);
  ref::Mat rc = testutil::random_mat(12, 12, 0.2, 9);
  ref::Mat rm = testutil::random_mat(12, 12, 0.5, 10);
  ref::Mat t = ref::mxm(ra, rb, fn_plus, fn_times);

  struct Combo {
    GrB_Descriptor desc;
    bool structure, comp, replace, accum;
  };
  const Combo combos[] = {
      {GrB_NULL, false, false, false, false},
      {GrB_NULL, false, false, false, true},
      {GrB_DESC_R, false, false, true, false},
      {GrB_DESC_S, true, false, false, false},
      {GrB_DESC_C, false, true, false, true},
      {GrB_DESC_RSC, true, true, true, false},
  };
  for (const Combo& cb : combos) {
    GrB_Matrix a = testutil::make_matrix(ra);
    GrB_Matrix b = testutil::make_matrix(rb);
    GrB_Matrix c = testutil::make_matrix(rc);
    GrB_Matrix m = testutil::make_matrix(rm);
    ASSERT_EQ(GrB_mxm(c, m, cb.accum ? GrB_PLUS_FP64 : GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, a, b, cb.desc),
              GrB_SUCCESS);
    ref::Spec spec;
    spec.have_mask = true;
    spec.structure = cb.structure;
    spec.comp = cb.comp;
    spec.replace = cb.replace;
    if (cb.accum) spec.accum = fn_plus;
    EXPECT_MATRIX_EQ(c, ref::writeback(rc, t, &rm, spec));
    GrB_free(&a);
    GrB_free(&b);
    GrB_free(&c);
    GrB_free(&m);
  }
}

TEST(MxmTest, TransposedInputs) {
  ref::Mat ra = testutil::random_mat(8, 11, 0.4, 20);
  ref::Mat rb = testutil::random_mat(8, 9, 0.4, 21);
  // c = A' * B : (11x8)' x ... A is 8x11 so A' is 11x8; B 8x9 -> 11x9.
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 11, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::mxm(ref::transpose(ra), rb, fn_plus, fn_times));
  GrB_free(&c);

  // c2 = A * A'
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_DESC_T1),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::mxm(ra, ref::transpose(ra), fn_plus, fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(MxmTest, FastpathMatchesGenericPath) {
  // The typed fast path and the function-pointer path must agree bit for
  // bit on every registered semiring (the M2 ablation depends on it).
  ref::Mat ra = testutil::random_mat(20, 20, 0.3, 30);
  ref::Mat rb = testutil::random_mat(20, 20, 0.3, 31);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix b = testutil::make_matrix(rb);
  const GrB_Semiring rings[] = {
      GrB_PLUS_TIMES_SEMIRING_FP64, GrB_MIN_PLUS_SEMIRING_FP64,
      GrB_MAX_PLUS_SEMIRING_FP64, GrB_MIN_SECOND_SEMIRING_FP64};
  for (GrB_Semiring ring : rings) {
    GrB_Matrix c_fast = nullptr, c_slow = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&c_fast, GrB_FP64, 20, 20), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_new(&c_slow, GrB_FP64, 20, 20), GrB_SUCCESS);
    grb::set_fastpath_enabled(true);
    ASSERT_EQ(GrB_mxm(c_fast, GrB_NULL, GrB_NULL, ring, a, b, GrB_NULL),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_wait(c_fast, GrB_COMPLETE), GrB_SUCCESS);
    grb::set_fastpath_enabled(false);
    ASSERT_EQ(GrB_mxm(c_slow, GrB_NULL, GrB_NULL, ring, a, b, GrB_NULL),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_wait(c_slow, GrB_COMPLETE), GrB_SUCCESS);
    grb::set_fastpath_enabled(true);
    EXPECT_TRUE(
        testutil::mats_equal(testutil::to_ref(c_fast),
                             testutil::to_ref(c_slow)));
    GrB_free(&c_fast);
    GrB_free(&c_slow);
  }
  GrB_free(&a);
  GrB_free(&b);
}

TEST(MxmTest, IntTypedSemiring) {
  ref::Mat ra = testutil::random_mat(10, 10, 0.4, 40);
  ref::Mat rb = testutil::random_mat(10, 10, 0.4, 41);
  GrB_Matrix a = testutil::make_matrix(ra);  // FP64 with integer values
  GrB_Matrix b = testutil::make_matrix(rb);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_INT64, 10, 10), GrB_SUCCESS);
  // FP64 inputs cast into the INT64 semiring; result in INT64.
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_INT64, a,
                    b, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(c, ref::mxm(ra, rb, fn_plus, fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(MxmTest, EmptyOperands) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 5, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, GrB_FP64, 5, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 5, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nv = 1;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, c), GrB_SUCCESS);
  EXPECT_EQ(nv, 0u);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(MxmTest, DimensionErrors) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 5, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, GrB_FP64, 5, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 5, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_NULL),
            GrB_DIMENSION_MISMATCH);
  // But fine with A transposed.
  GrB_Matrix c2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c2, GrB_FP64, 4, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_DESC_T0),
            GrB_SUCCESS);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
  GrB_free(&c2);
}

TEST(MxvTest, MaskedMxv) {
  ref::Mat ra = testutil::random_mat(10, 10, 0.4, 50);
  ref::Vec ru = testutil::random_vec(10, 0.7, 51);
  ref::Vec rw = testutil::random_vec(10, 0.3, 52);
  ref::Vec rm = testutil::random_vec(10, 0.5, 53);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w = testutil::make_vector(rw);
  GrB_Vector m = testutil::make_vector(rm);
  ASSERT_EQ(GrB_mxv(w, m, GrB_PLUS_FP64, GrB_PLUS_TIMES_SEMIRING_FP64, a, u,
                    GrB_NULL),
            GrB_SUCCESS);
  ref::Spec spec;
  spec.have_mask = true;
  spec.accum = fn_plus;
  ref::Vec t = ref::mxv(ra, ru, fn_plus, fn_times);
  EXPECT_VECTOR_EQ(w, ref::writeback(rw, t, &rm, spec));
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
  GrB_free(&m);
}

TEST(VxmTest, TransposedMatrixEqualsMxv) {
  // vxm(u, A') == mxv(A, u) structurally and numerically.
  ref::Mat ra = testutil::random_mat(9, 13, 0.45, 60);
  ref::Vec ru = testutil::random_vec(13, 0.6, 61);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Vector w1 = nullptr, w2 = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w1, GrB_FP64, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w2, GrB_FP64, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxv(w1, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, a,
                    u, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_vxm(w2, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, u,
                    a, GrB_DESC_T1),
            GrB_SUCCESS);
  EXPECT_TRUE(testutil::vecs_equal(testutil::to_ref(w1),
                                   testutil::to_ref(w2)));
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w1);
  GrB_free(&w2);
}

}  // namespace
