// Hypersparse-dimension regression tests for the adaptive SpGEMM engine.
//
// The seed kernels allocated O(ncols) dense scratch unconditionally, so
// a multiply whose output dimension is 2^40 aborted on allocation.  The
// adaptive engine caps dense scratch by a byte budget and falls back to
// hash accumulators / binary-search probes, so these products must now
// succeed in memory proportional to the actual nonzeros.  Values are
// small integers, making every expected sum exact regardless of fold
// order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "ops/spgemm.hpp"
#include "util/prng.hpp"

namespace {

constexpr GrB_Index kHuge = GrB_Index(1) << 40;

struct ModeGuard {
  grb::SpgemmMode saved_mode;
  size_t saved_budget;
  ModeGuard()
      : saved_mode(grb::spgemm_mode()),
        saved_budget(grb::spgemm_dense_budget()) {
    grb::set_spgemm_mode(grb::SpgemmMode::kAuto);
    grb::set_spgemm_dense_budget(64u << 20);
  }
  ~ModeGuard() {
    grb::set_spgemm_mode(saved_mode);
    grb::set_spgemm_dense_budget(saved_budget);
  }
};

struct Coo {
  std::vector<GrB_Index> rows, cols;
  std::vector<double> vals;
  std::map<std::pair<GrB_Index, GrB_Index>, double> map;

  void add(GrB_Index i, GrB_Index j, double v) {
    auto [it, fresh] = map.emplace(std::make_pair(i, j), v);
    if (!fresh) return;  // keep positions unique; no dup handling needed
    rows.push_back(i);
    cols.push_back(j);
    vals.push_back(v);
  }
};

GrB_Matrix build_matrix(GrB_Index nr, GrB_Index nc, const Coo& coo) {
  GrB_Matrix m = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&m, GrB_FP64, nr, nc), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_build(m, coo.rows.data(), coo.cols.data(),
                             coo.vals.data(), coo.vals.size(),
                             GrB_PLUS_FP64),
            GrB_SUCCESS);
  return m;
}

TEST(SpgemmHypersparse, MxmHugeNcols) {
  ModeGuard guard;
  const GrB_Index nrows = GrB_Index(1) << 20;
  const GrB_Index inner = 64;
  grb::Prng rng(9001);

  Coo a;  // 2^20 x 64, ~2000 entries
  for (int e = 0; e < 2000; ++e)
    a.add(rng.below(nrows), rng.below(inner),
          static_cast<double>(1 + rng.below(5)));
  Coo b;  // 64 x 2^40, ~512 entries scattered over the huge dimension
  for (int e = 0; e < 512; ++e)
    b.add(rng.below(inner), rng.below(kHuge),
          static_cast<double>(1 + rng.below(5)));

  GrB_Matrix A = build_matrix(nrows, inner, a);
  GrB_Matrix B = build_matrix(inner, kHuge, b);
  GrB_Matrix C = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&C, GrB_FP64, nrows, kHuge), GrB_SUCCESS);

  // The seed dense-SPA kernel would attempt an O(2^40) allocation here.
  ASSERT_EQ(GrB_mxm(C, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, A,
                    B, GrB_NULL),
            GrB_SUCCESS);

  std::map<std::pair<GrB_Index, GrB_Index>, double> expect;
  for (const auto& [aij, av] : a.map)
    for (const auto& [bkj, bv] : b.map)
      if (aij.second == bkj.first)
        expect[{aij.first, bkj.second}] += av * bv;

  GrB_Index nvals = 0;
  ASSERT_EQ(GrB_Matrix_nvals(&nvals, C), GrB_SUCCESS);
  EXPECT_EQ(nvals, expect.size());
  for (const auto& [pos, v] : expect) {
    double got = 0;
    ASSERT_EQ(GrB_Matrix_extractElement(&got, C, pos.first, pos.second),
              GrB_SUCCESS)
        << "missing (" << pos.first << "," << pos.second << ")";
    EXPECT_EQ(got, v);
  }

  GrB_free(&A);
  GrB_free(&B);
  GrB_free(&C);
}

TEST(SpgemmHypersparse, VxmHugeOutputDim) {
  ModeGuard guard;
  const GrB_Index inner = 64;
  grb::Prng rng(9002);

  Coo a;  // 64 x 2^40
  for (int e = 0; e < 300; ++e)
    a.add(rng.below(inner), rng.below(kHuge),
          static_cast<double>(1 + rng.below(5)));
  GrB_Matrix A = build_matrix(inner, kHuge, a);

  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, inner), GrB_SUCCESS);
  std::map<GrB_Index, double> uvals;
  for (int e = 0; e < 40; ++e) uvals[rng.below(inner)] = 2.0;
  for (const auto& [i, v] : uvals)
    ASSERT_EQ(GrB_Vector_setElement(u, v, i), GrB_SUCCESS);

  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, kHuge), GrB_SUCCESS);
  ASSERT_EQ(GrB_vxm(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, u,
                    A, GrB_NULL),
            GrB_SUCCESS);

  std::map<GrB_Index, double> expect;
  for (const auto& [aij, av] : a.map) {
    auto it = uvals.find(aij.first);
    if (it != uvals.end()) expect[aij.second] += it->second * av;
  }
  GrB_Index nvals = 0;
  ASSERT_EQ(GrB_Vector_nvals(&nvals, w), GrB_SUCCESS);
  EXPECT_EQ(nvals, expect.size());
  for (const auto& [j, v] : expect) {
    double got = 0;
    ASSERT_EQ(GrB_Vector_extractElement(&got, w, j), GrB_SUCCESS);
    EXPECT_EQ(got, v);
  }

  GrB_free(&A);
  GrB_free(&u);
  GrB_free(&w);
}

TEST(SpgemmHypersparse, MxvHugeInputDim) {
  ModeGuard guard;
  const GrB_Index nrows = 128;
  grb::Prng rng(9003);

  Coo a;  // 128 x 2^40
  for (int e = 0; e < 300; ++e)
    a.add(rng.below(nrows), rng.below(kHuge),
          static_cast<double>(1 + rng.below(5)));

  // Half of u's entries land on columns A actually stores, so the probe
  // exercises both hits and misses.
  std::map<GrB_Index, double> uvals;
  {
    int e = 0;
    for (const auto& [aij, av] : a.map) {
      if (++e % 2 == 0) uvals[aij.second] = 3.0;
    }
    for (int extra = 0; extra < 50; ++extra)
      uvals[rng.below(kHuge)] = 1.0;
  }
  GrB_Matrix A = build_matrix(nrows, kHuge, a);
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, kHuge), GrB_SUCCESS);
  for (const auto& [j, v] : uvals)
    ASSERT_EQ(GrB_Vector_setElement(u, v, j), GrB_SUCCESS);

  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, nrows), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, A,
                    u, GrB_NULL),
            GrB_SUCCESS);

  std::map<GrB_Index, double> expect;
  for (const auto& [aij, av] : a.map) {
    auto it = uvals.find(aij.second);
    if (it != uvals.end()) expect[aij.first] += av * it->second;
  }
  GrB_Index nvals = 0;
  ASSERT_EQ(GrB_Vector_nvals(&nvals, w), GrB_SUCCESS);
  EXPECT_EQ(nvals, expect.size());
  for (const auto& [i, v] : expect) {
    double got = 0;
    ASSERT_EQ(GrB_Vector_extractElement(&got, w, i), GrB_SUCCESS);
    EXPECT_EQ(got, v);
  }

  GrB_free(&A);
  GrB_free(&u);
  GrB_free(&w);
}

}  // namespace
