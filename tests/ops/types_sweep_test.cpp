// Systematic per-type coverage: containers and core operations behave
// for EVERY builtin domain (typed tests over the 11 types).
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

template <class T>
class TypedContainerTest : public ::testing::Test {};

using AllTypes =
    ::testing::Types<bool, int8_t, uint8_t, int16_t, uint16_t, int32_t,
                     uint32_t, int64_t, uint64_t, float, double>;
TYPED_TEST_SUITE(TypedContainerTest, AllTypes);

TYPED_TEST(TypedContainerTest, VectorRoundTrip) {
  using T = TypeParam;
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, grb::type_of<T>(), 16), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 16; i += 3) {
    ASSERT_EQ(GrB_Vector_setElement(v, static_cast<T>(i % 7), i),
              GrB_SUCCESS);
  }
  for (GrB_Index i = 0; i < 16; i += 3) {
    T out{};
    ASSERT_EQ(GrB_Vector_extractElement(&out, v, i), GrB_SUCCESS);
    EXPECT_EQ(out, static_cast<T>(i % 7));
  }
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(nv, 6u);
  GrB_free(&v);
}

TYPED_TEST(TypedContainerTest, MatrixRoundTrip) {
  using T = TypeParam;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, grb::type_of<T>(), 8, 8), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 8; ++i) {
    ASSERT_EQ(
        GrB_Matrix_setElement(a, static_cast<T>((i * 3) % 5), i, 7 - i),
        GrB_SUCCESS);
  }
  for (GrB_Index i = 0; i < 8; ++i) {
    T out{};
    ASSERT_EQ(GrB_Matrix_extractElement(&out, a, i, 7 - i), GrB_SUCCESS);
    EXPECT_EQ(out, static_cast<T>((i * 3) % 5));
  }
  GrB_free(&a);
}

TYPED_TEST(TypedContainerTest, BuildExtractTuples) {
  using T = TypeParam;
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, grb::type_of<T>(), 10), GrB_SUCCESS);
  GrB_Index idx[] = {9, 0, 4};
  T vals[] = {static_cast<T>(1), static_cast<T>(0), static_cast<T>(1)};
  ASSERT_EQ(GrB_Vector_build(v, idx, vals, 3, GrB_NULL), GrB_SUCCESS);
  GrB_Index oidx[3];
  T ovals[3];
  GrB_Index n = 3;
  ASSERT_EQ(GrB_Vector_extractTuples(oidx, ovals, &n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(oidx[0], 0u);
  EXPECT_EQ(ovals[0], static_cast<T>(0));
  EXPECT_EQ(oidx[2], 9u);
  EXPECT_EQ(ovals[2], static_cast<T>(1));
  GrB_free(&v);
}

TYPED_TEST(TypedContainerTest, EwiseAddInDomain) {
  using T = TypeParam;
  const GrB_BinaryOp plus = grb::get_binary_op(
      grb::BinOpCode::kPlus, grb::type_of<T>()->code());
  ASSERT_NE(plus, nullptr);
  GrB_Vector u = nullptr, v = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, grb::type_of<T>(), 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, grb::type_of<T>(), 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, grb::type_of<T>(), 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(1), 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, static_cast<T>(1), 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, static_cast<T>(1), 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, plus, u, v, GrB_NULL),
            GrB_SUCCESS);
  T out{};
  ASSERT_EQ(GrB_Vector_extractElement(&out, w, 2), GrB_SUCCESS);
  // bool PLUS is logical-or; numeric PLUS is 1+1.
  EXPECT_EQ(out, static_cast<T>(static_cast<T>(1) + static_cast<T>(1)));
  ASSERT_EQ(GrB_Vector_extractElement(&out, w, 4), GrB_SUCCESS);
  EXPECT_EQ(out, static_cast<T>(1));
  GrB_free(&u);
  GrB_free(&v);
  GrB_free(&w);
}

TYPED_TEST(TypedContainerTest, SerializeRoundTripPerType) {
  using T = TypeParam;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, grb::type_of<T>(), 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, static_cast<T>(1), 1, 4),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, static_cast<T>(0), 5, 0),
            GrB_SUCCESS);
  GrB_Index size = 0;
  ASSERT_EQ(GrB_Matrix_serializeSize(&size, a), GrB_SUCCESS);
  std::vector<char> buf(size);
  GrB_Index written = size;
  ASSERT_EQ(GrB_Matrix_serialize(buf.data(), &written, a), GrB_SUCCESS);
  GrB_Matrix back = nullptr;
  ASSERT_EQ(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written),
            GrB_SUCCESS);
  EXPECT_EQ(back->type(), grb::type_of<T>());
  T out{};
  ASSERT_EQ(GrB_Matrix_extractElement(&out, back, 1, 4), GrB_SUCCESS);
  EXPECT_EQ(out, static_cast<T>(1));
  GrB_free(&a);
  GrB_free(&back);
}

TYPED_TEST(TypedContainerTest, SelectValueNePerType) {
  using T = TypeParam;
  const GrB_IndexUnaryOp ne = grb::get_index_unary_op(
      grb::IdxOpCode::kValueNE, grb::type_of<T>()->code());
  ASSERT_NE(ne, nullptr);
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, grb::type_of<T>(), 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, grb::type_of<T>(), 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(0), 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(1), 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_select(w, GrB_NULL, GrB_NULL, ne, u, static_cast<T>(0),
                       GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  T out{};
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  EXPECT_EQ(out, static_cast<T>(1));
  GrB_free(&u);
  GrB_free(&w);
}

TYPED_TEST(TypedContainerTest, ReduceToScalarPerType) {
  using T = TypeParam;
  const GrB_Monoid monoid = grb::get_monoid(
      std::is_same_v<T, bool> ? grb::BinOpCode::kLor
                              : grb::BinOpCode::kPlus,
      grb::type_of<T>()->code());
  ASSERT_NE(monoid, nullptr);
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, grb::type_of<T>(), 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(1), 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(1), 3), GrB_SUCCESS);
  T out{};
  ASSERT_EQ(GrB_reduce(&out, GrB_NULL, monoid, u, GrB_NULL), GrB_SUCCESS);
  if constexpr (std::is_same_v<T, bool>) {
    EXPECT_EQ(out, true);
  } else {
    EXPECT_EQ(out, static_cast<T>(2));
  }
  GrB_free(&u);
}

TYPED_TEST(TypedContainerTest, MxmInDomain) {
  using T = TypeParam;
  grb::BinOpCode add = std::is_same_v<T, bool> ? grb::BinOpCode::kLor
                                               : grb::BinOpCode::kPlus;
  grb::BinOpCode mul = std::is_same_v<T, bool> ? grb::BinOpCode::kLand
                                               : grb::BinOpCode::kTimes;
  const GrB_Semiring ring =
      grb::get_semiring(add, mul, grb::type_of<T>()->code());
  ASSERT_NE(ring, nullptr);
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, grb::type_of<T>(), 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, grb::type_of<T>(), 3, 3), GrB_SUCCESS);
  // Path 0 -> 1 -> 2.
  ASSERT_EQ(GrB_Matrix_setElement(a, static_cast<T>(1), 0, 1),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, static_cast<T>(1), 1, 2),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, ring, a, a, GrB_NULL),
            GrB_SUCCESS);
  T out{};
  ASSERT_EQ(GrB_Matrix_extractElement(&out, c, 0, 2), GrB_SUCCESS);
  EXPECT_EQ(out, static_cast<T>(1));
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, c), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  GrB_free(&a);
  GrB_free(&c);
}

TYPED_TEST(TypedContainerTest, ApplyIdentityPreservesValues) {
  using T = TypeParam;
  const GrB_UnaryOp ident = grb::get_unary_op(
      grb::UnOpCode::kIdentity, grb::type_of<T>()->code());
  ASSERT_NE(ident, nullptr);
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, grb::type_of<T>(), 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, grb::type_of<T>(), 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, static_cast<T>(1), 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, ident, u, GrB_NULL),
            GrB_SUCCESS);
  T out{};
  ASSERT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  EXPECT_EQ(out, static_cast<T>(1));
  GrB_free(&u);
  GrB_free(&w);
}

}  // namespace
