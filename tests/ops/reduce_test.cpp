// GrB_reduce: matrix->vector, typed scalar output (1.X style), and the
// GraphBLAS 2.0 GrB_Scalar-output variants (§VI, Table II).
#include <gtest/gtest.h>

#include <limits>

#include "tests/grb_test_util.hpp"

namespace {

using testutil::fn_max;
using testutil::fn_min;
using testutil::fn_plus;

TEST(ReduceTest, MatrixToVectorRows) {
  ref::Mat ra = testutil::random_mat(9, 14, 0.4, 1);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 9), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(w, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::reduce_rows(ra, fn_plus));
  GrB_free(&a);
  GrB_free(&w);
}

TEST(ReduceTest, MatrixToVectorColumnsViaTranspose) {
  ref::Mat ra = testutil::random_mat(9, 14, 0.4, 2);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 14), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(w, GrB_NULL, GrB_NULL, GrB_MAX_MONOID_FP64, a,
                       GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::reduce_rows(ref::transpose(ra), fn_max));
  GrB_free(&a);
  GrB_free(&w);
}

TEST(ReduceTest, MatrixToVectorMaskedAccum) {
  ref::Mat ra = testutil::random_mat(10, 10, 0.4, 3);
  ref::Vec rw = testutil::random_vec(10, 0.4, 4);
  ref::Vec rm = testutil::random_vec(10, 0.5, 5);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Vector w = testutil::make_vector(rw);
  GrB_Vector m = testutil::make_vector(rm);
  ASSERT_EQ(GrB_reduce(w, m, GrB_PLUS_FP64, GrB_PLUS_MONOID_FP64, a,
                       GrB_NULL),
            GrB_SUCCESS);
  ref::Spec spec;
  spec.have_mask = true;
  spec.accum = fn_plus;
  EXPECT_VECTOR_EQ(
      w, ref::writeback(rw, ref::reduce_rows(ra, fn_plus), &rm, spec));
  GrB_free(&a);
  GrB_free(&w);
  GrB_free(&m);
}

TEST(ReduceTest, TypedScalarFromVector) {
  ref::Vec ru = testutil::random_vec(30, 0.5, 6);
  GrB_Vector u = testutil::make_vector(ru);
  double sum = 0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  ref::Cell want = ref::reduce_all(ru, fn_plus);
  EXPECT_EQ(sum, want.value_or(0.0));
  // With an accumulator the old value folds in.
  double acc = 100;
  ASSERT_EQ(GrB_reduce(&acc, GrB_PLUS_FP64, GrB_PLUS_MONOID_FP64, u,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(acc, 100 + want.value_or(0.0));
  GrB_free(&u);
}

TEST(ReduceTest, TypedScalarFromEmptyIsIdentity) {
  // GraphBLAS 1.X behaviour the paper's §VI contrasts against: typed
  // output cannot represent "empty", so the identity comes back.
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 10), GrB_SUCCESS);
  double sum = -1;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(sum, 0.0);
  double mn = -1;
  ASSERT_EQ(GrB_reduce(&mn, GrB_NULL, GrB_MIN_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(mn, std::numeric_limits<double>::infinity());
  GrB_free(&u);
}

TEST(ReduceTest, ScalarOutputFromEmptyIsEmpty) {
  // The 2.0 GrB_Scalar variant "can instead return an empty container"
  // (paper §VI) — the headline behavioural difference.
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 10), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nvals = 9;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&u);
  GrB_free(&s);
}

TEST(ReduceTest, ScalarOutputMonoidMatrix) {
  ref::Mat ra = testutil::random_mat(12, 12, 0.4, 7);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_MIN_MONOID_FP64, a, GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  ASSERT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, ref::reduce_all(ra, fn_min).value());
  GrB_free(&a);
  GrB_free(&s);
}

TEST(ReduceTest, ScalarOutputWithBinaryOp) {
  // Table II: "we can now define reduction to scalar that takes
  // GrB_BinaryOp as the reducing function".
  ref::Vec ru = testutil::random_vec(20, 0.6, 8);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_MAX_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  ASSERT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, ref::reduce_all(ru, fn_max).value());
  // Empty input with a plain binary op: empty output, no identity needed.
  GrB_Vector empty = nullptr;
  ASSERT_EQ(GrB_Vector_new(&empty, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_MAX_FP64, empty, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nvals = 9;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&u);
  GrB_free(&empty);
  GrB_free(&s);
}

TEST(ReduceTest, ScalarOutputAccumKeepsOldWhenEmpty) {
  GrB_Vector empty = nullptr;
  ASSERT_EQ(GrB_Vector_new(&empty, GrB_FP64, 5), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 42.0), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_PLUS_FP64, GrB_PLUS_MONOID_FP64, empty,
                       GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  ASSERT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 42.0);  // accumulator keeps the old value
  // Without accum, the empty reduction clears the scalar.
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, empty, GrB_NULL),
            GrB_SUCCESS);
  GrB_Index nvals = 1;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&empty);
  GrB_free(&s);
}

TEST(ReduceTest, ScalarReduceIsDeferrable) {
  // §VI: the GrB_Scalar variant joins the deferred sequence; the typed
  // variant cannot defer.  Observable: results are identical after wait.
  ref::Mat ra = testutil::random_mat(10, 10, 0.5, 9);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_INT64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_INT64, a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(s, GrB_MATERIALIZE), GrB_SUCCESS);
  int64_t out = 0;
  ASSERT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(double(out), ref::reduce_all(ra, fn_plus).value());
  GrB_free(&a);
  GrB_free(&s);
}

TEST(ReduceTest, TerminalEarlyExitStillCorrect) {
  // LOR over a vector with an early `true` exercises the terminal path.
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_BOOL, 1000), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 1000; ++i)
    ASSERT_EQ(GrB_Vector_setElement(u, i == 3, i), GrB_SUCCESS);
  bool any = false;
  ASSERT_EQ(GrB_reduce(&any, GrB_NULL, GrB_LOR_MONOID_BOOL, u, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_TRUE(any);
  bool all = true;
  ASSERT_EQ(GrB_reduce(&all, GrB_NULL, GrB_LAND_MONOID_BOOL, u, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_FALSE(all);
  GrB_free(&u);
}

}  // namespace
