// GrB_DESC_T0/T1 differential: a descriptor transpose must equal the
// explicit GrB_transpose composition bitwise, for every storage format
// and thread count.  This is the contract that lets the cached lazy
// transpose view (DESIGN.md §15) replace per-call recomputation: the
// view is built from the same counting sort, so descriptor reads see
// byte-identical operands whether the cache hits or misses.
//
// Square (non-symmetric, real-valued) inputs keep every T0/T1/T0T1
// combination shape-valid; a missed or spurious transpose still shows,
// since A != A' for these matrices and the values are fold-order
// sensitive doubles.
#include <gtest/gtest.h>

#include <string>

#include "containers/format.hpp"
#include "core/global.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

constexpr GrB_Index kN = 34;

struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

struct PolicyGuard {
  grb::FormatPolicy saved;
  explicit PolicyGuard(grb::FormatPolicy p) : saved(grb::format_policy()) {
    grb::set_format_policy(p);
  }
  ~PolicyGuard() { grb::set_format_policy(saved); }
};

struct TransCacheGuard {
  bool saved;
  explicit TransCacheGuard(bool on)
      : saved(grb::transpose_cache_enabled()) {
    grb::set_transpose_cache_enabled(on);
  }
  ~TransCacheGuard() { grb::set_transpose_cache_enabled(saved); }
};

GrB_Context make_ctx(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_BLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

ref::Mat real_mat(double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(kN, kN);
  for (auto& c : m.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return m;
}

ref::Vec real_vec(double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(kN);
  for (auto& c : v.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return v;
}

GrB_Matrix transposed(GrB_Matrix a, GrB_Context ctx) {
  GrB_Matrix at = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&at, GrB_FP64, kN, kN, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_transpose(at, GrB_NULL, GrB_NULL, a, GrB_NULL),
            GrB_SUCCESS);
  return at;
}

void expect_mats(GrB_Matrix want, GrB_Matrix got, const std::string& tag) {
  EXPECT_TRUE(
      testutil::mats_equal(testutil::to_ref(want), testutil::to_ref(got)))
      << tag;
}

void expect_vecs(GrB_Vector want, GrB_Vector got, const std::string& tag) {
  EXPECT_TRUE(
      testutil::vecs_equal(testutil::to_ref(want), testutil::to_ref(got)))
      << tag;
}

// One full sweep at a fixed (policy, nthreads): every op with a
// descriptor transpose vs the same op over the explicit transpose.
void check_desc_transpose(int nthreads, const std::string& tag) {
  GrB_Context ctx = make_ctx(nthreads);
  ref::Mat ra = real_mat(0.3, 6101);
  ref::Mat rb = real_mat(0.25, 6102);
  ref::Vec ru = real_vec(0.6, 6103);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Vector u = testutil::make_vector(ru, ctx);
  GrB_Matrix at = transposed(a, ctx);
  GrB_Matrix bt = transposed(b, ctx);

  GrB_Matrix c1 = nullptr, c2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c1, GrB_FP64, kN, kN, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c2, GrB_FP64, kN, kN, ctx), GrB_SUCCESS);
  // mxm T0, run twice: the second descriptor read of the same snapshot
  // must hit the cached transpose view and stay byte-identical.
  for (int rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(GrB_mxm(c1, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, a, b, GrB_DESC_T0),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_mxm(c2, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, at, b, GrB_NULL),
              GrB_SUCCESS);
    expect_mats(c2, c1, "mxm T0 rep=" + std::to_string(rep) + " " + tag);
  }
  // mxm T1: AB' == A(B').
  EXPECT_EQ(GrB_mxm(c1, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, GrB_DESC_T1),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, bt, GrB_NULL),
            GrB_SUCCESS);
  expect_mats(c2, c1, "mxm T1 " + tag);
  // mxm T0T1: A'B' == (A')(B').
  EXPECT_EQ(GrB_mxm(c1, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, GrB_DESC_T0T1),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    at, bt, GrB_NULL),
            GrB_SUCCESS);
  expect_mats(c2, c1, "mxm T0T1 " + tag);
  GrB_free(&c1);
  GrB_free(&c2);

  // mxv T0: A'u == (A')u.
  GrB_Vector w1 = nullptr, w2 = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w1, GrB_FP64, kN, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w2, GrB_FP64, kN, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxv(w1, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, u, GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxv(w2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    at, u, GrB_NULL),
            GrB_SUCCESS);
  expect_vecs(w2, w1, "mxv T0 " + tag);

  // vxm T1 (the matrix is input 1): uA' == u(A').
  EXPECT_EQ(GrB_vxm(w1, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    u, a, GrB_DESC_T1),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_vxm(w2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    u, at, GrB_NULL),
            GrB_SUCCESS);
  expect_vecs(w2, w1, "vxm T1 " + tag);
  GrB_free(&w1);
  GrB_free(&w2);

  // eWiseAdd T0 (A' + B) and eWiseMult T1 (A .* B').
  GrB_Matrix e1 = nullptr, e2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&e1, GrB_FP64, kN, kN, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&e2, GrB_FP64, kN, kN, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(e1, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, b,
                         GrB_DESC_T0),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(e2, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, at, b,
                         GrB_NULL),
            GrB_SUCCESS);
  expect_mats(e2, e1, "eWiseAdd T0 " + tag);
  EXPECT_EQ(GrB_eWiseMult(e1, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_DESC_T1),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseMult(e2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, bt,
                          GrB_NULL),
            GrB_SUCCESS);
  expect_mats(e2, e1, "eWiseMult T1 " + tag);
  GrB_free(&e1);
  GrB_free(&e2);

  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&u);
  GrB_free(&at);
  GrB_free(&bt);
  GrB_free(&ctx);
}

TEST(DescTranspose, AllFormatsAllThreads) {
  ThresholdGuard threshold;
  const struct {
    const char* name;
    grb::FormatPolicy policy;
  } legs[] = {
      {"csr", grb::FormatPolicy::kCsr},
      {"hyper", grb::FormatPolicy::kHyper},
      {"bitmap", grb::FormatPolicy::kBitmap},
      {"dense", grb::FormatPolicy::kDense},
      {"auto", grb::FormatPolicy::kAuto},
  };
  for (const auto& leg : legs) {
    PolicyGuard policy(leg.policy);
    for (int nthreads : {1, 8}) {
      check_desc_transpose(
          nthreads,
          std::string(leg.name) + " nthreads=" + std::to_string(nthreads));
    }
  }
}

// The cache-off ablation (GRB_TRANSPOSE_CACHE=0 / the bench baseline)
// must produce the same bytes as the cached path.
TEST(DescTranspose, CacheOffMatchesCacheOn) {
  ThresholdGuard threshold;
  PolicyGuard policy(grb::FormatPolicy::kAuto);
  {
    TransCacheGuard cache(true);
    check_desc_transpose(1, "cache-on");
  }
  {
    TransCacheGuard cache(false);
    check_desc_transpose(1, "cache-off");
  }
}

}  // namespace
