#!/usr/bin/env python3
"""Self-tests for tools/grb_analyze.py.

Each fixture under tests/tools/fixtures/ is a miniature repository
(include/graphblas/GraphBLAS.h + src/ files) seeding one known
violation per rule family, plus suppression-mechanism probes (an inline
allow marker, an honored suppression-file entry, and a deliberately
stale one).  The test asserts, per fixture, the EXACT per-rule finding
counts and the suppressed count — a rule that silently stops firing is
as much a failure as one that over-fires.  Finally the analyzer runs
against the real repository, which must report zero unsuppressed
findings (the ci gate's definition of green).

Usage: run_analyzer_tests.py [--repo DIR]
"""

import argparse
import collections
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")

# fixture name -> (expected per-rule finding counts, expected suppressed)
EXPECT = {
    "alloc_under_lock": ({"no-alloc-under-lock": 1}, 1),
    "barrier_read": ({"barrier-before-read": 1}, 0),
    "fusion_grant": ({"fusion-grant-coverage": 3}, 0),
    "decision_audit": ({"decision-audit-coverage": 2}, 0),
    "atomic_order": ({"atomic-order-explicit": 1, "stale-suppression": 1}, 1),
    "entry_parity": ({"entry-point-parity": 4}, 0),
}


def run_analyzer(repo_root, analyzer, repo):
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as tf:
        report_path = tf.name
    try:
        proc = subprocess.run(
            [sys.executable, analyzer, "--repo", repo,
             "--json", report_path, "--frontend", "text"],
            capture_output=True, text=True)
        try:
            with open(report_path) as f:
                report = json.load(f)
        except (OSError, ValueError):
            report = None
        return proc, report
    finally:
        os.unlink(report_path)


def main(argv):
    ap = argparse.ArgumentParser()
    ap.add_argument("--repo", default=os.path.dirname(os.path.dirname(HERE)),
                    help="real repository root for the clean-tree check")
    args = ap.parse_args(argv)
    repo = os.path.abspath(args.repo)
    analyzer = os.path.join(repo, "tools", "grb_analyze.py")

    failures = []

    def check(cond, what):
        tag = "ok" if cond else "FAIL"
        print("  %-4s %s" % (tag, what))
        if not cond:
            failures.append(what)

    for name in sorted(EXPECT):
        want_counts, want_suppressed = EXPECT[name]
        fixture = os.path.join(FIXTURES, name)
        print("fixture %s:" % name)
        if not os.path.isdir(fixture):
            check(False, "fixture directory exists")
            continue
        proc, report = run_analyzer(repo, analyzer, fixture)
        if report is None:
            check(False, "analyzer produced a JSON report (stdout: %r, "
                         "stderr: %r)" % (proc.stdout[-400:],
                                          proc.stderr[-400:]))
            continue
        got = collections.Counter(f["rule"] for f in report["findings"])
        for rule, n in sorted(want_counts.items()):
            check(got.get(rule, 0) == n,
                  "%s fires exactly %d time(s) [got %d]"
                  % (rule, n, got.get(rule, 0)))
        extra = {r: n for r, n in got.items() if r not in want_counts}
        check(not extra, "no findings from other rules [got %s]" % (
            dict(extra) or "none"))
        check(report["suppressed"] == want_suppressed,
              "suppressed == %d [got %d]"
              % (want_suppressed, report["suppressed"]))
        want_exit = 1 if want_counts else 0
        check(proc.returncode == want_exit,
              "exit status %d [got %d]" % (want_exit, proc.returncode))

    print("clean tree (%s):" % repo)
    proc, report = run_analyzer(repo, analyzer, repo)
    check(report is not None, "analyzer produced a JSON report")
    if report is not None:
        check(not report["findings"],
              "zero unsuppressed findings [got %d]" % len(report["findings"]))
        check(report["functions"] > 500,
              "program model is populated (%d functions)"
              % report["functions"])
    check(proc.returncode == 0, "exit status 0 [got %d]" % proc.returncode)

    if failures:
        print("FAILED: %d assertion(s)" % len(failures))
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
