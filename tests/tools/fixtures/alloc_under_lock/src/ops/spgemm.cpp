// Fixture: no-alloc-under-lock.
//  * bad_hot_path enters an allocation path (through a callee) with the
//    lock held — the seeded violation, found via the call graph.
//  * tolerated_hot_path allocates directly under the lock but carries an
//    inline grb-analyze allow marker — must be counted as suppressed.
#include <vector>

namespace grb {

int grow_table(std::vector<int>& t) {
  t.push_back(1);
  return 0;
}

int bad_hot_path(std::vector<int>& t) {
  MutexLock lock(mu_);
  grow_table(t);
  return 0;
}

int tolerated_hot_path(std::vector<int>& t) {
  MutexLock lock(mu_);
  t.push_back(2);  // grb-analyze: allow(no-alloc-under-lock)
  return 0;
}

}  // namespace grb
