// Fixture header: minimal repo-root marker for grb_analyze self-tests.
// No entry points on purpose — this fixture exercises only the
// no-alloc-under-lock rule.
