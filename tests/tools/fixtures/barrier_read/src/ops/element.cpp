// Fixture: barrier-before-read.
//  * Vector::extract_element dereferences published container data with
//    no snapshot()/complete()/flush_pending() on any prior path — the
//    seeded violation.
//  * Vector::nvals barriers via snapshot() before touching data — clean.
namespace grb {

Info Vector::extract_element(void* out, Index i) {
  const VectorData* d = current_data();
  *static_cast<int*>(out) = d->vals[i];
  return Info::kSuccess;
}

Info Vector::nvals(Index* out) {
  GRB_RETURN_IF_ERROR(snapshot(&snap_));
  *out = static_cast<Index>(snap_->ind.size());
  return Info::kSuccess;
}

}  // namespace grb
