// Fixture header: minimal repo-root marker for grb_analyze self-tests.
// This fixture exercises the atomic-order-explicit rule plus the
// suppression file (one honored entry, one deliberately stale).
