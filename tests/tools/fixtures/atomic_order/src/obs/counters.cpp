// Fixture: atomic-order-explicit.
//  * read_calls uses a defaulted (seq_cst) load — the seeded violation.
//  * read_errors names its order — clean.
//  * bump_suppressed uses a defaulted fetch_add but is covered by the
//    fixture's suppression file — must be counted as suppressed.
#include <atomic>

namespace grb::obs {

std::atomic<unsigned long> g_calls{0};
std::atomic<unsigned long> g_errors{0};
std::atomic<unsigned long> g_suppressed{0};

unsigned long read_calls() {
  return g_calls.load();
}

unsigned long read_errors() {
  return g_errors.load(std::memory_order_relaxed);
}

void bump_suppressed() {
  g_suppressed.fetch_add(1);
}

}  // namespace grb::obs
