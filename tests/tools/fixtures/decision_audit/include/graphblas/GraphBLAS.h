// Fixture header: minimal repo-root marker for grb_analyze self-tests.
// This fixture exercises only the decision-audit-coverage rule.
