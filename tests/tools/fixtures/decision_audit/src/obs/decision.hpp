// Fixture registry: kernel.cpp is legitimately registered; ghost.cpp is
// registered but never emits (stale registration — one of the seeded
// violations).
#define GRB_DECISION_SITES \
  "src/ops/kernel.cpp",    \
  "src/ops/ghost.cpp"

namespace grb {
namespace obs {

struct DecisionTicket {};
enum class DecisionSite { kExecPath };

DecisionTicket decision_record(DecisionSite site, const char* chosen,
                               const char* rejected, double predicted,
                               double alternative);

}  // namespace obs
}  // namespace grb
