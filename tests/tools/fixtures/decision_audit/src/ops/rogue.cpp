// Fixture: emits a DecisionRecord from a file that is NOT listed in
// GRB_DECISION_SITES — a seeded violation.
#include "obs/decision.hpp"

namespace grb {

void rogue_heuristic(double est_a, double est_b) {
  obs::DecisionTicket t = obs::decision_record(
      obs::DecisionSite::kExecPath, "fast", "slow", est_a, est_b);
  (void)t;
}

}  // namespace grb
