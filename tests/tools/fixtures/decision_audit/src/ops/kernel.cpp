// Fixture: emits a DecisionRecord from a file that IS listed in
// GRB_DECISION_SITES — the compliant case, no finding expected.
#include "obs/decision.hpp"

namespace grb {

void adaptive_kernel(double est_a, double est_b) {
  obs::DecisionTicket t = obs::decision_record(
      obs::DecisionSite::kExecPath, "a", "b", est_a, est_b);
  (void)t;
}

}  // namespace grb
