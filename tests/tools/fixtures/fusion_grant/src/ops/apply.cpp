// Fixture: a registered kernel granting a fusable capability and
// enqueueing with an explicit node — fully compliant.
namespace grb {

Info defer_map(Vector* w, std::function<Info()> op) {
  FuseNode node;
  node.kind = FuseNode::Kind::kMap;
  return defer_or_run(w, std::move(op), std::move(node));
}

}  // namespace grb
