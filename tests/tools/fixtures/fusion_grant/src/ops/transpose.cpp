// Fixture: enqueues deferred work relying on the defaulted FuseNode
// parameter instead of an explicit grant — a seeded violation.
namespace grb {

Info transpose(Matrix* c, std::function<Info()> op) {
  return defer_or_run(c, std::move(op));
}

}  // namespace grb
