// Fixture registration table: apply.cpp is legitimately registered;
// ghost.cpp is registered but grants nothing (stale registration — one
// of the seeded violations).
#define GRB_FUSABLE_KERNEL_FILES \
  "src/ops/apply.cpp",           \
  "src/ops/ghost.cpp"
