// Fixture: grants the fusable kZip capability from a file that is NOT
// in GRB_FUSABLE_KERNEL_FILES — a seeded violation.
namespace grb {

Info defer_rogue(Vector* w, std::function<Info()> op) {
  FuseNode node;
  node.kind = FuseNode::Kind::kZip;
  return defer_or_run(w, std::move(op), std::move(node));
}

}  // namespace grb
