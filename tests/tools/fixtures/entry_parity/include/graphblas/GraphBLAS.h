// Fixture: entry-point-parity.  Seeded violations:
//  * GrB_missing_impl is declared but never defined;
//  * GxB_raw does not route through the grb_detail::guarded veneer;
//  * GxB_raw is implemented but absent from GxB_EXTENSIONS;
//  * the registry lists GxB_listed_but_missing, which does not exist.
// GrB_ok is fully compliant and must produce no finding.
typedef int GrB_Info;

namespace grb_detail {
template <typename F>
GrB_Info guarded(F f) {
  return f();
}
}  // namespace grb_detail

GrB_Info GrB_missing_impl(int x);

inline GrB_Info GrB_ok(int x) {
  return grb_detail::guarded([&]() -> GrB_Info { return x; });
}

inline GrB_Info GxB_raw(int x) { return x; }

static const char* GxB_EXTENSIONS[] = {
    "GxB_listed_but_missing",
};
