// GrB_Scalar — every method of the paper's Table I, plus emptiness
// semantics (§VI) and error paths.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(ScalarTest, NewStartsEmpty) {
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  GrB_Index nvals = 99;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  double out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_NO_VALUE);
  EXPECT_EQ(GrB_free(&s), GrB_SUCCESS);
  EXPECT_EQ(s, nullptr);
}

TEST(ScalarTest, SetExtractRoundTrip) {
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 3.25), GrB_SUCCESS);
  GrB_Index nvals = 0;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 1u);
  double out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 3.25);
  // Overwrite.
  ASSERT_EQ(GrB_Scalar_setElement(s, -1.0), GrB_SUCCESS);
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, -1.0);
  GrB_free(&s);
}

TEST(ScalarTest, SetElementCastsIntoDomain) {
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_INT32), GrB_SUCCESS);
  // §VI motivation: "true" is an int in C; the container still knows its
  // own domain and casts on the way in and out.
  ASSERT_EQ(GrB_Scalar_setElement(s, 7.9), GrB_SUCCESS);
  int32_t i = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&i, s), GrB_SUCCESS);
  EXPECT_EQ(i, 7);
  double d = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&d, s), GrB_SUCCESS);
  EXPECT_EQ(d, 7.0);
  GrB_free(&s);
}

TEST(ScalarTest, Clear) {
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_UINT8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 200), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_clear(s), GrB_SUCCESS);
  GrB_Index nvals = 1;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&s);
}

TEST(ScalarTest, Dup) {
  GrB_Scalar s = nullptr, d = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP32), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 1.5f), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_dup(&d, s), GrB_SUCCESS);
  // The duplicate carries the type assigned at creation (§VI).
  float out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, d), GrB_SUCCESS);
  EXPECT_EQ(out, 1.5f);
  // Mutating the duplicate does not affect the original (COW isolation).
  ASSERT_EQ(GrB_Scalar_setElement(d, 9.0f), GrB_SUCCESS);
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 1.5f);
  GrB_free(&s);
  GrB_free(&d);
}

TEST(ScalarTest, DupOfEmptyIsEmpty) {
  GrB_Scalar s = nullptr, d = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_dup(&d, s), GrB_SUCCESS);
  GrB_Index nvals = 1;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, d), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&s);
  GrB_free(&d);
}

TEST(ScalarTest, UdtScalar) {
  struct Pair {
    int32_t a, b;
  };
  GrB_Type pair_type = nullptr;
  ASSERT_EQ(GrB_Type_new(&pair_type, sizeof(Pair)), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, pair_type), GrB_SUCCESS);
  Pair in{3, -4};
  ASSERT_EQ(GrB_Scalar_setElement_UDT(s, &in, pair_type), GrB_SUCCESS);
  Pair out{0, 0};
  EXPECT_EQ(GrB_Scalar_extractElement_UDT(&out, pair_type, s), GrB_SUCCESS);
  EXPECT_EQ(out.a, 3);
  EXPECT_EQ(out.b, -4);
  // A different type (even of the same size) is a domain mismatch.
  GrB_Type other = nullptr;
  ASSERT_EQ(GrB_Type_new(&other, sizeof(Pair)), GrB_SUCCESS);
  EXPECT_EQ(GrB_Scalar_extractElement_UDT(&out, other, s),
            GrB_DOMAIN_MISMATCH);
  GrB_free(&s);
  GrB_free(&pair_type);
  GrB_free(&other);
}

TEST(ScalarTest, NullArguments) {
  GrB_Scalar s = nullptr;
  EXPECT_EQ(GrB_Scalar_new(nullptr, GrB_FP64), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Scalar_new(&s, nullptr), GrB_NULL_POINTER);
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  EXPECT_EQ(GrB_Scalar_nvals(nullptr, s), GrB_NULL_POINTER);
  double* null_out = nullptr;
  EXPECT_EQ(GrB_Scalar_extractElement(null_out, s), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Scalar_dup(nullptr, s), GrB_NULL_POINTER);
  GrB_free(&s);
}

TEST(ScalarTest, NonblockingDeferredSet) {
  // In nonblocking mode setElement may defer; nvals forces completion.
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_INT64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, int64_t{42}), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(s, GrB_COMPLETE), GrB_SUCCESS);
  int64_t out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 42);
  GrB_free(&s);
}

TEST(ScalarTest, ContextHomedScalar) {
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64, testutil::blocking_context()),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 5.0), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 5.0);
  EXPECT_EQ(GrB_Context_switch(s, GrB_NULL), GrB_SUCCESS);
  GrB_free(&s);
}

}  // namespace
