// GrB_Matrix container: lifecycle, build, element access, pending
// tuples, resize, dup, diag, and API error paths.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(MatrixTest, NewDimsNvals) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 9), GrB_SUCCESS);
  GrB_Index nr = 0, nc = 0, nv = 1;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&nc, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nr, 4u);
  EXPECT_EQ(nc, 9u);
  EXPECT_EQ(nv, 0u);
  GrB_free(&a);
}

TEST(MatrixTest, BuildSortsRowsAndColumns) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  GrB_Index ri[] = {2, 0, 2, 1};
  GrB_Index ci[] = {1, 2, 0, 1};
  double vals[] = {21, 2, 20, 11};
  ASSERT_EQ(GrB_Matrix_build(a, ri, ci, vals, 4, GrB_NULL), GrB_SUCCESS);
  GrB_Index orow[4], ocol[4];
  double ovals[4];
  GrB_Index n = 4;
  ASSERT_EQ(GrB_Matrix_extractTuples(orow, ocol, ovals, &n, a),
            GrB_SUCCESS);
  ASSERT_EQ(n, 4u);
  // Row-major sorted order.
  EXPECT_EQ(orow[0], 0u);
  EXPECT_EQ(ocol[0], 2u);
  EXPECT_EQ(ovals[0], 2.0);
  EXPECT_EQ(orow[1], 1u);
  EXPECT_EQ(ocol[1], 1u);
  EXPECT_EQ(orow[2], 2u);
  EXPECT_EQ(ocol[2], 0u);
  EXPECT_EQ(orow[3], 2u);
  EXPECT_EQ(ocol[3], 1u);
  GrB_free(&a);
}

TEST(MatrixTest, BuildWithDupAndErrors) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT64, 2, 2), GrB_SUCCESS);
  GrB_Index ri[] = {0, 0, 0};
  GrB_Index ci[] = {1, 1, 1};
  int64_t vals[] = {1, 2, 4};
  ASSERT_EQ(GrB_Matrix_build(a, ri, ci, vals, 3, GrB_PLUS_INT64),
            GrB_SUCCESS);
  int64_t out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 7);
  // Non-empty output rejected.
  EXPECT_EQ(GrB_Matrix_build(a, ri, ci, vals, 3, GrB_PLUS_INT64),
            GrB_OUTPUT_NOT_EMPTY);
  GrB_free(&a);

  // NULL dup + duplicates -> execution error (paper §IX).
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT64, 2, 2), GrB_SUCCESS);
  GrB_Info info = GrB_Matrix_build(a, ri, ci, vals, 3, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(a, GrB_MATERIALIZE);
  EXPECT_EQ(info, GrB_INVALID_VALUE);
  GrB_free(&a);

  // Out-of-range coordinate -> execution error.
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT64, 2, 2), GrB_SUCCESS);
  GrB_Index bad_ri[] = {5};
  GrB_Index bad_ci[] = {0};
  info = GrB_Matrix_build(a, bad_ri, bad_ci, vals, 1, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(a, GrB_MATERIALIZE);
  EXPECT_EQ(info, GrB_INDEX_OUT_OF_BOUNDS);
  GrB_free(&a);
}

TEST(MatrixTest, SetGetRemoveElement) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.5, 1, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 2.5, 3, 0), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 1.5);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 2, 2), GrB_NO_VALUE);
  ASSERT_EQ(GrB_Matrix_setElement(a, 9.0, 1, 2), GrB_SUCCESS);  // overwrite
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 9.0);
  ASSERT_EQ(GrB_Matrix_removeElement(a, 1, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 2), GrB_NO_VALUE);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  // Bounds.
  EXPECT_EQ(GrB_Matrix_setElement(a, 1.0, 4, 0), GrB_INVALID_INDEX);
  EXPECT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 4), GrB_INVALID_INDEX);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 9), GrB_INVALID_INDEX);
  GrB_free(&a);
}

TEST(MatrixTest, PendingTupleBurst) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 32, 32), GrB_SUCCESS);
  // Writes + overwrites + deletes, folded once at the nvals query.
  for (GrB_Index i = 0; i < 32; ++i)
    for (GrB_Index j = 0; j < 32; ++j)
      ASSERT_EQ(GrB_Matrix_setElement(a, double(i + j), i, j), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 32; ++i)
    ASSERT_EQ(GrB_Matrix_removeElement(a, i, i), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 123.0, 0, 0), GrB_SUCCESS);
  GrB_Index nv = 0;
  ASSERT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nv, 32u * 32u - 31u);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 123.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 5, 5), GrB_NO_VALUE);
  GrB_free(&a);
}

TEST(MatrixTest, DupIsIndependent) {
  GrB_Matrix a = nullptr, b = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_dup(&b, a), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(b, 2.0, 1, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_removeElement(b, 0, 0), GrB_SUCCESS);
  GrB_Index na = 0, nb = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&na, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nb, b), GrB_SUCCESS);
  EXPECT_EQ(na, 1u);
  EXPECT_EQ(nb, 1u);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 1.0);
  GrB_free(&a);
  GrB_free(&b);
}

TEST(MatrixTest, ResizeShrinkDropsOutside) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 4; ++i)
    ASSERT_EQ(GrB_Matrix_setElement(a, double(i), i, i), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_resize(a, 2, 3), GrB_SUCCESS);
  GrB_Index nr, nc, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&nc, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nr, 2u);
  EXPECT_EQ(nc, 3u);
  EXPECT_EQ(nv, 2u);
  ASSERT_EQ(GrB_Matrix_resize(a, 5, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nv, 2u);
  EXPECT_EQ(GrB_Matrix_setElement(a, 7.0, 4, 4), GrB_SUCCESS);
  GrB_free(&a);
}

TEST(MatrixTest, ClearKeepsDims) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 2, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_clear(a), GrB_SUCCESS);
  GrB_Index nr, nc, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_ncols(&nc, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  EXPECT_EQ(nr, 3u);
  EXPECT_EQ(nc, 5u);
  EXPECT_EQ(nv, 0u);
  GrB_free(&a);
}

TEST(MatrixTest, DiagBuildsOffsets) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 2.0, 2), GrB_SUCCESS);

  GrB_Matrix d0 = nullptr, dpos = nullptr, dneg = nullptr;
  ASSERT_EQ(GrB_Matrix_diag(&d0, v, 0), GrB_SUCCESS);
  GrB_Index nr;
  EXPECT_EQ(GrB_Matrix_nrows(&nr, d0), GrB_SUCCESS);
  EXPECT_EQ(nr, 3u);
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, d0, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 1.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, d0, 2, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);

  ASSERT_EQ(GrB_Matrix_diag(&dpos, v, 1), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nrows(&nr, dpos), GrB_SUCCESS);
  EXPECT_EQ(nr, 4u);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, dpos, 0, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 1.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, dpos, 2, 3), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);

  ASSERT_EQ(GrB_Matrix_diag(&dneg, v, -2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nrows(&nr, dneg), GrB_SUCCESS);
  EXPECT_EQ(nr, 5u);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, dneg, 2, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 1.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&out, dneg, 4, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);

  GrB_free(&v);
  GrB_free(&d0);
  GrB_free(&dpos);
  GrB_free(&dneg);
}

TEST(MatrixTest, RandomRoundTripThroughTuples) {
  // Property: build(extractTuples(A)) == A for random matrices.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ref::Mat m = testutil::random_mat(17, 23, 0.2, seed);
    GrB_Matrix a = testutil::make_matrix(m);
    EXPECT_MATRIX_EQ(a, m);
    GrB_free(&a);
  }
}

}  // namespace
