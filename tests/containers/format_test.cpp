// Polymorphic storage formats (DESIGN.md §15): per-object pins via
// GxB_Matrix/Vector_Option_set, the global GxB_Format policy, format
// introspection, conversion round-trips, format-aware element access,
// and the cost model's direct choices.
#include <gtest/gtest.h>

#include "containers/format.hpp"
#include "tests/grb_test_util.hpp"

namespace {

using testutil::random_mat;
using testutil::random_vec;

// Restores the global policy (tests here force it).
struct PolicyGuard {
  grb::FormatPolicy saved;
  PolicyGuard() : saved(grb::format_policy()) {}
  ~PolicyGuard() { grb::set_format_policy(saved); }
};

GxB_Format matrix_format(GrB_Matrix a) {
  GxB_Format f = GxB_FORMAT_AUTO;
  EXPECT_EQ(GxB_Matrix_Option_get(a, GxB_FORMAT, &f), GrB_SUCCESS);
  return f;
}

GxB_Format vector_format(GrB_Vector v) {
  GxB_Format f = GxB_FORMAT_AUTO;
  EXPECT_EQ(GxB_Vector_Option_get(v, GxB_FORMAT, &f), GrB_SUCCESS);
  return f;
}

TEST(FormatTest, MatrixPinRoundTripsEveryFormat) {
  PolicyGuard guard;  // env-independent: assert the auto policy
  grb::set_format_policy(grb::FormatPolicy::kAuto);
  ref::Mat rm = random_mat(20, 16, 0.3, 151);
  GrB_Matrix a = testutil::make_matrix(rm);
  ASSERT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(matrix_format(a), GxB_FORMAT_CSR);  // small blocks stay csr

  for (GxB_Format f : {GxB_FORMAT_HYPER, GxB_FORMAT_BITMAP,
                       GxB_FORMAT_CSR, GxB_FORMAT_HYPER}) {
    ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, f), GrB_SUCCESS);
    EXPECT_EQ(matrix_format(a), f);
    EXPECT_MATRIX_EQ(a, rm);  // contents survive every conversion
  }
  // Unpin: the cost model re-adapts (small block keeps current format).
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_AUTO),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(a, rm);
  GrB_free(&a);
}

TEST(FormatTest, MatrixDensePinNeedsFullBlock) {
  // Full block: dense sticks.
  ref::Mat full = random_mat(8, 8, 1.1, 152);
  GrB_Matrix a = testutil::make_matrix(full);
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_DENSE),
            GrB_SUCCESS);
  EXPECT_EQ(matrix_format(a), GxB_FORMAT_DENSE);
  EXPECT_MATRIX_EQ(a, full);
  GrB_free(&a);

  // Partial block: dense cannot represent a hole; degrades to bitmap.
  ref::Mat part = random_mat(8, 8, 0.5, 153);
  ASSERT_LT(part.nvals(), 64u);
  GrB_Matrix b = testutil::make_matrix(part);
  ASSERT_EQ(GxB_Matrix_Option_set(b, GxB_FORMAT, GxB_FORMAT_DENSE),
            GrB_SUCCESS);
  EXPECT_EQ(matrix_format(b), GxB_FORMAT_BITMAP);
  EXPECT_MATRIX_EQ(b, part);
  GrB_free(&b);
}

TEST(FormatTest, ExtractElementEveryMatrixFormat) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 6, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 2.5, 1, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, -4.0, 4, 0), GrB_SUCCESS);
  for (GxB_Format f : {GxB_FORMAT_CSR, GxB_FORMAT_HYPER, GxB_FORMAT_BITMAP,
                       GxB_FORMAT_DENSE}) {
    ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, f), GrB_SUCCESS);
    double out = 0.0;
    EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 1, 3), GrB_SUCCESS);
    EXPECT_EQ(out, 2.5);
    EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 4, 0), GrB_SUCCESS);
    EXPECT_EQ(out, -4.0);
    EXPECT_EQ(GrB_Matrix_extractElement(&out, a, 0, 0), GrB_NO_VALUE);
    GrB_Index nv = 0;
    EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
    EXPECT_EQ(nv, 2u);
  }
  GrB_free(&a);
}

TEST(FormatTest, VectorPinRoundTripsEveryFormat) {
  PolicyGuard guard;
  grb::set_format_policy(grb::FormatPolicy::kAuto);
  ref::Vec rv = random_vec(40, 0.4, 154);
  GrB_Vector u = testutil::make_vector(rv);
  ASSERT_EQ(GrB_wait(u, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(vector_format(u), GxB_FORMAT_CSR);  // "sparse" maps to CSR

  ASSERT_EQ(GxB_Vector_Option_set(u, GxB_FORMAT, GxB_FORMAT_BITMAP),
            GrB_SUCCESS);
  EXPECT_EQ(vector_format(u), GxB_FORMAT_BITMAP);
  EXPECT_VECTOR_EQ(u, rv);
  double out = 0.0;
  for (GrB_Index i = 0; i < rv.n; ++i) {
    GrB_Info want = rv.at(i) ? GrB_SUCCESS : GrB_NO_VALUE;
    EXPECT_EQ(GrB_Vector_extractElement(&out, u, i), want);
    if (rv.at(i)) EXPECT_EQ(out, *rv.at(i));
  }
  // Dense needs a full vector; a partial one degrades to bitmap.
  ASSERT_EQ(GxB_Vector_Option_set(u, GxB_FORMAT, GxB_FORMAT_DENSE),
            GrB_SUCCESS);
  EXPECT_EQ(vector_format(u), GxB_FORMAT_BITMAP);
  ASSERT_EQ(GxB_Vector_Option_set(u, GxB_FORMAT, GxB_FORMAT_CSR),
            GrB_SUCCESS);
  EXPECT_EQ(vector_format(u), GxB_FORMAT_CSR);
  EXPECT_VECTOR_EQ(u, rv);
  GrB_free(&u);

  ref::Vec full = random_vec(12, 1.1, 155);
  GrB_Vector w = testutil::make_vector(full);
  ASSERT_EQ(GxB_Vector_Option_set(w, GxB_FORMAT, GxB_FORMAT_DENSE),
            GrB_SUCCESS);
  EXPECT_EQ(vector_format(w), GxB_FORMAT_DENSE);
  EXPECT_VECTOR_EQ(w, full);
  GrB_free(&w);
}

TEST(FormatTest, GlobalPolicyForcesPublishedFormat) {
  PolicyGuard guard;
  GxB_Format got = GxB_FORMAT_AUTO;
  ASSERT_EQ(GxB_Format_set(GxB_FORMAT_BITMAP), GrB_SUCCESS);
  ASSERT_EQ(GxB_Format_get(&got), GrB_SUCCESS);
  EXPECT_EQ(got, GxB_FORMAT_BITMAP);

  ref::Mat rm = random_mat(10, 10, 0.4, 156);
  GrB_Matrix a = testutil::make_matrix(rm);
  ASSERT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(matrix_format(a), GxB_FORMAT_BITMAP);
  EXPECT_MATRIX_EQ(a, rm);
  GrB_free(&a);

  ASSERT_EQ(GxB_Format_set(GxB_FORMAT_AUTO), GrB_SUCCESS);
  ASSERT_EQ(GxB_Format_get(&got), GrB_SUCCESS);
  EXPECT_EQ(got, GxB_FORMAT_AUTO);
}

TEST(FormatTest, OptionErrorPaths) {
  GrB_Matrix a = nullptr;
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 2, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 2), GrB_SUCCESS);
  GxB_Format f = GxB_FORMAT_AUTO;
  EXPECT_EQ(GxB_Matrix_Option_set(nullptr, GxB_FORMAT, GxB_FORMAT_CSR),
            GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(GxB_Matrix_Option_get(a, GxB_FORMAT, nullptr),
            GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Matrix_Option_set(a, static_cast<GxB_Option_Field>(99),
                                  GxB_FORMAT_CSR),
            GrB_INVALID_VALUE);
  EXPECT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT,
                                  static_cast<GxB_Format>(99)),
            GrB_INVALID_VALUE);
  // Vectors have no hypersparse form.
  EXPECT_EQ(GxB_Vector_Option_set(u, GxB_FORMAT, GxB_FORMAT_HYPER),
            GrB_INVALID_VALUE);
  EXPECT_EQ(GxB_Vector_Option_get(u, GxB_FORMAT, &f), GrB_SUCCESS);
  EXPECT_EQ(f, GxB_FORMAT_CSR);
  GrB_free(&a);
  GrB_free(&u);
}

// Direct cost-model checks on hand-built blocks: the thresholds the
// auto policy promises (DESIGN.md §15).
TEST(FormatTest, CostModelChoices) {
  // Full 64x64 (nnz = 4096 >= min work): dense.
  grb::MatrixData full(GrB_FP64, 64, 64);
  full.vals.resize(64 * 64);
  full.col.resize(64 * 64);
  for (grb::Index r = 0; r < 64; ++r) {
    for (grb::Index j = 0; j < 64; ++j) full.col[r * 64 + j] = j;
    full.ptr[r + 1] = (r + 1) * 64;
  }
  EXPECT_EQ(grb::choose_matrix_format(full, 0), grb::MatFormat::kDense);

  // Three of four cells present: memory-smaller as bitmap than CSR.
  grb::MatrixData most(GrB_FP64, 64, 64);
  for (grb::Index r = 0; r < 64; ++r) {
    for (grb::Index j = 0; j < 64; ++j) {
      if ((r * 64 + j) % 4 == 3) continue;
      most.col.push_back(j);
    }
    most.ptr[r + 1] = most.col.size();
  }
  most.vals.resize(most.col.size());
  EXPECT_EQ(grb::choose_matrix_format(most, 0), grb::MatFormat::kBitmap);

  // 8192 rows, entries confined to 512 of them: hypersparse.
  grb::MatrixData hyper(GrB_FP64, 8192, 8192);
  for (grb::Index r = 0; r < 8192; ++r) {
    if (r % 16 == 0) {
      for (grb::Index j = 0; j < 4; ++j) hyper.col.push_back(j * 97);
    }
    hyper.ptr[r + 1] = hyper.col.size();
  }
  hyper.vals.resize(hyper.col.size());
  EXPECT_EQ(grb::choose_matrix_format(hyper, 0), grb::MatFormat::kHyper);

  // Tiny block (below min work): keeps its current format.
  grb::MatrixData tiny(GrB_FP64, 10, 10);
  EXPECT_EQ(grb::choose_matrix_format(tiny, 0), grb::MatFormat::kCsr);

  // Full vector: dense; mostly-full: bitmap; sparse: sparse.
  grb::VectorData vfull(GrB_FP64, 2048);
  vfull.ind.resize(2048);
  for (grb::Index i = 0; i < 2048; ++i) vfull.ind[i] = i;
  vfull.vals.resize(2048);
  EXPECT_EQ(grb::choose_vector_format(vfull), grb::VecFormat::kDense);

  grb::VectorData vmost(GrB_FP64, 2048);
  for (grb::Index i = 0; i < 2048; ++i)
    if (i % 4 != 3) vmost.ind.push_back(i);
  vmost.vals.resize(vmost.ind.size());
  EXPECT_EQ(grb::choose_vector_format(vmost), grb::VecFormat::kBitmap);

  grb::VectorData vsparse(GrB_FP64, 1 << 20);
  for (grb::Index i = 0; i < 1500; ++i) vsparse.ind.push_back(i * 512);
  vsparse.vals.resize(vsparse.ind.size());
  EXPECT_EQ(grb::choose_vector_format(vsparse), grb::VecFormat::kSparse);
}

// Conversions are exact: values round-trip bitwise through every format
// (checked via extractTuples equality on irrational-ish doubles).
TEST(FormatTest, ConversionRoundTripIsExact) {
  ref::Mat rm(12, 9);
  grb::Prng rng(157);
  for (auto& c : rm.cells)
    if (rng.uniform() < 0.5) c = rng.uniform() * 1e3 - 500.0;
  GrB_Matrix a = testutil::make_matrix(rm);
  ref::Mat before = testutil::to_ref(a);
  for (GxB_Format f : {GxB_FORMAT_BITMAP, GxB_FORMAT_HYPER,
                       GxB_FORMAT_BITMAP, GxB_FORMAT_CSR}) {
    ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, f), GrB_SUCCESS);
    EXPECT_TRUE(testutil::mats_equal(before, testutil::to_ref(a)));
  }
  GrB_free(&a);
}

}  // namespace
