// GrB_Vector container: lifecycle, build, element access, pending-tuple
// semantics, resize, duplication, and API error paths.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(VectorTest, NewSizeNvals) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 10), GrB_SUCCESS);
  GrB_Index n = 0, nvals = 99;
  EXPECT_EQ(GrB_Vector_size(&n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&v);
}

TEST(VectorTest, BuildAndExtractTuples) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  GrB_Index idx[] = {6, 1, 3};  // unsorted on purpose
  double vals[] = {6.5, 1.5, 3.5};
  ASSERT_EQ(GrB_Vector_build(v, idx, vals, 3, GrB_NULL), GrB_SUCCESS);
  GrB_Index out_idx[3];
  double out_vals[3];
  GrB_Index n = 3;
  ASSERT_EQ(GrB_Vector_extractTuples(out_idx, out_vals, &n, v),
            GrB_SUCCESS);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(out_idx[0], 1u);
  EXPECT_EQ(out_idx[1], 3u);
  EXPECT_EQ(out_idx[2], 6u);
  EXPECT_EQ(out_vals[0], 1.5);
  EXPECT_EQ(out_vals[1], 3.5);
  EXPECT_EQ(out_vals[2], 6.5);
  GrB_free(&v);
}

TEST(VectorTest, BuildWithDupCombinesInInputOrder) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {2, 2, 2, 0};
  double vals[] = {1, 10, 100, 5};
  ASSERT_EQ(GrB_Vector_build(v, idx, vals, 4, GrB_PLUS_FP64), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 111.0);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 5.0);
  GrB_free(&v);
}

TEST(VectorTest, BuildNullDupDuplicatesAreExecutionError) {
  // Paper §IX: dup is optional in 2.0; with GrB_NULL duplicates become an
  // execution error.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {1, 1};
  double vals[] = {1, 2};
  GrB_Info info = GrB_Vector_build(v, idx, vals, 2, GrB_NULL);
  if (info == GrB_SUCCESS) {
    // Deferred in nonblocking mode; materialize reports it.
    info = GrB_wait(v, GrB_MATERIALIZE);
  }
  EXPECT_EQ(info, GrB_INVALID_VALUE);
  GrB_free(&v);
}

TEST(VectorTest, BuildOutOfRangeIndexIsError) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {4};
  double vals[] = {1};
  GrB_Info info = GrB_Vector_build(v, idx, vals, 1, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(v, GrB_MATERIALIZE);
  EXPECT_EQ(info, GrB_INDEX_OUT_OF_BOUNDS);
  GrB_free(&v);
}

TEST(VectorTest, BuildOnNonEmptyIsOutputNotEmpty) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  GrB_Index idx[] = {1};
  double vals[] = {1};
  EXPECT_EQ(GrB_Vector_build(v, idx, vals, 1, GrB_NULL),
            GrB_OUTPUT_NOT_EMPTY);
  GrB_free(&v);
}

TEST(VectorTest, SetGetRemoveElement) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT32, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 11, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 22, 4), GrB_SUCCESS);
  int32_t out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 11);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 3), GrB_NO_VALUE);
  // Overwrite wins.
  ASSERT_EQ(GrB_Vector_setElement(v, 33, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 33);
  // Remove.
  ASSERT_EQ(GrB_Vector_removeElement(v, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_NO_VALUE);
  GrB_Index nvals = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 1u);
  // Removing an absent element is fine.
  EXPECT_EQ(GrB_Vector_removeElement(v, 0), GrB_SUCCESS);
  GrB_free(&v);
}

TEST(VectorTest, PendingTuplesInterleaveSetAndRemove) {
  // A burst of O(1) pending updates must fold in program order.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 100), GrB_SUCCESS);
  for (int round = 0; round < 3; ++round) {
    for (GrB_Index i = 0; i < 100; ++i) {
      ASSERT_EQ(GrB_Vector_setElement(v, double(round * 1000 + i), i),
                GrB_SUCCESS);
    }
  }
  for (GrB_Index i = 0; i < 100; i += 2) {
    ASSERT_EQ(GrB_Vector_removeElement(v, i), GrB_SUCCESS);
  }
  ASSERT_EQ(GrB_Vector_setElement(v, -1.0, 0), GrB_SUCCESS);
  GrB_Index nvals = 0;
  ASSERT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 51u);  // 50 odd survivors + re-set index 0
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 0), GrB_SUCCESS);
  EXPECT_EQ(out, -1.0);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 2001.0);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_NO_VALUE);
  GrB_free(&v);
}

TEST(VectorTest, SetElementErrors) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_setElement(v, 1.0, 5), GrB_INVALID_INDEX);
  double out;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 5), GrB_INVALID_INDEX);
  EXPECT_EQ(GrB_Vector_removeElement(v, 99), GrB_INVALID_INDEX);
  GrB_free(&v);
}

TEST(VectorTest, DomainMismatchWithUdt) {
  GrB_Type udt = nullptr;
  ASSERT_EQ(GrB_Type_new(&udt, 8), GrB_SUCCESS);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, udt, 5), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_DOMAIN_MISMATCH);
  uint64_t raw = 7;
  EXPECT_EQ(GrB_Vector_setElement_UDT(v, &raw, udt, 0), GrB_SUCCESS);
  uint64_t back = 0;
  EXPECT_EQ(GrB_Vector_extractElement_UDT(&back, udt, v, 0), GrB_SUCCESS);
  EXPECT_EQ(back, 7u);
  GrB_free(&v);
  GrB_free(&udt);
}

TEST(VectorTest, DupIsIndependent) {
  GrB_Vector v = nullptr, d = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_dup(&d, v), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(d, 2.0, 2), GrB_SUCCESS);
  GrB_Index nv = 0, nd = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_nvals(&nd, d), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  EXPECT_EQ(nd, 2u);
  GrB_free(&v);
  GrB_free(&d);
}

TEST(VectorTest, ResizeGrowAndShrink) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 6), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 6; ++i)
    ASSERT_EQ(GrB_Vector_setElement(v, double(i), i), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_resize(v, 3), GrB_SUCCESS);
  GrB_Index n = 0, nvals = 0;
  EXPECT_EQ(GrB_Vector_size(&n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 3u);
  ASSERT_EQ(GrB_Vector_resize(v, 10), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_size(&n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 3u);  // truncated entries stay gone
  // New tail indices are now valid.
  EXPECT_EQ(GrB_Vector_setElement(v, 9.0, 9), GrB_SUCCESS);
  GrB_free(&v);
}

TEST(VectorTest, ClearKeepsSize) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 7), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_clear(v), GrB_SUCCESS);
  GrB_Index n = 0, nvals = 9;
  EXPECT_EQ(GrB_Vector_size(&n, v), GrB_SUCCESS);
  EXPECT_EQ(n, 7u);
  EXPECT_EQ(GrB_Vector_nvals(&nvals, v), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&v);
}

TEST(VectorTest, ExtractTuplesInsufficientSpace) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 2.0, 1), GrB_SUCCESS);
  GrB_Index idx[1];
  double vals[1];
  GrB_Index n = 1;
  EXPECT_EQ(GrB_Vector_extractTuples(idx, vals, &n, v),
            GrB_INSUFFICIENT_SPACE);
  GrB_free(&v);
}

TEST(VectorTest, CastOnSetAndExtract) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT8, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1000, 0), GrB_SUCCESS);  // wraps
  int32_t out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 0), GrB_SUCCESS);
  EXPECT_EQ(out, int32_t(int8_t(1000)));
  GrB_free(&v);
}

}  // namespace
