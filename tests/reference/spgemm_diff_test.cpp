// Differential oracle for the adaptive SpGEMM engine.
//
// The engine promises bitwise-identical results for every accumulator
// mode (reference two-pass kernel / hash SPA / dense SPA / auto
// per-row mix), every dense-budget setting (which flips rows between
// accumulators), every mxm strategy override, the typed fastpath vs the
// generic runner, and any thread count.  This harness fixes random
// real-valued inputs — where any change in floating-point fold order
// would show — and requires exact equality of every combination against
// the reference mode run serially.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/global.hpp"
#include "ops/mxm.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

struct ModeGuard {
  grb::SpgemmMode saved;
  explicit ModeGuard(grb::SpgemmMode m) : saved(grb::spgemm_mode()) {
    grb::set_spgemm_mode(m);
  }
  ~ModeGuard() { grb::set_spgemm_mode(saved); }
};

struct BudgetGuard {
  size_t saved;
  explicit BudgetGuard(size_t bytes) : saved(grb::spgemm_dense_budget()) {
    grb::set_spgemm_dense_budget(bytes);
  }
  ~BudgetGuard() { grb::set_spgemm_dense_budget(saved); }
};

struct StrategyGuard {
  grb::MxmStrategy saved;
  explicit StrategyGuard(grb::MxmStrategy s) : saved(grb::mxm_strategy()) {
    grb::set_mxm_strategy(s);
  }
  ~StrategyGuard() { grb::set_mxm_strategy(saved); }
};

struct FastpathGuard {
  bool saved;
  explicit FastpathGuard(bool on) : saved(grb::fastpath_enabled()) {
    grb::set_fastpath_enabled(on);
  }
  ~FastpathGuard() { grb::set_fastpath_enabled(saved); }
};

GrB_Context make_ctx(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_BLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

ref::Mat real_mat(GrB_Index nr, GrB_Index nc, double density,
                  uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return m;
}

ref::Mat mask_mat(GrB_Index nr, GrB_Index nc, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < 0.3) c = rng.below(2) ? 1.0 : 0.0;
  return m;
}

struct Config {
  bool mask;
  bool structural;
  bool accum;
  bool replace;
};

std::vector<Config> all_configs() {
  return {
      {false, false, false, false},  // plain
      {false, false, true, false},   // accum only
      {true, false, false, false},   // valued mask
      {true, true, false, false},    // structural mask
      {true, true, true, true},      // structural mask + accum + replace
  };
}

GrB_Descriptor desc_for(const Config& c) {
  if (c.replace && c.structural) return GrB_DESC_RS;
  if (c.replace) return GrB_DESC_R;
  if (c.structural) return GrB_DESC_S;
  return GrB_NULL;
}

std::string config_name(const Config& c) {
  std::string s;
  s += c.mask ? (c.structural ? "maskS" : "maskV") : "nomask";
  s += c.accum ? "+accum" : "";
  s += c.replace ? "+replace" : "";
  return s;
}

// Runs C<M> (+)= A*B with the current engine overrides in an
// nthreads-context and returns C's final contents.
ref::Mat run_mxm(int nthreads, const Config& cfg, GrB_Semiring semiring,
                 const ref::Mat& rc0, const ref::Mat& ra, const ref::Mat& rb,
                 const ref::Mat& rm) {
  GrB_Context ctx = make_ctx(nthreads);
  GrB_Matrix c = testutil::make_matrix(rc0, ctx);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Matrix m = cfg.mask ? testutil::make_matrix(rm, ctx) : nullptr;
  EXPECT_EQ(GrB_mxm(c, m, cfg.accum ? GrB_PLUS_FP64 : GrB_NULL, semiring, a,
                    b, desc_for(cfg)),
            GrB_SUCCESS);
  ref::Mat out = testutil::to_ref(c);
  GrB_free(&c);
  GrB_free(&a);
  GrB_free(&b);
  if (m != nullptr) GrB_free(&m);
  GrB_free(&ctx);
  return out;
}

// Rectangular dims so row/column index mixups cannot cancel out.
constexpr GrB_Index kM = 40, kK = 56, kN = 32;

void sweep_engine(uint64_t seed, GrB_Semiring semiring) {
  ThresholdGuard threshold;
  ref::Mat rc0 = real_mat(kM, kN, 0.25, seed + 1);
  ref::Mat ra = real_mat(kM, kK, 0.2, seed + 2);
  ref::Mat rb = real_mat(kK, kN, 0.25, seed + 3);
  ref::Mat rm = mask_mat(kM, kN, seed + 4);

  struct Leg {
    const char* name;
    grb::SpgemmMode mode;
    size_t budget;  // 0 = leave default
  };
  const Leg legs[] = {
      {"reference", grb::SpgemmMode::kReference, 0},
      {"hash", grb::SpgemmMode::kHash, 0},
      {"dense", grb::SpgemmMode::kDense, 0},
      {"auto", grb::SpgemmMode::kAuto, 0},
      // A 1 KiB budget forces every row (and a pinned dense mode) onto
      // the hash accumulator — the hypersparse fallback path.
      {"auto-tiny-budget", grb::SpgemmMode::kAuto, 1024},
      {"dense-tiny-budget", grb::SpgemmMode::kDense, 1024},
  };

  for (const Config& cfg : all_configs()) {
    ref::Mat expect;
    {
      ModeGuard mode(grb::SpgemmMode::kReference);
      expect = run_mxm(1, cfg, semiring, rc0, ra, rb, rm);
    }
    for (const Leg& leg : legs) {
      ModeGuard mode(leg.mode);
      BudgetGuard budget(leg.budget != 0 ? leg.budget
                                         : grb::spgemm_dense_budget());
      for (int nthreads : {1, 4}) {
        ref::Mat got = run_mxm(nthreads, cfg, semiring, rc0, ra, rb, rm);
        EXPECT_TRUE(testutil::mats_equal(expect, got))
            << config_name(cfg) << " " << leg.name
            << " nthreads=" << nthreads;
      }
    }
  }
}

TEST(SpgemmDiff, PlusTimesAllModes) {
  sweep_engine(4100, GrB_PLUS_TIMES_SEMIRING_FP64);
}

TEST(SpgemmDiff, MinPlusAllModes) {
  sweep_engine(4200, GrB_MIN_PLUS_SEMIRING_FP64);
}

// The generic SemiringRunner and the typed fastpath instantiate the same
// accumulators; their results must match bit for bit in every mode.
TEST(SpgemmDiff, FastpathMatchesGeneric) {
  ThresholdGuard threshold;
  ref::Mat rc0 = real_mat(kM, kN, 0.25, 4301);
  ref::Mat ra = real_mat(kM, kK, 0.2, 4302);
  ref::Mat rb = real_mat(kK, kN, 0.25, 4303);
  ref::Mat rm = mask_mat(kM, kN, 4304);
  Config cfg{true, true, true, false};
  for (grb::SpgemmMode m :
       {grb::SpgemmMode::kHash, grb::SpgemmMode::kDense,
        grb::SpgemmMode::kAuto}) {
    ModeGuard mode(m);
    ref::Mat fast, generic;
    {
      FastpathGuard fp(true);
      fast = run_mxm(4, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra, rb, rm);
    }
    {
      FastpathGuard fp(false);
      generic =
          run_mxm(4, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra, rb, rm);
    }
    EXPECT_TRUE(testutil::mats_equal(fast, generic))
        << "mode=" << static_cast<int>(m);
  }
}

// Strategy overrides on a structural-masked multiply: Gustavson (through
// the adaptive engine) and masked-dot must agree with the reference.
TEST(SpgemmDiff, StrategyOverrides) {
  ThresholdGuard threshold;
  ref::Mat rc0 = real_mat(kM, kN, 0.25, 4401);
  ref::Mat ra = real_mat(kM, kK, 0.2, 4402);
  ref::Mat rb = real_mat(kK, kN, 0.25, 4403);
  ref::Mat rm = mask_mat(kM, kN, 4404);
  Config cfg{true, true, false, false};
  ref::Mat expect;
  {
    ModeGuard mode(grb::SpgemmMode::kReference);
    StrategyGuard strat(grb::MxmStrategy::kGustavson);
    expect = run_mxm(1, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra, rb, rm);
  }
  for (grb::MxmStrategy s :
       {grb::MxmStrategy::kAuto, grb::MxmStrategy::kGustavson,
        grb::MxmStrategy::kMaskedDot}) {
    for (grb::SpgemmMode m :
         {grb::SpgemmMode::kHash, grb::SpgemmMode::kDense,
          grb::SpgemmMode::kAuto}) {
      StrategyGuard strat(s);
      ModeGuard mode(m);
      for (int nthreads : {1, 4}) {
        ref::Mat got =
            run_mxm(nthreads, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra,
                    rb, rm);
        EXPECT_TRUE(testutil::mats_equal(expect, got))
            << "strategy=" << static_cast<int>(s)
            << " mode=" << static_cast<int>(m) << " nthreads=" << nthreads;
      }
    }
  }
}

// A wide output (ncols past the always-dense footprint) makes the auto
// policy genuinely mix hash and dense rows in one product: most rows are
// sparse, a few heavy rows of A cross the flop threshold.
TEST(SpgemmDiff, AutoMixesAccumulators) {
  ThresholdGuard threshold;
  constexpr GrB_Index kRows = 24, kInner = 48, kWide = 20000;
  ref::Mat rc0(kRows, kWide);
  ref::Mat ra = real_mat(kRows, kInner, 0.15, 4501);
  // Two heavy rows: dense rows of A expand into every row of B.
  for (GrB_Index k = 0; k < kInner; ++k) {
    ra.cells[3 * kInner + k] = 1.5;
    ra.cells[17 * kInner + k] = -0.75;
  }
  ref::Mat rb = real_mat(kInner, kWide, 0.02, 4502);
  ref::Mat rm(kRows, kWide);
  Config cfg{false, false, false, false};
  ref::Mat expect;
  {
    ModeGuard mode(grb::SpgemmMode::kReference);
    expect =
        run_mxm(1, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra, rb, rm);
  }
  for (grb::SpgemmMode m :
       {grb::SpgemmMode::kHash, grb::SpgemmMode::kDense,
        grb::SpgemmMode::kAuto}) {
    ModeGuard mode(m);
    for (int nthreads : {1, 4}) {
      ref::Mat got =
          run_mxm(nthreads, cfg, GrB_PLUS_TIMES_SEMIRING_FP64, rc0, ra, rb,
                  rm);
      EXPECT_TRUE(testutil::mats_equal(expect, got))
          << "mode=" << static_cast<int>(m) << " nthreads=" << nthreads;
    }
  }
}

}  // namespace
