// Differential oracle for polymorphic storage formats (DESIGN.md §15).
//
// Every storage format promises bitwise-identical results: conversions
// copy value bytes verbatim and the format-aware fast paths (hyper mxv,
// dense×dense eWise) fold in exactly the canonical kernel's order.
// This harness fixes random real-valued inputs — where any fold-order
// change would show — forces each GRB_FORMAT policy in turn, and
// requires exact equality of mxm / mxv / vxm / eWiseAdd / eWiseMult
// against the forced-CSR run, serially and with 4 threads.
#include <gtest/gtest.h>

#include <string>

#include "containers/format.hpp"
#include "core/global.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

struct PolicyGuard {
  grb::FormatPolicy saved;
  explicit PolicyGuard(grb::FormatPolicy p) : saved(grb::format_policy()) {
    grb::set_format_policy(p);
  }
  ~PolicyGuard() { grb::set_format_policy(saved); }
};

GrB_Context make_ctx(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_BLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

ref::Mat real_mat(GrB_Index nr, GrB_Index nc, double density,
                  uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return m;
}

ref::Vec real_vec(GrB_Index n, double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(n);
  for (auto& c : v.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return v;
}

struct Outputs {
  ref::Mat mxm, ewise_add;
  ref::Vec mxv, vxm, ewise_mult;
};

// Runs the op battery under the current format policy and returns every
// result.  Inputs are built inside so their publishes (and all
// intermediate publishes) adapt under the policy being tested.
Outputs run_battery(int nthreads, const ref::Mat& ra, const ref::Mat& rb,
                    const ref::Vec& ru, const ref::Vec& rv) {
  GrB_Context ctx = make_ctx(nthreads);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Vector u = testutil::make_vector(ru, ctx);
  GrB_Vector v = testutil::make_vector(rv, ctx);

  Outputs out;
  GrB_Matrix c = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&c, GrB_FP64, ra.nrows, rb.ncols, ctx),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, GrB_NULL),
            GrB_SUCCESS);
  out.mxm = testutil::to_ref(c);
  GrB_free(&c);

  GrB_Matrix e = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&e, GrB_FP64, ra.nrows, ra.ncols, ctx),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(e, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, a,
                         GrB_NULL),
            GrB_SUCCESS);
  out.ewise_add = testutil::to_ref(e);
  GrB_free(&e);

  GrB_Vector w = nullptr;
  EXPECT_EQ(GrB_Vector_new(&w, GrB_FP64, ra.nrows, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, v, GrB_NULL),
            GrB_SUCCESS);
  out.mxv = testutil::to_ref(w);
  GrB_free(&w);

  GrB_Vector x = nullptr;
  EXPECT_EQ(GrB_Vector_new(&x, GrB_FP64, ra.ncols, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_vxm(x, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    u, a, GrB_NULL),
            GrB_SUCCESS);
  out.vxm = testutil::to_ref(x);
  GrB_free(&x);

  GrB_Vector y = nullptr;
  EXPECT_EQ(GrB_Vector_new(&y, GrB_FP64, ra.nrows, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseMult(y, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, u, u,
                          GrB_NULL),
            GrB_SUCCESS);
  out.ewise_mult = testutil::to_ref(y);
  GrB_free(&y);

  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&u);
  GrB_free(&v);
  GrB_free(&ctx);
  return out;
}

void sweep_formats(double density, uint64_t seed) {
  ThresholdGuard threshold;
  ref::Mat ra = real_mat(36, 44, density, seed + 1);
  ref::Mat rb = real_mat(44, 28, density, seed + 2);
  ref::Vec ru = real_vec(36, density, seed + 3);
  ref::Vec rv = real_vec(44, density, seed + 4);

  Outputs expect;
  {
    PolicyGuard policy(grb::FormatPolicy::kCsr);
    expect = run_battery(1, ra, rb, ru, rv);
  }
  const struct {
    const char* name;
    grb::FormatPolicy policy;
  } legs[] = {
      {"hyper", grb::FormatPolicy::kHyper},
      {"bitmap", grb::FormatPolicy::kBitmap},
      {"dense", grb::FormatPolicy::kDense},
      {"auto", grb::FormatPolicy::kAuto},
  };
  for (const auto& leg : legs) {
    PolicyGuard policy(leg.policy);
    for (int nthreads : {1, 4}) {
      Outputs got = run_battery(nthreads, ra, rb, ru, rv);
      std::string tag =
          std::string(leg.name) + " nthreads=" + std::to_string(nthreads);
      EXPECT_TRUE(testutil::mats_equal(expect.mxm, got.mxm))
          << "mxm " << tag;
      EXPECT_TRUE(testutil::mats_equal(expect.ewise_add, got.ewise_add))
          << "eWiseAdd " << tag;
      EXPECT_TRUE(testutil::vecs_equal(expect.mxv, got.mxv))
          << "mxv " << tag;
      EXPECT_TRUE(testutil::vecs_equal(expect.vxm, got.vxm))
          << "vxm " << tag;
      EXPECT_TRUE(testutil::vecs_equal(expect.ewise_mult, got.ewise_mult))
          << "eWiseMult " << tag;
    }
  }
}

TEST(FormatDiff, SparseInputsAllPolicies) { sweep_formats(0.2, 5100); }

// Full inputs: the dense policy actually stores dense blocks, so this
// leg drives the dense×dense eWise fast path and the dense bitmap/CSR
// conversions through real op traffic.
TEST(FormatDiff, FullInputsAllPolicies) { sweep_formats(1.1, 5200); }

// Hypersparse shape: row dimension far above occupancy, the regime the
// hyper format (and its compact-row mxv kernel) exists for.  The auto
// policy's choice and the forced-hyper leg must both match forced-CSR.
TEST(FormatDiff, HypersparseMxv) {
  ThresholdGuard threshold;
  constexpr GrB_Index kRows = 8192, kCols = 64;
  grb::Prng rng(5300);
  ref::Mat ra(kRows, kCols);
  for (GrB_Index r = 0; r < kRows; r += 37)  // ~221 nonempty rows
    for (GrB_Index j = 0; j < kCols; ++j)
      if (rng.uniform() < 0.5) ra.at(r, j) = rng.uniform() * 4.0 - 2.0;
  ref::Vec rv = real_vec(kCols, 0.8, 5301);
  ref::Vec ru = real_vec(kRows, 0.01, 5302);
  ref::Mat rb = real_mat(kCols, 24, 0.4, 5303);

  Outputs expect;
  {
    PolicyGuard policy(grb::FormatPolicy::kCsr);
    expect = run_battery(1, ra, rb, ru, rv);
  }
  for (grb::FormatPolicy p :
       {grb::FormatPolicy::kHyper, grb::FormatPolicy::kAuto}) {
    PolicyGuard policy(p);
    for (int nthreads : {1, 4}) {
      Outputs got = run_battery(nthreads, ra, rb, ru, rv);
      EXPECT_TRUE(testutil::vecs_equal(expect.mxv, got.mxv));
      EXPECT_TRUE(testutil::vecs_equal(expect.vxm, got.vxm));
      EXPECT_TRUE(testutil::mats_equal(expect.mxm, got.mxm));
    }
  }
}

}  // namespace
