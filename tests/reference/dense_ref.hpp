// A deliberately simple dense reference engine used as the oracle for
// property tests: every GraphBLAS operation is re-implemented here over
// std::optional<double> cells with O(n^2) loops and no sharing with the
// library's code paths.  Tests populate matrices with small integers so
// floating-point summation order cannot cause spurious mismatches.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graphblas/GraphBLAS.h"

namespace ref {

using Cell = std::optional<double>;
using BinFn = std::function<double(double, double)>;
using UnFn = std::function<double(double)>;

struct Mat {
  GrB_Index nrows = 0, ncols = 0;
  std::vector<Cell> cells;

  Mat() = default;
  Mat(GrB_Index r, GrB_Index c) : nrows(r), ncols(c), cells(r * c) {}

  Cell& at(GrB_Index i, GrB_Index j) { return cells[i * ncols + j]; }
  const Cell& at(GrB_Index i, GrB_Index j) const {
    return cells[i * ncols + j];
  }
  GrB_Index nvals() const {
    GrB_Index n = 0;
    for (const auto& c : cells) n += c.has_value();
    return n;
  }
};

struct Vec {
  GrB_Index n = 0;
  std::vector<Cell> cells;

  Vec() = default;
  explicit Vec(GrB_Index size) : n(size), cells(size) {}

  Cell& at(GrB_Index i) { return cells[i]; }
  const Cell& at(GrB_Index i) const { return cells[i]; }
  GrB_Index nvals() const {
    GrB_Index nv = 0;
    for (const auto& c : cells) nv += c.has_value();
    return nv;
  }
};

// ---- mask / accumulate / replace write-back --------------------------------

struct Spec {
  bool have_mask = false;
  bool structure = false;
  bool comp = false;
  bool replace = false;
  std::optional<BinFn> accum;
};

inline bool mask_bit(const Cell& m, const Spec& s) {
  if (!s.have_mask) return !s.comp;
  bool v = s.structure ? m.has_value() : (m.has_value() && *m != 0.0);
  return v != s.comp;
}

// Z = accum ? (C odot T) : T ; C<M,replace> = Z, one cell at a time.
inline Cell writeback_cell(const Cell& c, const Cell& t, const Cell& m,
                           const Spec& s) {
  Cell z;
  if (s.accum.has_value()) {
    if (c && t) {
      z = (*s.accum)(*c, *t);
    } else if (c) {
      z = c;
    } else if (t) {
      z = t;
    }
  } else {
    z = t;
  }
  if (mask_bit(m, s)) return z;
  return s.replace ? Cell{} : c;
}

inline Mat writeback(const Mat& c, const Mat& t, const Mat* mask,
                     const Spec& s) {
  Mat out(c.nrows, c.ncols);
  for (GrB_Index i = 0; i < c.nrows; ++i)
    for (GrB_Index j = 0; j < c.ncols; ++j)
      out.at(i, j) = writeback_cell(
          c.at(i, j), t.at(i, j),
          mask != nullptr ? mask->at(i, j) : Cell{}, s);
  return out;
}

inline Vec writeback(const Vec& c, const Vec& t, const Vec* mask,
                     const Spec& s) {
  Vec out(c.n);
  for (GrB_Index i = 0; i < c.n; ++i)
    out.at(i) = writeback_cell(c.at(i), t.at(i),
                               mask != nullptr ? mask->at(i) : Cell{}, s);
  return out;
}

// ---- compute kernels --------------------------------------------------------

inline Mat transpose(const Mat& a) {
  Mat out(a.ncols, a.nrows);
  for (GrB_Index i = 0; i < a.nrows; ++i)
    for (GrB_Index j = 0; j < a.ncols; ++j) out.at(j, i) = a.at(i, j);
  return out;
}

inline Mat ewise_add(const Mat& a, const Mat& b, const BinFn& f) {
  Mat out(a.nrows, a.ncols);
  for (GrB_Index k = 0; k < a.cells.size(); ++k) {
    const Cell& x = a.cells[k];
    const Cell& y = b.cells[k];
    if (x && y) {
      out.cells[k] = f(*x, *y);
    } else if (x) {
      out.cells[k] = x;
    } else if (y) {
      out.cells[k] = y;
    }
  }
  return out;
}

inline Mat ewise_mult(const Mat& a, const Mat& b, const BinFn& f) {
  Mat out(a.nrows, a.ncols);
  for (GrB_Index k = 0; k < a.cells.size(); ++k) {
    if (a.cells[k] && b.cells[k])
      out.cells[k] = f(*a.cells[k], *b.cells[k]);
  }
  return out;
}

inline Vec ewise_add(const Vec& a, const Vec& b, const BinFn& f) {
  Vec out(a.n);
  for (GrB_Index k = 0; k < a.n; ++k) {
    const Cell& x = a.cells[k];
    const Cell& y = b.cells[k];
    if (x && y) {
      out.cells[k] = f(*x, *y);
    } else if (x) {
      out.cells[k] = x;
    } else if (y) {
      out.cells[k] = y;
    }
  }
  return out;
}

inline Vec ewise_mult(const Vec& a, const Vec& b, const BinFn& f) {
  Vec out(a.n);
  for (GrB_Index k = 0; k < a.n; ++k)
    if (a.cells[k] && b.cells[k])
      out.cells[k] = f(*a.cells[k], *b.cells[k]);
  return out;
}

// C = A (add.mul) B with the monoid fold running in column order.
inline Mat mxm(const Mat& a, const Mat& b, const BinFn& add,
               const BinFn& mul) {
  Mat out(a.nrows, b.ncols);
  for (GrB_Index i = 0; i < a.nrows; ++i) {
    for (GrB_Index j = 0; j < b.ncols; ++j) {
      Cell acc;
      for (GrB_Index k = 0; k < a.ncols; ++k) {
        if (a.at(i, k) && b.at(k, j)) {
          double p = mul(*a.at(i, k), *b.at(k, j));
          acc = acc ? add(*acc, p) : p;
        }
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

inline Vec mxv(const Mat& a, const Vec& u, const BinFn& add,
               const BinFn& mul) {
  Vec out(a.nrows);
  for (GrB_Index i = 0; i < a.nrows; ++i) {
    Cell acc;
    for (GrB_Index j = 0; j < a.ncols; ++j) {
      if (a.at(i, j) && u.at(j)) {
        double p = mul(*a.at(i, j), *u.at(j));
        acc = acc ? add(*acc, p) : p;
      }
    }
    out.at(i) = acc;
  }
  return out;
}

inline Vec vxm(const Vec& u, const Mat& a, const BinFn& add,
               const BinFn& mul) {
  Vec out(a.ncols);
  for (GrB_Index j = 0; j < a.ncols; ++j) {
    Cell acc;
    for (GrB_Index i = 0; i < a.nrows; ++i) {
      if (u.at(i) && a.at(i, j)) {
        double p = mul(*u.at(i), *a.at(i, j));
        acc = acc ? add(*acc, p) : p;
      }
    }
    out.at(j) = acc;
  }
  return out;
}

inline Mat apply(const Mat& a, const UnFn& f) {
  Mat out(a.nrows, a.ncols);
  for (GrB_Index k = 0; k < a.cells.size(); ++k)
    if (a.cells[k]) out.cells[k] = f(*a.cells[k]);
  return out;
}

inline Vec apply(const Vec& u, const UnFn& f) {
  Vec out(u.n);
  for (GrB_Index k = 0; k < u.n; ++k)
    if (u.cells[k]) out.cells[k] = f(*u.cells[k]);
  return out;
}

// select with an index-aware predicate keep(i, j, value).
inline Mat select(
    const Mat& a,
    const std::function<bool(GrB_Index, GrB_Index, double)>& keep) {
  Mat out(a.nrows, a.ncols);
  for (GrB_Index i = 0; i < a.nrows; ++i)
    for (GrB_Index j = 0; j < a.ncols; ++j)
      if (a.at(i, j) && keep(i, j, *a.at(i, j))) out.at(i, j) = a.at(i, j);
  return out;
}

inline Vec select(const Vec& u,
                  const std::function<bool(GrB_Index, double)>& keep) {
  Vec out(u.n);
  for (GrB_Index i = 0; i < u.n; ++i)
    if (u.at(i) && keep(i, *u.at(i))) out.at(i) = u.at(i);
  return out;
}

inline Vec reduce_rows(const Mat& a, const BinFn& add) {
  Vec out(a.nrows);
  for (GrB_Index i = 0; i < a.nrows; ++i) {
    Cell acc;
    for (GrB_Index j = 0; j < a.ncols; ++j)
      if (a.at(i, j)) acc = acc ? add(*acc, *a.at(i, j)) : *a.at(i, j);
    out.at(i) = acc;
  }
  return out;
}

inline Cell reduce_all(const Mat& a, const BinFn& add) {
  Cell acc;
  for (const auto& c : a.cells)
    if (c) acc = acc ? add(*acc, *c) : *c;
  return acc;
}

inline Cell reduce_all(const Vec& u, const BinFn& add) {
  Cell acc;
  for (const auto& c : u.cells)
    if (c) acc = acc ? add(*acc, *c) : *c;
  return acc;
}

inline Mat kronecker(const Mat& a, const Mat& b, const BinFn& mul) {
  Mat out(a.nrows * b.nrows, a.ncols * b.ncols);
  for (GrB_Index i1 = 0; i1 < a.nrows; ++i1)
    for (GrB_Index j1 = 0; j1 < a.ncols; ++j1)
      for (GrB_Index i2 = 0; i2 < b.nrows; ++i2)
        for (GrB_Index j2 = 0; j2 < b.ncols; ++j2)
          if (a.at(i1, j1) && b.at(i2, j2))
            out.at(i1 * b.nrows + i2, j1 * b.ncols + j2) =
                mul(*a.at(i1, j1), *b.at(i2, j2));
  return out;
}

inline Vec extract(const Vec& u, const std::vector<GrB_Index>& idx) {
  Vec out(idx.size());
  for (GrB_Index k = 0; k < idx.size(); ++k) out.at(k) = u.at(idx[k]);
  return out;
}

inline Mat extract(const Mat& a, const std::vector<GrB_Index>& rows,
                   const std::vector<GrB_Index>& cols) {
  Mat out(rows.size(), cols.size());
  for (GrB_Index r = 0; r < rows.size(); ++r)
    for (GrB_Index c = 0; c < cols.size(); ++c)
      out.at(r, c) = a.at(rows[r], cols[c]);
  return out;
}

// assign: Z = C with region updates (accum-aware), then mask pass.
inline Vec assign(const Vec& c, const Vec& u,
                  const std::vector<GrB_Index>& idx, const Vec* mask,
                  const Spec& s) {
  Vec z = c;
  for (GrB_Index k = 0; k < idx.size(); ++k) {
    const Cell& src = u.at(k);
    Cell& dst = z.at(idx[k]);
    if (src) {
      dst = (s.accum && dst) ? (*s.accum)(*dst, *src) : *src;
    } else if (!s.accum) {
      dst.reset();
    }
  }
  Vec out(c.n);
  for (GrB_Index i = 0; i < c.n; ++i) {
    if (mask_bit(mask != nullptr ? mask->at(i) : Cell{}, s)) {
      out.at(i) = z.at(i);
    } else if (!s.replace) {
      out.at(i) = c.at(i);
    }
  }
  return out;
}

inline Mat assign(const Mat& c, const Mat& a,
                  const std::vector<GrB_Index>& rows,
                  const std::vector<GrB_Index>& cols, const Mat* mask,
                  const Spec& s) {
  Mat z = c;
  for (GrB_Index r = 0; r < rows.size(); ++r) {
    for (GrB_Index k = 0; k < cols.size(); ++k) {
      const Cell& src = a.at(r, k);
      Cell& dst = z.at(rows[r], cols[k]);
      if (src) {
        dst = (s.accum && dst) ? (*s.accum)(*dst, *src) : *src;
      } else if (!s.accum) {
        dst.reset();
      }
    }
  }
  Mat out(c.nrows, c.ncols);
  for (GrB_Index i = 0; i < c.nrows; ++i) {
    for (GrB_Index j = 0; j < c.ncols; ++j) {
      if (mask_bit(mask != nullptr ? mask->at(i, j) : Cell{}, s)) {
        out.at(i, j) = z.at(i, j);
      } else if (!s.replace) {
        out.at(i, j) = c.at(i, j);
      }
    }
  }
  return out;
}

}  // namespace ref
