// Differential serial-vs-parallel oracle for the parallelized kernels.
//
// Every hot kernel (mxm, mxv, vxm, eWise matrix/vector, reduce, apply,
// select) promises results *bitwise-identical* to its serial path no
// matter how many threads the calling context grants.  This harness runs
// each op on real-valued (non-integer) random data -- where any change
// in floating-point fold order would show -- in a 1-thread context and
// in 2/4/8-thread contexts with the same chunk size, across masks
// (none / ~30%-dense valued / structural), accumulate on/off, and
// replace on/off, and requires exact equality.
//
// The parallel threshold is forced to 1 for the duration so even these
// small instances take the parallel paths.
#include <gtest/gtest.h>

#include <vector>

#include "core/global.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

// Forces every gated kernel onto its parallel path for the test's scope.
struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

GrB_Context make_ctx(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;  // identical chunk in serial and parallel contexts
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_BLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

// Real-valued entries in (-5, 5): sums of these are exact only when the
// parallel path folds in exactly the serial order.
ref::Mat real_mat(GrB_Index nr, GrB_Index nc, double density,
                  uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return m;
}

ref::Vec real_vec(GrB_Index n, double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(n);
  for (auto& c : v.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return v;
}

// ~30%-dense mask whose stored values are a coin flip of 0.0 / 1.0, so
// valued and structural interpretations genuinely differ.
ref::Mat mask_mat(GrB_Index nr, GrB_Index nc, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < 0.3) c = rng.below(2) ? 1.0 : 0.0;
  return m;
}

ref::Vec mask_vec(GrB_Index n, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(n);
  for (auto& c : v.cells)
    if (rng.uniform() < 0.3) c = rng.below(2) ? 1.0 : 0.0;
  return v;
}

struct Config {
  bool mask;
  bool structural;
  bool accum;
  bool replace;
};

std::vector<Config> all_configs() {
  return {
      {false, false, false, false},  // plain
      {false, false, true, false},   // accum only
      {true, false, false, false},   // valued mask
      {true, true, false, false},    // structural mask
      {true, false, true, false},    // valued mask + accum
      {true, true, true, false},     // structural mask + accum
      {true, false, false, true},    // valued mask + replace
      {true, true, true, true},      // structural mask + accum + replace
  };
}

GrB_Descriptor desc_for(const Config& c) {
  if (c.replace && c.structural) return GrB_DESC_RS;
  if (c.replace) return GrB_DESC_R;
  if (c.structural) return GrB_DESC_S;
  return GrB_NULL;
}

std::string config_name(const Config& c) {
  std::string s;
  s += c.mask ? (c.structural ? "maskS" : "maskV") : "nomask";
  s += c.accum ? "+accum" : "";
  s += c.replace ? "+replace" : "";
  return s;
}

constexpr GrB_Index kDim = 48;   // matrices: 48x48, chunk 4 -> 12 blocks
constexpr GrB_Index kVDim = 300; // vectors

// Runs `op` on fresh copies of the inputs homed in an nthreads-context;
// returns the final contents of the output matrix.
template <class Fn>
ref::Mat run_mat_op(int nthreads, const Config& cfg, const ref::Mat& rc0,
                    const ref::Mat& ra, const ref::Mat& rb,
                    const ref::Mat& rm, Fn&& op) {
  GrB_Context ctx = make_ctx(nthreads);
  GrB_Matrix c = testutil::make_matrix(rc0, ctx);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Matrix m = cfg.mask ? testutil::make_matrix(rm, ctx) : nullptr;
  op(c, m, cfg.accum ? GrB_PLUS_FP64 : GrB_NULL, a, b, desc_for(cfg));
  ref::Mat out = testutil::to_ref(c);
  GrB_free(&c);
  GrB_free(&a);
  GrB_free(&b);
  if (m != nullptr) GrB_free(&m);
  GrB_free(&ctx);
  return out;
}

template <class Fn>
ref::Vec run_vec_op(int nthreads, const Config& cfg, const ref::Vec& rw0,
                    const ref::Mat& ra, const ref::Vec& ru,
                    const ref::Vec& rv, const ref::Vec& rm, Fn&& op) {
  GrB_Context ctx = make_ctx(nthreads);
  GrB_Vector w = testutil::make_vector(rw0, ctx);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Vector u = testutil::make_vector(ru, ctx);
  GrB_Vector v = testutil::make_vector(rv, ctx);
  GrB_Vector m = cfg.mask ? testutil::make_vector(rm, ctx) : nullptr;
  op(w, m, cfg.accum ? GrB_PLUS_FP64 : GrB_NULL, a, u, v, desc_for(cfg));
  ref::Vec out = testutil::to_ref(w);
  GrB_free(&w);
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&v);
  if (m != nullptr) GrB_free(&m);
  GrB_free(&ctx);
  return out;
}

// Sweeps configs x thread counts, comparing every parallel run against
// the 1-thread run on identical inputs.
template <class Fn>
void sweep_mat_op(uint64_t seed, Fn&& op) {
  ThresholdGuard guard;
  ref::Mat rc0 = real_mat(kDim, kDim, 0.25, seed + 1);
  ref::Mat ra = real_mat(kDim, kDim, 0.2, seed + 2);
  ref::Mat rb = real_mat(kDim, kDim, 0.2, seed + 3);
  ref::Mat rm = mask_mat(kDim, kDim, seed + 4);
  for (const Config& cfg : all_configs()) {
    ref::Mat serial = run_mat_op(1, cfg, rc0, ra, rb, rm, op);
    for (int nthreads : {2, 4, 8}) {
      ref::Mat parallel = run_mat_op(nthreads, cfg, rc0, ra, rb, rm, op);
      EXPECT_TRUE(testutil::mats_equal(serial, parallel))
          << config_name(cfg) << " nthreads=" << nthreads;
    }
  }
}

template <class Fn>
void sweep_vec_op(uint64_t seed, Fn&& op) {
  ThresholdGuard guard;
  ref::Vec rw0 = real_vec(kVDim, 0.3, seed + 1);
  ref::Mat ra = real_mat(kVDim, kVDim, 0.05, seed + 2);
  ref::Vec ru = real_vec(kVDim, 0.4, seed + 3);
  ref::Vec rv = real_vec(kVDim, 0.4, seed + 4);
  ref::Vec rm = mask_vec(kVDim, seed + 5);
  for (const Config& cfg : all_configs()) {
    ref::Vec serial = run_vec_op(1, cfg, rw0, ra, ru, rv, rm, op);
    for (int nthreads : {2, 4, 8}) {
      ref::Vec parallel =
          run_vec_op(nthreads, cfg, rw0, ra, ru, rv, rm, op);
      EXPECT_TRUE(testutil::vecs_equal(serial, parallel))
          << config_name(cfg) << " nthreads=" << nthreads;
    }
  }
}

TEST(DiffOracle, Mxm) {
  sweep_mat_op(100, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix b, GrB_Descriptor d) {
    ASSERT_EQ(GrB_mxm(c, m, accum, GrB_PLUS_TIMES_SEMIRING_FP64, a, b, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, MxmMinPlus) {
  sweep_mat_op(200, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix b, GrB_Descriptor d) {
    ASSERT_EQ(GrB_mxm(c, m, accum, GrB_MIN_PLUS_SEMIRING_FP64, a, b, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, EwiseAddMatrix) {
  sweep_mat_op(300, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix b, GrB_Descriptor d) {
    ASSERT_EQ(GrB_eWiseAdd(c, m, accum, GrB_PLUS_FP64, a, b, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, EwiseMultMatrix) {
  sweep_mat_op(400, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix b, GrB_Descriptor d) {
    ASSERT_EQ(GrB_eWiseMult(c, m, accum, GrB_TIMES_FP64, a, b, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, ApplyMatrix) {
  sweep_mat_op(500, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix, GrB_Descriptor d) {
    ASSERT_EQ(GrB_apply(c, m, accum, GrB_AINV_FP64, a, d), GrB_SUCCESS);
  });
}

TEST(DiffOracle, SelectMatrix) {
  sweep_mat_op(600, [](GrB_Matrix c, GrB_Matrix m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Matrix, GrB_Descriptor d) {
    ASSERT_EQ(GrB_select(c, m, accum, GrB_VALUEGT_FP64, a, 0.0, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, ReduceMatrixToVector) {
  sweep_vec_op(700, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Vector, GrB_Vector,
                       GrB_Descriptor d) {
    ASSERT_EQ(GrB_reduce(w, m, accum, GrB_PLUS_MONOID_FP64, a, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, Mxv) {
  sweep_vec_op(800, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Vector u, GrB_Vector,
                       GrB_Descriptor d) {
    ASSERT_EQ(GrB_mxv(w, m, accum, GrB_PLUS_TIMES_SEMIRING_FP64, a, u, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, Vxm) {
  sweep_vec_op(900, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                       GrB_Matrix a, GrB_Vector u, GrB_Vector,
                       GrB_Descriptor d) {
    ASSERT_EQ(GrB_vxm(w, m, accum, GrB_PLUS_TIMES_SEMIRING_FP64, u, a, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, EwiseAddVector) {
  sweep_vec_op(1000, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                        GrB_Matrix, GrB_Vector u, GrB_Vector v,
                        GrB_Descriptor d) {
    ASSERT_EQ(GrB_eWiseAdd(w, m, accum, GrB_PLUS_FP64, u, v, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, EwiseMultVector) {
  sweep_vec_op(1100, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                        GrB_Matrix, GrB_Vector u, GrB_Vector v,
                        GrB_Descriptor d) {
    ASSERT_EQ(GrB_eWiseMult(w, m, accum, GrB_TIMES_FP64, u, v, d),
              GrB_SUCCESS);
  });
}

TEST(DiffOracle, ApplyVector) {
  sweep_vec_op(1200, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                        GrB_Matrix, GrB_Vector u, GrB_Vector,
                        GrB_Descriptor d) {
    ASSERT_EQ(GrB_apply(w, m, accum, GrB_AINV_FP64, u, d), GrB_SUCCESS);
  });
}

TEST(DiffOracle, SelectVector) {
  sweep_vec_op(1300, [](GrB_Vector w, GrB_Vector m, GrB_BinaryOp accum,
                        GrB_Matrix, GrB_Vector u, GrB_Vector,
                        GrB_Descriptor d) {
    ASSERT_EQ(GrB_select(w, m, accum, GrB_VALUEGT_FP64, u, 0.0, d),
              GrB_SUCCESS);
  });
}

// Scalar reductions: the blocked fold must give the same bits for every
// thread count.
TEST(DiffOracle, ReduceToScalar) {
  ThresholdGuard guard;
  ref::Mat ra = real_mat(kDim, kDim, 0.4, 1400);
  ref::Vec ru = real_vec(20000, 0.5, 1401);  // > one reduce block
  double want_m = 0, want_v = 0;
  bool first = true;
  for (int nthreads : {1, 2, 4, 8}) {
    GrB_Context ctx = make_ctx(nthreads);
    GrB_Matrix a = testutil::make_matrix(ra, ctx);
    GrB_Vector u = testutil::make_vector(ru, ctx);
    double sm = 0, sv = 0;
    ASSERT_EQ(GrB_reduce(&sm, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_reduce(&sv, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
              GrB_SUCCESS);
    if (first) {
      want_m = sm;
      want_v = sv;
      first = false;
    } else {
      EXPECT_EQ(want_m, sm) << "matrix reduce, nthreads=" << nthreads;
      EXPECT_EQ(want_v, sv) << "vector reduce, nthreads=" << nthreads;
    }
    GrB_free(&a);
    GrB_free(&u);
    GrB_free(&ctx);
  }
}

}  // namespace
