// Differential oracle for the nonblocking-mode fusion planner.
//
// The planner promises that fusing elementwise chains, eliminating dead
// writes, and batching pending-tuple flushes is invisible: every program
// of queued ops must produce bitwise-identical container contents AND
// identical mid-chain read results (extractElement / nvals / reduce)
// whether fusion is on or off, at any thread count.  This harness
// interprets random op programs — apply (unary / bind1st / bind2nd),
// eWiseAdd/eWiseMult with self and distinct operands, mxv with and
// without transpose, scalar assign, setElement bursts, clear, and
// mid-chain reads, decorated with random masks, accumulators, and
// descriptors — twice per thread count with only the fusion knob
// flipped, and requires exact agreement.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/fusion.hpp"
#include "core/global.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

// Pins the fusion knob through the public ablation API so the test also
// exercises GxB_Fusion_set/get round-tripping.
struct FusionGuard {
  int saved;
  explicit FusionGuard(bool on) {
    EXPECT_EQ(GxB_Fusion_get(&saved), GrB_SUCCESS);
    EXPECT_EQ(GxB_Fusion_set(on ? 1 : 0), GrB_SUCCESS);
  }
  ~FusionGuard() { GxB_Fusion_set(saved); }
};

struct StatsGuard {
  StatsGuard() {
    GxB_Stats_enable(1);
    GxB_Stats_reset();
  }
  ~StatsGuard() { GxB_Stats_enable(0); }
};

uint64_t counter(const char* name) {
  uint64_t v = 0;
  EXPECT_EQ(GxB_Stats_get(name, &v), GrB_SUCCESS);
  return v;
}

GrB_Context make_ctx(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

constexpr GrB_Index kN = 48;

// Fixed inputs shared by both legs of a differential pair.
struct Instance {
  ref::Vec w0, u0, mk;
  ref::Mat a;
};

Instance make_instance(uint64_t seed) {
  Instance in{testutil::random_vec(kN, 0.6, seed + 1),
              testutil::random_vec(kN, 0.5, seed + 2),
              testutil::random_vec(kN, 0.4, seed + 3),
              testutil::random_mat(kN, kN, 0.15, seed + 4)};
  return in;
}

// Every value observed by a mid-chain read, in program order.  Reads
// drain (a prefix of) the queue, so agreement here proves the read
// barrier shows the same fully-applied state in both modes.
struct Trace {
  std::vector<double> reads;

  ::testing::AssertionResult equals(const Trace& other) const {
    if (reads.size() != other.reads.size())
      return ::testing::AssertionFailure()
             << "trace length " << other.reads.size() << " != "
             << reads.size();
    for (size_t k = 0; k < reads.size(); ++k)
      if (reads[k] != other.reads[k])
        return ::testing::AssertionFailure()
               << "read[" << k << "] " << other.reads[k] << " != "
               << reads[k];
    return ::testing::AssertionSuccess();
  }
};

// Interprets the op program derived from `seed` against fresh copies of
// the instance.  The program depends only on the PRNG stream, never on
// computed values, so both legs replay the identical op sequence.
ref::Vec run_program(const Instance& in, uint64_t seed, int steps,
                     int nthreads, bool fused, Trace* trace) {
  FusionGuard fusion(fused);
  GrB_Context ctx = make_ctx(nthreads);
  GrB_Vector w = testutil::make_vector(in.w0, ctx);
  GrB_Vector u = testutil::make_vector(in.u0, ctx);
  GrB_Vector mk = testutil::make_vector(in.mk, ctx);
  GrB_Matrix a = testutil::make_matrix(in.a, ctx);
  grb::Prng rng(seed * 0x9E3779B97F4A7C15ull + 11);

  auto maybe_mask = [&]() -> GrB_Vector {
    return rng.below(4) == 0 ? mk : nullptr;
  };
  auto maybe_accum = [&]() -> GrB_BinaryOp {
    return rng.below(4) == 0 ? GrB_PLUS_FP64 : GrB_NULL;
  };
  auto maybe_desc = [&](bool has_mask) -> GrB_Descriptor {
    switch (rng.below(4)) {
      case 0:
        return GrB_DESC_R;
      case 1:
        return has_mask ? GrB_DESC_S : GrB_NULL;
      case 2:
        return has_mask ? GrB_DESC_SC : GrB_NULL;
      default:
        return GrB_NULL;
    }
  };

  for (int step = 0; step < steps; ++step) {
    switch (rng.below(13)) {
      case 0: {  // unary apply, self input (fusable map when plain)
        const GrB_UnaryOp ops[] = {GrB_ABS_FP64, GrB_AINV_FP64,
                                   GrB_MINV_FP64, GrB_AINV_INT32};
        GrB_UnaryOp op = ops[rng.below(4)];
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_apply(w, m, maybe_accum(), op, w,
                            maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 1: {  // unary apply from the distinct source (snapshot head)
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_apply(w, m, maybe_accum(), GrB_ABS_FP64, u,
                            maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 2: {  // bind2nd: w = w + s
        double s = static_cast<double>(1 + rng.below(5));
        EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, w, s,
                            GrB_NULL),
                  GrB_SUCCESS);
        break;
      }
      case 3: {  // bind1st: w = s * w, occasionally masked
        double s = rng.below(2) ? 0.5 : 3.0;
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_apply(w, m, maybe_accum(), GrB_TIMES_FP64, s, w,
                            maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 4: {  // union zip, self on the x side
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_eWiseAdd(w, m, maybe_accum(), GrB_PLUS_FP64, w, u,
                               maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 5: {  // intersection zip, self on the y side
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_eWiseMult(w, m, maybe_accum(), GrB_TIMES_FP64, u, w,
                                maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 6: {  // both-self zip (degenerates to a map)
        EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_MAX_FP64, w, w,
                               GrB_NULL),
                  GrB_SUCCESS);
        break;
      }
      case 7: {  // plain mxv from the distinct source: a dead-write killer
        GrB_Descriptor d = rng.below(2) ? GrB_DESC_T0 : GrB_NULL;
        EXPECT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, a, u, d),
                  GrB_SUCCESS);
        break;
      }
      case 8: {  // self-input mxv (snapshot forces prefix completion)
        GrB_Vector m = maybe_mask();
        EXPECT_EQ(GrB_mxv(w, m, maybe_accum(),
                          GrB_PLUS_TIMES_SEMIRING_FP64, a, w,
                          maybe_desc(m != nullptr)),
                  GrB_SUCCESS);
        break;
      }
      case 9: {  // setElement burst: pending tuples between queued ops
        int burst = 1 + static_cast<int>(rng.below(3));
        for (int b = 0; b < burst; ++b) {
          double val = static_cast<double>(1 + rng.below(9));
          GrB_Index i = rng.below(kN);
          EXPECT_EQ(GrB_Vector_setElement(w, val, i), GrB_SUCCESS);
        }
        break;
      }
      case 10: {  // scalar assign over a contiguous range
        GrB_Index lo = rng.below(kN);
        GrB_Index len = 1 + rng.below(kN - lo);
        std::vector<GrB_Index> idx(len);
        for (GrB_Index k = 0; k < len; ++k) idx[k] = lo + k;
        double val = static_cast<double>(1 + rng.below(9));
        GrB_BinaryOp accum = rng.below(2) ? GrB_PLUS_FP64 : GrB_NULL;
        EXPECT_EQ(GrB_assign(w, GrB_NULL, accum, val, idx.data(), len,
                             GrB_NULL),
                  GrB_SUCCESS);
        break;
      }
      case 11: {  // mid-chain read: must observe the fully-applied prefix
        switch (rng.below(3)) {
          case 0: {
            double x = 0.0;
            GrB_Index i = rng.below(kN);
            GrB_Info info = GrB_Vector_extractElement(&x, w, i);
            EXPECT_TRUE(info == GrB_SUCCESS || info == GrB_NO_VALUE);
            trace->reads.push_back(info == GrB_SUCCESS ? x : -12345.0);
            break;
          }
          case 1: {
            GrB_Index nv = 0;
            EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
            trace->reads.push_back(static_cast<double>(nv));
            break;
          }
          default: {
            double sum = 0.0;
            EXPECT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, w,
                                 GrB_NULL),
                      GrB_SUCCESS);
            trace->reads.push_back(sum);
            break;
          }
        }
        break;
      }
      default: {  // clear: the simplest killer
        EXPECT_EQ(GrB_Vector_clear(w), GrB_SUCCESS);
        break;
      }
    }
  }

  EXPECT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  ref::Vec out = testutil::to_ref(w);
  GrB_free(&w);
  GrB_free(&u);
  GrB_free(&mk);
  GrB_free(&a);
  GrB_free(&ctx);
  return out;
}

// Seed corpus: chain lengths sweep the full 2..12 range the planner can
// see in one batch; every seed runs at 1 and 8 threads with fusion on
// and off, and all four executions must agree exactly.
TEST(FusionDiff, RandomChainsMatchEager) {
  ThresholdGuard threshold;
  for (uint64_t seed = 6100; seed < 6148; ++seed) {
    Instance in = make_instance(seed);
    int steps = 2 + static_cast<int>(seed % 11);
    Trace eager1;
    ref::Vec expect = run_program(in, seed, steps, 1, false, &eager1);
    for (int nthreads : {1, 8}) {
      for (bool fused : {false, true}) {
        if (nthreads == 1 && !fused) continue;  // the baseline itself
        Trace t;
        ref::Vec got = run_program(in, seed, steps, nthreads, fused, &t);
        EXPECT_TRUE(testutil::vecs_equal(expect, got))
            << "seed=" << seed << " steps=" << steps
            << " nthreads=" << nthreads << " fused=" << fused;
        EXPECT_TRUE(eager1.equals(t))
            << "seed=" << seed << " steps=" << steps
            << " nthreads=" << nthreads << " fused=" << fused;
      }
    }
  }
}

// Read-free chains maximize the batch the planner sees at the final
// wait: no mid-chain barrier ever splits the queue, so fusable runs and
// killers coexist in one plan.
TEST(FusionDiff, LongUnbrokenChains) {
  ThresholdGuard threshold;
  for (uint64_t seed = 6200; seed < 6212; ++seed) {
    Instance in = make_instance(seed);
    GrB_Index touched = 0;
    for (int nthreads : {1, 8}) {
      Trace te, tf;
      // Steps land on read-free kinds only because the seed stream is
      // identical across legs; a read in the program is fine too — the
      // point of this corpus is simply longer chains.
      ref::Vec eager = run_program(in, seed, 12, nthreads, false, &te);
      ref::Vec fused = run_program(in, seed, 12, nthreads, true, &tf);
      EXPECT_TRUE(testutil::vecs_equal(eager, fused))
          << "seed=" << seed << " nthreads=" << nthreads;
      EXPECT_TRUE(te.equals(tf)) << "seed=" << seed;
      for (GrB_Index i = 0; i < kN; ++i) touched += eager.at(i) ? 1 : 0;
    }
    (void)touched;
  }
}

// A deterministic all-fusable chain must actually engage the fused
// executor (fusion.ops_fused > 0) — guarding against the planner
// silently falling back to eager and this whole suite testing nothing.
TEST(FusionDiff, FusedChainEngagesAndMatches) {
  ThresholdGuard threshold;
  Instance in = make_instance(6300);

  auto chain = [&](bool fused) -> ref::Vec {
    FusionGuard fusion(fused);
    GrB_Context ctx = make_ctx(4);
    GrB_Vector w = testutil::make_vector(in.w0, ctx);
    GrB_Vector u = testutil::make_vector(in.u0, ctx);
    EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_ABS_FP64, w, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, w, 2.0,
                        GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, w, u,
                           GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, w, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
    ref::Vec out = testutil::to_ref(w);
    GrB_free(&w);
    GrB_free(&u);
    GrB_free(&ctx);
    return out;
  };

  ref::Vec eager = chain(false);
  uint64_t chains, fused_ops;
  {
    StatsGuard stats;
    ref::Vec fused = chain(true);
    chains = counter("fusion.chains");
    fused_ops = counter("fusion.ops_fused");
    EXPECT_TRUE(testutil::vecs_equal(eager, fused));
  }
  EXPECT_GE(chains, 1u);
  EXPECT_GE(fused_ops, 4u);
}

// Two plain mxv's back to back: the planner must drop the first (its
// output is overwritten wholesale before anyone reads it) and still
// match the eager leg, which runs both.
TEST(FusionDiff, DeadWriteEliminationMatches) {
  ThresholdGuard threshold;
  Instance in = make_instance(6400);

  auto overwrite = [&](bool fused) -> ref::Vec {
    FusionGuard fusion(fused);
    GrB_Context ctx = make_ctx(4);
    GrB_Vector w = testutil::make_vector(in.w0, ctx);
    GrB_Vector u = testutil::make_vector(in.u0, ctx);
    GrB_Matrix a = testutil::make_matrix(in.a, ctx);
    EXPECT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_DESC_T0),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
    ref::Vec out = testutil::to_ref(w);
    GrB_free(&w);
    GrB_free(&u);
    GrB_free(&a);
    GrB_free(&ctx);
    return out;
  };

  ref::Vec eager = overwrite(false);
  uint64_t dead;
  {
    StatsGuard stats;
    ref::Vec fused = overwrite(true);
    dead = counter("fusion.dead_writes_eliminated");
    EXPECT_TRUE(testutil::vecs_equal(eager, fused));
  }
  EXPECT_GE(dead, 1u);
}

// Pending setElement tuples must survive dead-write elimination
// correctly: a flush queued before a killer dies with it (the tuples it
// would have folded are overwritten anyway), while a flush after the
// killer still applies.
TEST(FusionDiff, PendingTuplesAcrossKillers) {
  ThresholdGuard threshold;
  Instance in = make_instance(6500);

  auto program = [&](bool fused) -> ref::Vec {
    FusionGuard fusion(fused);
    GrB_Context ctx = make_ctx(4);
    GrB_Vector w = testutil::make_vector(in.w0, ctx);
    GrB_Vector u = testutil::make_vector(in.u0, ctx);
    GrB_Matrix a = testutil::make_matrix(in.a, ctx);
    EXPECT_EQ(GrB_Vector_setElement(w, 99.0, 3), GrB_SUCCESS);
    // Self-input apply queues a flush for the tuple above, then the
    // plain mxv kills both.
    EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_ABS_FP64, w, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_NULL),
              GrB_SUCCESS);
    // Tuples queued after the killer must land in the final result.
    EXPECT_EQ(GrB_Vector_setElement(w, 77.0, 5), GrB_SUCCESS);
    EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, w, GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
    ref::Vec out = testutil::to_ref(w);
    GrB_free(&w);
    GrB_free(&u);
    GrB_free(&a);
    GrB_free(&ctx);
    return out;
  };

  ref::Vec eager = program(false);
  ref::Vec fused = program(true);
  EXPECT_TRUE(testutil::vecs_equal(eager, fused));
  // The post-killer tuple went through AINV exactly once.
  ASSERT_TRUE(fused.at(5).has_value());
  EXPECT_EQ(*fused.at(5), -77.0);
}

}  // namespace
