// Decision-audit explain surface and hardware-profiler degradation.
//
// GxB_Explain must return a non-empty, accurate plan for GrB_mxm under
// every storage format x SpGEMM mode combination — the audit is only
// useful if it never goes dark when the execution strategy changes
// under it.  The profiler tests pin GRB_PERF_EVENTS=0 to prove the
// mandatory graceful-degradation path: perf_event_open denied must
// leave a live CPU-time backend, not a dead feature.
//
// Lives in the grb_obs_tests binary (telemetry_test.cpp owns main());
// each test runs its own GrB_init/GrB_finalize cycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "obs/profiler.hpp"
#include "ops/spgemm.hpp"

namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(GxB_Format_set(GxB_FORMAT_AUTO), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_enable(0), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
    EXPECT_EQ(GrB_finalize(), GrB_SUCCESS);
  }
};

// Two-call sizing protocol; returns the filled text.
std::string explain(const char* op) {
  GrB_Index len = 0;
  EXPECT_EQ(GxB_Explain(op, GrB_NULL, &len), GrB_SUCCESS);
  EXPECT_GT(len, 1u);
  std::vector<char> buf(len);
  EXPECT_EQ(GxB_Explain(op, buf.data(), &len), GrB_SUCCESS);
  return std::string(buf.data());
}

GrB_Matrix path_matrix(GrB_Index n) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i + 1 < n; ++i)
    EXPECT_EQ(GrB_Matrix_setElement(a, 1.0, i, i + 1), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  return a;
}

TEST_F(ExplainTest, RoundTripAcrossFormatsAndSpgemmModes) {
  const GxB_Format formats[] = {GxB_FORMAT_CSR, GxB_FORMAT_HYPER,
                                GxB_FORMAT_BITMAP, GxB_FORMAT_DENSE};
  const grb::SpgemmMode modes[] = {grb::SpgemmMode::kHash,
                                   grb::SpgemmMode::kDense};
  grb::SpgemmMode saved_mode = grb::spgemm_mode();
  for (GxB_Format fmt : formats) {
    for (grb::SpgemmMode mode : modes) {
      SCOPED_TRACE(::testing::Message()
                   << "format=" << (int)fmt << " mode=" << (int)mode);
      ASSERT_EQ(GxB_Format_set(fmt), GrB_SUCCESS);
      grb::set_spgemm_mode(mode);
      ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
      ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

      GrB_Matrix a = path_matrix(8);
      GrB_Matrix c = nullptr;
      ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
      ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, a, a, GrB_NULL),
                GrB_SUCCESS);
      ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);

      // The plan names the op, the accumulator site, and the strategy
      // the pinned mode forced — accurate, not merely non-empty.
      std::string text = explain("GrB_mxm");
      EXPECT_NE(text.find("decision audit:"), std::string::npos) << text;
      EXPECT_NE(text.find("GrB_mxm spgemm_accum"), std::string::npos)
          << text;
      const char* strategy =
          mode == grb::SpgemmMode::kDense ? "chose dense" : "chose hash";
      EXPECT_NE(text.find(strategy), std::string::npos) << text;
      // Perfect prediction on the path product: 6 flops in, 6 entries
      // out — the plan must not cry mispredict.
      EXPECT_EQ(text.find("MISPREDICT"), std::string::npos) << text;

      // The op filter is real: an op that never ran matches nothing.
      std::string other = explain("GrB_vxm");
      EXPECT_NE(other.find("no ring records match the filter"),
                std::string::npos)
          << other;

      GrB_free(&a);
      GrB_free(&c);
    }
  }
  grb::set_spgemm_mode(saved_mode);
}

TEST_F(ExplainTest, DisabledAuditSaysHowToEnable) {
  std::string text = explain(GrB_NULL);
  EXPECT_NE(text.find("decision audit disabled"), std::string::npos)
      << text;
  EXPECT_NE(text.find("GRB_DECISIONS=1"), std::string::npos) << text;
}

TEST_F(ExplainTest, NullLengthPointerRejected) {
  EXPECT_EQ(GxB_Explain(GrB_NULL, GrB_NULL, GrB_NULL), GrB_NULL_POINTER);
}

TEST_F(ExplainTest, TruncationKeepsTerminatorAndReportsNeed) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  char tiny[8];
  GrB_Index len = sizeof tiny;
  ASSERT_EQ(GxB_Explain(GrB_NULL, tiny, &len), GrB_SUCCESS);
  EXPECT_GT(len, sizeof tiny);               // the real need
  EXPECT_EQ(tiny[sizeof tiny - 1], '\0');    // NUL within the buffer
  EXPECT_EQ(std::strlen(tiny), sizeof tiny - 1);
}

// Forced fallback: with perf events disabled by env, the profiler must
// come up on a CPU-time backend and still aggregate kernel regions.
TEST(ProfFallbackTest, DegradesGracefullyWhenPerfDenied) {
  ASSERT_EQ(setenv("GRB_PERF_EVENTS", "0", 1), 0);
  ASSERT_EQ(setenv("GRB_PROF", "1", 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);

  EXPECT_NE(grb::obs::prof_backend(), grb::obs::ProfBackend::kPerf);
  std::string backend = grb::obs::prof_backend_name();
  EXPECT_TRUE(backend == "thread-cputime" || backend == "getrusage")
      << backend;

  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);

  uint64_t regions = 0;
  ASSERT_EQ(GxB_Stats_get("prof.regions", &regions), GrB_SUCCESS);
  EXPECT_GE(regions, 1u);
  uint64_t cpu_ns = 0;
  ASSERT_EQ(GxB_Stats_get("prof.cpu_ns", &cpu_ns), GrB_SUCCESS);
  EXPECT_GT(cpu_ns, 0u);
  // Degraded backends have no cycle counters — the fields read zero
  // rather than lying.
  uint64_t cycles = 0;
  ASSERT_EQ(GxB_Stats_get("prof.cycles", &cycles), GrB_SUCCESS);
  EXPECT_EQ(cycles, 0u);

  // The JSON report names the live backend so a dashboard can caveat
  // its IPC columns.
  std::string json = grb::obs::prof_json();
  EXPECT_NE(json.find("\"backend\":\"" + backend + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"op\":\"GrB_mxm\""), std::string::npos) << json;

  grb::obs::prof_set_enabled(false);
  grb::obs::prof_reset();
  GrB_free(&a);
  GrB_free(&c);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
  ASSERT_EQ(unsetenv("GRB_PERF_EVENTS"), 0);
  ASSERT_EQ(unsetenv("GRB_PROF"), 0);
}

}  // namespace
