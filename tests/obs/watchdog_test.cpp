// Stall watchdog and lock-contention profiler tests: a synthetic slow
// deferred method trips the completion watchdog and auto-dumps the
// flight recorder naming the stalled tenant; a held Mutex trips the
// lock-wait watchdog naming the holder's site; contended sites surface
// in GxB_Stats_get and the Prometheus exposition.
//
// Compiled into grb_obs_tests (telemetry_test.cpp owns main()); every
// test runs its own GrB_init / GrB_finalize.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "containers/vector.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override {
    grb::obs::watchdog_stop();
    EXPECT_EQ(GxB_Stats_enable(0), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
    EXPECT_EQ(GrB_finalize(), GrB_SUCCESS);
  }
};

// A deferred method that outlives the deadline while its owner drains
// the queue trips the watchdog, which dumps the flight recorder with
// the stalled completion attributed to the object's home context.
TEST_F(WatchdogTest, SlowDeferredCompletionTripsAndNamesContext) {
  grb::obs::watchdog_start(25);
  const uint64_t trips_before = grb::obs::watchdog_trips();

  GrB_Context ctx = nullptr;
  ASSERT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, nullptr, nullptr),
            GrB_SUCCESS);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8, ctx), GrB_SUCCESS);
  {
    // Inject the synthetic stall directly into the object's sequence,
    // named like an API method so diagnostics stay readable.
    grb::obs::CurrentOpScope op_scope("TestSlowDeferredOp");
    v->enqueue([] {
      sleep_ms(150);
      return grb::Info::kSuccess;
    });
  }
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);

  EXPECT_GT(grb::obs::watchdog_trips(), trips_before);
  uint64_t g = 0;
  EXPECT_EQ(GxB_Stats_get("watchdog.trips", &g), GrB_SUCCESS);
  EXPECT_GT(g, 0u);
  EXPECT_EQ(GxB_Stats_get("watchdog.deadline_ms", &g), GrB_SUCCESS);
  EXPECT_EQ(g, 25u);

  std::string dump = grb::obs::fr_last_dump_text();
  EXPECT_NE(dump.find("watchdog: completion"), std::string::npos) << dump;
  EXPECT_NE(dump.find("ObjectBase::complete"), std::string::npos) << dump;
  EXPECT_NE(dump.find("(ctx=" + std::to_string(ctx->obs_id()) + ")"),
            std::string::npos)
      << dump;

  GrB_free(&v);
  GrB_free(&ctx);
}

// A thread blocked on a Mutex past the deadline trips the lock-wait
// watchdog; the report names both the waiting site and the site that
// is holding the lock.
TEST_F(WatchdogTest, LockStallNamesHolderSite) {
  grb::obs::watchdog_start(25);
  const uint64_t trips_before = grb::obs::watchdog_trips();

  grb::Mutex mu;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    grb::MutexLock lock(mu, "wd_holder_site");
    held.store(true, std::memory_order_release);
    sleep_ms(180);
  });
  while (!held.load(std::memory_order_acquire)) sleep_ms(1);
  {
    grb::MutexLock lock(mu, "wd_waiter_site");
  }
  holder.join();

  EXPECT_GT(grb::obs::watchdog_trips(), trips_before);
  std::string dump = grb::obs::fr_last_dump_text();
  EXPECT_NE(dump.find("watchdog: lock-wait"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"wd_waiter_site\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("holder=wd_holder_site"), std::string::npos) << dump;
}

// Contended sites surface through the dotted-name counter schema and as
// labeled Prometheus families.
TEST_F(WatchdogTest, ContendedSiteSurfacesInStatsAndPrometheus) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  grb::Mutex mu;
  uint64_t shared = 0;
  auto hammer = [&] {
    for (int i = 0; i < 4000; ++i) {
      grb::MutexLock lock(mu, "wd_bench_site");
      ++shared;
    }
  };
  std::thread t1(hammer), t2(hammer);
  t1.join();
  t2.join();
  EXPECT_EQ(shared, 8000u);

  uint64_t acquires = 0;
  ASSERT_EQ(GxB_Stats_get("lock.wd_bench_site.acquires", &acquires),
            GrB_SUCCESS);
  EXPECT_EQ(acquires, 8000u);
  // p50/p99 resolve (possibly zero when uncontended; the schema answers
  // either way once the site exists).
  uint64_t q = ~0ull;
  EXPECT_EQ(GxB_Stats_get("lock.wd_bench_site.p99_ns", &q), GrB_SUCCESS);

  GrB_Index need = 0;
  ASSERT_EQ(GxB_Stats_prometheus(nullptr, &need), GrB_SUCCESS);
  std::vector<char> buf(need + 4096);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_prometheus(buf.data(), &len), GrB_SUCCESS);
  std::string prom(buf.data());
  EXPECT_NE(prom.find("# TYPE grb_lock_acquisitions_total counter"),
            std::string::npos);
  EXPECT_NE(
      prom.find("grb_lock_acquisitions_total{site=\"wd_bench_site\"} 8000"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("grb_lock_contended_total{site=\"wd_bench_site\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE grb_watchdog_trips_total counter"),
            std::string::npos);
}

}  // namespace
