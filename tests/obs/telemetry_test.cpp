// Telemetry subsystem tests: exact counter oracles, queue-depth gauges,
// Chrome-trace output, GRB_STATS/GRB_TRACE env activation, the op-named
// deferred-error diagnostics, and a multithreaded counter-consistency
// check (this binary is labeled tsan, so the ThreadSanitizer preset runs
// it to prove the hooks race-free).
//
// This suite owns its main(): each test performs its own GrB_init /
// GrB_finalize so the env-activation tests can set GRB_STATS/GRB_TRACE
// before library initialization (the shared test_main.cpp environment
// initializes once per process, which would pin the env state).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "exec/fusion.hpp"
#include "obs/flight_recorder.hpp"
#include "ops/spgemm.hpp"

namespace {

// Pins the deferred-op fusion planner off for oracles that count one
// deferred execution (and one flop tally) per queued method — under
// fusion a later full-replace mxm/mxv legitimately eliminates its
// predecessors as dead writes.
class FusionGuard {
 public:
  explicit FusionGuard(bool on = false) : saved_(grb::fusion_enabled()) {
    grb::set_fusion_enabled(on);
  }
  ~FusionGuard() { grb::set_fusion_enabled(saved_); }

 private:
  bool saved_;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

size_t count_substr(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

uint64_t counter(const char* name) {
  uint64_t v = ~0ull;
  EXPECT_EQ(GxB_Stats_get(name, &v), GrB_SUCCESS) << name;
  return v;
}

// Per-test library lifecycle with telemetry left clean on exit.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(GxB_Stats_enable(0), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
    EXPECT_EQ(GrB_finalize(), GrB_SUCCESS);
  }
};

// A small materialized n x n path matrix: A(i, i+1) = 1.
GrB_Matrix path_matrix(GrB_Index n) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i + 1 < n; ++i)
    EXPECT_EQ(GrB_Matrix_setElement(a, 1.0, i, i + 1), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  return a;
}

GrB_Vector ones_vector(GrB_Index n) {
  GrB_Vector v = nullptr;
  EXPECT_EQ(GrB_Vector_new(&v, GrB_FP64, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i)
    EXPECT_EQ(GrB_Vector_setElement(v, 1.0, i), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  return v;
}

TEST_F(ObsTest, CountersExactForKnownOpSequence) {
  FusionGuard fusion_off;
  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  GrB_Vector u = ones_vector(8);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 8), GrB_SUCCESS);

  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // The scripted sequence: 2x mxm, 1x mxv, 2x wait.
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
                    GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
                    GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, u,
                    GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);

  EXPECT_EQ(counter("GrB_mxm.calls"), 2u);
  EXPECT_EQ(counter("GrB_mxv.calls"), 1u);
  EXPECT_EQ(counter("GrB_wait.calls"), 2u);
  EXPECT_EQ(counter("GrB_mxm.errors"), 0u);
  // Nonblocking mode: each op executed as a deferred method.
  EXPECT_EQ(counter("GrB_mxm.deferred"), 2u);
  EXPECT_EQ(counter("GrB_mxv.deferred"), 1u);
  // flops: A is an 8-node path (7 entries); A*A chains i->i+2, so the
  // Gustavson expansion is 6 multiplies per mxm; mxv counts nnz(A).
  EXPECT_EQ(counter("GrB_mxm.flops"), 12u);
  EXPECT_EQ(counter("GrB_mxv.flops"), 7u);
  // Scalars written through the writeback choke point.
  EXPECT_GT(counter("GrB_mxm.scalars"), 0u);
  EXPECT_GT(counter("GrB_mxv.scalars"), 0u);
  // Tiny problem: every serial-fallback gate decision picked serial.
  EXPECT_GT(counter("GrB_mxm.serial"), 0u);
  EXPECT_EQ(counter("GrB_mxm.parallel"), 0u);
  // Timers ran.
  EXPECT_GT(counter("GrB_mxm.ns"), 0u);
  EXPECT_GT(counter("GrB_mxm.deferred_ns"), 0u);

  // Unknown counters: GrB_NO_VALUE, value forced to 0.
  uint64_t v = 42;
  EXPECT_EQ(GxB_Stats_get("GrB_mxm.nope", &v), GrB_NO_VALUE);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(GxB_Stats_get("no_such_op.calls", &v), GrB_NO_VALUE);

  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&u);
  GrB_free(&w);
}

// The adaptive SpGEMM engine reports which accumulator each output row
// used, its symbolic flop estimate, and whether per-thread scratch was
// reused from the arena or freshly grown.
TEST_F(ObsTest, SpgemmAccumulatorAndArenaCounters) {
  grb::SpgemmMode saved_mode = grb::spgemm_mode();
  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // Pinned hash mode: the 6 productive rows of A*A (path matrix, rows
  // 0..5 have one flop each) all use the hash accumulator.
  grb::set_spgemm_mode(grb::SpgemmMode::kHash);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("spgemm.rows_hash"), 6u);
  EXPECT_EQ(counter("spgemm.rows_dense"), 0u);
  // Same symbolic estimate the flops counter uses: 6 multiplies.
  EXPECT_EQ(counter("spgemm.flops_estimated"), 6u);
  // First multiply after reset: the hash scratch had to be grown.
  EXPECT_GT(counter("arena.reuse_misses"), 0u);

  // Pinned dense mode on the same product flips every row to the dense
  // accumulator and reuses the arena buffers grown above.
  grb::set_spgemm_mode(grb::SpgemmMode::kDense);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("spgemm.rows_hash"), 6u);
  EXPECT_EQ(counter("spgemm.rows_dense"), 6u);
  EXPECT_EQ(counter("spgemm.flops_estimated"), 12u);

  // Re-running the hash multiply now hits warm scratch.
  grb::set_spgemm_mode(grb::SpgemmMode::kHash);
  uint64_t hits_before = counter("arena.reuse_hits");
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_GT(counter("arena.reuse_hits"), hits_before);

  // The counters surface through the JSON report as well.  A generous
  // fixed buffer rather than the two-call sizing protocol: the dump's
  // own op entry and ns counters grow between a sizing call and a
  // filling call, which would truncate the tail fields under test.
  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  ASSERT_LE(len, buf.size());
  std::string json(buf.data());
  EXPECT_NE(json.find("\"spgemm.rows_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"spgemm.rows_dense\""), std::string::npos);
  EXPECT_NE(json.find("\"spgemm.flops_estimated\""), std::string::npos);
  EXPECT_NE(json.find("\"arena.reuse_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"arena.reuse_misses\""), std::string::npos);

  grb::set_spgemm_mode(saved_mode);
  GrB_free(&a);
  GrB_free(&c);
}

// The decision audit mirrors the accumulator question with exact
// numbers: one mxm on the 8-node path emits one spgemm_accum record
// whose predicted cost is the 6-flop symbolic estimate and whose
// measured outcome is the 6 output entries — a perfect prediction, so
// the mispredict counter stays zero.
TEST_F(ObsTest, DecisionCountersExactForPathMxm) {
  FusionGuard fusion_off;
  grb::SpgemmMode saved_mode = grb::spgemm_mode();
  grb::set_spgemm_mode(grb::SpgemmMode::kHash);
  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);

  // GxB_Stats_enable turns the decision audit on with it: counters
  // without their why are half an answer.
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);

  EXPECT_EQ(counter("decision.spgemm_accum.records"), 1u);
  EXPECT_EQ(counter("decision.spgemm_accum.measured"), 1u);
  EXPECT_EQ(counter("decision.spgemm_accum.mispredicts"), 0u);
  EXPECT_EQ(counter("decision.spgemm_accum.predicted_units"), 6u);
  EXPECT_EQ(counter("decision.spgemm_accum.measured_units"), 6u);
  // Sites that had no adaptive choice to make stay silent: no mask (so
  // no masked-dot strategy), fusion pinned off, no transpose view.
  EXPECT_EQ(counter("decision.masked_dot.records"), 0u);
  EXPECT_EQ(counter("decision.fusion_plan.records"), 0u);
  EXPECT_EQ(counter("decision.transpose_cache.records"), 0u);
  EXPECT_EQ(counter("decision.mispredicts"), 0u);
  EXPECT_GT(counter("decision.ring_capacity"), 0u);

  // The audit reaches the JSON report as a nested block.
  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  std::string json(buf.data());
  EXPECT_NE(json.find("\"decisions\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spgemm_accum\":{\"records\":1,\"measured\":1,"
                      "\"mispredicts\":0,\"predicted_units\":6,"
                      "\"measured_units\":6}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"prof\":{"), std::string::npos);

  grb::set_spgemm_mode(saved_mode);
  GrB_free(&a);
  GrB_free(&c);
}

TEST_F(ObsTest, QueueDepthHighWaterMatchesScriptedBuildWait) {
  FusionGuard fusion_off;
  GrB_Matrix a = path_matrix(8);
  GrB_Vector u = ones_vector(8);
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 8), GrB_SUCCESS);

  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // Three deferred methods stack up on w's sequence before the wait
  // drains them: depth samples 1, 2, 3.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, u,
                      GrB_NULL),
              GrB_SUCCESS);
  }
  EXPECT_EQ(counter("queue.high_water"), 3u);
  EXPECT_EQ(counter("queue.enqueued"), 3u);
  EXPECT_EQ(counter("queue.drained"), 0u);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("queue.drained"), 3u);
  EXPECT_EQ(counter("GrB_mxv.deferred"), 3u);

  // Pending-tuple gauge: setElement fast path counts tuples per object.
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 5; ++i)
    ASSERT_EQ(GrB_Vector_setElement(w, 1.0, i), GrB_SUCCESS);
  EXPECT_EQ(counter("pending.high_water"), 5u);

  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
}

// Exact oracles for the fusion planner's counters on hand-built chains
// whose plan is fully predictable.
TEST_F(ObsTest, FusionCountersExactForHandBuiltChain) {
  FusionGuard fusion_on(true);
  GrB_Matrix a = path_matrix(8);
  GrB_Vector u = ones_vector(8);
  GrB_Vector w = ones_vector(8);

  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // Three plain self-applies queue three fusable map nodes; the wait
  // plans them as one chain executed in a single pass.
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_ABS_FP64, w, GrB_NULL),
              GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("fusion.chains"), 1u);
  EXPECT_EQ(counter("fusion.ops_fused"), 3u);
  EXPECT_EQ(counter("fusion.dead_writes_eliminated"), 0u);
  // Each fused node still tallies a deferred execution for op parity.
  EXPECT_EQ(counter("GrB_apply.deferred"), 3u);

  // Two plain full-replace mxv's: the planner eliminates the first as a
  // dead write (its output is overwritten wholesale before any read).
  for (int i = 0; i < 2; ++i)
    ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_NULL),
              GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("fusion.dead_writes_eliminated"), 1u);
  // Opaque kernel nodes never fuse into chains.
  EXPECT_EQ(counter("fusion.chains"), 1u);
  EXPECT_EQ(counter("fusion.ops_fused"), 3u);
  // The dead mxv never executed: one deferred tally, not two.
  EXPECT_EQ(counter("GrB_mxv.deferred"), 1u);

  // The counters surface through the JSON report.
  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  std::string json(buf.data());
  EXPECT_NE(json.find("\"fusion.chains\""), std::string::npos);
  EXPECT_NE(json.find("\"fusion.ops_fused\""), std::string::npos);
  EXPECT_NE(json.find("\"fusion.dead_writes_eliminated\""),
            std::string::npos);

  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
}

// Exact oracles for the storage-format counters (DESIGN.md §15):
// format.switches counts publish-time format changes, the transpose
// counters count cached-view hits vs counting-sort rebuilds, and
// format.csr_conversions counts lazy canonical expansions.
TEST_F(ObsTest, FormatCountersExactForKnownSequence) {
  FusionGuard fusion_off;
  GrB_Matrix a = path_matrix(8);
  GrB_Vector u = ones_vector(8);
  GrB_Vector w = ones_vector(8);
  grb::set_transpose_cache_enabled(true);

  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // Two T0 reads of one unchanged snapshot: the first pays the counting
  // sort (miss), the second returns the cached view (hit).
  for (int rep = 0; rep < 2; ++rep) {
    ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_DESC_T0),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  }
  EXPECT_EQ(counter("format.transpose_cache_misses"), 1u);
  EXPECT_EQ(counter("format.transpose_cache_hits"), 1u);

  // With the cache disabled every read recomputes: one more miss, no
  // new hit.
  grb::set_transpose_cache_enabled(false);
  ASSERT_EQ(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, u, GrB_DESC_T0),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(counter("format.transpose_cache_misses"), 2u);
  EXPECT_EQ(counter("format.transpose_cache_hits"), 1u);
  grb::set_transpose_cache_enabled(true);

  // No publish changed a stored format yet.
  EXPECT_EQ(counter("format.switches"), 0u);

  // Three pins = three stored-format changes (csr->bitmap->hyper->csr).
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_BITMAP),
            GrB_SUCCESS);
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_HYPER),
            GrB_SUCCESS);
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_CSR),
            GrB_SUCCESS);
  EXPECT_EQ(counter("format.switches"), 3u);

  // A generic read of a non-CSR block expands it lazily exactly once;
  // the second read reuses the cached canonical view.
  ASSERT_EQ(GxB_Matrix_Option_set(a, GxB_FORMAT, GxB_FORMAT_BITMAP),
            GrB_SUCCESS);
  uint64_t conv_before = counter("format.csr_conversions");
  GrB_Index ri[8], ci[8];
  double vals[8];
  for (int rep = 0; rep < 2; ++rep) {
    GrB_Index n = 8;
    ASSERT_EQ(GrB_Matrix_extractTuples(ri, ci, vals, &n, a), GrB_SUCCESS);
    EXPECT_EQ(n, 7u);
  }
  EXPECT_EQ(counter("format.csr_conversions"), conv_before + 1);

  // The counters surface through both exposition formats.
  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  std::string json(buf.data());
  EXPECT_NE(json.find("\"format.switches\""), std::string::npos);
  EXPECT_NE(json.find("\"format.transpose_cache_hits\""),
            std::string::npos);
  EXPECT_NE(json.find("\"format.transpose_cache_misses\""),
            std::string::npos);
  EXPECT_NE(json.find("\"format.csr_conversions\""), std::string::npos);
  len = buf.size();
  ASSERT_EQ(GxB_Stats_prometheus(buf.data(), &len), GrB_SUCCESS);
  std::string prom(buf.data());
  EXPECT_NE(prom.find("grb_format_switches_total"), std::string::npos);
  EXPECT_NE(prom.find(
                "grb_format_transpose_cache_total{outcome=\"hit\"}"),
            std::string::npos);
  EXPECT_NE(prom.find(
                "grb_format_transpose_cache_total{outcome=\"miss\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_format_csr_conversions_total"),
            std::string::npos);

  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
}

// The always-on flight recorder must show the plan before the fused
// execution, and the fused execution before the per-node deferred-exec
// events it wraps — the causal order a post-mortem reader relies on.
TEST_F(ObsTest, FlightRecorderLogsFusionInCausalOrder) {
  FusionGuard fusion_on(true);
  GrB_Vector w = ones_vector(8);
  uint64_t before = grb::obs::fr_event_count();
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, w, GrB_NULL),
              GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_GT(grb::obs::fr_event_count(), before);

  std::string text = grb::obs::fr_text(0);
  size_t plan = text.rfind("fusion-plan");
  size_t exec = text.rfind("fusion-exec");
  ASSERT_NE(plan, std::string::npos) << text;
  ASSERT_NE(exec, std::string::npos) << text;
  EXPECT_LT(plan, exec);
  // The fused group's nodes log deferred-exec after the group event.
  size_t deferred = text.find("deferred-exec", exec);
  EXPECT_NE(deferred, std::string::npos) << text;

  GrB_free(&w);
}

TEST_F(ObsTest, TraceJsonParsesWithMatchedCompleteEvents) {
  std::string path = ::testing::TempDir() + "grb_obs_trace_test.json";
  ASSERT_EQ(GxB_Trace_start(path.c_str()), GrB_SUCCESS);

  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
                    GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_COMPLETE), GrB_SUCCESS);
  ASSERT_EQ(GxB_Trace_dump(nullptr), GrB_SUCCESS);

  std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Spans are self-closing "X" (complete) events: every one carries a
  // duration, so begin/end pairing is matched by construction.  No
  // unterminated "B" events may appear.
  size_t spans = count_substr(json, "\"ph\":\"X\"");
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(count_substr(json, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(count_substr(json, "\"ph\":\"E\""), 0u);
  EXPECT_EQ(spans, count_substr(json, "\"dur\":"));
  // The mxm API span and its deferred execution (with the gap arg).
  EXPECT_NE(json.find("\"name\":\"GrB_mxm\",\"cat\":\"api\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"GrB_mxm\",\"cat\":\"deferred\""),
            std::string::npos);
  EXPECT_NE(json.find("\"gap_us\":"), std::string::npos);
  // Queue-depth gauge samples ride along as counter events.
  EXPECT_NE(json.find("\"name\":\"queue.depth\",\"ph\":\"C\""),
            std::string::npos);

  std::remove(path.c_str());
  GrB_free(&a);
  GrB_free(&c);
}

TEST_F(ObsTest, DeferredErrorNamesOriginatingOp) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {1, 1};
  double vals[] = {1, 2};
  // Duplicates with a NULL dup op fail at deferred execution time.
  GrB_Info info = GrB_Vector_build(v, idx, vals, 2, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(v, GrB_COMPLETE);
  EXPECT_EQ(info, GrB_INVALID_VALUE);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, v), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  // The diagnostic names the originating method, not just the code.
  EXPECT_NE(std::string(msg).find("GrB_Vector_build"), std::string::npos)
      << msg;
  EXPECT_NE(std::string(msg).find("GrB_INVALID_VALUE"), std::string::npos)
      << msg;
  GrB_free(&v);
}

TEST_F(ObsTest, MultithreadedCounterConsistency) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 64), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([v] {
      for (int i = 0; i < kIters; ++i) {
        GrB_Index n = 0;
        EXPECT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
      }
    });
  }
  for (auto& t : threads) t.join();

  // No lost updates: the relaxed per-counter atomics must still sum
  // exactly under contention.
  EXPECT_EQ(counter("GrB_Vector_nvals.calls"),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(counter("GrB_Vector_nvals.errors"), 0u);
  GrB_free(&v);
}

TEST_F(ObsTest, ExtensionRegistryIntrospection) {
  GrB_Index n = 0;
  ASSERT_EQ(GxB_Extension_count(&n), GrB_SUCCESS);
  EXPECT_EQ(n, GxB_EXTENSION_COUNT);
  bool saw_stats_get = false;
  for (GrB_Index i = 0; i < n; ++i) {
    const char* name = nullptr;
    ASSERT_EQ(GxB_Extension_name(&name, i), GrB_SUCCESS);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(std::string(name).rfind("GxB_", 0), 0u) << name;
    if (std::string(name) == "GxB_Stats_get") saw_stats_get = true;
  }
  EXPECT_TRUE(saw_stats_get);
  const char* name = nullptr;
  EXPECT_EQ(GxB_Extension_name(&name, n), GrB_INVALID_INDEX);
  EXPECT_EQ(GxB_Extension_count(nullptr), GrB_NULL_POINTER);

  // Stats JSON sizing contract.
  GrB_Index len = 0;
  ASSERT_EQ(GxB_Stats_json(nullptr, &len), GrB_SUCCESS);
  ASSERT_GT(len, 2u);
  std::vector<char> buf(len);
  GrB_Index len2 = len;
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len2), GrB_SUCCESS);
  EXPECT_EQ(len2, len);
  EXPECT_EQ(buf[0], '{');
  EXPECT_NE(std::string(buf.data()).find("\"global\""), std::string::npos);
}

// Env activation needs its own fixture-free tests: the variables must be
// set before GrB_init.
TEST(ObsEnvTest, GrbStatsEnvEnablesCounters) {
  ASSERT_EQ(setenv("GRB_STATS", "1", 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  GrB_Index n = 0;
  ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  uint64_t calls = 0;
  EXPECT_EQ(GxB_Stats_get("GrB_Vector_nvals.calls", &calls), GrB_SUCCESS);
  EXPECT_GE(calls, 1u);
  GrB_free(&v);
  // Finalize prints the summary to stderr and deactivates env stats.
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
  ASSERT_EQ(unsetenv("GRB_STATS"), 0);

  // With the variable gone, a fresh cycle starts with stats off.
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  uint64_t after = 0;
  GrB_Info info = GxB_Stats_get("GrB_Vector_nvals.calls", &after);
  EXPECT_TRUE(info == GrB_NO_VALUE || after == 0u);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
}

TEST(ObsEnvTest, GrbTraceEnvDumpsChromeTraceAtFinalize) {
  std::string path = ::testing::TempDir() + "grb_obs_env_trace.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("GRB_TRACE", path.c_str(), 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
  ASSERT_EQ(unsetenv("GRB_TRACE"), 0);

  std::string json = slurp(path);
  ASSERT_FALSE(json.empty()) << path;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_GT(count_substr(json, "\"ph\":\"X\""), 0u);
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
