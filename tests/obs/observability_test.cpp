// Observability-layer tests: latency-histogram percentile oracles,
// memory-attribution gauge balance, the always-on flight recorder's
// post-mortem dump (causal order under threads), and the Prometheus
// exposition surface (GxB_Stats_prometheus / GRB_METRICS).
//
// Compiled into grb_obs_tests (telemetry_test.cpp owns main()); every
// test runs its own GrB_init / GrB_finalize so the env-activation cases
// can set GRB_METRICS / GRB_FLIGHT_RECORDER before initialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

size_t count_substr(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

uint64_t counter(const char* name) {
  uint64_t v = ~0ull;
  EXPECT_EQ(GxB_Stats_get(name, &v), GrB_SUCCESS) << name;
  return v;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(GxB_Stats_enable(0), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
    EXPECT_EQ(GrB_finalize(), GrB_SUCCESS);
  }
};

GrB_Matrix path_matrix(GrB_Index n) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i + 1 < n; ++i)
    EXPECT_EQ(GrB_Matrix_setElement(a, 1.0, i, i + 1), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  return a;
}

// The log2 histograms report quantile upper bounds: a sample of v lands
// in bucket bit_width(v), whose reported value is 2^b - 1.  With
// synthetic durations injected through obs::latency_record the expected
// percentiles are exact closed forms.
TEST_F(ObservabilityTest, HistogramPercentilesMatchClosedFormOracle) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);

  // Uniform: 100 samples of 1000ns.  bucket(1000) = 10, upper = 1023.
  for (int i = 0; i < 100; ++i)
    grb::obs::latency_record("oracle_uniform", 1000);
  EXPECT_EQ(counter("oracle_uniform.p50_ns"), 1023u);
  EXPECT_EQ(counter("oracle_uniform.p90_ns"), 1023u);
  EXPECT_EQ(counter("oracle_uniform.p99_ns"), 1023u);
  // max is tracked exactly, not bucketed.
  EXPECT_EQ(counter("oracle_uniform.max_ns"), 1000u);

  // Bimodal tail: 90 fast (10ns, bucket 4 -> 15) + 10 slow (1ms,
  // bucket 20 -> 1048575).  Ceil-rank quantile: p50 and p90 land on the
  // fast mode (rank 50 and 90 of 100, cum 90 at bucket 4), p99 (rank
  // 99) lands in the tail.
  for (int i = 0; i < 90; ++i) grb::obs::latency_record("oracle_tail", 10);
  for (int i = 0; i < 10; ++i)
    grb::obs::latency_record("oracle_tail", 1000000);
  EXPECT_EQ(counter("oracle_tail.p50_ns"), 15u);
  EXPECT_EQ(counter("oracle_tail.p90_ns"), 15u);
  EXPECT_EQ(counter("oracle_tail.p99_ns"), 1048575u);
  EXPECT_EQ(counter("oracle_tail.max_ns"), 1000000u);

  // Zero-duration samples stay in bucket 0, reported as 0.
  grb::obs::latency_record("oracle_zero", 0);
  EXPECT_EQ(counter("oracle_zero.p50_ns"), 0u);
  EXPECT_EQ(counter("oracle_zero.p99_ns"), 0u);
  EXPECT_EQ(counter("oracle_zero.max_ns"), 0u);

  // The derived percentiles ride along in the JSON dump per op.
  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  std::string json(buf.data());
  EXPECT_NE(json.find("\"oracle_tail\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":1048575"), std::string::npos);
}

// Sharded histogram adds must not lose samples under contention: with
// every sample in one bucket, p50..p99 and max are deterministic no
// matter how the 8 threads interleave.
TEST_F(ObservabilityTest, HistogramShardsMergeConsistentlyUnderThreads) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i)
        grb::obs::latency_record("oracle_mt", 100);  // bucket 7 -> 127
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter("oracle_mt.p50_ns"), 127u);
  EXPECT_EQ(counter("oracle_mt.p99_ns"), 127u);
  EXPECT_EQ(counter("oracle_mt.max_ns"), 100u);
}

TEST_F(ObservabilityTest, MemoryGaugesBalanceAcrossObjectLifecycle) {
  const uint64_t base_live = counter("mem.live_bytes");
  const uint64_t base_objs = counter("mem.objects");

  constexpr GrB_Index kN = 64;
  GrB_Matrix a = path_matrix(kN);  // 63 stored entries
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, kN), GrB_SUCCESS);
  for (GrB_Index i = 0; i < kN; ++i)
    ASSERT_EQ(GrB_Vector_setElement(v, 1.0, i), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);

  // Per-object attribution: at least the value payload must be charged
  // to the owning container.
  uint64_t a_live = 0, a_peak = 0;
  ASSERT_EQ(GxB_Object_memory(a, &a_live, &a_peak), GrB_SUCCESS);
  EXPECT_GE(a_live, 63 * sizeof(double));
  EXPECT_GE(a_peak, a_live);
  uint64_t v_live = 0, v_peak = 0;
  ASSERT_EQ(GxB_Object_memory(v, &v_live, &v_peak), GrB_SUCCESS);
  EXPECT_GE(v_live, kN * sizeof(double));
  EXPECT_GE(v_peak, v_live);

  // Library totals cover both objects, and the registry saw them.
  EXPECT_GE(counter("mem.live_bytes"), base_live + a_live + v_live);
  EXPECT_EQ(counter("mem.objects"), base_objs + 2);
  EXPECT_GE(counter("mem.peak_bytes"), counter("mem.live_bytes"));

  // The human-readable report names each container kind with its shape.
  GrB_Index rlen = 0;
  ASSERT_EQ(GxB_Memory_report(nullptr, &rlen), GrB_SUCCESS);
  ASSERT_GT(rlen, 0u);
  std::vector<char> rbuf(1 << 16);
  GrB_Index rlen2 = rbuf.size();
  ASSERT_EQ(GxB_Memory_report(rbuf.data(), &rlen2), GrB_SUCCESS);
  std::string report(rbuf.data());
  EXPECT_NE(report.find("GraphBLAS memory report"), std::string::npos);
  EXPECT_NE(report.find("matrix"), std::string::npos);
  EXPECT_NE(report.find("vector"), std::string::npos);
  EXPECT_NE(report.find("64x64"), std::string::npos);

  // Argument contract.
  uint64_t dummy = 0;
  EXPECT_EQ(GxB_Object_memory(a, nullptr, &dummy), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Object_memory(a, &dummy, nullptr), GrB_NULL_POINTER);
  EXPECT_EQ(GxB_Object_memory(static_cast<GrB_Matrix>(nullptr), &dummy,
                              &dummy),
            GrB_UNINITIALIZED_OBJECT);

  // Freeing both objects credits every byte back: the global gauge
  // returns exactly to its baseline (allocations are all tracked).
  GrB_free(&a);
  GrB_free(&v);
  EXPECT_EQ(counter("mem.live_bytes"), base_live);
  EXPECT_EQ(counter("mem.objects"), base_objs);
}

// The flight recorder is on by default (no env, no GxB call needed) and
// its gauges surface through GxB_Stats_get and GxB_Stats_json.
TEST_F(ObservabilityTest, FlightRecorderOnByDefaultAndSurfacedInStats) {
  EXPECT_EQ(counter("flight.capacity"), 4096u);
  const uint64_t before = counter("flight.events");
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  GrB_Index n = 0;
  ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  GrB_free(&v);
  EXPECT_GT(counter("flight.events"), before);

  std::vector<char> buf(1 << 16);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_json(buf.data(), &len), GrB_SUCCESS);
  std::string json(buf.data());
  EXPECT_NE(json.find("\"flight.events\""), std::string::npos);
  EXPECT_NE(json.find("\"flight.overwrites\""), std::string::npos);
  EXPECT_NE(json.find("\"flight.capacity\""), std::string::npos);
  // Satellite contract: trace drop-loss is visible in the same place.
  EXPECT_NE(json.find("\"trace.dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"mem.live_bytes\""), std::string::npos);
}

// Post-mortem contract: after heavy multithreaded API traffic, a
// poisoned deferred op auto-dumps a ring whose text names the
// originating method, with the preceding entry-point events in causal
// (sequence) order before the poison record.
TEST_F(ObservabilityTest, FlightRecorderPoisonDumpNamesOriginatingOp) {
  GrB_Vector warm = nullptr;
  ASSERT_EQ(GrB_Vector_new(&warm, GrB_FP64, 64), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(warm, GrB_MATERIALIZE), GrB_SUCCESS);
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([warm] {
      for (int i = 0; i < kIters; ++i) {
        GrB_Index n = 0;
        EXPECT_EQ(GrB_Vector_nvals(&n, warm), GrB_SUCCESS);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Duplicate indices with a NULL dup op: fails at deferred execution,
  // poisoning the sequence and triggering the auto-dump.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {1, 1};
  double vals[] = {1, 2};
  GrB_Info info = GrB_Vector_build(v, idx, vals, 2, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(v, GrB_COMPLETE);
  EXPECT_EQ(info, GrB_INVALID_VALUE);

  std::string dump = grb::obs::fr_last_dump_text();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("flight recorder dump"), std::string::npos);
  // The originating method appears: as the deferred execution record
  // and in the poison reason.
  EXPECT_NE(dump.find("GrB_Vector_build"), std::string::npos) << dump;
  size_t poison_pos = dump.find("poison");
  ASSERT_NE(poison_pos, std::string::npos) << dump;
  // Causal order: the multithreaded traffic shows up as entry-point
  // events strictly before the poison record.
  EXPECT_GE(count_substr(dump.substr(0, poison_pos), "api-enter"), 10u)
      << dump;
  size_t dexec = dump.find("deferred-exec");
  ASSERT_NE(dexec, std::string::npos) << dump;
  EXPECT_LT(dexec, poison_pos);

  // An explicit dump-to-file of the full ring round-trips as trace
  // JSON ('.json' suffix selects the Chrome trace form).
  std::string path = ::testing::TempDir() + "grb_flight_dump_test.json";
  ASSERT_EQ(GxB_FlightRecorder_dump(path.c_str()), GrB_SUCCESS);
  std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flight\""), std::string::npos);
  EXPECT_NE(json.find("GrB_Vector_build"), std::string::npos);
  std::remove(path.c_str());

  GrB_free(&warm);
  GrB_free(&v);
}

TEST_F(ObservabilityTest, PrometheusExpositionSurfacesQuantilesAndMemory) {
  GrB_Matrix a = path_matrix(8);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);

  // Sizing call per the GxB buffer protocol.
  GrB_Index need = 0;
  ASSERT_EQ(GxB_Stats_prometheus(nullptr, &need), GrB_SUCCESS);
  ASSERT_GT(need, 0u);
  EXPECT_EQ(GxB_Stats_prometheus(nullptr, nullptr), GrB_NULL_POINTER);

  // Content via a generous fixed buffer (the exposition grows between
  // two calls: the call itself is a counted entry point).
  std::vector<char> buf(1 << 18);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_prometheus(buf.data(), &len), GrB_SUCCESS);
  std::string prom(buf.data());
  EXPECT_EQ(len, prom.size() + 1);

  // Summary family with per-op quantiles + sum/count.
  EXPECT_NE(prom.find("# TYPE grb_op_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_latency_ns{op=\"GrB_mxm\",context=\"1\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_latency_ns{op=\"GrB_mxm\",context=\"1\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_latency_ns_sum{op=\"GrB_mxm\",context=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_latency_ns_count{op=\"GrB_mxm\",context=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_calls_total{op=\"GrB_mxm\",context=\"1\"} 1"),
            std::string::npos);
  // Memory and flight-recorder gauges with their HELP/TYPE headers.
  EXPECT_NE(prom.find("# TYPE grb_memory_live_bytes gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP grb_memory_live_bytes"), std::string::npos);
  EXPECT_NE(prom.find("grb_memory_peak_bytes "), std::string::npos);
  EXPECT_NE(prom.find("grb_flight_recorder_events_total "),
            std::string::npos);
  EXPECT_NE(prom.find("grb_trace_dropped_total "), std::string::npos);
  // Live objects: a and c are registered right now.
  EXPECT_NE(prom.find("grb_objects "), std::string::npos);

  GrB_free(&a);
  GrB_free(&c);
}

// GRB_METRICS=path dumps the Prometheus exposition at GrB_finalize.
TEST(ObsMetricsEnvTest, GrbMetricsEnvWritesPrometheusAtFinalize) {
  std::string path = ::testing::TempDir() + "grb_obs_env_metrics.prom";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("GRB_METRICS", path.c_str(), 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 1.0, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
  ASSERT_EQ(unsetenv("GRB_METRICS"), 0);

  std::string prom = slurp(path);
  ASSERT_FALSE(prom.empty()) << path;
  EXPECT_NE(prom.find("# TYPE grb_op_calls_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("grb_op_calls_total{op=\"GrB_Vector_setElement"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE grb_memory_live_bytes gauge"),
            std::string::npos);
  std::remove(path.c_str());

  // GRB_METRICS implies stats for that cycle only: a fresh init starts
  // with stats off again.
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  GrB_Index n = 0;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  uint64_t calls = 0;
  GrB_Info info = GxB_Stats_get("GrB_Vector_nvals.calls", &calls);
  EXPECT_TRUE(info == GrB_NO_VALUE || calls == 0u);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
}

// GRB_FLIGHT_RECORDER=N resizes the ring before init; a tiny ring wraps
// under load and reports the overwrites it suffered.
TEST(ObsMetricsEnvTest, GrbFlightRecorderEnvSizesRingAndCountsOverwrites) {
  ASSERT_EQ(setenv("GRB_FLIGHT_RECORDER", "32", 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  uint64_t cap = 0;
  ASSERT_EQ(GxB_Stats_get("flight.capacity", &cap), GrB_SUCCESS);
  EXPECT_EQ(cap, 32u);
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  for (int i = 0; i < 100; ++i) {
    GrB_Index n = 0;
    ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  }
  uint64_t overwrites = 0;
  ASSERT_EQ(GxB_Stats_get("flight.overwrites", &overwrites), GrB_SUCCESS);
  EXPECT_GT(overwrites, 0u);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);

  // GRB_FLIGHT_RECORDER=0 disables recording entirely.
  ASSERT_EQ(setenv("GRB_FLIGHT_RECORDER", "0", 1), 0);
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_get("flight.capacity", &cap), GrB_SUCCESS);
  EXPECT_EQ(cap, 0u);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  GrB_Index n = 0;
  ASSERT_EQ(GrB_Vector_nvals(&n, v), GrB_SUCCESS);
  uint64_t events = ~0ull;
  ASSERT_EQ(GxB_Stats_get("flight.events", &events), GrB_SUCCESS);
  EXPECT_EQ(events, 0u);
  GrB_free(&v);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
  ASSERT_EQ(unsetenv("GRB_FLIGHT_RECORDER"), 0);

  // Default comes back on the next cycle.
  ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_get("flight.capacity", &cap), GrB_SUCCESS);
  EXPECT_EQ(cap, 4096u);
  ASSERT_EQ(GrB_finalize(), GrB_SUCCESS);
}

}  // namespace
