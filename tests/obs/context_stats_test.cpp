// Per-context tenant attribution tests: GxB_Context_stats slicing, exact
// rollup of a freed context's counters into its parent, race-free stats
// reads during context teardown (this binary is tsan-labeled), and the
// Chrome-trace flow events that link an enqueuing API span to the
// deferred execution that ran it.
//
// Compiled into grb_obs_tests (telemetry_test.cpp owns main()); every
// test runs its own GrB_init / GrB_finalize.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "exec/context.hpp"

namespace {

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

class CtxStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_init(GrB_NONBLOCKING), GrB_SUCCESS);
  }
  void TearDown() override {
    EXPECT_EQ(GxB_Stats_enable(0), GrB_SUCCESS);
    EXPECT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
    EXPECT_EQ(GrB_finalize(), GrB_SUCCESS);
  }
};

// One tenant's workload: a vector homed in `ctx`, `sets` setElement
// calls, a materializing wait, then free.
void tenant_workload(GrB_Context ctx, int sets) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 256, ctx), GrB_SUCCESS);
  for (int i = 0; i < sets; ++i)
    ASSERT_EQ(GrB_Vector_setElement(v, 1.0, static_cast<GrB_Index>(i)),
              GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  GrB_free(&v);
}

// Two tenants on two threads: every API call bills to the context its
// object is homed in, GxB_Context_stats reads one tenant's slice, and
// the Prometheus exposition carries both context labels concurrently.
TEST_F(CtxStatsTest, AttributesWorkToOwningContext) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  GrB_Context ca = nullptr, cb = nullptr;
  ASSERT_EQ(GrB_Context_new(&ca, GrB_NONBLOCKING, nullptr, nullptr),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Context_new(&cb, GrB_NONBLOCKING, nullptr, nullptr),
            GrB_SUCCESS);
  const int kSetsA = 12, kSetsB = 5;
  std::thread ta(tenant_workload, ca, kSetsA);
  std::thread tb(tenant_workload, cb, kSetsB);
  ta.join();
  tb.join();

  uint64_t v = ~0ull;
  ASSERT_EQ(GxB_Context_stats(ca, "GrB_Vector_setElement<double>.calls", &v),
            GrB_SUCCESS);
  EXPECT_EQ(v, static_cast<uint64_t>(kSetsA));
  ASSERT_EQ(GxB_Context_stats(cb, "GrB_Vector_setElement<double>.calls", &v),
            GrB_SUCCESS);
  EXPECT_EQ(v, static_cast<uint64_t>(kSetsB));
  // The global view sums every tenant.
  ASSERT_EQ(GxB_Stats_get("GrB_Vector_setElement<double>.calls", &v), GrB_SUCCESS);
  EXPECT_EQ(v, static_cast<uint64_t>(kSetsA + kSetsB));
  // Latency fields resolve per context too.
  ASSERT_EQ(GxB_Context_stats(ca, "GrB_Vector_setElement<double>.p99_ns", &v),
            GrB_SUCCESS);
  // NULL context reads the top-level (unhomed) slice; memory gauges are
  // part of the per-context schema.
  EXPECT_EQ(GxB_Context_stats(nullptr, "mem.live_bytes", &v), GrB_SUCCESS);
  EXPECT_EQ(GxB_Context_stats(ca, "mem.objects", &v), GrB_SUCCESS);
  EXPECT_EQ(v, 0u);  // the tenant freed its vector
  // Unknown names answer GrB_NO_VALUE with *value zeroed.
  v = 7;
  EXPECT_EQ(GxB_Context_stats(ca, "no.such.counter", &v), GrB_NO_VALUE);
  EXPECT_EQ(v, 0u);

  // Both tenants appear as context labels in one scrape.
  GrB_Index need = 0;
  ASSERT_EQ(GxB_Stats_prometheus(nullptr, &need), GrB_SUCCESS);
  std::vector<char> buf(need + 4096);
  GrB_Index len = buf.size();
  ASSERT_EQ(GxB_Stats_prometheus(buf.data(), &len), GrB_SUCCESS);
  std::string prom(buf.data());
  std::string label_a = "grb_op_calls_total{op=\"GrB_Vector_setElement<double>\","
                        "context=\"" + std::to_string(ca->obs_id()) + "\"}";
  std::string label_b = "grb_op_calls_total{op=\"GrB_Vector_setElement<double>\","
                        "context=\"" + std::to_string(cb->obs_id()) + "\"}";
  EXPECT_NE(prom.find(label_a + " 12"), std::string::npos) << prom;
  EXPECT_NE(prom.find(label_b + " 5"), std::string::npos) << prom;

  GrB_free(&ca);
  GrB_free(&cb);
}

// Freeing a context folds its counters into the nearest live ancestor —
// exactly (gauge-balance style: nothing lost, nothing double-counted).
TEST_F(CtxStatsTest, TeardownRollsUpToParentExactly) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  GrB_Context parent = nullptr, child = nullptr;
  ASSERT_EQ(GrB_Context_new(&parent, GrB_NONBLOCKING, nullptr, nullptr),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Context_new(&child, GrB_NONBLOCKING, parent, nullptr),
            GrB_SUCCESS);
  tenant_workload(parent, 3);
  tenant_workload(child, 7);

  uint64_t parent_before = 0, child_slice = 0, total_before = 0;
  ASSERT_EQ(
      GxB_Context_stats(parent, "GrB_Vector_setElement<double>.calls", &parent_before),
      GrB_SUCCESS);
  ASSERT_EQ(
      GxB_Context_stats(child, "GrB_Vector_setElement<double>.calls", &child_slice),
      GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_get("GrB_Vector_setElement<double>.calls", &total_before),
            GrB_SUCCESS);
  EXPECT_EQ(parent_before, 3u);
  EXPECT_EQ(child_slice, 7u);

  ASSERT_EQ(GrB_free(&child), GrB_SUCCESS);

  // The child's slice now reads through the parent; the global total is
  // unchanged (rollup moves counts, it does not mint or drop them).
  uint64_t parent_after = 0, total_after = 0;
  ASSERT_EQ(
      GxB_Context_stats(parent, "GrB_Vector_setElement<double>.calls", &parent_after),
      GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_get("GrB_Vector_setElement<double>.calls", &total_after),
            GrB_SUCCESS);
  EXPECT_EQ(parent_after, parent_before + child_slice);
  EXPECT_EQ(total_after, total_before);
  GrB_free(&parent);
}

// Stats surfaces must stay readable while contexts are being created,
// worked, and torn down on another thread (tsan proves this race-free).
TEST_F(CtxStatsTest, ConcurrentStatsReadsDuringTeardown) {
  ASSERT_EQ(GxB_Stats_enable(1), GrB_SUCCESS);
  ASSERT_EQ(GxB_Stats_reset(), GrB_SUCCESS);
  // Seed the op entry so the reader's by-name lookup always resolves.
  {
    GrB_Context c0 = nullptr;
    ASSERT_EQ(GrB_Context_new(&c0, GrB_NONBLOCKING, nullptr, nullptr),
              GrB_SUCCESS);
    tenant_workload(c0, 4);
    ASSERT_EQ(GrB_free(&c0), GrB_SUCCESS);
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t v = 0;
      GrB_Index need = 0;
      EXPECT_EQ(GxB_Stats_get("GrB_Vector_setElement<double>.calls", &v),
                GrB_SUCCESS);
      EXPECT_EQ(GxB_Stats_json(nullptr, &need), GrB_SUCCESS);
      EXPECT_EQ(GxB_Stats_prometheus(nullptr, &need), GrB_SUCCESS);
    }
  });
  for (int round = 0; round < 15; ++round) {
    GrB_Context c = nullptr;
    ASSERT_EQ(GrB_Context_new(&c, GrB_NONBLOCKING, nullptr, nullptr),
              GrB_SUCCESS);
    tenant_workload(c, 4);
    ASSERT_EQ(GrB_free(&c), GrB_SUCCESS);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  uint64_t total = 0;
  ASSERT_EQ(GxB_Stats_get("GrB_Vector_setElement<double>.calls", &total),
            GrB_SUCCESS);
  EXPECT_EQ(total, 16u * 4u);
}

// A deferred method's execution span is linked back to the API span that
// enqueued it by a Chrome-trace flow pair: "s" (start) emitted inside
// the entry point at enqueue, "t" (step) at the deferred execution,
// sharing one id.
TEST_F(CtxStatsTest, TraceFlowLinksEnqueueToExecution) {
  std::string path = ::testing::TempDir() + "grb_ctx_flow_trace.json";
  ASSERT_EQ(GxB_Trace_start(path.c_str()), GrB_SUCCESS);
  GrB_Matrix a = nullptr;
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 8, 8), GrB_SUCCESS);
  for (GrB_Index i = 0; i + 1 < 8; ++i)
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, i, i + 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  ASSERT_EQ(GxB_Trace_dump(path.c_str()), GrB_SUCCESS);
  GrB_free(&a);
  GrB_free(&c);

  std::string trace = slurp_file(path);
  ASSERT_FALSE(trace.empty()) << path;
  // Find an mxm flow start and demand its matching step exists.
  size_t s_pos = trace.find("\"name\":\"GrB_mxm\",\"cat\":\"flow\","
                            "\"ph\":\"s\",\"id\":");
  ASSERT_NE(s_pos, std::string::npos) << trace;
  size_t id_start = trace.find("\"id\":", s_pos) + 5;
  size_t id_end = trace.find_first_not_of("0123456789", id_start);
  std::string id = trace.substr(id_start, id_end - id_start);
  EXPECT_NE(trace.find("\"name\":\"GrB_mxm\",\"cat\":\"flow\","
                       "\"ph\":\"t\",\"id\":" + id + ","),
            std::string::npos)
      << trace;
  std::remove(path.c_str());
}

}  // namespace
