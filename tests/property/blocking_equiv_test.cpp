// Property test: random operation sequences produce identical results in
// blocking and nonblocking mode (the spec's core execution-model
// guarantee — deferral must be unobservable apart from error timing).
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

// Runs a deterministic pseudo-random sequence of matrix ops in the given
// context and returns the final state of the two working matrices.
std::pair<ref::Mat, ref::Mat> run_sequence(uint64_t seed, GrB_Context ctx) {
  const GrB_Index n = 12;
  grb::Prng rng(seed);
  ref::Mat ra = testutil::random_mat(n, n, 0.3, seed * 7 + 1);
  ref::Mat rb = testutil::random_mat(n, n, 0.3, seed * 7 + 2);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Matrix x = nullptr, y = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&x, GrB_FP64, n, n, ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_new(&y, GrB_FP64, n, n, ctx), GrB_SUCCESS);

  for (int step = 0; step < 25; ++step) {
    switch (rng.below(7)) {
      case 0:
        EXPECT_EQ(GrB_mxm(x, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, a, b, GrB_NULL),
                  GrB_SUCCESS);
        break;
      case 1:
        EXPECT_EQ(GrB_eWiseAdd(y, GrB_NULL, GrB_PLUS_FP64, GrB_MIN_FP64, x,
                               a, GrB_NULL),
                  GrB_SUCCESS);
        break;
      case 2:
        EXPECT_EQ(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_AINV_FP64, x,
                            GrB_NULL),
                  GrB_SUCCESS);
        break;
      case 3:
        EXPECT_EQ(GrB_select(y, GrB_NULL, GrB_NULL, GrB_TRIU, y,
                             int64_t{-1}, GrB_NULL),
                  GrB_SUCCESS);
        break;
      case 4: {
        GrB_Index i = rng.below(n), j = rng.below(n);
        EXPECT_EQ(GrB_Matrix_setElement(x, double(1 + rng.below(9)), i, j),
                  GrB_SUCCESS);
        break;
      }
      case 5:
        EXPECT_EQ(GrB_transpose(y, GrB_NULL, GrB_NULL, x, GrB_NULL),
                  GrB_SUCCESS);
        break;
      case 6:
        EXPECT_EQ(GrB_eWiseMult(x, y, GrB_NULL, GrB_TIMES_FP64, a, b,
                                GrB_DESC_S),
                  GrB_SUCCESS);
        break;
    }
  }
  EXPECT_EQ(GrB_wait(x, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(y, GrB_MATERIALIZE), GrB_SUCCESS);
  auto result = std::pair<ref::Mat, ref::Mat>{testutil::to_ref(x),
                                              testutil::to_ref(y)};
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&x);
  GrB_free(&y);
  return result;
}

class ModeEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModeEquivalence, BlockingEqualsNonblocking) {
  uint64_t seed = GetParam();
  auto nonblocking = run_sequence(seed, GrB_NULL);  // top-level: nonblocking
  auto blocking = run_sequence(seed, testutil::blocking_context());
  EXPECT_TRUE(testutil::mats_equal(blocking.first, nonblocking.first));
  EXPECT_TRUE(testutil::mats_equal(blocking.second, nonblocking.second));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// Lazy chains only force at observation points.
TEST(LazinessTest, LongChainResolvesOnce) {
  const GrB_Index n = 16;
  GrB_Matrix a = nullptr, x = nullptr;
  ref::Mat ra = testutil::random_mat(n, n, 0.3, 99);
  a = testutil::make_matrix(ra);
  ASSERT_EQ(GrB_Matrix_new(&x, GrB_FP64, n, n), GrB_SUCCESS);
  // Chain 10 deferred ops into x without any forcing read.
  ASSERT_EQ(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, a,
                      GrB_NULL),
            GrB_SUCCESS);
  for (int k = 0; k < 9; ++k) {
    ASSERT_EQ(GrB_eWiseAdd(x, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, x, a,
                           GrB_NULL),
              GrB_SUCCESS);
  }
  EXPECT_TRUE(x->has_pending_ops());
  ASSERT_EQ(GrB_wait(x, GrB_COMPLETE), GrB_SUCCESS);
  // x == 10 * a.
  ref::Mat want = ra;
  for (auto& c : want.cells)
    if (c) c = *c * 10;
  EXPECT_MATRIX_EQ(x, want);
  GrB_free(&a);
  GrB_free(&x);
}

}  // namespace
