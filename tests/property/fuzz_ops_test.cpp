// Differential fuzzing: long pseudo-random operation sequences over
// matrices AND vectors, executed in lock-step against the dense
// reference engine.  Any divergence in structure or values fails.
#include <gtest/gtest.h>

#include "core/global.hpp"
#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

using testutil::fn_max;
using testutil::fn_min;
using testutil::fn_plus;
using testutil::fn_times;

struct World {
  static constexpr GrB_Index kN = 14;
  // Two matrices, two vectors, both live in GraphBLAS and the oracle.
  GrB_Matrix ma = nullptr, mb = nullptr;
  GrB_Vector va = nullptr, vb = nullptr;
  ref::Mat ra, rb;
  ref::Vec qa, qb;

  explicit World(uint64_t seed) {
    ra = testutil::random_mat(kN, kN, 0.3, seed * 17 + 1);
    rb = testutil::random_mat(kN, kN, 0.3, seed * 17 + 2);
    qa = testutil::random_vec(kN, 0.5, seed * 17 + 3);
    qb = testutil::random_vec(kN, 0.5, seed * 17 + 4);
    ma = testutil::make_matrix(ra);
    mb = testutil::make_matrix(rb);
    va = testutil::make_vector(qa);
    vb = testutil::make_vector(qb);
  }
  ~World() {
    GrB_free(&ma);
    GrB_free(&mb);
    GrB_free(&va);
    GrB_free(&vb);
  }

  void check() const {
    ASSERT_TRUE(testutil::mats_equal(ra, testutil::to_ref(ma)));
    ASSERT_TRUE(testutil::mats_equal(rb, testutil::to_ref(mb)));
    ASSERT_TRUE(testutil::vecs_equal(qa, testutil::to_ref(va)));
    ASSERT_TRUE(testutil::vecs_equal(qb, testutil::to_ref(vb)));
  }
};

class FuzzOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOps, LockStepAgainstOracle) {
  const uint64_t seed = GetParam();
  grb::Prng rng(seed);
  World w(seed);
  constexpr GrB_Index kN = World::kN;

  for (int step = 0; step < 60; ++step) {
    switch (rng.below(12)) {
      case 0: {  // mb = ma * mb (plus/times)
        ASSERT_EQ(GrB_mxm(w.mb, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, w.ma, w.mb,
                          GrB_NULL),
                  GrB_SUCCESS);
        w.rb = ref::mxm(w.ra, w.rb, fn_plus, fn_times);
        break;
      }
      case 1: {  // ma = eWiseAdd(ma, mb, min)
        ASSERT_EQ(GrB_eWiseAdd(w.ma, GrB_NULL, GrB_NULL, GrB_MIN_FP64,
                               w.ma, w.mb, GrB_NULL),
                  GrB_SUCCESS);
        w.ra = ref::ewise_add(w.ra, w.rb, fn_min);
        break;
      }
      case 2: {  // mb = eWiseMult(ma, mb, times), masked by ma (struct)
        ASSERT_EQ(GrB_eWiseMult(w.mb, w.ma, GrB_NULL, GrB_TIMES_FP64,
                                w.ma, w.mb, GrB_DESC_S),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.have_mask = true;
        spec.structure = true;
        w.rb = ref::writeback(w.rb, ref::ewise_mult(w.ra, w.rb, fn_times),
                              &w.ra, spec);
        break;
      }
      case 3: {  // va = mxv(ma, vb) min.plus with accum
        ASSERT_EQ(GrB_mxv(w.va, GrB_NULL, GrB_PLUS_FP64,
                          GrB_MIN_PLUS_SEMIRING_FP64, w.ma, w.vb,
                          GrB_NULL),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.accum = fn_plus;
        w.qa = ref::writeback(w.qa, ref::mxv(w.ra, w.qb, fn_min, fn_plus),
                              nullptr, spec);
        break;
      }
      case 4: {  // vb = vxm(va, mb)
        ASSERT_EQ(GrB_vxm(w.vb, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, w.va, w.mb,
                          GrB_NULL),
                  GrB_SUCCESS);
        w.qb = ref::vxm(w.qa, w.rb, fn_plus, fn_times);
        break;
      }
      case 5: {  // ma = select TRIU(ma, s)
        int64_t s = static_cast<int64_t>(rng.below(5)) - 2;
        ASSERT_EQ(GrB_select(w.ma, GrB_NULL, GrB_NULL, GrB_TRIU, w.ma, s,
                             GrB_NULL),
                  GrB_SUCCESS);
        w.ra = ref::select(w.ra, [s](GrB_Index i, GrB_Index j, double) {
          return static_cast<int64_t>(j) >= static_cast<int64_t>(i) + s;
        });
        break;
      }
      case 6: {  // va = apply ainv(va)
        ASSERT_EQ(GrB_apply(w.va, GrB_NULL, GrB_NULL, GrB_AINV_FP64, w.va,
                            GrB_NULL),
                  GrB_SUCCESS);
        w.qa = ref::apply(w.qa, [](double x) { return -x; });
        break;
      }
      case 7: {  // setElement / removeElement on ma
        GrB_Index i = rng.below(kN), j = rng.below(kN);
        if (rng.below(2) == 0) {
          double v = static_cast<double>(1 + rng.below(9));
          ASSERT_EQ(GrB_Matrix_setElement(w.ma, v, i, j), GrB_SUCCESS);
          w.ra.at(i, j) = v;
        } else {
          ASSERT_EQ(GrB_Matrix_removeElement(w.ma, i, j), GrB_SUCCESS);
          w.ra.at(i, j).reset();
        }
        break;
      }
      case 8: {  // mb = transpose(ma) with accum plus
        ASSERT_EQ(GrB_transpose(w.mb, GrB_NULL, GrB_PLUS_FP64, w.ma,
                                GrB_NULL),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.accum = fn_plus;
        w.rb =
            ref::writeback(w.rb, ref::transpose(w.ra), nullptr, spec);
        break;
      }
      case 9: {  // vb = extract(va, shuffled indices)
        std::vector<GrB_Index> idx(kN);
        for (GrB_Index k = 0; k < kN; ++k) idx[k] = rng.below(kN);
        ASSERT_EQ(GrB_extract(w.vb, GrB_NULL, GrB_NULL, w.va, idx.data(),
                              kN, GrB_NULL),
                  GrB_SUCCESS);
        w.qb = ref::extract(w.qa, idx);
        break;
      }
      case 10: {  // assign scalar into a row band of ma
        GrB_Index r = rng.below(kN);
        double v = static_cast<double>(1 + rng.below(9));
        std::vector<GrB_Index> rows = {r};
        std::vector<GrB_Index> cols(kN);
        for (GrB_Index k = 0; k < kN; ++k) cols[k] = k;
        ASSERT_EQ(GrB_assign(w.ma, GrB_NULL, GrB_NULL, v, rows.data(), 1,
                             cols.data(), kN, GrB_NULL),
                  GrB_SUCCESS);
        for (GrB_Index k = 0; k < kN; ++k) w.ra.at(r, k) = v;
        break;
      }
      case 11: {  // va = reduce rows of ma (max monoid)
        ASSERT_EQ(GrB_reduce(w.va, GrB_NULL, GrB_NULL,
                             GrB_MAX_MONOID_FP64, w.ma, GrB_NULL),
                  GrB_SUCCESS);
        w.qa = ref::reduce_rows(w.ra, fn_max);
        break;
      }
    }
    if (step % 15 == 14) w.check();  // periodic deep compare
  }
  w.check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOps,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// ---- parallel-vs-serial differential fuzz ---------------------------------
//
// The same pseudo-random op sequence is applied to twin worlds, one homed
// in a 1-thread context and one in a multi-thread context (same chunk),
// with the parallel threshold forced to 1 so every op takes its parallel
// path.  Results must match EXACTLY after every step; a failure prints
// the seed so the run can be replayed with
//   --gtest_filter='*FuzzParallel*/<seed-1>'.

struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

GrB_Context fuzz_context(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_BLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

// Real-valued data so any change in floating-point fold order diverges.
ref::Mat fuzz_mat(GrB_Index nr, GrB_Index nc, double density,
                  uint64_t seed) {
  grb::Prng rng(seed);
  ref::Mat m(nr, nc);
  for (auto& c : m.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return m;
}

ref::Vec fuzz_vec(GrB_Index n, double density, uint64_t seed) {
  grb::Prng rng(seed);
  ref::Vec v(n);
  for (auto& c : v.cells)
    if (rng.uniform() < density) c = rng.uniform() * 10.0 - 5.0;
  return v;
}

// A world of containers homed in one context.
struct CtxWorld {
  static constexpr GrB_Index kN = 24;
  GrB_Context ctx;
  GrB_Matrix ma = nullptr, mb = nullptr, mm = nullptr;
  GrB_Vector va = nullptr, vb = nullptr, vm = nullptr;

  CtxWorld(uint64_t seed, GrB_Context c) : ctx(c) {
    ma = testutil::make_matrix(fuzz_mat(kN, kN, 0.3, seed * 13 + 1), ctx);
    mb = testutil::make_matrix(fuzz_mat(kN, kN, 0.3, seed * 13 + 2), ctx);
    mm = testutil::make_matrix(fuzz_mat(kN, kN, 0.3, seed * 13 + 3), ctx);
    va = testutil::make_vector(fuzz_vec(kN, 0.5, seed * 13 + 4), ctx);
    vb = testutil::make_vector(fuzz_vec(kN, 0.5, seed * 13 + 5), ctx);
    vm = testutil::make_vector(fuzz_vec(kN, 0.4, seed * 13 + 6), ctx);
  }
  ~CtxWorld() {
    GrB_free(&ma);
    GrB_free(&mb);
    GrB_free(&mm);
    GrB_free(&va);
    GrB_free(&vb);
    GrB_free(&vm);
  }
};

class FuzzParallel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzParallel, MultiThreadMatchesSerialExactly) {
  const uint64_t seed = GetParam();
  ThresholdGuard guard;
  GrB_Context serial_ctx = fuzz_context(1);
  GrB_Context par_ctx = fuzz_context(static_cast<int>(2 + seed % 7));
  CtxWorld ws(seed, serial_ctx);
  CtxWorld wp(seed, par_ctx);
  grb::Prng rng(seed * 31 + 7);

  // Applies one drawn op to a world; the draw is fixed before the call
  // so both worlds see identical parameters.
  GrB_Descriptor descs[] = {GrB_NULL,    GrB_DESC_R, GrB_DESC_S,
                            GrB_DESC_RS, GrB_DESC_C, GrB_DESC_SC};
  for (int step = 0; step < 40; ++step) {
    uint64_t op = rng.below(8);
    GrB_Descriptor d = descs[rng.below(6)];
    bool use_mask = rng.below(2) == 0;
    bool use_accum = rng.below(2) == 0;
    GrB_BinaryOp accum = use_accum ? GrB_PLUS_FP64 : GrB_NULL;
    double thresh = rng.uniform() * 4.0 - 2.0;
    auto apply_op = [&](CtxWorld& w) {
      GrB_Matrix m = use_mask ? w.mm : nullptr;
      GrB_Vector vm = use_mask ? w.vm : nullptr;
      switch (op) {
        case 0:
          ASSERT_EQ(GrB_mxm(w.mb, m, accum, GrB_PLUS_TIMES_SEMIRING_FP64,
                            w.ma, w.mb, d),
                    GrB_SUCCESS);
          break;
        case 1:
          ASSERT_EQ(GrB_eWiseAdd(w.ma, m, accum, GrB_PLUS_FP64, w.ma,
                                 w.mb, d),
                    GrB_SUCCESS);
          break;
        case 2:
          ASSERT_EQ(GrB_eWiseMult(w.vb, vm, accum, GrB_TIMES_FP64, w.va,
                                  w.vb, d),
                    GrB_SUCCESS);
          break;
        case 3:
          ASSERT_EQ(GrB_mxv(w.va, vm, accum, GrB_PLUS_TIMES_SEMIRING_FP64,
                            w.ma, w.vb, d),
                    GrB_SUCCESS);
          break;
        case 4:
          ASSERT_EQ(GrB_vxm(w.vb, vm, accum, GrB_PLUS_TIMES_SEMIRING_FP64,
                            w.va, w.mb, d),
                    GrB_SUCCESS);
          break;
        case 5:
          ASSERT_EQ(GrB_apply(w.va, vm, accum, GrB_AINV_FP64, w.va, d),
                    GrB_SUCCESS);
          break;
        case 6:
          ASSERT_EQ(GrB_select(w.ma, m, accum, GrB_VALUEGT_FP64, w.ma,
                               thresh, d),
                    GrB_SUCCESS);
          break;
        case 7:
          ASSERT_EQ(GrB_reduce(w.va, vm, accum, GrB_PLUS_MONOID_FP64,
                               w.ma, d),
                    GrB_SUCCESS);
          break;
      }
    };
    apply_op(ws);
    apply_op(wp);
    ASSERT_TRUE(testutil::mats_equal(testutil::to_ref(ws.ma),
                                     testutil::to_ref(wp.ma)))
        << "FAILING SEED " << seed << " at step " << step;
    ASSERT_TRUE(testutil::mats_equal(testutil::to_ref(ws.mb),
                                     testutil::to_ref(wp.mb)))
        << "FAILING SEED " << seed << " at step " << step;
    ASSERT_TRUE(testutil::vecs_equal(testutil::to_ref(ws.va),
                                     testutil::to_ref(wp.va)))
        << "FAILING SEED " << seed << " at step " << step;
    ASSERT_TRUE(testutil::vecs_equal(testutil::to_ref(ws.vb),
                                     testutil::to_ref(wp.vb)))
        << "FAILING SEED " << seed << " at step " << step;
  }
  GrB_free(&serial_ctx);
  GrB_free(&par_ctx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParallel,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
