// Differential fuzzing: long pseudo-random operation sequences over
// matrices AND vectors, executed in lock-step against the dense
// reference engine.  Any divergence in structure or values fails.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"
#include "util/prng.hpp"

namespace {

using testutil::fn_max;
using testutil::fn_min;
using testutil::fn_plus;
using testutil::fn_times;

struct World {
  static constexpr GrB_Index kN = 14;
  // Two matrices, two vectors, both live in GraphBLAS and the oracle.
  GrB_Matrix ma = nullptr, mb = nullptr;
  GrB_Vector va = nullptr, vb = nullptr;
  ref::Mat ra, rb;
  ref::Vec qa, qb;

  explicit World(uint64_t seed) {
    ra = testutil::random_mat(kN, kN, 0.3, seed * 17 + 1);
    rb = testutil::random_mat(kN, kN, 0.3, seed * 17 + 2);
    qa = testutil::random_vec(kN, 0.5, seed * 17 + 3);
    qb = testutil::random_vec(kN, 0.5, seed * 17 + 4);
    ma = testutil::make_matrix(ra);
    mb = testutil::make_matrix(rb);
    va = testutil::make_vector(qa);
    vb = testutil::make_vector(qb);
  }
  ~World() {
    GrB_free(&ma);
    GrB_free(&mb);
    GrB_free(&va);
    GrB_free(&vb);
  }

  void check() const {
    ASSERT_TRUE(testutil::mats_equal(ra, testutil::to_ref(ma)));
    ASSERT_TRUE(testutil::mats_equal(rb, testutil::to_ref(mb)));
    ASSERT_TRUE(testutil::vecs_equal(qa, testutil::to_ref(va)));
    ASSERT_TRUE(testutil::vecs_equal(qb, testutil::to_ref(vb)));
  }
};

class FuzzOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOps, LockStepAgainstOracle) {
  const uint64_t seed = GetParam();
  grb::Prng rng(seed);
  World w(seed);
  constexpr GrB_Index kN = World::kN;

  for (int step = 0; step < 60; ++step) {
    switch (rng.below(12)) {
      case 0: {  // mb = ma * mb (plus/times)
        ASSERT_EQ(GrB_mxm(w.mb, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, w.ma, w.mb,
                          GrB_NULL),
                  GrB_SUCCESS);
        w.rb = ref::mxm(w.ra, w.rb, fn_plus, fn_times);
        break;
      }
      case 1: {  // ma = eWiseAdd(ma, mb, min)
        ASSERT_EQ(GrB_eWiseAdd(w.ma, GrB_NULL, GrB_NULL, GrB_MIN_FP64,
                               w.ma, w.mb, GrB_NULL),
                  GrB_SUCCESS);
        w.ra = ref::ewise_add(w.ra, w.rb, fn_min);
        break;
      }
      case 2: {  // mb = eWiseMult(ma, mb, times), masked by ma (struct)
        ASSERT_EQ(GrB_eWiseMult(w.mb, w.ma, GrB_NULL, GrB_TIMES_FP64,
                                w.ma, w.mb, GrB_DESC_S),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.have_mask = true;
        spec.structure = true;
        w.rb = ref::writeback(w.rb, ref::ewise_mult(w.ra, w.rb, fn_times),
                              &w.ra, spec);
        break;
      }
      case 3: {  // va = mxv(ma, vb) min.plus with accum
        ASSERT_EQ(GrB_mxv(w.va, GrB_NULL, GrB_PLUS_FP64,
                          GrB_MIN_PLUS_SEMIRING_FP64, w.ma, w.vb,
                          GrB_NULL),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.accum = fn_plus;
        w.qa = ref::writeback(w.qa, ref::mxv(w.ra, w.qb, fn_min, fn_plus),
                              nullptr, spec);
        break;
      }
      case 4: {  // vb = vxm(va, mb)
        ASSERT_EQ(GrB_vxm(w.vb, GrB_NULL, GrB_NULL,
                          GrB_PLUS_TIMES_SEMIRING_FP64, w.va, w.mb,
                          GrB_NULL),
                  GrB_SUCCESS);
        w.qb = ref::vxm(w.qa, w.rb, fn_plus, fn_times);
        break;
      }
      case 5: {  // ma = select TRIU(ma, s)
        int64_t s = static_cast<int64_t>(rng.below(5)) - 2;
        ASSERT_EQ(GrB_select(w.ma, GrB_NULL, GrB_NULL, GrB_TRIU, w.ma, s,
                             GrB_NULL),
                  GrB_SUCCESS);
        w.ra = ref::select(w.ra, [s](GrB_Index i, GrB_Index j, double) {
          return static_cast<int64_t>(j) >= static_cast<int64_t>(i) + s;
        });
        break;
      }
      case 6: {  // va = apply ainv(va)
        ASSERT_EQ(GrB_apply(w.va, GrB_NULL, GrB_NULL, GrB_AINV_FP64, w.va,
                            GrB_NULL),
                  GrB_SUCCESS);
        w.qa = ref::apply(w.qa, [](double x) { return -x; });
        break;
      }
      case 7: {  // setElement / removeElement on ma
        GrB_Index i = rng.below(kN), j = rng.below(kN);
        if (rng.below(2) == 0) {
          double v = static_cast<double>(1 + rng.below(9));
          ASSERT_EQ(GrB_Matrix_setElement(w.ma, v, i, j), GrB_SUCCESS);
          w.ra.at(i, j) = v;
        } else {
          ASSERT_EQ(GrB_Matrix_removeElement(w.ma, i, j), GrB_SUCCESS);
          w.ra.at(i, j).reset();
        }
        break;
      }
      case 8: {  // mb = transpose(ma) with accum plus
        ASSERT_EQ(GrB_transpose(w.mb, GrB_NULL, GrB_PLUS_FP64, w.ma,
                                GrB_NULL),
                  GrB_SUCCESS);
        ref::Spec spec;
        spec.accum = fn_plus;
        w.rb =
            ref::writeback(w.rb, ref::transpose(w.ra), nullptr, spec);
        break;
      }
      case 9: {  // vb = extract(va, shuffled indices)
        std::vector<GrB_Index> idx(kN);
        for (GrB_Index k = 0; k < kN; ++k) idx[k] = rng.below(kN);
        ASSERT_EQ(GrB_extract(w.vb, GrB_NULL, GrB_NULL, w.va, idx.data(),
                              kN, GrB_NULL),
                  GrB_SUCCESS);
        w.qb = ref::extract(w.qa, idx);
        break;
      }
      case 10: {  // assign scalar into a row band of ma
        GrB_Index r = rng.below(kN);
        double v = static_cast<double>(1 + rng.below(9));
        std::vector<GrB_Index> rows = {r};
        std::vector<GrB_Index> cols(kN);
        for (GrB_Index k = 0; k < kN; ++k) cols[k] = k;
        ASSERT_EQ(GrB_assign(w.ma, GrB_NULL, GrB_NULL, v, rows.data(), 1,
                             cols.data(), kN, GrB_NULL),
                  GrB_SUCCESS);
        for (GrB_Index k = 0; k < kN; ++k) w.ra.at(r, k) = v;
        break;
      }
      case 11: {  // va = reduce rows of ma (max monoid)
        ASSERT_EQ(GrB_reduce(w.va, GrB_NULL, GrB_NULL,
                             GrB_MAX_MONOID_FP64, w.ma, GrB_NULL),
                  GrB_SUCCESS);
        w.qa = ref::reduce_rows(w.ra, fn_max);
        break;
      }
    }
    if (step % 15 == 14) w.check();  // periodic deep compare
  }
  w.check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOps,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
