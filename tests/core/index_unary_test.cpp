// Table IV: predefined index-unary operators, tested at the operator
// level (select/apply integration is covered in ops/apply_select_test).
#include <gtest/gtest.h>

#include "core/index_unary_op.hpp"

namespace grb {
namespace {

bool run_keep(const IndexUnaryOp* op, Index i, Index j, int64_t s) {
  bool z = false;
  Index ind[2] = {i, j};
  double dummy = 3.5;
  op->apply(&z, &dummy, ind, 2, &s);
  return z;
}

template <class Z>
Z run_replace(const IndexUnaryOp* op, Index i, Index j, Z s) {
  Z z{};
  Index ind[2] = {i, j};
  double dummy = 0;
  op->apply(&z, &dummy, ind, 2, &s);
  return z;
}

TEST(IndexUnaryOpTest, RowColDiagIndex) {
  const IndexUnaryOp* row =
      get_index_unary_op(IdxOpCode::kRowIndex, TypeCode::kInt64);
  const IndexUnaryOp* col =
      get_index_unary_op(IdxOpCode::kColIndex, TypeCode::kInt64);
  const IndexUnaryOp* diag =
      get_index_unary_op(IdxOpCode::kDiagIndex, TypeCode::kInt64);
  EXPECT_EQ(run_replace<int64_t>(row, 4, 9, 0), 4);
  EXPECT_EQ(run_replace<int64_t>(row, 4, 9, 10), 14);
  EXPECT_EQ(run_replace<int64_t>(col, 4, 9, 0), 9);
  EXPECT_EQ(run_replace<int64_t>(col, 4, 9, 1), 10);  // paper's example op
  EXPECT_EQ(run_replace<int64_t>(diag, 4, 9, 0), 5);
  EXPECT_EQ(run_replace<int64_t>(diag, 9, 4, 0), -5);
}

TEST(IndexUnaryOpTest, RowIndexInt32Output) {
  const IndexUnaryOp* row =
      get_index_unary_op(IdxOpCode::kRowIndex, TypeCode::kInt32);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->ztype(), TypeInt32());
  EXPECT_EQ(run_replace<int32_t>(row, 7, 2, 1), 8);
}

TEST(IndexUnaryOpTest, TrilTriu) {
  const IndexUnaryOp* tril =
      get_index_unary_op(IdxOpCode::kTril, TypeCode::kInt64);
  const IndexUnaryOp* triu =
      get_index_unary_op(IdxOpCode::kTriu, TypeCode::kInt64);
  // tril: j <= i + s
  EXPECT_TRUE(run_keep(tril, 3, 3, 0));
  EXPECT_TRUE(run_keep(tril, 3, 1, 0));
  EXPECT_FALSE(run_keep(tril, 3, 4, 0));
  EXPECT_FALSE(run_keep(tril, 3, 3, -1));  // strict lower
  EXPECT_TRUE(run_keep(tril, 3, 2, -1));
  // triu: j >= i + s
  EXPECT_TRUE(run_keep(triu, 3, 3, 0));
  EXPECT_TRUE(run_keep(triu, 3, 5, 0));
  EXPECT_FALSE(run_keep(triu, 3, 2, 0));
  EXPECT_FALSE(run_keep(triu, 3, 3, 1));  // strict upper
}

TEST(IndexUnaryOpTest, DiagOffdiag) {
  const IndexUnaryOp* diag =
      get_index_unary_op(IdxOpCode::kDiag, TypeCode::kInt64);
  const IndexUnaryOp* off =
      get_index_unary_op(IdxOpCode::kOffdiag, TypeCode::kInt64);
  EXPECT_TRUE(run_keep(diag, 2, 2, 0));
  EXPECT_FALSE(run_keep(diag, 2, 3, 0));
  EXPECT_TRUE(run_keep(diag, 2, 3, 1));  // superdiagonal s=1
  EXPECT_FALSE(run_keep(off, 2, 2, 0));
  EXPECT_TRUE(run_keep(off, 2, 3, 0));
}

TEST(IndexUnaryOpTest, RowColBounds) {
  const IndexUnaryOp* rowle =
      get_index_unary_op(IdxOpCode::kRowLE, TypeCode::kInt64);
  const IndexUnaryOp* rowgt =
      get_index_unary_op(IdxOpCode::kRowGT, TypeCode::kInt64);
  const IndexUnaryOp* colle =
      get_index_unary_op(IdxOpCode::kColLE, TypeCode::kInt64);
  const IndexUnaryOp* colgt =
      get_index_unary_op(IdxOpCode::kColGT, TypeCode::kInt64);
  EXPECT_TRUE(run_keep(rowle, 2, 9, 2));
  EXPECT_FALSE(run_keep(rowle, 3, 9, 2));
  EXPECT_TRUE(run_keep(rowgt, 3, 9, 2));
  EXPECT_FALSE(run_keep(rowgt, 2, 9, 2));
  EXPECT_TRUE(run_keep(colle, 9, 2, 2));
  EXPECT_FALSE(run_keep(colle, 9, 3, 2));
  EXPECT_TRUE(run_keep(colgt, 9, 3, 2));
  EXPECT_FALSE(run_keep(colgt, 9, 2, 2));
}

TEST(IndexUnaryOpTest, ValueComparisons) {
  const IndexUnaryOp* eq =
      get_index_unary_op(IdxOpCode::kValueEQ, TypeCode::kFP64);
  const IndexUnaryOp* lt =
      get_index_unary_op(IdxOpCode::kValueLT, TypeCode::kFP64);
  const IndexUnaryOp* ge =
      get_index_unary_op(IdxOpCode::kValueGE, TypeCode::kFP64);
  Index ind[2] = {0, 0};
  double x = 2.5, s = 2.5;
  bool z = false;
  eq->apply(&z, &x, ind, 2, &s);
  EXPECT_TRUE(z);
  s = 3.0;
  eq->apply(&z, &x, ind, 2, &s);
  EXPECT_FALSE(z);
  lt->apply(&z, &x, ind, 2, &s);
  EXPECT_TRUE(z);
  ge->apply(&z, &x, ind, 2, &s);
  EXPECT_FALSE(z);
}

TEST(IndexUnaryOpTest, ValueComparisonCoverage) {
  // EQ/NE exist for every builtin type; orderings only for numerics.
  for (int c = 0; c < kNumBuiltinTypes; ++c) {
    TypeCode tc = static_cast<TypeCode>(c);
    EXPECT_NE(get_index_unary_op(IdxOpCode::kValueEQ, tc), nullptr);
    EXPECT_NE(get_index_unary_op(IdxOpCode::kValueNE, tc), nullptr);
  }
  EXPECT_EQ(get_index_unary_op(IdxOpCode::kValueLT, TypeCode::kBool),
            nullptr);
  EXPECT_NE(get_index_unary_op(IdxOpCode::kValueLT, TypeCode::kUInt8),
            nullptr);
}

TEST(IndexUnaryOpTest, PositionalOpsAreValueAgnostic) {
  EXPECT_TRUE(get_index_unary_op(IdxOpCode::kTril, TypeCode::kInt64)
                  ->value_agnostic());
  EXPECT_TRUE(get_index_unary_op(IdxOpCode::kRowIndex, TypeCode::kInt64)
                  ->value_agnostic());
  EXPECT_FALSE(get_index_unary_op(IdxOpCode::kValueEQ, TypeCode::kFP64)
                   ->value_agnostic());
}

TEST(IndexUnaryOpTest, VectorQueriesUseRowOnly) {
  // With n == 1 (vector), ROWLE consults indices[0].
  const IndexUnaryOp* rowle =
      get_index_unary_op(IdxOpCode::kRowLE, TypeCode::kInt64);
  Index ind[1] = {3};
  double x = 0;
  int64_t s = 3;
  bool z = false;
  rowle->apply(&z, &x, ind, 1, &s);
  EXPECT_TRUE(z);
  s = 2;
  rowle->apply(&z, &x, ind, 1, &s);
  EXPECT_FALSE(z);
}

// The paper's §VIII.A user-defined example: keep strictly-upper entries
// whose value exceeds s.
void my_triu_eq_INT32(void* out, const void* in, Index* indices, Index n,
                      const void* s) {
  ASSERT_EQ(n, 2u);
  int32_t a, sv;
  std::memcpy(&a, in, 4);
  std::memcpy(&sv, s, 4);
  bool z = (indices[1] > indices[0]) && (a > sv);
  std::memcpy(out, &z, sizeof(bool));
}

TEST(IndexUnaryOpTest, UserDefinedPaperExample) {
  const IndexUnaryOp* op = nullptr;
  ASSERT_EQ(index_unary_op_new(&op, &my_triu_eq_INT32, TypeBool(),
                               TypeInt32(), TypeInt32()),
            Info::kSuccess);
  Index ind[2] = {1, 2};
  int32_t x = 5, s = 3;
  bool z = false;
  op->apply(&z, &x, ind, 2, &s);
  EXPECT_TRUE(z);  // j > i and 5 > 3
  ind[1] = 1;
  op->apply(&z, &x, ind, 2, &s);
  EXPECT_FALSE(z);  // on diagonal
  ind[1] = 2;
  x = 3;
  op->apply(&z, &x, ind, 2, &s);
  EXPECT_FALSE(z);  // value not > s
  EXPECT_EQ(index_unary_op_free(op), Info::kSuccess);
  EXPECT_EQ(index_unary_op_free(
                get_index_unary_op(IdxOpCode::kTril, TypeCode::kInt64)),
            Info::kInvalidValue);
}

}  // namespace
}  // namespace grb
