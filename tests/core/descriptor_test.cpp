// Descriptor field semantics and the predefined GrB_DESC_* table.
#include <gtest/gtest.h>

#include "core/descriptor.hpp"
#include "graphblas/GraphBLAS.h"

namespace grb {
namespace {

TEST(DescriptorTest, DefaultsAreAllOff) {
  const Descriptor& d = Descriptor::defaults();
  EXPECT_FALSE(d.replace());
  EXPECT_FALSE(d.mask_comp());
  EXPECT_FALSE(d.mask_structure());
  EXPECT_FALSE(d.tran0());
  EXPECT_FALSE(d.tran1());
  EXPECT_FALSE(resolve_desc(nullptr).replace());
}

TEST(DescriptorTest, SetFields) {
  Descriptor* d = nullptr;
  ASSERT_EQ(descriptor_new(&d), Info::kSuccess);
  EXPECT_EQ(d->set(DescField::kOutp, DescValue::kReplace), Info::kSuccess);
  EXPECT_TRUE(d->replace());
  EXPECT_EQ(d->set(DescField::kOutp, DescValue::kDefault), Info::kSuccess);
  EXPECT_FALSE(d->replace());
  EXPECT_EQ(d->set(DescField::kMask, DescValue::kComp), Info::kSuccess);
  EXPECT_TRUE(d->mask_comp());
  EXPECT_FALSE(d->mask_structure());
  EXPECT_EQ(d->set(DescField::kMask, DescValue::kStructure), Info::kSuccess);
  EXPECT_TRUE(d->mask_structure());
  EXPECT_FALSE(d->mask_comp());  // set replaces the whole field
  EXPECT_EQ(d->set(DescField::kInp0, DescValue::kTran), Info::kSuccess);
  EXPECT_TRUE(d->tran0());
  EXPECT_EQ(d->set(DescField::kInp1, DescValue::kTran), Info::kSuccess);
  EXPECT_TRUE(d->tran1());
  EXPECT_EQ(descriptor_free(d), Info::kSuccess);
}

TEST(DescriptorTest, SetRejectsWrongValues) {
  Descriptor* d = nullptr;
  ASSERT_EQ(descriptor_new(&d), Info::kSuccess);
  EXPECT_EQ(d->set(DescField::kOutp, DescValue::kTran), Info::kInvalidValue);
  EXPECT_EQ(d->set(DescField::kInp0, DescValue::kComp), Info::kInvalidValue);
  EXPECT_EQ(d->set(DescField::kMask, DescValue::kTran), Info::kInvalidValue);
  EXPECT_EQ(descriptor_free(d), Info::kSuccess);
}

TEST(DescriptorTest, PredefinedTable) {
  EXPECT_TRUE(GrB_DESC_R->replace());
  EXPECT_FALSE(GrB_DESC_R->tran0());
  EXPECT_TRUE(GrB_DESC_T0->tran0());
  EXPECT_FALSE(GrB_DESC_T0->tran1());
  EXPECT_TRUE(GrB_DESC_T1->tran1());
  EXPECT_TRUE(GrB_DESC_T0T1->tran0());
  EXPECT_TRUE(GrB_DESC_T0T1->tran1());
  EXPECT_TRUE(GrB_DESC_C->mask_comp());
  EXPECT_TRUE(GrB_DESC_S->mask_structure());
  EXPECT_TRUE(GrB_DESC_SC->mask_structure());
  EXPECT_TRUE(GrB_DESC_SC->mask_comp());
  EXPECT_TRUE(GrB_DESC_RSC->replace());
  EXPECT_TRUE(GrB_DESC_RSC->mask_structure());
  EXPECT_TRUE(GrB_DESC_RSC->mask_comp());
  EXPECT_TRUE(GrB_DESC_RST1->replace());
  EXPECT_TRUE(GrB_DESC_RST1->mask_structure());
  EXPECT_TRUE(GrB_DESC_RST1->tran1());
}

TEST(DescriptorTest, PredefinedAreDistinct) {
  EXPECT_NE(GrB_DESC_R, GrB_DESC_C);
  EXPECT_NE(GrB_DESC_T0, GrB_DESC_T1);
  EXPECT_EQ(predefined_descriptor(0), nullptr);   // defaults == GrB_NULL
  EXPECT_EQ(predefined_descriptor(32), nullptr);  // out of range
}

TEST(DescriptorTest, FreeErrors) {
  EXPECT_EQ(descriptor_free(nullptr), Info::kNullPointer);
  // Predefined descriptors are not user-freed.
  EXPECT_EQ(descriptor_free(const_cast<Descriptor*>(GrB_DESC_R)),
            Info::kInvalidValue);
  EXPECT_EQ(descriptor_new(nullptr), Info::kNullPointer);
}

}  // namespace
}  // namespace grb
