// Runtime type system: descriptors, casting, truthiness, UDT lifecycle.
#include <gtest/gtest.h>

#include <limits>

#include "core/type.hpp"

namespace grb {
namespace {

TEST(TypeTest, BuiltinSizesAndNames) {
  EXPECT_EQ(TypeBool()->size(), sizeof(bool));
  EXPECT_EQ(TypeInt8()->size(), 1u);
  EXPECT_EQ(TypeUInt16()->size(), 2u);
  EXPECT_EQ(TypeInt32()->size(), 4u);
  EXPECT_EQ(TypeUInt64()->size(), 8u);
  EXPECT_EQ(TypeFP32()->size(), 4u);
  EXPECT_EQ(TypeFP64()->size(), 8u);
  EXPECT_EQ(TypeFP64()->name(), "GrB_FP64");
  EXPECT_TRUE(TypeFP64()->is_builtin());
}

TEST(TypeTest, BuiltinLookupByCode) {
  for (int c = 0; c < kNumBuiltinTypes; ++c) {
    const Type* t = Type::builtin(static_cast<TypeCode>(c));
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(static_cast<int>(t->code()), c);
  }
  EXPECT_EQ(Type::builtin(TypeCode::kUdt), nullptr);
}

TEST(TypeTest, BuiltinSingletons) {
  EXPECT_EQ(TypeFP64(), Type::builtin(TypeCode::kFP64));
  EXPECT_EQ(type_of<double>(), TypeFP64());
  EXPECT_EQ(type_of<bool>(), TypeBool());
  EXPECT_EQ(type_of<int32_t>(), TypeInt32());
}

TEST(TypeTest, CastIntToDouble) {
  int32_t in = -42;
  double out = 0;
  cast_value(TypeFP64(), &out, TypeInt32(), &in);
  EXPECT_EQ(out, -42.0);
}

TEST(TypeTest, CastDoubleToIntTruncates) {
  double in = 3.9;
  int32_t out = 0;
  cast_value(TypeInt32(), &out, TypeFP64(), &in);
  EXPECT_EQ(out, 3);
}

TEST(TypeTest, CastToBoolIsNonzeroTest) {
  double in = 2.5;
  bool out = false;
  cast_value(TypeBool(), &out, TypeFP64(), &in);
  EXPECT_TRUE(out);
  in = 0.0;
  cast_value(TypeBool(), &out, TypeFP64(), &in);
  EXPECT_FALSE(out);
}

TEST(TypeTest, CastIdentityIsMemcpy) {
  uint64_t in = 0xdeadbeefcafef00dull, out = 0;
  cast_value(TypeUInt64(), &out, TypeUInt64(), &in);
  EXPECT_EQ(out, in);
}

TEST(TypeTest, CastUnsignedNarrowingWraps) {
  uint32_t in = 0x1ff;
  uint8_t out = 0;
  cast_value(TypeUInt8(), &out, TypeUInt32(), &in);
  EXPECT_EQ(out, 0xff);
}

TEST(TypeTest, CompatibilityRules) {
  EXPECT_TRUE(types_compatible(TypeFP64(), TypeInt8()));
  EXPECT_TRUE(types_compatible(TypeBool(), TypeFP32()));
  const Type* udt = nullptr;
  ASSERT_EQ(type_new(&udt, 24), Info::kSuccess);
  EXPECT_TRUE(types_compatible(udt, udt));
  EXPECT_FALSE(types_compatible(udt, TypeFP64()));
  EXPECT_FALSE(types_compatible(TypeFP64(), udt));
  const Type* udt2 = nullptr;
  ASSERT_EQ(type_new(&udt2, 24), Info::kSuccess);
  EXPECT_FALSE(types_compatible(udt, udt2));  // same size, distinct types
  EXPECT_EQ(type_free(udt), Info::kSuccess);
  EXPECT_EQ(type_free(udt2), Info::kSuccess);
}

TEST(TypeTest, UdtLifecycleErrors) {
  EXPECT_EQ(type_new(nullptr, 8), Info::kNullPointer);
  const Type* t = nullptr;
  EXPECT_EQ(type_new(&t, 0), Info::kInvalidValue);
  ASSERT_EQ(type_new(&t, 16), Info::kSuccess);
  EXPECT_FALSE(t->is_builtin());
  EXPECT_EQ(t->size(), 16u);
  EXPECT_EQ(type_free(t), Info::kSuccess);
  EXPECT_EQ(type_free(t), Info::kUninitializedObject);  // double free
  EXPECT_EQ(type_free(TypeFP64()), Info::kInvalidValue);
  EXPECT_EQ(type_free(nullptr), Info::kNullPointer);
}

TEST(TypeTest, ValueAsBool) {
  double d = 0.0;
  EXPECT_FALSE(value_as_bool(TypeFP64(), &d));
  d = -1.5;
  EXPECT_TRUE(value_as_bool(TypeFP64(), &d));
  int16_t i = 0;
  EXPECT_FALSE(value_as_bool(TypeInt16(), &i));
  i = 7;
  EXPECT_TRUE(value_as_bool(TypeInt16(), &i));
  bool b = true;
  EXPECT_TRUE(value_as_bool(TypeBool(), &b));
}

TEST(TypeTest, ValueAsBoolUdtBytewise) {
  const Type* udt = nullptr;
  ASSERT_EQ(type_new(&udt, 4), Info::kSuccess);
  unsigned char zero[4] = {0, 0, 0, 0};
  unsigned char nz[4] = {0, 0, 1, 0};
  EXPECT_FALSE(value_as_bool(udt, zero));
  EXPECT_TRUE(value_as_bool(udt, nz));
  EXPECT_EQ(type_free(udt), Info::kSuccess);
}

TEST(ValueArrayTest, PushAndAccess) {
  ValueArray a(sizeof(double));
  double x = 1.5, y = -2.25;
  a.push_back(&x);
  a.push_back(&y);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.get_as<double>(0), 1.5);
  EXPECT_EQ(a.get_as<double>(1), -2.25);
  a.set_as<double>(0, 9.0);
  EXPECT_EQ(a.get_as<double>(0), 9.0);
  ValueArray b(sizeof(double));
  b.push_back_from(a, 1);
  EXPECT_EQ(b.get_as<double>(0), -2.25);
}

TEST(ValueBufTest, SmallAndLarge) {
  ValueBuf small(8);
  uint64_t v = 77;
  std::memcpy(small.data(), &v, 8);
  uint64_t out;
  std::memcpy(&out, small.data(), 8);
  EXPECT_EQ(out, 77u);

  ValueBuf large(1000);
  EXPECT_EQ(large.size(), 1000u);
  std::memset(large.data(), 0xab, 1000);
  EXPECT_EQ(static_cast<const unsigned char*>(large.data())[999], 0xab);
}

}  // namespace
}  // namespace grb
