// Monoids (identities, terminals, user construction) and semirings.
#include <gtest/gtest.h>

#include <limits>

#include "core/monoid.hpp"
#include "core/semiring.hpp"

namespace grb {
namespace {

template <class T>
T identity_of(BinOpCode op) {
  const Monoid* m = get_monoid(op, type_of<T>()->code());
  EXPECT_NE(m, nullptr);
  T v{};
  std::memcpy(&v, m->identity(), sizeof(T));
  return v;
}

TEST(MonoidTest, PredefinedIdentities) {
  EXPECT_EQ(identity_of<double>(BinOpCode::kPlus), 0.0);
  EXPECT_EQ(identity_of<double>(BinOpCode::kTimes), 1.0);
  EXPECT_EQ(identity_of<double>(BinOpCode::kMin),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(identity_of<double>(BinOpCode::kMax),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(identity_of<int32_t>(BinOpCode::kMin),
            std::numeric_limits<int32_t>::max());
  EXPECT_EQ(identity_of<int32_t>(BinOpCode::kMax),
            std::numeric_limits<int32_t>::min());
  EXPECT_EQ(identity_of<uint16_t>(BinOpCode::kMin),
            std::numeric_limits<uint16_t>::max());
  EXPECT_EQ(identity_of<uint16_t>(BinOpCode::kMax), 0u);
  EXPECT_EQ(identity_of<bool>(BinOpCode::kLor), false);
  EXPECT_EQ(identity_of<bool>(BinOpCode::kLand), true);
  EXPECT_EQ(identity_of<bool>(BinOpCode::kLxor), false);
  EXPECT_EQ(identity_of<bool>(BinOpCode::kLxnor), true);
}

TEST(MonoidTest, IdentityIsNeutralForAllNumericTypes) {
  const TypeCode codes[] = {TypeCode::kInt8,  TypeCode::kUInt8,
                            TypeCode::kInt16, TypeCode::kUInt16,
                            TypeCode::kInt32, TypeCode::kUInt32,
                            TypeCode::kInt64, TypeCode::kUInt64,
                            TypeCode::kFP32,  TypeCode::kFP64};
  const BinOpCode ops[] = {BinOpCode::kPlus, BinOpCode::kTimes,
                           BinOpCode::kMin, BinOpCode::kMax};
  for (TypeCode tc : codes) {
    for (BinOpCode oc : ops) {
      const Monoid* m = get_monoid(oc, tc);
      ASSERT_NE(m, nullptr);
      // z = op(identity, x) must equal x for a handful of x values.
      ValueBuf z(m->type()->size());
      for (int xi : {0, 1, 5, 100}) {
        ValueBuf x(m->type()->size());
        int32_t xv = xi;
        cast_value(m->type(), x.data(), TypeInt32(), &xv);
        m->op()->apply(z.data(), m->identity(), x.data());
        EXPECT_EQ(std::memcmp(z.data(), x.data(), m->type()->size()), 0)
            << m->name() << " x=" << xi;
      }
    }
  }
}

TEST(MonoidTest, Terminals) {
  const Monoid* mn = get_monoid(BinOpCode::kMin, TypeCode::kInt32);
  int32_t lo = std::numeric_limits<int32_t>::lowest();
  EXPECT_TRUE(mn->has_terminal());
  EXPECT_TRUE(mn->is_terminal(&lo));
  int32_t five = 5;
  EXPECT_FALSE(mn->is_terminal(&five));

  const Monoid* plus = get_monoid(BinOpCode::kPlus, TypeCode::kFP64);
  EXPECT_FALSE(plus->has_terminal());

  const Monoid* times_int = get_monoid(BinOpCode::kTimes, TypeCode::kInt64);
  int64_t zero = 0;
  EXPECT_TRUE(times_int->has_terminal());
  EXPECT_TRUE(times_int->is_terminal(&zero));
  // TIMES over floats must NOT early-exit on 0 (0 * NaN != 0).
  const Monoid* times_fp = get_monoid(BinOpCode::kTimes, TypeCode::kFP64);
  EXPECT_FALSE(times_fp->has_terminal());
}

TEST(MonoidTest, UserMonoid) {
  const BinaryOp* plus = get_binary_op(BinOpCode::kPlus, TypeCode::kInt32);
  int32_t id = 0;
  const Monoid* m = nullptr;
  ASSERT_EQ(monoid_new(&m, plus, &id), Info::kSuccess);
  EXPECT_EQ(m->type(), TypeInt32());
  EXPECT_FALSE(m->has_terminal());
  EXPECT_EQ(monoid_free(m), Info::kSuccess);

  // Mismatched domains are rejected.
  const BinaryOp* eq = get_binary_op(BinOpCode::kEq, TypeCode::kInt32);
  bool bid = true;
  EXPECT_EQ(monoid_new(&m, eq, &bid), Info::kDomainMismatch);
  EXPECT_EQ(monoid_new(&m, plus, nullptr), Info::kNullPointer);
}

TEST(MonoidTest, UserMonoidWithTerminal) {
  const BinaryOp* min = get_binary_op(BinOpCode::kMin, TypeCode::kFP64);
  double id = std::numeric_limits<double>::infinity();
  double term = 0.0;  // domain-specific floor
  const Monoid* m = nullptr;
  ASSERT_EQ(monoid_new_terminal(&m, min, &id, &term), Info::kSuccess);
  EXPECT_TRUE(m->has_terminal());
  EXPECT_TRUE(m->is_terminal(&term));
  EXPECT_EQ(monoid_free(m), Info::kSuccess);
}

TEST(MonoidTest, FreeingPredefinedFails) {
  EXPECT_EQ(monoid_free(get_monoid(BinOpCode::kPlus, TypeCode::kFP64)),
            Info::kInvalidValue);
}

TEST(SemiringTest, PredefinedCoverage) {
  const TypeCode numerics[] = {TypeCode::kInt8,  TypeCode::kUInt8,
                               TypeCode::kInt16, TypeCode::kUInt16,
                               TypeCode::kInt32, TypeCode::kUInt32,
                               TypeCode::kInt64, TypeCode::kUInt64,
                               TypeCode::kFP32,  TypeCode::kFP64};
  for (TypeCode tc : numerics) {
    EXPECT_NE(get_semiring(BinOpCode::kPlus, BinOpCode::kTimes, tc),
              nullptr);
    EXPECT_NE(get_semiring(BinOpCode::kMin, BinOpCode::kPlus, tc), nullptr);
    EXPECT_NE(get_semiring(BinOpCode::kMax, BinOpCode::kPlus, tc), nullptr);
    EXPECT_NE(get_semiring(BinOpCode::kMin, BinOpCode::kSecond, tc),
              nullptr);
  }
  EXPECT_NE(get_semiring(BinOpCode::kLor, BinOpCode::kLand, TypeCode::kBool),
            nullptr);
  EXPECT_EQ(get_semiring(BinOpCode::kLor, BinOpCode::kLand, TypeCode::kFP64),
            nullptr);
}

TEST(SemiringTest, Structure) {
  const Semiring* s =
      get_semiring(BinOpCode::kMin, BinOpCode::kPlus, TypeCode::kFP64);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->add()->op()->opcode(), BinOpCode::kMin);
  EXPECT_EQ(s->mul()->opcode(), BinOpCode::kPlus);
  EXPECT_EQ(s->mul()->ztype(), TypeFP64());
}

TEST(SemiringTest, UserSemiring) {
  const Monoid* add = get_monoid(BinOpCode::kPlus, TypeCode::kFP64);
  const BinaryOp* mul = get_binary_op(BinOpCode::kMin, TypeCode::kFP64);
  const Semiring* s = nullptr;
  ASSERT_EQ(semiring_new(&s, add, mul), Info::kSuccess);
  EXPECT_EQ(s->add(), add);
  EXPECT_EQ(s->mul(), mul);
  EXPECT_EQ(semiring_free(s), Info::kSuccess);

  // mul output must match the monoid domain.
  const BinaryOp* eq = get_binary_op(BinOpCode::kEq, TypeCode::kFP64);
  EXPECT_EQ(semiring_new(&s, add, eq), Info::kDomainMismatch);
  EXPECT_EQ(semiring_new(&s, nullptr, mul), Info::kNullPointer);
  EXPECT_EQ(semiring_free(get_semiring(BinOpCode::kPlus, BinOpCode::kTimes,
                                       TypeCode::kFP64)),
            Info::kInvalidValue);
}

}  // namespace
}  // namespace grb
