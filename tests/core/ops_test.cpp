// Predefined operator semantics across every builtin type, via
// parameterized sweeps (TEST_P).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/binary_op.hpp"
#include "core/unary_op.hpp"

namespace grb {
namespace {

// ---- typed arithmetic sweep -------------------------------------------------

template <class T>
T run_bin(const BinaryOp* op, T x, T y) {
  T z{};
  op->apply(&z, &x, &y);
  return z;
}

template <class T>
void check_arith_ops() {
  TypeCode tc = type_of<T>()->code();
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kFirst, tc), T(5), T(3)),
            T(5));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kSecond, tc), T(5), T(3)),
            T(3));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kOneb, tc), T(5), T(3)),
            T(1));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kPlus, tc), T(5), T(3)),
            T(8));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kMinus, tc), T(5), T(3)),
            T(2));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kTimes, tc), T(5), T(3)),
            T(15));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kMin, tc), T(5), T(3)),
            T(3));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kMax, tc), T(5), T(3)),
            T(5));
  EXPECT_EQ(run_bin<T>(get_binary_op(BinOpCode::kDiv, tc), T(6), T(3)),
            T(2));
}

template <class T>
void check_cmp_ops() {
  TypeCode tc = type_of<T>()->code();
  auto cmp = [&](BinOpCode code, T x, T y) {
    bool z = false;
    get_binary_op(code, tc)->apply(&z, &x, &y);
    return z;
  };
  EXPECT_TRUE(cmp(BinOpCode::kEq, T(4), T(4)));
  EXPECT_FALSE(cmp(BinOpCode::kEq, T(4), T(5)));
  EXPECT_TRUE(cmp(BinOpCode::kNe, T(4), T(5)));
  EXPECT_TRUE(cmp(BinOpCode::kLt, T(4), T(5)));
  EXPECT_FALSE(cmp(BinOpCode::kLt, T(5), T(5)));
  EXPECT_TRUE(cmp(BinOpCode::kLe, T(5), T(5)));
  EXPECT_TRUE(cmp(BinOpCode::kGt, T(6), T(5)));
  EXPECT_TRUE(cmp(BinOpCode::kGe, T(5), T(5)));
  EXPECT_FALSE(cmp(BinOpCode::kGe, T(4), T(5)));
}

TEST(BinaryOpTest, ArithmeticInt8) { check_arith_ops<int8_t>(); }
TEST(BinaryOpTest, ArithmeticUInt8) { check_arith_ops<uint8_t>(); }
TEST(BinaryOpTest, ArithmeticInt16) { check_arith_ops<int16_t>(); }
TEST(BinaryOpTest, ArithmeticUInt16) { check_arith_ops<uint16_t>(); }
TEST(BinaryOpTest, ArithmeticInt32) { check_arith_ops<int32_t>(); }
TEST(BinaryOpTest, ArithmeticUInt32) { check_arith_ops<uint32_t>(); }
TEST(BinaryOpTest, ArithmeticInt64) { check_arith_ops<int64_t>(); }
TEST(BinaryOpTest, ArithmeticUInt64) { check_arith_ops<uint64_t>(); }
TEST(BinaryOpTest, ArithmeticFP32) { check_arith_ops<float>(); }
TEST(BinaryOpTest, ArithmeticFP64) { check_arith_ops<double>(); }

TEST(BinaryOpTest, ComparisonsInt32) { check_cmp_ops<int32_t>(); }
TEST(BinaryOpTest, ComparisonsUInt64) { check_cmp_ops<uint64_t>(); }
TEST(BinaryOpTest, ComparisonsFP64) { check_cmp_ops<double>(); }
TEST(BinaryOpTest, ComparisonsInt8) { check_cmp_ops<int8_t>(); }

TEST(BinaryOpTest, BoolArithmeticConventions) {
  TypeCode b = TypeCode::kBool;
  EXPECT_EQ(run_bin<bool>(get_binary_op(BinOpCode::kPlus, b), true, false),
            true);  // PLUS == LOR
  EXPECT_EQ(run_bin<bool>(get_binary_op(BinOpCode::kTimes, b), true, false),
            false);  // TIMES == LAND
  EXPECT_EQ(run_bin<bool>(get_binary_op(BinOpCode::kMinus, b), true, true),
            false);  // MINUS == LXOR
  EXPECT_EQ(run_bin<bool>(get_binary_op(BinOpCode::kMin, b), true, false),
            false);
  EXPECT_EQ(run_bin<bool>(get_binary_op(BinOpCode::kMax, b), true, false),
            true);
}

TEST(BinaryOpTest, IntegerDivisionByZeroIsZero) {
  EXPECT_EQ(run_bin<int32_t>(
                get_binary_op(BinOpCode::kDiv, TypeCode::kInt32), 7, 0),
            0);
  EXPECT_EQ(run_bin<uint64_t>(
                get_binary_op(BinOpCode::kDiv, TypeCode::kUInt64), 7, 0),
            0u);
}

TEST(BinaryOpTest, IntMinDivMinusOneWraps) {
  int32_t lo = std::numeric_limits<int32_t>::min();
  EXPECT_EQ(run_bin<int32_t>(
                get_binary_op(BinOpCode::kDiv, TypeCode::kInt32), lo, -1),
            lo);
}

TEST(BinaryOpTest, FloatDivisionByZeroIsInf) {
  double z = run_bin<double>(
      get_binary_op(BinOpCode::kDiv, TypeCode::kFP64), 1.0, 0.0);
  EXPECT_TRUE(std::isinf(z));
}

TEST(BinaryOpTest, SignedOverflowWraps) {
  int8_t z = run_bin<int8_t>(
      get_binary_op(BinOpCode::kPlus, TypeCode::kInt8), int8_t(127),
      int8_t(1));
  EXPECT_EQ(z, int8_t(-128));
}

TEST(BinaryOpTest, FloatMinMaxHandleOrdering) {
  const BinaryOp* mn = get_binary_op(BinOpCode::kMin, TypeCode::kFP64);
  const BinaryOp* mx = get_binary_op(BinOpCode::kMax, TypeCode::kFP64);
  EXPECT_EQ(run_bin<double>(mn, -0.5, 2.0), -0.5);
  EXPECT_EQ(run_bin<double>(mx, -0.5, 2.0), 2.0);
}

TEST(BinaryOpTest, LogicalOpsBoolOnly) {
  EXPECT_NE(get_binary_op(BinOpCode::kLor, TypeCode::kBool), nullptr);
  EXPECT_EQ(get_binary_op(BinOpCode::kLor, TypeCode::kFP64), nullptr);
  EXPECT_EQ(get_binary_op(BinOpCode::kLand, TypeCode::kInt32), nullptr);
  bool z;
  bool t = true, f = false;
  get_binary_op(BinOpCode::kLor, TypeCode::kBool)->apply(&z, &t, &f);
  EXPECT_TRUE(z);
  get_binary_op(BinOpCode::kLand, TypeCode::kBool)->apply(&z, &t, &f);
  EXPECT_FALSE(z);
  get_binary_op(BinOpCode::kLxor, TypeCode::kBool)->apply(&z, &t, &f);
  EXPECT_TRUE(z);
  get_binary_op(BinOpCode::kLxnor, TypeCode::kBool)->apply(&z, &t, &f);
  EXPECT_FALSE(z);
}

TEST(BinaryOpTest, BitwiseOpsIntegerOnly) {
  EXPECT_EQ(get_binary_op(BinOpCode::kBor, TypeCode::kFP64), nullptr);
  EXPECT_EQ(get_binary_op(BinOpCode::kBand, TypeCode::kBool), nullptr);
  uint8_t z;
  uint8_t x = 0b1100, y = 0b1010;
  get_binary_op(BinOpCode::kBor, TypeCode::kUInt8)->apply(&z, &x, &y);
  EXPECT_EQ(z, 0b1110);
  get_binary_op(BinOpCode::kBand, TypeCode::kUInt8)->apply(&z, &x, &y);
  EXPECT_EQ(z, 0b1000);
  get_binary_op(BinOpCode::kBxor, TypeCode::kUInt8)->apply(&z, &x, &y);
  EXPECT_EQ(z, 0b0110);
  get_binary_op(BinOpCode::kBxnor, TypeCode::kUInt8)->apply(&z, &x, &y);
  EXPECT_EQ(z, uint8_t(~uint8_t(0b0110)));
}

TEST(BinaryOpTest, ComparisonOutputDomainIsBool) {
  const BinaryOp* eq = get_binary_op(BinOpCode::kEq, TypeCode::kFP64);
  EXPECT_EQ(eq->ztype(), TypeBool());
  EXPECT_EQ(eq->xtype(), TypeFP64());
  const BinaryOp* plus = get_binary_op(BinOpCode::kPlus, TypeCode::kInt16);
  EXPECT_EQ(plus->ztype(), TypeInt16());
}

TEST(BinaryOpTest, UserDefinedOpLifecycle) {
  auto fn = [](void* z, const void* x, const void* y) {
    double a, b;
    std::memcpy(&a, x, 8);
    std::memcpy(&b, y, 8);
    double r = a * 10 + b;
    std::memcpy(z, &r, 8);
  };
  const BinaryOp* op = nullptr;
  ASSERT_EQ(binary_op_new(&op, fn, TypeFP64(), TypeFP64(), TypeFP64()),
            Info::kSuccess);
  EXPECT_EQ(op->opcode(), BinOpCode::kCustom);
  double z;
  double x = 3, y = 4;
  op->apply(&z, &x, &y);
  EXPECT_EQ(z, 34.0);
  EXPECT_EQ(binary_op_free(op), Info::kSuccess);
  EXPECT_EQ(binary_op_free(op), Info::kUninitializedObject);
  EXPECT_EQ(binary_op_free(get_binary_op(BinOpCode::kPlus,
                                         TypeCode::kFP64)),
            Info::kInvalidValue);
  EXPECT_EQ(binary_op_new(&op, nullptr, TypeFP64(), TypeFP64(), TypeFP64()),
            Info::kNullPointer);
}

// ---- unary ops ---------------------------------------------------------------

template <class T>
T run_un(const UnaryOp* op, T x) {
  T z{};
  op->apply(&z, &x);
  return z;
}

TEST(UnaryOpTest, IdentityAinvMinvAbs) {
  EXPECT_EQ(run_un<int32_t>(
                get_unary_op(UnOpCode::kIdentity, TypeCode::kInt32), -7),
            -7);
  EXPECT_EQ(run_un<int32_t>(
                get_unary_op(UnOpCode::kAinv, TypeCode::kInt32), -7),
            7);
  EXPECT_EQ(run_un<double>(
                get_unary_op(UnOpCode::kAinv, TypeCode::kFP64), 2.5),
            -2.5);
  EXPECT_EQ(run_un<double>(
                get_unary_op(UnOpCode::kMinv, TypeCode::kFP64), 4.0),
            0.25);
  EXPECT_EQ(run_un<int32_t>(
                get_unary_op(UnOpCode::kMinv, TypeCode::kInt32), 0),
            0);  // documented: integer 1/0 -> 0
  EXPECT_EQ(run_un<int32_t>(
                get_unary_op(UnOpCode::kAbs, TypeCode::kInt32), -9),
            9);
  EXPECT_EQ(run_un<uint32_t>(
                get_unary_op(UnOpCode::kAbs, TypeCode::kUInt32), 9u),
            9u);
  EXPECT_EQ(run_un<double>(
                get_unary_op(UnOpCode::kAbs, TypeCode::kFP64), -1.25),
            1.25);
}

TEST(UnaryOpTest, AbsIntMinWraps) {
  int32_t lo = std::numeric_limits<int32_t>::min();
  EXPECT_EQ(
      run_un<int32_t>(get_unary_op(UnOpCode::kAbs, TypeCode::kInt32), lo),
      lo);
}

TEST(UnaryOpTest, LnotBoolOnly) {
  EXPECT_NE(get_unary_op(UnOpCode::kLnot, TypeCode::kBool), nullptr);
  EXPECT_EQ(get_unary_op(UnOpCode::kLnot, TypeCode::kInt32), nullptr);
  EXPECT_FALSE(run_un<bool>(
      get_unary_op(UnOpCode::kLnot, TypeCode::kBool), true));
}

TEST(UnaryOpTest, BnotIntegerOnly) {
  EXPECT_EQ(get_unary_op(UnOpCode::kBnot, TypeCode::kFP64), nullptr);
  EXPECT_EQ(get_unary_op(UnOpCode::kBnot, TypeCode::kBool), nullptr);
  EXPECT_EQ(run_un<uint8_t>(
                get_unary_op(UnOpCode::kBnot, TypeCode::kUInt8), 0x0f),
            0xf0);
}

TEST(UnaryOpTest, UserDefinedLifecycle) {
  auto fn = [](void* z, const void* x) {
    int32_t v;
    std::memcpy(&v, x, 4);
    v = v * 2 + 1;
    std::memcpy(z, &v, 4);
  };
  const UnaryOp* op = nullptr;
  ASSERT_EQ(unary_op_new(&op, fn, TypeInt32(), TypeInt32()), Info::kSuccess);
  EXPECT_EQ(run_un<int32_t>(op, 10), 21);
  EXPECT_EQ(unary_op_free(op), Info::kSuccess);
  EXPECT_EQ(
      unary_op_free(get_unary_op(UnOpCode::kAbs, TypeCode::kFP64)),
      Info::kInvalidValue);
}

}  // namespace
}  // namespace grb
