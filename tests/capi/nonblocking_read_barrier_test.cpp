// Nonblocking-mode read barrier: any C-API entry point that observes
// container state (extractElement, nvals, reduce-to-scalar, export,
// extractTuples) must first complete the deferred-op queue, so a caller
// can never see a half-applied chain — with or without the fusion
// planner rewriting the batch on the way out.
#include <gtest/gtest.h>

#include <vector>

#include "tests/grb_test_util.hpp"

namespace {

GrB_Context nonblocking_ctx() {
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, GrB_NULL),
            GrB_SUCCESS);
  return ctx;
}

GrB_Vector iota_vector(GrB_Index n, GrB_Context ctx) {
  GrB_Vector v = nullptr;
  EXPECT_EQ(GrB_Vector_new(&v, GrB_FP64, n, ctx), GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i)
    EXPECT_EQ(GrB_Vector_setElement(v, static_cast<double>(i + 1), i),
              GrB_SUCCESS);
  return v;
}

// extractElement mid-queue: both queued applies must be visible even
// though nothing has explicitly waited.
TEST(ReadBarrier, ExtractElementSeesQueuedApplies) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(8, ctx);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_AINV_FP64, v, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, v, 10.0,
                      GrB_NULL),
            GrB_SUCCESS);
  double x = 0.0;
  ASSERT_EQ(GrB_Vector_extractElement(&x, v, 4), GrB_SUCCESS);
  EXPECT_EQ(x, -5.0 + 10.0);
  GrB_free(&v);
  GrB_free(&ctx);
}

// nvals mid-queue: a queued clear (a dead-write killer for the planner)
// followed by a queued rebuild must both be reflected in the count.
TEST(ReadBarrier, NvalsSeesClearAndRebuild) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(8, ctx);
  GrB_Vector u = iota_vector(8, ctx);
  ASSERT_EQ(GrB_Vector_clear(v), GrB_SUCCESS);
  GrB_Index nv = 99;
  ASSERT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(nv, 0u);
  ASSERT_EQ(GrB_eWiseAdd(v, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, v, u,
                         GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(nv, 8u);
  GrB_free(&v);
  GrB_free(&u);
  GrB_free(&ctx);
}

// reduce-to-scalar is itself an op, but reads its input through the
// barrier: the queued chain on v must be fully applied in the sum.
TEST(ReadBarrier, ReduceSeesQueuedChain) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(4, ctx);  // 1 2 3 4
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 2.0, v,
                      GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, v, 1.0,
                      GrB_NULL),
            GrB_SUCCESS);
  double sum = 0.0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, v, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(sum, 2.0 * (1 + 2 + 3 + 4) + 4.0);
  GrB_free(&v);
  GrB_free(&ctx);
}

// export mid-queue: the non-opaque snapshot must contain the applied
// chain, and exportSize must agree with the post-chain structure.
TEST(ReadBarrier, ExportSeesQueuedChain) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(5, ctx);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_AINV_FP64, v, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 42.0, 2), GrB_SUCCESS);
  GrB_Index ilen = 0, vlen = 0;
  ASSERT_EQ(GrB_Vector_exportSize(&ilen, &vlen, GrB_SPARSE_VECTOR, v),
            GrB_SUCCESS);
  ASSERT_EQ(ilen, 5u);
  std::vector<GrB_Index> idx(ilen);
  std::vector<double> vals(vlen);
  ASSERT_EQ(GrB_Vector_export(idx.data(), vals.data(), GrB_SPARSE_VECTOR, v),
            GrB_SUCCESS);
  for (GrB_Index k = 0; k < 5; ++k) {
    EXPECT_EQ(idx[k], k);
    EXPECT_EQ(vals[k], k == 2 ? 42.0 : -static_cast<double>(k + 1));
  }
  GrB_free(&v);
  GrB_free(&ctx);
}

// Overwrite-then-read: the read must return the overwriting op's value,
// not the stale pre-chain value, even when the planner eliminates the
// first write as dead.
TEST(ReadBarrier, OverwriteThenRead) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(6, ctx);
  GrB_Vector u = iota_vector(6, ctx);
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 6, 6, ctx), GrB_SUCCESS);
  for (GrB_Index i = 0; i < 6; ++i)
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, i, i), GrB_SUCCESS);
  // First write: v = A*u (identity, so v = u).  Second write overwrites
  // it wholesale: v = 3*u.  The first is dead; the read sees the second.
  ASSERT_EQ(GrB_mxv(v, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, u, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 3.0, u,
                      GrB_NULL),
            GrB_SUCCESS);
  double x = 0.0;
  ASSERT_EQ(GrB_Vector_extractElement(&x, v, 3), GrB_SUCCESS);
  EXPECT_EQ(x, 12.0);
  GrB_free(&v);
  GrB_free(&u);
  GrB_free(&a);
  GrB_free(&ctx);
}

// Accumulate loop: each iteration reads the running value mid-queue and
// the next iteration's accumulation builds on the fully-applied state.
TEST(ReadBarrier, AccumulateLoopObservesEachStep) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(4, ctx);
  double expect = 2.0;  // element 1 starts at 2
  for (int round = 0; round < 5; ++round) {
    ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_PLUS_FP64, GrB_ABS_FP64, v,
                        GrB_NULL),
              GrB_SUCCESS);
    expect *= 2.0;  // v + |v| doubles positive entries
    double x = 0.0;
    ASSERT_EQ(GrB_Vector_extractElement(&x, v, 1), GrB_SUCCESS);
    EXPECT_EQ(x, expect) << "round " << round;
  }
  GrB_free(&v);
  GrB_free(&ctx);
}

// setElement interleaved with queued ops: tuples added before an op are
// folded in before it runs; tuples after it survive.  extractTuples
// (through to_ref) is the reading barrier here.
TEST(ReadBarrier, SetElementInterleaving) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 5.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(v, GrB_NULL, GrB_NULL, GrB_AINV_FP64, v, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 7.0, 1), GrB_SUCCESS);
  ref::Vec out = testutil::to_ref(v);
  ASSERT_TRUE(out.at(0).has_value());
  EXPECT_EQ(*out.at(0), -5.0);  // folded before the apply
  ASSERT_TRUE(out.at(1).has_value());
  EXPECT_EQ(*out.at(1), 7.0);  // added after it, untouched
  GrB_free(&v);
  GrB_free(&ctx);
}

// A read on one container must not disturb another container's pending
// queue: u's chain stays queued (and correct) across reads of v.
TEST(ReadBarrier, ReadIsPerContainer) {
  GrB_Context ctx = nonblocking_ctx();
  GrB_Vector v = iota_vector(4, ctx);
  GrB_Vector u = iota_vector(4, ctx);
  ASSERT_EQ(GrB_apply(u, GrB_NULL, GrB_NULL, GrB_AINV_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  double x = 0.0;
  ASSERT_EQ(GrB_Vector_extractElement(&x, v, 0), GrB_SUCCESS);
  EXPECT_EQ(x, 1.0);
  ASSERT_EQ(GrB_Vector_extractElement(&x, u, 0), GrB_SUCCESS);
  EXPECT_EQ(x, -1.0);
  GrB_free(&v);
  GrB_free(&u);
  GrB_free(&ctx);
}

}  // namespace
