// Paper §IX: "any tables in the specification that list the elements of
// an enumeration will now also specify the values they must correspond
// to" — so separately compiled programs link against any conforming
// library.  These assertions pin the ABI.
#include <gtest/gtest.h>

#include "graphblas/GraphBLAS.h"

namespace {

TEST(EnumValuesTest, GrBInfoValuesArePinned) {
  EXPECT_EQ(static_cast<int>(GrB_SUCCESS), 0);
  EXPECT_EQ(static_cast<int>(GrB_NO_VALUE), 1);
  EXPECT_EQ(static_cast<int>(GrB_UNINITIALIZED_OBJECT), -1);
  EXPECT_EQ(static_cast<int>(GrB_NULL_POINTER), -2);
  EXPECT_EQ(static_cast<int>(GrB_INVALID_VALUE), -3);
  EXPECT_EQ(static_cast<int>(GrB_INVALID_INDEX), -4);
  EXPECT_EQ(static_cast<int>(GrB_DOMAIN_MISMATCH), -5);
  EXPECT_EQ(static_cast<int>(GrB_DIMENSION_MISMATCH), -6);
  EXPECT_EQ(static_cast<int>(GrB_OUTPUT_NOT_EMPTY), -7);
  EXPECT_EQ(static_cast<int>(GrB_NOT_IMPLEMENTED), -8);
  EXPECT_EQ(static_cast<int>(GrB_PANIC), -101);
  EXPECT_EQ(static_cast<int>(GrB_OUT_OF_MEMORY), -102);
  EXPECT_EQ(static_cast<int>(GrB_INSUFFICIENT_SPACE), -103);
  EXPECT_EQ(static_cast<int>(GrB_INVALID_OBJECT), -104);
  EXPECT_EQ(static_cast<int>(GrB_INDEX_OUT_OF_BOUNDS), -105);
  EXPECT_EQ(static_cast<int>(GrB_EMPTY_OBJECT), -106);
}

TEST(EnumValuesTest, GrBFormatValuesArePinned) {
  // The new GrB_Format enumeration (§IX names it explicitly).
  EXPECT_EQ(static_cast<int>(GrB_CSR_MATRIX), 0);
  EXPECT_EQ(static_cast<int>(GrB_CSC_MATRIX), 1);
  EXPECT_EQ(static_cast<int>(GrB_COO_MATRIX), 2);
  EXPECT_EQ(static_cast<int>(GrB_DENSE_ROW_MATRIX), 3);
  EXPECT_EQ(static_cast<int>(GrB_DENSE_COL_MATRIX), 4);
  EXPECT_EQ(static_cast<int>(GrB_SPARSE_VECTOR), 5);
  EXPECT_EQ(static_cast<int>(GrB_DENSE_VECTOR), 6);
}

TEST(EnumValuesTest, ModeAndWaitValues) {
  EXPECT_EQ(static_cast<int>(GrB_NONBLOCKING), 0);
  EXPECT_EQ(static_cast<int>(GrB_BLOCKING), 1);
  EXPECT_EQ(static_cast<int>(GrB_COMPLETE), 0);
  EXPECT_EQ(static_cast<int>(GrB_MATERIALIZE), 1);
}

TEST(EnumValuesTest, ErrorBandPredicates) {
  // API errors occupy [-100, -1]; execution errors <= -101.
  EXPECT_TRUE(grb::is_api_error(grb::Info::kDomainMismatch));
  EXPECT_FALSE(grb::is_api_error(grb::Info::kOutOfMemory));
  EXPECT_TRUE(grb::is_execution_error(grb::Info::kPanic));
  EXPECT_FALSE(grb::is_execution_error(grb::Info::kNullPointer));
  EXPECT_FALSE(grb::is_api_error(grb::Info::kSuccess));
  EXPECT_FALSE(grb::is_execution_error(grb::Info::kNoValue));
}

TEST(EnumValuesTest, InfoNames) {
  EXPECT_STREQ(grb::info_name(grb::Info::kSuccess), "GrB_SUCCESS");
  EXPECT_STREQ(grb::info_name(grb::Info::kIndexOutOfBounds),
               "GrB_INDEX_OUT_OF_BOUNDS");
  EXPECT_STREQ(grb::info_name(grb::Info::kEmptyObject),
               "GrB_EMPTY_OBJECT");
}

TEST(EnumValuesTest, VersionIsTwoDotZero) {
  unsigned v = 0, sub = 99;
  ASSERT_EQ(GrB_getVersion(&v, &sub), GrB_SUCCESS);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(sub, 0u);
}

TEST(EnumValuesTest, PredefinedObjectsAreNonNull) {
  EXPECT_NE(GrB_BOOL, nullptr);
  EXPECT_NE(GrB_FP64, nullptr);
  EXPECT_NE(GrB_PLUS_FP64, nullptr);
  EXPECT_NE(GrB_PLUS_INT8, nullptr);
  EXPECT_NE(GrB_LOR, nullptr);
  EXPECT_NE(GrB_ABS_FP32, nullptr);
  EXPECT_NE(GrB_BNOT_UINT16, nullptr);
  EXPECT_NE(GrB_PLUS_MONOID_FP64, nullptr);
  EXPECT_NE(GrB_LXNOR_MONOID_BOOL, nullptr);
  EXPECT_NE(GrB_PLUS_TIMES_SEMIRING_FP64, nullptr);
  EXPECT_NE(GrB_MIN_PLUS_SEMIRING_INT32, nullptr);
  EXPECT_NE(GrB_LOR_LAND_SEMIRING_BOOL, nullptr);
  EXPECT_NE(GrB_TRIL, nullptr);
  EXPECT_NE(GrB_ROWINDEX_INT64, nullptr);
  EXPECT_NE(GrB_VALUEGT_FP32, nullptr);
  EXPECT_NE(GrB_DESC_RSC, nullptr);
  EXPECT_NE(GrB_ALL, nullptr);
}

}  // namespace
