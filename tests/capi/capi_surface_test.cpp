// C API surface behaviours not covered elsewhere: lifecycle rules,
// GrB_free nulling, uninitialized handles, and polymorphic overload
// resolution corners.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(CapiLifecycleTest, DoubleInitFails) {
  // The environment already called GrB_init.
  EXPECT_EQ(GrB_init(GrB_NONBLOCKING), GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_init(GrB_BLOCKING), GrB_INVALID_VALUE);
}

TEST(CapiLifecycleTest, BadModeRejected) {
  EXPECT_EQ(GrB_init(static_cast<GrB_Mode>(42)), GrB_INVALID_VALUE);
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, static_cast<GrB_Mode>(42), GrB_NULL,
                            GrB_NULL),
            GrB_INVALID_VALUE);
}

TEST(CapiLifecycleTest, GetVersionNullArgs) {
  unsigned v;
  EXPECT_EQ(GrB_getVersion(nullptr, &v), GrB_NULL_POINTER);
  EXPECT_EQ(GrB_getVersion(&v, nullptr), GrB_NULL_POINTER);
}

TEST(CapiFreeTest, FreeNullsTheHandle) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 2, 2), GrB_SUCCESS);
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(GrB_free(&a), GrB_SUCCESS);
  EXPECT_EQ(a, nullptr);
  // Freeing an already-nulled handle reports NULL_POINTER, harmlessly.
  EXPECT_EQ(GrB_free(&a), GrB_NULL_POINTER);
}

TEST(CapiFreeTest, FreeWithPendingWorkIsSafe) {
  GrB_Matrix a = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 32, 32), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 32, 32), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 3, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, a, GrB_NULL),
            GrB_SUCCESS);
  // c still has deferred work; free must resolve it, not leak or crash.
  EXPECT_EQ(GrB_free(&c), GrB_SUCCESS);
  EXPECT_EQ(GrB_free(&a), GrB_SUCCESS);
}

TEST(CapiNullHandleTest, MethodsRejectNullHandles) {
  GrB_Matrix null_m = nullptr;
  GrB_Vector null_v = nullptr;
  GrB_Scalar null_s = nullptr;
  GrB_Index n;
  EXPECT_EQ(GrB_Matrix_nrows(&n, null_m), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(GrB_Vector_size(&n, null_v), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(GrB_Scalar_nvals(&n, null_s), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(GrB_Matrix_clear(null_m), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(GrB_wait(null_m, GrB_COMPLETE), GrB_UNINITIALIZED_OBJECT);
  const char* msg;
  EXPECT_EQ(GrB_error(&msg, null_m), GrB_UNINITIALIZED_OBJECT);
  // Ops with null output handles.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 2, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(null_m, GrB_NULL, GrB_NULL,
                    GrB_PLUS_TIMES_SEMIRING_FP64, a, a, GrB_NULL),
            GrB_NULL_POINTER);
  GrB_free(&a);
}

TEST(CapiPolymorphismTest, OverloadsPickTheRightVariant) {
  // The same GrB_assign name must route int, double, GrB_Scalar, and
  // GrB_Vector sources to their respective implementations.
  GrB_Vector w = nullptr, u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 2.0, 1), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 3.0), GrB_SUCCESS);

  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, 7, GrB_ALL, 4, GrB_NULL),
            GrB_SUCCESS);  // int scalar
  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, 7.5, GrB_ALL, 4, GrB_NULL),
            GrB_SUCCESS);  // double scalar
  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, s, GrB_ALL, 4, GrB_NULL),
            GrB_SUCCESS);  // GrB_Scalar
  EXPECT_EQ(GrB_assign(w, GrB_NULL, GrB_NULL, u, GrB_ALL, 4, GrB_NULL),
            GrB_SUCCESS);  // GrB_Vector
  // After the vector assign, w mirrors u exactly.
  GrB_Index nv;
  EXPECT_EQ(GrB_Vector_nvals(&nv, w), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);
  GrB_free(&w);
  GrB_free(&u);
  GrB_free(&s);
}

TEST(CapiPolymorphismTest, ApplyOverloadsDisambiguate) {
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 4.0, 0), GrB_SUCCESS);
  // unary
  EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, -4.0);
  // bind-first vs bind-second with the SAME binary op
  EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_DIV_FP64, 8.0, u,
                      GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 2.0);  // 8 / u(0)
  EXPECT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_DIV_FP64, u, 8.0,
                      GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 0.5);  // u(0) / 8
  // index-unary with typed s
  GrB_Vector wi = nullptr;
  ASSERT_EQ(GrB_Vector_new(&wi, GrB_INT64, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_apply(wi, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, u,
                      int64_t{100}, GrB_NULL),
            GrB_SUCCESS);
  int64_t iv = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&iv, wi, 0), GrB_SUCCESS);
  EXPECT_EQ(iv, 100);
  GrB_free(&u);
  GrB_free(&w);
  GrB_free(&wi);
}

TEST(CapiErrorStringTest, MentionsErrorCodeName) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 2, 2), GrB_SUCCESS);
  GrB_Index ri[] = {0, 0};
  GrB_Index ci[] = {0, 0};
  double vals[] = {1, 2};
  ASSERT_EQ(GrB_Matrix_build(a, ri, ci, vals, 2, GrB_NULL), GrB_SUCCESS);
  GrB_Index nv;
  (void)GrB_Matrix_nvals(&nv, a);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, a), GrB_SUCCESS);
  EXPECT_NE(std::string(msg).find("GrB_"), std::string::npos);
  GrB_free(&a);
}

TEST(CapiIndexMaxTest, DimensionLimits) {
  GrB_Matrix a = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&a, GrB_FP64, GrB_INDEX_MAX + 1, 4),
            GrB_INVALID_VALUE);
  GrB_Vector v = nullptr;
  EXPECT_EQ(GrB_Vector_new(&v, GrB_FP64, GrB_INDEX_MAX + 1),
            GrB_INVALID_VALUE);
}

}  // namespace
