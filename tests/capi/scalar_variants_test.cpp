// Table II: the GrB_Scalar variants of setElement / extractElement /
// assign / apply / select / reduce / Monoid_new — §VI's two claims:
// fewer nonpolymorphic variants and more uniform behaviour.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(ScalarVariantsTest, MonoidNewFromScalar) {
  GrB_Scalar id = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&id, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(id, 0.0), GrB_SUCCESS);
  GrB_Monoid m = nullptr;
  ASSERT_EQ(GrB_Monoid_new(&m, GrB_PLUS_FP64, id), GrB_SUCCESS);
  double stored = -1;
  std::memcpy(&stored, m->identity(), sizeof(double));
  EXPECT_EQ(stored, 0.0);
  GrB_free(&m);
  // Empty identity scalar is an error.
  ASSERT_EQ(GrB_Scalar_clear(id), GrB_SUCCESS);
  EXPECT_EQ(GrB_Monoid_new(&m, GrB_PLUS_FP64, id), GrB_EMPTY_OBJECT);
  GrB_free(&id);
}

TEST(ScalarVariantsTest, SetElementFromScalar) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 6.5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, s, 2), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 6.5);
  // Empty scalar removes the element (uniform with empty containers).
  ASSERT_EQ(GrB_Scalar_clear(s), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, s, 2), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&out, v, 2), GrB_NO_VALUE);
  GrB_free(&v);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, ExtractElementIntoScalarAvoidsNoValueDance) {
  // §VI: "the program has to (i) test for ... GrB_NO_VALUE ... A variant
  // with GrB_Scalar as the output bypasses both of these problems."
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 3.0, 1), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  // Present element: scalar gets the value.
  ASSERT_EQ(GrB_Vector_extractElement(s, v, 1), GrB_SUCCESS);
  GrB_Index nvals = 0;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 1u);
  // Absent element: SUCCESS (not GrB_NO_VALUE) and an empty scalar.
  ASSERT_EQ(GrB_Vector_extractElement(s, v, 3), GrB_SUCCESS);
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  GrB_free(&v);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, MatrixExtractElementIntoScalar) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_INT32, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 42, 1, 2), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_INT32), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_extractElement(s, a, 1, 2), GrB_SUCCESS);
  int32_t out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 42);
  ASSERT_EQ(GrB_Matrix_extractElement(s, a, 0, 0), GrB_SUCCESS);
  GrB_Index nvals = 1;
  EXPECT_EQ(GrB_Scalar_nvals(&nvals, s), GrB_SUCCESS);
  EXPECT_EQ(nvals, 0u);
  // Matrix setElement from a scalar.
  ASSERT_EQ(GrB_Scalar_setElement(s, 7), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, s, 0, 0), GrB_SUCCESS);
  int32_t got = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&got, a, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(got, 7);
  GrB_free(&a);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, SelectWithScalarS) {
  ref::Mat ra = testutil::random_mat(8, 8, 0.5, 1);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c1 = nullptr, c2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c1, GrB_FP64, 8, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c2, GrB_FP64, 8, 8), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, 4.0), GrB_SUCCESS);
  // Scalar-s and typed-s variants must agree.
  ASSERT_EQ(GrB_select(c1, GrB_NULL, GrB_NULL, GrB_VALUEGE_FP64, a, s,
                       GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_select(c2, GrB_NULL, GrB_NULL, GrB_VALUEGE_FP64, a, 4.0,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_TRUE(testutil::mats_equal(testutil::to_ref(c2),
                                   testutil::to_ref(c1)));
  // Empty s: EMPTY_OBJECT.
  ASSERT_EQ(GrB_Scalar_clear(s), GrB_SUCCESS);
  EXPECT_EQ(GrB_select(c1, GrB_NULL, GrB_NULL, GrB_VALUEGE_FP64, a, s,
                       GrB_NULL),
            GrB_EMPTY_OBJECT);
  GrB_free(&a);
  GrB_free(&c1);
  GrB_free(&c2);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, ApplyIndexOpWithScalarS) {
  ref::Mat ra = testutil::random_mat(6, 6, 0.5, 2);
  GrB_Matrix a = testutil::make_matrix(ra);
  GrB_Matrix c1 = nullptr, c2 = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c1, GrB_INT64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c2, GrB_INT64, 6, 6), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_INT64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, int64_t{3}), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c1, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, a, s,
                      GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(c2, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, a,
                      int64_t{3}, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_TRUE(testutil::mats_equal(testutil::to_ref(c2),
                                   testutil::to_ref(c1)));
  GrB_free(&a);
  GrB_free(&c1);
  GrB_free(&c2);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, AssignScalarVariantMatchesTyped) {
  ref::Mat rc = testutil::random_mat(7, 7, 0.4, 3);
  GrB_Matrix c1 = testutil::make_matrix(rc);
  GrB_Matrix c2 = testutil::make_matrix(rc);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_Scalar_setElement(s, -2.0), GrB_SUCCESS);
  GrB_Index rows[] = {1, 5};
  GrB_Index cols[] = {0, 2, 6};
  ASSERT_EQ(GrB_assign(c1, GrB_NULL, GrB_NULL, s, rows, 2, cols, 3,
                       GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_assign(c2, GrB_NULL, GrB_NULL, -2.0, rows, 2, cols, 3,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_TRUE(testutil::mats_equal(testutil::to_ref(c2),
                                   testutil::to_ref(c1)));
  GrB_free(&c1);
  GrB_free(&c2);
  GrB_free(&s);
}

TEST(ScalarVariantsTest, ReduceChainsThroughScalarSequence) {
  // reduce into a GrB_Scalar then read it through extractElement: the
  // entire chain can defer and still produce the right answer.
  ref::Vec ru = testutil::random_vec(50, 0.5, 4);
  GrB_Vector u = testutil::make_vector(ru);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  double out = 0;
  ASSERT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, ref::reduce_all(ru, testutil::fn_plus).value_or(0.0));
  GrB_free(&u);
  GrB_free(&s);
}

}  // namespace
