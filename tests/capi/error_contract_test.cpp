// Table-driven negative-path coverage of the API-error contract (paper §V):
// API errors are eager and deterministic — a malformed call returns the
// documented code immediately, regardless of the execution mode, without
// modifying its arguments — and every live object keeps a queryable
// GrB_error diagnostic string.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "tests/grb_test_util.hpp"

namespace {

struct NegativeCase {
  const char* name;
  GrB_Info expected;
  std::function<GrB_Info()> call;
};

class ErrorContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(GrB_Matrix_new(&a_, GrB_FP64, 3, 3), GrB_SUCCESS);
    ASSERT_EQ(GrB_Vector_new(&v_, GrB_FP64, 3), GrB_SUCCESS);
    ASSERT_EQ(GrB_Scalar_new(&s_, GrB_FP64), GrB_SUCCESS);
  }
  void TearDown() override {
    if (a_ != nullptr) GrB_free(&a_);
    if (v_ != nullptr) GrB_free(&v_);
    if (s_ != nullptr) GrB_free(&s_);
  }

  GrB_Matrix a_ = nullptr;
  GrB_Vector v_ = nullptr;
  GrB_Scalar s_ = nullptr;
};

TEST_F(ErrorContractTest, NegativePathsReturnDocumentedCodes) {
  GrB_Matrix null_m = nullptr;
  GrB_Vector null_v = nullptr;
  GrB_Scalar null_s = nullptr;
  GrB_Index n = 0;
  double x = 0;
  unsigned ver = 0;
  const char* msg = nullptr;
  GrB_Monoid mono = nullptr;
  GrB_Matrix out_m = nullptr;
  GrB_Vector out_v = nullptr;
  GrB_Scalar out_s = nullptr;

  const std::vector<NegativeCase> cases = {
      // ---- GrB_UNINITIALIZED_OBJECT: a null handle argument ------------
      {"Matrix_clear(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_clear(null_m); }},
      {"Vector_clear(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_clear(null_v); }},
      {"Scalar_clear(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Scalar_clear(null_s); }},
      {"Matrix_nvals(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_nvals(&n, null_m); }},
      {"Vector_nvals(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_nvals(&n, null_v); }},
      {"Scalar_nvals(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Scalar_nvals(&n, null_s); }},
      {"Matrix_nrows(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_nrows(&n, null_m); }},
      {"Matrix_ncols(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_ncols(&n, null_m); }},
      {"Vector_size(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_size(&n, null_v); }},
      {"Matrix_resize(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_resize(null_m, 2, 2); }},
      {"Vector_resize(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_resize(null_v, 2); }},
      {"Matrix_setElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_setElement(null_m, 1.0, 0, 0); }},
      {"Vector_setElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_setElement(null_v, 1.0, 0); }},
      {"Scalar_setElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Scalar_setElement(null_s, 1.0); }},
      {"Matrix_removeElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_removeElement(null_m, 0, 0); }},
      {"Vector_removeElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_removeElement(null_v, 0); }},
      {"Matrix_extractElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Matrix_extractElement(&x, null_m, 0, 0); }},
      {"Vector_extractElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Vector_extractElement(&x, null_v, 0); }},
      {"Scalar_extractElement(null)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Scalar_extractElement(&x, null_s); }},
      {"wait(null matrix)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_wait(null_m, GrB_COMPLETE); }},
      {"wait(null vector)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_wait(null_v, GrB_MATERIALIZE); }},
      {"wait(null scalar)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_wait(null_s, GrB_COMPLETE); }},
      {"error(null matrix)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_error(&msg, null_m); }},
      {"error(null vector)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_error(&msg, null_v); }},
      {"Descriptor_set(null)", GrB_UNINITIALIZED_OBJECT,
       [&] {
         return GrB_Descriptor_set(nullptr, GrB_OUTP, GrB_REPLACE);
       }},
      {"Context_switch(null matrix)", GrB_UNINITIALIZED_OBJECT,
       [&] { return GrB_Context_switch(null_m, nullptr); }},

      // ---- GrB_NULL_POINTER: a null non-handle (output/data) pointer ---
      {"Matrix_new(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Matrix_new(nullptr, GrB_FP64, 2, 2); }},
      {"Matrix_new(null type)", GrB_NULL_POINTER,
       [&] {
         return GrB_Matrix_new(&out_m, static_cast<GrB_Type>(nullptr), 2, 2);
       }},
      {"Vector_new(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Vector_new(nullptr, GrB_FP64, 2); }},
      {"Vector_new(null type)", GrB_NULL_POINTER,
       [&] {
         return GrB_Vector_new(&out_v, static_cast<GrB_Type>(nullptr), 2);
       }},
      {"Scalar_new(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Scalar_new(nullptr, GrB_FP64); }},
      {"Scalar_new(null type)", GrB_NULL_POINTER,
       [&] {
         return GrB_Scalar_new(&out_s, static_cast<GrB_Type>(nullptr));
       }},
      {"Matrix_dup(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Matrix_dup(nullptr, a_); }},
      {"Vector_dup(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Vector_dup(nullptr, v_); }},
      {"free(null matrix handle ptr)", GrB_NULL_POINTER,
       [&] { return GrB_free(static_cast<GrB_Matrix*>(nullptr)); }},
      {"free(null vector handle ptr)", GrB_NULL_POINTER,
       [&] { return GrB_free(static_cast<GrB_Vector*>(nullptr)); }},
      {"Matrix_nrows(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Matrix_nrows(nullptr, a_); }},
      {"Vector_size(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Vector_size(nullptr, v_); }},
      {"Matrix_nvals(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Matrix_nvals(nullptr, a_); }},
      {"error(null out)", GrB_NULL_POINTER,
       [&] { return GrB_error(nullptr, a_); }},
      {"getVersion(null)", GrB_NULL_POINTER,
       [&] { return GrB_getVersion(nullptr, &ver); }},
      {"Type_new(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Type_new(nullptr, 8); }},
      {"Descriptor_new(null out)", GrB_NULL_POINTER,
       [&] { return GrB_Descriptor_new(nullptr); }},
      {"Monoid_new(null op)", GrB_NULL_POINTER,
       [&] {
         return GrB_Monoid_new(&mono, static_cast<GrB_BinaryOp>(nullptr),
                               0.0);
       }},
  };

  for (const NegativeCase& c : cases) {
    EXPECT_EQ(c.call(), c.expected) << c.name;
    // §V: API errors are deterministic — the same malformed call reports
    // the same code again.
    EXPECT_EQ(c.call(), c.expected) << c.name << " (repeat)";
  }

  // None of the malformed calls above may have disturbed the fixtures.
  GrB_Index nv = ~GrB_Index{0};
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a_), GrB_SUCCESS);
  EXPECT_EQ(nv, 0u);
  EXPECT_EQ(GrB_Vector_nvals(&nv, v_), GrB_SUCCESS);
  EXPECT_EQ(nv, 0u);
}

TEST_F(ErrorContractTest, ErrorStringPopulatedOnHealthyObjects) {
  // GrB_error is defined on every live object, error or not: the string
  // must be non-null and NUL-terminated even before any failure.
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, a_), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, v_), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, s_), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
}

TEST_F(ErrorContractTest, ApiErrorDoesNotPoisonTheObject) {
  // An eager API error must not stick to the object: the next valid call
  // succeeds and GrB_error keeps returning a valid (possibly empty) string.
  EXPECT_EQ(GrB_Matrix_setElement(a_, 1.0, 99, 0), GrB_INVALID_INDEX);
  EXPECT_EQ(GrB_Matrix_setElement(a_, 1.0, 1, 1), GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a_), GrB_SUCCESS);
  EXPECT_EQ(nv, 1u);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, a_), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
}

TEST_F(ErrorContractTest, DeferredErrorRegistersDiagnosticString) {
  // A deferred execution failure must both surface its code on a later
  // method and register a human-readable GrB_error string naming it
  // (the "deferring operations register a GrB_error string" contract
  // tools/grb_lint.py checks statically).
  GrB_Index idx[] = {1, 1};
  double vals[] = {1, 2};
  // Duplicate indices with a NULL dup operator: an execution error that
  // nonblocking mode may defer past the build call itself.
  GrB_Info info = GrB_Vector_build(v_, idx, vals, 2, GrB_NULL);
  if (info == GrB_SUCCESS) {
    GrB_Index nv = 0;
    info = GrB_Vector_nvals(&nv, v_);
  }
  EXPECT_EQ(info, GrB_INVALID_VALUE);

  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, v_), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_FALSE(std::string(msg).empty());
  EXPECT_NE(std::string(msg).find("GrB_INVALID_VALUE"), std::string::npos);

  // MATERIALIZE reports the stored error once more and clears it.
  EXPECT_EQ(GrB_wait(v_, GrB_MATERIALIZE), GrB_INVALID_VALUE);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, v_), GrB_SUCCESS);
}

}  // namespace
