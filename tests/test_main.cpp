#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::AddGlobalTestEnvironment(new testutil::GrbEnvironment);
  return RUN_ALL_TESTS();
}
