// k-core decomposition against a reference peeling implementation.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/algorithms.hpp"
#include "tests/grb_test_util.hpp"
#include "util/generator.hpp"

namespace {

std::vector<std::vector<GrB_Index>> adjacency(GrB_Matrix a) {
  GrB_Index n, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&n, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  std::vector<GrB_Index> ri(nv), ci(nv);
  GrB_Index got = nv;
  EXPECT_EQ(GrB_Matrix_extractTuples(ri.data(), ci.data(),
                                     static_cast<double*>(nullptr), &got,
                                     a),
            GrB_SUCCESS);
  std::vector<std::vector<GrB_Index>> adj(n);
  for (GrB_Index k = 0; k < got; ++k)
    if (ri[k] != ci[k]) adj[ri[k]].push_back(ci[k]);
  return adj;
}

// Textbook peeling (O(V^2) is fine at test sizes).
std::vector<int64_t> kcore_reference(
    const std::vector<std::vector<GrB_Index>>& adj) {
  const size_t n = adj.size();
  std::vector<int64_t> deg(n), core(n, 0);
  std::vector<bool> removed(n, false);
  for (size_t v = 0; v < n; ++v) deg[v] = adj[v].size();
  for (int64_t k = 1;; ++k) {
    bool all_removed = true;
    for (size_t v = 0; v < n; ++v) all_removed &= removed[v];
    if (all_removed) break;
    bool peeled;
    do {
      peeled = false;
      for (size_t v = 0; v < n; ++v) {
        if (!removed[v] && deg[v] < k) {
          removed[v] = true;
          core[v] = k - 1;
          for (GrB_Index u : adj[v])
            if (!removed[u]) --deg[u];
          peeled = true;
        }
      }
    } while (peeled);
  }
  return core;
}

void check_kcore(GrB_Matrix a) {
  auto adj = adjacency(a);
  auto want = kcore_reference(adj);
  GrB_Vector core = nullptr;
  ASSERT_EQ(grb_algo::kcore(&core, a), GrB_SUCCESS);
  for (GrB_Index v = 0; v < adj.size(); ++v) {
    int64_t got = 0;
    GrB_Info info = GrB_Vector_extractElement(&got, core, v);
    int64_t g = info == GrB_SUCCESS ? got : 0;  // absent == isolated == 0
    EXPECT_EQ(g, want[v]) << "vertex " << v;
  }
  GrB_free(&core);
}

TEST(KcoreTest, CliqueWithTail) {
  // K5 (coreness 4) with a path hanging off (coreness 1) and an isolated
  // vertex (coreness 0).
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 9, 9), GrB_SUCCESS);
  auto edge = [&](GrB_Index u, GrB_Index v) {
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, u, v), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, v, u), GrB_SUCCESS);
  };
  for (GrB_Index i = 0; i < 5; ++i)
    for (GrB_Index j = i + 1; j < 5; ++j) edge(i, j);
  edge(4, 5);
  edge(5, 6);
  edge(6, 7);
  // vertex 8 isolated
  check_kcore(a);
  // Spot-check the headline values.
  GrB_Vector core = nullptr;
  ASSERT_EQ(grb_algo::kcore(&core, a), GrB_SUCCESS);
  int64_t c = -1;
  ASSERT_EQ(GrB_Vector_extractElement(&c, core, 0), GrB_SUCCESS);
  EXPECT_EQ(c, 4);
  ASSERT_EQ(GrB_Vector_extractElement(&c, core, 6), GrB_SUCCESS);
  EXPECT_EQ(c, 1);
  EXPECT_EQ(GrB_Vector_extractElement(&c, core, 8), GrB_NO_VALUE);
  GrB_free(&core);
  GrB_free(&a);
}

TEST(KcoreTest, RandomSymmetricGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    grb::RmatParams params;
    params.symmetrize = true;
    params.seed = seed;
    GrB_Matrix a = nullptr;
    ASSERT_EQ(grb::rmat_matrix(&a, 7, 6, params, nullptr),
              grb::Info::kSuccess);
    check_kcore(a);
    GrB_free(&a);
  }
}

TEST(KcoreTest, RingIsTwoCore) {
  GrB_Matrix ring = nullptr;
  ASSERT_EQ(grb::ring_matrix(&ring, 8, nullptr), grb::Info::kSuccess);
  GrB_Matrix sym = nullptr;
  ASSERT_EQ(grb_algo::make_undirected(&sym, ring), GrB_SUCCESS);
  GrB_Vector core = nullptr;
  ASSERT_EQ(grb_algo::kcore(&core, sym), GrB_SUCCESS);
  for (GrB_Index v = 0; v < 8; ++v) {
    int64_t c = 0;
    ASSERT_EQ(GrB_Vector_extractElement(&c, core, v), GrB_SUCCESS);
    EXPECT_EQ(c, 2) << "vertex " << v;
  }
  GrB_free(&core);
  GrB_free(&sym);
  GrB_free(&ring);
}

}  // namespace
