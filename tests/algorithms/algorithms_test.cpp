// Graph algorithms against independent naive references on small graphs
// and generated instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "tests/grb_test_util.hpp"
#include "util/generator.hpp"

namespace {

// Adjacency list extracted from a GrB_Matrix (structure only).
std::vector<std::vector<GrB_Index>> adjacency(GrB_Matrix a) {
  GrB_Index n, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&n, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  std::vector<GrB_Index> ri(nv), ci(nv);
  GrB_Index got = nv;
  EXPECT_EQ(GrB_Matrix_extractTuples(ri.data(), ci.data(),
                                     static_cast<double*>(nullptr), &got,
                                     a),
            GrB_SUCCESS);
  std::vector<std::vector<GrB_Index>> adj(n);
  for (GrB_Index k = 0; k < got; ++k) adj[ri[k]].push_back(ci[k]);
  return adj;
}

std::vector<int32_t> bfs_reference(
    const std::vector<std::vector<GrB_Index>>& adj, GrB_Index src) {
  std::vector<int32_t> level(adj.size(), -1);
  std::queue<GrB_Index> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    GrB_Index u = q.front();
    q.pop();
    for (GrB_Index v : adj[u]) {
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

TEST(BfsTest, LevelsMatchReferenceOnRmat) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 8, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  auto adj = adjacency(a);
  for (GrB_Index src : {GrB_Index{0}, GrB_Index{7}, GrB_Index{100}}) {
    GrB_Vector level = nullptr;
    ASSERT_EQ(grb_algo::bfs_level(&level, a, src), GrB_SUCCESS);
    auto want = bfs_reference(adj, src);
    for (GrB_Index v = 0; v < adj.size(); ++v) {
      int32_t got = -1;
      GrB_Info info = GrB_Vector_extractElement(&got, level, v);
      if (want[v] < 0) {
        EXPECT_EQ(info, GrB_NO_VALUE) << "vertex " << v;
      } else {
        ASSERT_EQ(info, GrB_SUCCESS) << "vertex " << v;
        EXPECT_EQ(got, want[v]) << "vertex " << v;
      }
    }
    GrB_free(&level);
  }
  GrB_free(&a);
}

TEST(BfsTest, ParentsFormValidTree) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 8, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  auto adj = adjacency(a);
  // edge set for O(1) membership tests
  std::set<std::pair<GrB_Index, GrB_Index>> edges;
  for (GrB_Index u = 0; u < adj.size(); ++u)
    for (GrB_Index v : adj[u]) edges.insert({u, v});
  const GrB_Index src = 0;
  GrB_Vector parent = nullptr;
  ASSERT_EQ(grb_algo::bfs_parent(&parent, a, src), GrB_SUCCESS);
  auto level = bfs_reference(adj, src);
  for (GrB_Index v = 0; v < adj.size(); ++v) {
    int64_t p = -1;
    GrB_Info info = GrB_Vector_extractElement(&p, parent, v);
    if (level[v] < 0) {
      EXPECT_EQ(info, GrB_NO_VALUE);
      continue;
    }
    ASSERT_EQ(info, GrB_SUCCESS);
    if (v == src) {
      EXPECT_EQ(p, int64_t(src));
    } else {
      // parent is reachable one level above v via a real edge.
      ASSERT_GE(p, 0);
      EXPECT_TRUE(edges.count({GrB_Index(p), v}))
          << "no edge " << p << "->" << v;
      EXPECT_EQ(level[GrB_Index(p)], level[v] - 1);
    }
  }
  GrB_free(&parent);
  GrB_free(&a);
}

TEST(SsspTest, MatchesDijkstraOnSmallGraph) {
  // Weighted digraph with known distances.
  const GrB_Index n = 6;
  GrB_Index ri[] = {0, 0, 1, 1, 2, 3, 4};
  GrB_Index ci[] = {1, 2, 2, 3, 4, 5, 5};
  double w[] = {7, 9, 10, 15, 11, 6, 9};
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_build(a, ri, ci, w, 7, GrB_NULL), GrB_SUCCESS);
  GrB_Vector dist = nullptr;
  ASSERT_EQ(grb_algo::sssp(&dist, a, 0), GrB_SUCCESS);
  const double want[] = {0, 7, 9, 22, 20, 28};
  for (GrB_Index v = 0; v < n; ++v) {
    double d = -1;
    ASSERT_EQ(GrB_Vector_extractElement(&d, dist, v), GrB_SUCCESS);
    EXPECT_EQ(d, want[v]) << "vertex " << v;
  }
  GrB_free(&dist);
  GrB_free(&a);
}

TEST(SsspTest, UnreachableStayAbsent) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::ring_matrix(&a, 5, nullptr), grb::Info::kSuccess);
  GrB_Matrix two = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&two, GrB_FP64, 10, 10), GrB_SUCCESS);
  // Copy the 5-ring into a 10-vertex graph: vertices 5..9 are isolated.
  GrB_Index rows[] = {0, 1, 2, 3, 4};
  ASSERT_EQ(GrB_assign(two, GrB_NULL, GrB_NULL, a, rows, 5, rows, 5,
                       GrB_NULL),
            GrB_SUCCESS);
  GrB_Vector dist = nullptr;
  ASSERT_EQ(grb_algo::sssp(&dist, two, 0), GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, dist), GrB_SUCCESS);
  EXPECT_EQ(nv, 5u);
  GrB_free(&dist);
  GrB_free(&a);
  GrB_free(&two);
}

TEST(PageRankTest, UniformOnRing) {
  GrB_Matrix ring = nullptr;
  ASSERT_EQ(grb::ring_matrix(&ring, 10, nullptr), grb::Info::kSuccess);
  GrB_Vector rank = nullptr;
  ASSERT_EQ(grb_algo::pagerank(&rank, ring, 0.85, 100, 1e-12),
            GrB_SUCCESS);
  // Symmetric structure: every vertex ends with rank 1/n.
  for (GrB_Index v = 0; v < 10; ++v) {
    double r = 0;
    ASSERT_EQ(GrB_Vector_extractElement(&r, rank, v), GrB_SUCCESS);
    EXPECT_NEAR(r, 0.1, 1e-9);
  }
  GrB_free(&rank);
  GrB_free(&ring);
}

TEST(PageRankTest, MassConservedOnRmat) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 9, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  GrB_Vector rank = nullptr;
  ASSERT_EQ(grb_algo::pagerank(&rank, a, 0.85, 60, 1e-10), GrB_SUCCESS);
  double sum = 0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, rank,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  GrB_free(&rank);
  GrB_free(&a);
}

uint64_t brute_force_triangles(
    const std::vector<std::vector<GrB_Index>>& adj) {
  std::set<std::pair<GrB_Index, GrB_Index>> edges;
  for (GrB_Index u = 0; u < adj.size(); ++u)
    for (GrB_Index v : adj[u]) edges.insert({u, v});
  uint64_t count = 0;
  for (GrB_Index u = 0; u < adj.size(); ++u)
    for (GrB_Index v : adj[u])
      if (v > u)
        for (GrB_Index x : adj[v])
          if (x > v && edges.count({u, x})) ++count;
  return count;
}

TEST(TriangleTest, MatchesBruteForce) {
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 7, 8, params, nullptr),
            grb::Info::kSuccess);
  uint64_t got = 0;
  ASSERT_EQ(grb_algo::triangle_count(&got, a), GrB_SUCCESS);
  EXPECT_EQ(got, brute_force_triangles(adjacency(a)));
  GrB_free(&a);
}

TEST(TriangleTest, CompleteGraphClosedForm) {
  // K_6 has C(6,3) = 20 triangles.
  const GrB_Index n = 6;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, n, n), GrB_SUCCESS);
  for (GrB_Index i = 0; i < n; ++i)
    for (GrB_Index j = 0; j < n; ++j)
      if (i != j)
        ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, i, j), GrB_SUCCESS);
  uint64_t got = 0;
  ASSERT_EQ(grb_algo::triangle_count(&got, a), GrB_SUCCESS);
  EXPECT_EQ(got, 20u);
  GrB_free(&a);
}

TEST(ComponentsTest, LabelsMatchReference) {
  // Two rings and an isolated vertex: 3 components.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 11, 11), GrB_SUCCESS);
  auto edge = [&](GrB_Index u, GrB_Index v) {
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, u, v), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, v, u), GrB_SUCCESS);
  };
  for (GrB_Index i = 0; i < 5; ++i) edge(i, (i + 1) % 5);   // 0..4
  for (GrB_Index i = 5; i < 10; ++i) edge(i, i == 9 ? 5 : i + 1);  // 5..9
  GrB_Vector comp = nullptr;
  ASSERT_EQ(grb_algo::connected_components(&comp, a), GrB_SUCCESS);
  int64_t label = -1;
  for (GrB_Index v = 0; v < 5; ++v) {
    int64_t l = -1;
    ASSERT_EQ(GrB_Vector_extractElement(&l, comp, v), GrB_SUCCESS);
    EXPECT_EQ(l, 0);  // min-label of the first ring
  }
  for (GrB_Index v = 5; v < 10; ++v) {
    ASSERT_EQ(GrB_Vector_extractElement(&label, comp, v), GrB_SUCCESS);
    EXPECT_EQ(label, 5);
  }
  ASSERT_EQ(GrB_Vector_extractElement(&label, comp, 10), GrB_SUCCESS);
  EXPECT_EQ(label, 10);
  GrB_free(&comp);
  GrB_free(&a);
}

TEST(ComponentsTest, RandomSymmetricAgainstUnionFind) {
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 8, 2, params, nullptr),
            grb::Info::kSuccess);
  auto adj = adjacency(a);
  // Union-find reference.
  std::vector<GrB_Index> uf(adj.size());
  for (GrB_Index i = 0; i < uf.size(); ++i) uf[i] = i;
  std::function<GrB_Index(GrB_Index)> find = [&](GrB_Index x) {
    while (uf[x] != x) x = uf[x] = uf[uf[x]];
    return x;
  };
  for (GrB_Index u = 0; u < adj.size(); ++u)
    for (GrB_Index v : adj[u]) uf[find(u)] = find(v);
  GrB_Vector comp = nullptr;
  ASSERT_EQ(grb_algo::connected_components(&comp, a), GrB_SUCCESS);
  // Same partition: labels agree iff union-find roots agree.
  std::vector<int64_t> labels(adj.size());
  for (GrB_Index v = 0; v < adj.size(); ++v)
    ASSERT_EQ(GrB_Vector_extractElement(&labels[v], comp, v), GrB_SUCCESS);
  for (GrB_Index u = 0; u < adj.size(); ++u)
    for (GrB_Index v : adj[u])
      EXPECT_EQ(labels[u], labels[v]);
  // Distinct components keep distinct labels.
  std::set<std::pair<GrB_Index, int64_t>> pairs;
  for (GrB_Index v = 0; v < adj.size(); ++v)
    pairs.insert({find(v), labels[v]});
  std::set<GrB_Index> roots;
  std::set<int64_t> label_set;
  for (auto& [r, l] : pairs) {
    roots.insert(r);
    label_set.insert(l);
  }
  EXPECT_EQ(pairs.size(), roots.size());
  EXPECT_EQ(pairs.size(), label_set.size());
  GrB_free(&comp);
  GrB_free(&a);
}

TEST(MisTest, IndependentAndMaximal) {
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 7, 4, params, nullptr),
            grb::Info::kSuccess);
  auto adj = adjacency(a);
  GrB_Vector iset = nullptr;
  ASSERT_EQ(grb_algo::mis(&iset, a, 2026), GrB_SUCCESS);
  std::vector<bool> in_set(adj.size(), false);
  for (GrB_Index v = 0; v < adj.size(); ++v) {
    bool b = false;
    if (GrB_Vector_extractElement(&b, iset, v) == GrB_SUCCESS && b)
      in_set[v] = true;
  }
  // Independence: no edge inside the set.
  for (GrB_Index u = 0; u < adj.size(); ++u)
    if (in_set[u])
      for (GrB_Index v : adj[u])
        EXPECT_FALSE(v != u && in_set[v]) << u << "-" << v;
  // Maximality: every vertex outside has a neighbour inside.
  for (GrB_Index u = 0; u < adj.size(); ++u) {
    if (in_set[u]) continue;
    bool has_in_neighbor = false;
    for (GrB_Index v : adj[u]) has_in_neighbor |= in_set[v];
    EXPECT_TRUE(has_in_neighbor) << "vertex " << u;
  }
  GrB_free(&iset);
  GrB_free(&a);
}

TEST(KtrussTest, TriangleOfTrianglesSurvives) {
  // K_4 is a 4-truss (every edge supports 2 triangles); adding a
  // dangling path contributes nothing.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 7, 7), GrB_SUCCESS);
  auto edge = [&](GrB_Index u, GrB_Index v) {
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, u, v), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, v, u), GrB_SUCCESS);
  };
  for (GrB_Index i = 0; i < 4; ++i)
    for (GrB_Index j = i + 1; j < 4; ++j) edge(i, j);
  edge(3, 4);
  edge(4, 5);
  edge(5, 6);
  GrB_Matrix truss = nullptr;
  ASSERT_EQ(grb_algo::ktruss(&truss, a, 4), GrB_SUCCESS);
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Matrix_nvals(&nv, truss), GrB_SUCCESS);
  EXPECT_EQ(nv, 12u);  // K4: 6 undirected edges, stored both ways
  // The path edges are gone.
  double out;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, truss, 4, 5), GrB_NO_VALUE);
  GrB_free(&truss);
  GrB_free(&a);
}

TEST(LccTest, TriangleHasCoefficientOne) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  auto edge = [&](GrB_Index u, GrB_Index v) {
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, u, v), GrB_SUCCESS);
    ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, v, u), GrB_SUCCESS);
  };
  edge(0, 1);
  edge(1, 2);
  edge(0, 2);
  edge(2, 3);  // pendant
  GrB_Vector lcc = nullptr;
  ASSERT_EQ(grb_algo::local_clustering_coefficient(&lcc, a), GrB_SUCCESS);
  double v = 0;
  ASSERT_EQ(GrB_Vector_extractElement(&v, lcc, 0), GrB_SUCCESS);
  EXPECT_EQ(v, 1.0);
  ASSERT_EQ(GrB_Vector_extractElement(&v, lcc, 2), GrB_SUCCESS);
  EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);  // deg 3, one closed wedge of three
  // Vertex 3 has degree 1: no entry.
  EXPECT_EQ(GrB_Vector_extractElement(&v, lcc, 3), GrB_NO_VALUE);
  GrB_free(&lcc);
  GrB_free(&a);
}

}  // namespace
