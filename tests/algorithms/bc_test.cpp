// Betweenness centrality against a brute-force Brandes reference.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "tests/grb_test_util.hpp"
#include "util/generator.hpp"

namespace {

std::vector<std::vector<GrB_Index>> adjacency(GrB_Matrix a) {
  GrB_Index n, nv;
  EXPECT_EQ(GrB_Matrix_nrows(&n, a), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&nv, a), GrB_SUCCESS);
  std::vector<GrB_Index> ri(nv), ci(nv);
  GrB_Index got = nv;
  EXPECT_EQ(GrB_Matrix_extractTuples(ri.data(), ci.data(),
                                     static_cast<double*>(nullptr), &got,
                                     a),
            GrB_SUCCESS);
  std::vector<std::vector<GrB_Index>> adj(n);
  for (GrB_Index k = 0; k < got; ++k) adj[ri[k]].push_back(ci[k]);
  return adj;
}

// Textbook Brandes for the same source set (unweighted, directed).
std::vector<double> brandes_reference(
    const std::vector<std::vector<GrB_Index>>& adj,
    const std::vector<GrB_Index>& sources) {
  const size_t n = adj.size();
  std::vector<double> bc(n, 0.0);
  for (GrB_Index s : sources) {
    std::vector<std::vector<GrB_Index>> pred(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<int64_t> dist(n, -1);
    std::vector<GrB_Index> order;
    sigma[s] = 1.0;
    dist[s] = 0;
    std::queue<GrB_Index> q;
    q.push(s);
    while (!q.empty()) {
      GrB_Index v = q.front();
      q.pop();
      order.push_back(v);
      for (GrB_Index w : adj[v]) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          pred[w].push_back(v);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      GrB_Index w = *it;
      for (GrB_Index v : pred[w]) {
        delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return bc;
}

void check_bc(GrB_Matrix a, const std::vector<GrB_Index>& sources) {
  auto adj = adjacency(a);
  auto want = brandes_reference(adj, sources);
  GrB_Vector bc = nullptr;
  ASSERT_EQ(grb_algo::betweenness_centrality(&bc, a, sources.data(),
                                             sources.size()),
            GrB_SUCCESS);
  for (GrB_Index v = 0; v < adj.size(); ++v) {
    double got = 0.0;
    GrB_Info info = GrB_Vector_extractElement(&got, bc, v);
    double g = info == GrB_SUCCESS ? got : 0.0;
    EXPECT_NEAR(g, want[v], 1e-9) << "vertex " << v;
  }
  GrB_free(&bc);
}

TEST(BcTest, PathGraph) {
  // 0 -> 1 -> 2 -> 3: vertex 1 and 2 lie on shortest paths.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 1, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 2, 3), GrB_SUCCESS);
  check_bc(a, {0, 1, 2, 3});
  GrB_free(&a);
}

TEST(BcTest, DiamondSplitsCredit) {
  // 0 -> {1,2} -> 3: two shortest paths; 1 and 2 get half credit each.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 1, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 2, 3), GrB_SUCCESS);
  check_bc(a, {0});
  GrB_free(&a);
}

TEST(BcTest, RandomGraphsAllSources) {
  for (uint64_t seed : {3u, 9u}) {
    grb::RmatParams params;
    params.seed = seed;
    GrB_Matrix a = nullptr;
    ASSERT_EQ(grb::rmat_matrix(&a, 6, 4, params, nullptr),
              grb::Info::kSuccess);
    GrB_Index n;
    ASSERT_EQ(GrB_Matrix_nrows(&n, a), GrB_SUCCESS);
    std::vector<GrB_Index> sources(n);
    for (GrB_Index s = 0; s < n; ++s) sources[s] = s;
    check_bc(a, sources);
    GrB_free(&a);
  }
}

TEST(BcTest, BatchSubsetOfSources) {
  grb::RmatParams params;
  params.symmetrize = true;
  GrB_Matrix a = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&a, 7, 4, params, nullptr),
            grb::Info::kSuccess);
  check_bc(a, {0, 5, 17, 40});
  GrB_free(&a);
}

TEST(BcTest, ArgumentValidation) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 4, 4), GrB_SUCCESS);
  GrB_Vector bc = nullptr;
  GrB_Index src[] = {9};
  EXPECT_EQ(grb_algo::betweenness_centrality(&bc, a, src, 1),
            GrB_INVALID_INDEX);
  EXPECT_EQ(grb_algo::betweenness_centrality(&bc, a, src, 0),
            GrB_INVALID_VALUE);
  EXPECT_EQ(grb_algo::betweenness_centrality(nullptr, a, src, 1),
            GrB_NULL_POINTER);
  GrB_free(&a);
}

}  // namespace
