// GrB_wait and the error model (paper §III, §V):
//  * completion resolves a deferred sequence;
//  * API errors are never deferred;
//  * execution errors of deferred methods are reported by later methods
//    on the same object ("poisoning") and cleared only by MATERIALIZE;
//  * GrB_error returns a per-object diagnostic string.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"

namespace {

TEST(WaitTest, CompleteResolvesSequence) {
  GrB_Matrix a = nullptr, b = nullptr, c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&b, GrB_FP64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 6, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 2.0, 0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(b, 3.0, 1, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_TRUE(c->has_pending_ops());
  ASSERT_EQ(GrB_wait(c, GrB_COMPLETE), GrB_SUCCESS);
  EXPECT_FALSE(c->has_pending_ops());
  double out = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&out, c, 0, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 6.0);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
}

TEST(WaitTest, SequenceChainsExecuteInProgramOrder) {
  // w = u + u; then w += u; then wait: result reflects both steps.
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 5.0, 2), GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, u,
                         GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_PLUS_FP64, GrB_PLUS_FP64, u, u,
                         GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(w, 1.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(w, GrB_COMPLETE), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 2), GrB_SUCCESS);
  EXPECT_EQ(out, 20.0);  // (5+5) accum (5+5)
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 1.0);
  GrB_free(&u);
  GrB_free(&w);
}

TEST(WaitTest, InputSnapshotsAreStable) {
  // A deferred op must see its inputs as of call time, even if the input
  // is modified afterwards (COW snapshot semantics).
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 7.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, u,
                      GrB_NULL),
            GrB_SUCCESS);  // deferred: w = u (u has 7 at index 1)
  ASSERT_EQ(GrB_Vector_setElement(u, 100.0, 1), GrB_SUCCESS);  // after
  ASSERT_EQ(GrB_wait(w, GrB_COMPLETE), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 7.0);  // snapshot value, not 100
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ErrorModelTest, ApiErrorsAreImmediateAndNonDestructive) {
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(w, 9.0, 0), GrB_SUCCESS);
  // Dimension mismatch is an API error: immediate, and w is untouched.
  EXPECT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, u, u,
                         GrB_NULL),
            GrB_DIMENSION_MISMATCH);
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 0), GrB_SUCCESS);
  EXPECT_EQ(out, 9.0);
  // And the object is NOT poisoned: later valid calls succeed.
  EXPECT_EQ(GrB_Vector_setElement(w, 1.0, 1), GrB_SUCCESS);
  GrB_free(&u);
  GrB_free(&w);
}

TEST(ErrorModelTest, DeferredExecutionErrorPoisonsObject) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {1, 1};
  double vals[] = {1, 2};
  // Duplicates with NULL dup: execution error, deferred in nonblocking
  // mode (build returns SUCCESS now, fails later).
  GrB_Info info = GrB_Vector_build(v, idx, vals, 2, GrB_NULL);
  if (info == GrB_SUCCESS) {
    // §V: "any method invocation ... can report an error from any of the
    // previous methods in the sequence".
    GrB_Index nv = 0;
    info = GrB_Vector_nvals(&nv, v);
  }
  EXPECT_EQ(info, GrB_INVALID_VALUE);
  // The error sticks for further methods...
  GrB_Index nv = 0;
  EXPECT_EQ(GrB_Vector_nvals(&nv, v), GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_INVALID_VALUE);
  // ...and GrB_error describes it.
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, v), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(std::string(msg).find("GrB_INVALID_VALUE"), std::string::npos);
  // MATERIALIZE reports the error one final time and clears it (§V: no
  // more errors can be generated from those methods).
  EXPECT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_setElement(v, 1.0, 0), GrB_SUCCESS);
  GrB_free(&v);
}

TEST(ErrorModelTest, PoisonedInputReportsInOtherOps) {
  GrB_Vector bad = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&bad, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {0, 0};
  double vals[] = {1, 2};
  ASSERT_EQ(GrB_Vector_build(bad, idx, vals, 2, GrB_NULL), GrB_SUCCESS);
  // Using the poisoned object as an INPUT surfaces the deferred error.
  GrB_Info info =
      GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, bad, bad, GrB_NULL);
  if (info == GrB_SUCCESS) info = GrB_wait(w, GrB_MATERIALIZE);
  EXPECT_EQ(info, GrB_INVALID_VALUE);
  GrB_free(&bad);
  GrB_free(&w);
}

TEST(ErrorModelTest, BlockingModeReportsImmediately) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4, testutil::blocking_context()),
            GrB_SUCCESS);
  GrB_Index idx[] = {2, 2};
  double vals[] = {1, 2};
  EXPECT_EQ(GrB_Vector_build(v, idx, vals, 2, GrB_NULL), GrB_INVALID_VALUE);
  GrB_free(&v);
}

TEST(ErrorModelTest, MaterializeOnCleanObjectSucceeds) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Matrix_setElement(a, 1.0, 0, 0), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_COMPLETE), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(a, GrB_MATERIALIZE), GrB_SUCCESS);  // idempotent
  GrB_free(&a);
}

TEST(ErrorModelTest, ErrorStringIsEmptyWithoutError) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, GrB_FP64, 3, 3), GrB_SUCCESS);
  const char* msg = nullptr;
  ASSERT_EQ(GrB_error(&msg, a), GrB_SUCCESS);
  ASSERT_NE(msg, nullptr);
  EXPECT_STREQ(msg, "");  // "always legal to return an empty string" (§V)
  GrB_free(&a);
}

TEST(WaitTest, WaitOnScalarSequence) {
  // Scalars participate in the deferred-sequence machinery too (§VI).
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, GrB_FP64, 6), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 2.5, 3), GrB_SUCCESS);
  GrB_Scalar s = nullptr;
  ASSERT_EQ(GrB_Scalar_new(&s, GrB_FP64), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, u, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(s, GrB_COMPLETE), GrB_SUCCESS);
  double out = 0;
  EXPECT_EQ(GrB_Scalar_extractElement(&out, s), GrB_SUCCESS);
  EXPECT_EQ(out, 2.5);
  GrB_free(&u);
  GrB_free(&s);
}

}  // namespace
