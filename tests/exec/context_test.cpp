// GrB_Context (paper §IV): hierarchy, resource resolution, object
// homing, context agreement rules, and lifecycle.
#include <gtest/gtest.h>

#include "exec/context.hpp"
#include "tests/grb_test_util.hpp"

namespace {

TEST(ContextTest, TopLevelExists) {
  ASSERT_NE(grb::top_context(), nullptr);
  EXPECT_EQ(grb::top_context()->parent(), nullptr);
  EXPECT_EQ(grb::top_context()->depth(), 0);
  EXPECT_EQ(grb::top_context()->mode(), grb::Mode::kNonblocking);
}

TEST(ContextTest, NestedCreation) {
  GrB_ContextConfig cfg;
  cfg.nthreads = 3;
  GrB_Context ctx = nullptr;
  ASSERT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  EXPECT_EQ(ctx->parent(), grb::top_context());
  EXPECT_EQ(ctx->depth(), 1);
  EXPECT_EQ(ctx->effective_nthreads(), 3);
  // A grandchild inheriting threads (nthreads == 0).
  GrB_Context inner = nullptr;
  ASSERT_EQ(GrB_Context_new(&inner, GrB_BLOCKING, ctx, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(inner->parent(), ctx);
  EXPECT_EQ(inner->depth(), 2);
  EXPECT_EQ(inner->effective_nthreads(), 3);  // inherited from parent
  EXPECT_EQ(inner->mode(), grb::Mode::kBlocking);
  EXPECT_EQ(GrB_free(&inner), GrB_SUCCESS);
  EXPECT_EQ(GrB_free(&ctx), GrB_SUCCESS);
}

TEST(ContextTest, CannotFreeParentWithLiveChildren) {
  GrB_Context parent = nullptr, child = nullptr;
  ASSERT_EQ(GrB_Context_new(&parent, GrB_NONBLOCKING, GrB_NULL, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Context_new(&child, GrB_NONBLOCKING, parent, GrB_NULL),
            GrB_SUCCESS);
  GrB_Context p = parent;
  EXPECT_EQ(GrB_free(&p), GrB_INVALID_VALUE);  // documented rule
  EXPECT_EQ(GrB_free(&child), GrB_SUCCESS);
  EXPECT_EQ(GrB_free(&parent), GrB_SUCCESS);
}

TEST(ContextTest, DoubleFreeIsUninitialized) {
  GrB_Context ctx = nullptr;
  ASSERT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, GrB_NULL),
            GrB_SUCCESS);
  GrB_Context alias = ctx;
  EXPECT_EQ(GrB_free(&ctx), GrB_SUCCESS);
  EXPECT_EQ(GrB_free(&alias), GrB_UNINITIALIZED_OBJECT);
}

TEST(ContextTest, ObjectsMustShareContext) {
  // Paper §IV: "We require that all the GraphBLAS matrices and Vectors in
  // a GraphBLAS method share a context."
  GrB_Context ctx = nullptr;
  ASSERT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, GrB_NULL),
            GrB_SUCCESS);
  GrB_Vector in_top = nullptr, in_ctx = nullptr, out = nullptr;
  ASSERT_EQ(GrB_Vector_new(&in_top, GrB_FP64, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&in_ctx, GrB_FP64, 4, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&out, GrB_FP64, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(out, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, in_top,
                         in_ctx, GrB_NULL),
            GrB_INVALID_VALUE);
  // Re-homing fixes it.
  ASSERT_EQ(GrB_Context_switch(in_ctx, GrB_NULL), GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(out, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, in_top,
                         in_ctx, GrB_NULL),
            GrB_SUCCESS);
  GrB_free(&in_top);
  GrB_free(&in_ctx);
  GrB_free(&out);
  GrB_free(&ctx);
}

TEST(ContextTest, BlockingContextExecutesEagerly) {
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8, testutil::blocking_context()),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 2.0, 1), GrB_SUCCESS);
  // In blocking mode the sequence is always resolved: no pending work.
  EXPECT_FALSE(v->has_pending_ops());
  GrB_free(&v);
}

TEST(ContextTest, NonblockingContextDefers) {
  GrB_Vector v = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 8), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(v, 2.0, 1), GrB_SUCCESS);
  ASSERT_EQ(GrB_eWiseAdd(w, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, v, v,
                         GrB_NULL),
            GrB_SUCCESS);
  // The eWiseAdd is sitting in w's sequence until completion forces it.
  EXPECT_TRUE(w->has_pending_ops());
  ASSERT_EQ(GrB_wait(w, GrB_COMPLETE), GrB_SUCCESS);
  EXPECT_FALSE(w->has_pending_ops());
  double out = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&out, w, 1), GrB_SUCCESS);
  EXPECT_EQ(out, 4.0);
  GrB_free(&v);
  GrB_free(&w);
}

TEST(ContextTest, ParallelForPartitionIsExact) {
  GrB_ContextConfig cfg;
  cfg.nthreads = 4;
  cfg.chunk = 8;
  GrB_Context ctx = nullptr;
  ASSERT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  std::vector<std::atomic<int>> hits(1000);
  ctx->parallel_for(0, 1000, [&](grb::Index lo, grb::Index hi) {
    for (grb::Index i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  GrB_free(&ctx);
}

TEST(ContextTest, InvalidArguments) {
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(nullptr, GrB_NONBLOCKING, GrB_NULL, GrB_NULL),
            GrB_NULL_POINTER);
  EXPECT_EQ(GrB_Context_new(&ctx, static_cast<GrB_Mode>(7), GrB_NULL,
                            GrB_NULL),
            GrB_INVALID_VALUE);
  GrB_Context null_ctx = nullptr;
  EXPECT_EQ(GrB_free(&null_ctx), GrB_NULL_POINTER);
}

}  // namespace
