// ThreadPool: partition correctness, reuse, degenerate cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/thread_pool.hpp"

namespace grb {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(0, 10000, 16, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, NonzeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(100, 200, 8, [&](Index lo, Index hi) {
    long local = 0;
    for (Index i = lo; i < hi; ++i) local += static_cast<long>(i);
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  long want = 0;
  for (long i = 100; i < 200; ++i) want += i;
  EXPECT_EQ(sum.load(), want);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.nthreads(), 1);
  int calls = 0;
  pool.parallel_for(0, 100, 1, [&](Index lo, Index hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](Index, Index) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SmallRangeStaysInline) {
  ThreadPool pool(4);
  // n <= grain runs on the caller (no fan-out).
  int calls = 0;
  pool.parallel_for(0, 10, 100, [&](Index, Index) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 1000, 8, [&](Index lo, Index hi) {
      count.fetch_add(static_cast<int>(hi - lo),
                      std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 1000);
  }
}

}  // namespace
}  // namespace grb
