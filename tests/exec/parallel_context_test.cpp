// The row-parallel kernels (mxm two-phase, eWise, select, apply,
// write-back, mask pass) must produce identical results regardless of
// the context's thread count.  These tests run the same workloads in a
// 1-thread and a 4-thread context and compare.
#include <gtest/gtest.h>

#include "tests/grb_test_util.hpp"
#include "algorithms/algorithms.hpp"
#include "util/generator.hpp"

namespace {

GrB_Context threaded_context(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;  // tiny chunk so even small tests fan out
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

// Runs a representative op pipeline in `ctx`, returns the final matrix.
ref::Mat run_pipeline(const ref::Mat& ra, const ref::Mat& rb,
                      const ref::Mat& rm, GrB_Context ctx) {
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Matrix m = testutil::make_matrix(rm, ctx);
  GrB_Matrix x = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&x, GrB_FP64, ra.nrows, ra.ncols, ctx),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(x, m, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, b,
                    GrB_DESC_S),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(x, GrB_NULL, GrB_PLUS_FP64, GrB_MIN_FP64, x, a,
                         GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_select(x, GrB_NULL, GrB_NULL, GrB_OFFDIAG, x, int64_t{0},
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_AINV_FP64, x, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_transpose(x, m, GrB_PLUS_FP64, x, GrB_DESC_S),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(x, GrB_MATERIALIZE), GrB_SUCCESS);
  ref::Mat out = testutil::to_ref(x);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&m);
  GrB_free(&x);
  return out;
}

TEST(ParallelContextTest, PipelineMatchesSingleThread) {
  GrB_Context one = threaded_context(1);
  GrB_Context four = threaded_context(4);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ref::Mat ra = testutil::random_mat(40, 40, 0.2, seed * 11 + 1);
    ref::Mat rb = testutil::random_mat(40, 40, 0.2, seed * 11 + 2);
    ref::Mat rm = testutil::random_mat(40, 40, 0.3, seed * 11 + 3);
    ref::Mat serial = run_pipeline(ra, rb, rm, one);
    ref::Mat parallel = run_pipeline(ra, rb, rm, four);
    EXPECT_TRUE(testutil::mats_equal(serial, parallel)) << "seed " << seed;
  }
  GrB_free(&one);
  GrB_free(&four);
}

TEST(ParallelContextTest, LargeMxmMatchesAcrossThreadCounts) {
  GrB_Matrix g = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&g, 9, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  ref::Mat rg = testutil::to_ref(g);
  GrB_free(&g);

  ref::Mat want;
  bool first = true;
  for (int nthreads : {1, 2, 4, 8}) {
    GrB_Context ctx = threaded_context(nthreads);
    GrB_Matrix a = testutil::make_matrix(rg, ctx);
    GrB_Matrix c = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, rg.nrows, rg.ncols, ctx),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, a, GrB_NULL),
              GrB_SUCCESS);
    ref::Mat got = testutil::to_ref(c);
    if (first) {
      want = got;
      first = false;
    } else {
      EXPECT_TRUE(testutil::mats_equal(want, got))
          << "nthreads " << nthreads;
    }
    GrB_free(&a);
    GrB_free(&c);
    GrB_free(&ctx);
  }
}

TEST(ParallelContextTest, ReduceAndKroneckerUnderThreads) {
  GrB_Context ctx = threaded_context(4);
  ref::Mat ra = testutil::random_mat(30, 30, 0.3, 77);
  ref::Mat rb = testutil::random_mat(4, 4, 0.7, 78);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  // Parallel full reduce.
  double sum = 0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(sum, ref::reduce_all(ra, testutil::fn_plus).value_or(0.0));
  // Parallel row reduce.
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 30, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(w, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::reduce_rows(ra, testutil::fn_plus));
  // Parallel kronecker.
  GrB_Matrix k = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&k, GrB_FP64, 120, 120, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(k, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(k, ref::kronecker(ra, rb, testutil::fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&w);
  GrB_free(&k);
  GrB_free(&ctx);
}

TEST(ParallelContextTest, AlgorithmsRunInThreadedContext) {
  // End-to-end: BFS on a graph homed in a 4-thread context; the outputs
  // the algorithm allocates live in the top-level context, so re-home
  // the graph instead.
  GrB_Matrix g = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&g, 8, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  // Compute the expected level structure in the default context first.
  GrB_Vector w1 = nullptr;
  GrB_Matrix gc = nullptr;
  ASSERT_EQ(GrB_Matrix_dup(&gc, g), GrB_SUCCESS);
  GrB_Context ctx = threaded_context(4);
  // Run the same vxm expansion manually inside the threaded context.
  ASSERT_EQ(GrB_Context_switch(gc, ctx), GrB_SUCCESS);
  GrB_Vector q = nullptr, v = nullptr;
  GrB_Index n;
  ASSERT_EQ(GrB_Matrix_nrows(&n, gc), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&q, GrB_BOOL, n, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT32, n, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(q, true, 0), GrB_SUCCESS);
  for (int32_t depth = 0;; ++depth) {
    GrB_Index nq = 0;
    ASSERT_EQ(GrB_Vector_nvals(&nq, q), GrB_SUCCESS);
    if (nq == 0) break;
    ASSERT_EQ(GrB_assign(v, q, GrB_NULL, depth, GrB_ALL, n, GrB_DESC_S),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_vxm(q, v, GrB_NULL, GrB_LOR_LAND_SEMIRING_BOOL, q, gc,
                      GrB_DESC_RSC),
              GrB_SUCCESS);
  }
  // Reference BFS in the default context via the algorithm library.
  ASSERT_EQ(grb_algo::bfs_level(&w1, g, 0), GrB_SUCCESS);
  ref::Vec want = testutil::to_ref(w1);
  ref::Vec got = testutil::to_ref(v);
  EXPECT_TRUE(testutil::vecs_equal(want, got));
  GrB_free(&g);
  GrB_free(&gc);
  GrB_free(&q);
  GrB_free(&v);
  GrB_free(&w1);
  GrB_free(&ctx);
}

}  // namespace
