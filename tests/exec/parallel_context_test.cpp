// The row-parallel kernels (mxm two-phase, eWise, select, apply,
// write-back, mask pass) must produce identical results regardless of
// the context's thread count.  These tests run the same workloads in a
// 1-thread and a 4-thread context and compare.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "core/global.hpp"
#include "exec/thread_pool.hpp"
#include "tests/grb_test_util.hpp"
#include "algorithms/algorithms.hpp"
#include "util/generator.hpp"

namespace {

// Forces every gated kernel onto its parallel path for the test's scope
// (these instances are far below the default parallel threshold).
struct ThresholdGuard {
  size_t saved;
  ThresholdGuard() : saved(grb::parallel_threshold()) {
    grb::set_parallel_threshold(1);
  }
  ~ThresholdGuard() { grb::set_parallel_threshold(saved); }
};

// Target of the pool's thread-observer hook: records which OS threads
// execute parallel_for chunks.
std::mutex g_ids_mu;
std::set<std::thread::id>* g_ids = nullptr;
void record_thread(std::thread::id id) {
  std::lock_guard<std::mutex> lock(g_ids_mu);
  if (g_ids != nullptr) g_ids->insert(id);
}

GrB_Context threaded_context(int nthreads) {
  GrB_ContextConfig cfg;
  cfg.nthreads = nthreads;
  cfg.chunk = 4;  // tiny chunk so even small tests fan out
  GrB_Context ctx = nullptr;
  EXPECT_EQ(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg),
            GrB_SUCCESS);
  return ctx;
}

// Runs a representative op pipeline in `ctx`, returns the final matrix.
ref::Mat run_pipeline(const ref::Mat& ra, const ref::Mat& rb,
                      const ref::Mat& rm, GrB_Context ctx) {
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  GrB_Matrix m = testutil::make_matrix(rm, ctx);
  GrB_Matrix x = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&x, GrB_FP64, ra.nrows, ra.ncols, ctx),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_mxm(x, m, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, b,
                    GrB_DESC_S),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_eWiseAdd(x, GrB_NULL, GrB_PLUS_FP64, GrB_MIN_FP64, x, a,
                         GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_select(x, GrB_NULL, GrB_NULL, GrB_OFFDIAG, x, int64_t{0},
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_AINV_FP64, x, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_transpose(x, m, GrB_PLUS_FP64, x, GrB_DESC_S),
            GrB_SUCCESS);
  EXPECT_EQ(GrB_wait(x, GrB_MATERIALIZE), GrB_SUCCESS);
  ref::Mat out = testutil::to_ref(x);
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&m);
  GrB_free(&x);
  return out;
}

TEST(ParallelContextTest, PipelineMatchesSingleThread) {
  ThresholdGuard guard;
  GrB_Context one = threaded_context(1);
  GrB_Context four = threaded_context(4);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ref::Mat ra = testutil::random_mat(40, 40, 0.2, seed * 11 + 1);
    ref::Mat rb = testutil::random_mat(40, 40, 0.2, seed * 11 + 2);
    ref::Mat rm = testutil::random_mat(40, 40, 0.3, seed * 11 + 3);
    ref::Mat serial = run_pipeline(ra, rb, rm, one);
    ref::Mat parallel = run_pipeline(ra, rb, rm, four);
    EXPECT_TRUE(testutil::mats_equal(serial, parallel)) << "seed " << seed;
  }
  GrB_free(&one);
  GrB_free(&four);
}

TEST(ParallelContextTest, LargeMxmMatchesAcrossThreadCounts) {
  ThresholdGuard guard;
  GrB_Matrix g = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&g, 9, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  ref::Mat rg = testutil::to_ref(g);
  GrB_free(&g);

  ref::Mat want;
  bool first = true;
  for (int nthreads : {1, 2, 4, 8}) {
    GrB_Context ctx = threaded_context(nthreads);
    GrB_Matrix a = testutil::make_matrix(rg, ctx);
    GrB_Matrix c = nullptr;
    ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, rg.nrows, rg.ncols, ctx),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, a, GrB_NULL),
              GrB_SUCCESS);
    ref::Mat got = testutil::to_ref(c);
    if (first) {
      want = got;
      first = false;
    } else {
      EXPECT_TRUE(testutil::mats_equal(want, got))
          << "nthreads " << nthreads;
    }
    GrB_free(&a);
    GrB_free(&c);
    GrB_free(&ctx);
  }
}

TEST(ParallelContextTest, ReduceAndKroneckerUnderThreads) {
  ThresholdGuard guard;
  GrB_Context ctx = threaded_context(4);
  ref::Mat ra = testutil::random_mat(30, 30, 0.3, 77);
  ref::Mat rb = testutil::random_mat(4, 4, 0.7, 78);
  GrB_Matrix a = testutil::make_matrix(ra, ctx);
  GrB_Matrix b = testutil::make_matrix(rb, ctx);
  // Parallel full reduce.
  double sum = 0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(sum, ref::reduce_all(ra, testutil::fn_plus).value_or(0.0));
  // Parallel row reduce.
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, GrB_FP64, 30, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_reduce(w, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                       GrB_NULL),
            GrB_SUCCESS);
  EXPECT_VECTOR_EQ(w, ref::reduce_rows(ra, testutil::fn_plus));
  // Parallel kronecker.
  GrB_Matrix k = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&k, GrB_FP64, 120, 120, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_kronecker(k, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, a, b,
                          GrB_NULL),
            GrB_SUCCESS);
  EXPECT_MATRIX_EQ(k, ref::kronecker(ra, rb, testutil::fn_times));
  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&w);
  GrB_free(&k);
  GrB_free(&ctx);
}

TEST(ParallelContextTest, AlgorithmsRunInThreadedContext) {
  // End-to-end: BFS on a graph homed in a 4-thread context; the outputs
  // the algorithm allocates live in the top-level context, so re-home
  // the graph instead.
  GrB_Matrix g = nullptr;
  ASSERT_EQ(grb::rmat_matrix(&g, 8, 8, grb::RmatParams{}, nullptr),
            grb::Info::kSuccess);
  // Compute the expected level structure in the default context first.
  GrB_Vector w1 = nullptr;
  GrB_Matrix gc = nullptr;
  ASSERT_EQ(GrB_Matrix_dup(&gc, g), GrB_SUCCESS);
  GrB_Context ctx = threaded_context(4);
  // Run the same vxm expansion manually inside the threaded context.
  ASSERT_EQ(GrB_Context_switch(gc, ctx), GrB_SUCCESS);
  GrB_Vector q = nullptr, v = nullptr;
  GrB_Index n;
  ASSERT_EQ(GrB_Matrix_nrows(&n, gc), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&q, GrB_BOOL, n, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, GrB_INT32, n, ctx), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(q, true, 0), GrB_SUCCESS);
  for (int32_t depth = 0;; ++depth) {
    GrB_Index nq = 0;
    ASSERT_EQ(GrB_Vector_nvals(&nq, q), GrB_SUCCESS);
    if (nq == 0) break;
    ASSERT_EQ(GrB_assign(v, q, GrB_NULL, depth, GrB_ALL, n, GrB_DESC_S),
              GrB_SUCCESS);
    ASSERT_EQ(GrB_vxm(q, v, GrB_NULL, GrB_LOR_LAND_SEMIRING_BOOL, q, gc,
                      GrB_DESC_RSC),
              GrB_SUCCESS);
  }
  // Reference BFS in the default context via the algorithm library.
  ASSERT_EQ(grb_algo::bfs_level(&w1, g, 0), GrB_SUCCESS);
  ref::Vec want = testutil::to_ref(w1);
  ref::Vec got = testutil::to_ref(v);
  EXPECT_TRUE(testutil::vecs_equal(want, got));
  GrB_free(&g);
  GrB_free(&gc);
  GrB_free(&q);
  GrB_free(&v);
  GrB_free(&w1);
  GrB_free(&ctx);
}

TEST(ParallelContextTest, NestedContextBudgetIsHierarchical) {
  GrB_Context parent = threaded_context(4);
  // A child asking for less gets what it asked for...
  GrB_ContextConfig modest;
  modest.nthreads = 2;
  modest.chunk = 4;
  GrB_Context child = nullptr;
  ASSERT_EQ(GrB_Context_new(&child, GrB_NONBLOCKING, parent, &modest),
            GrB_SUCCESS);
  EXPECT_EQ(child->effective_nthreads(), 2);
  // ...one asking for more is capped by the parent's budget...
  GrB_ContextConfig greedy;
  greedy.nthreads = 8;
  greedy.chunk = 4;
  GrB_Context wide = nullptr;
  ASSERT_EQ(GrB_Context_new(&wide, GrB_NONBLOCKING, parent, &greedy),
            GrB_SUCCESS);
  EXPECT_EQ(wide->effective_nthreads(), 4);
  // ...and a grandchild is capped by every ancestor on the chain.
  GrB_Context grand = nullptr;
  ASSERT_EQ(GrB_Context_new(&grand, GrB_NONBLOCKING, child, &greedy),
            GrB_SUCCESS);
  EXPECT_EQ(grand->effective_nthreads(), 2);
  GrB_free(&grand);
  GrB_free(&wide);
  GrB_free(&child);
  GrB_free(&parent);
}

TEST(ParallelContextTest, NestedContextCapsWorkerThreads) {
  // Operations homed in a 2-thread child of a 4-thread parent must never
  // touch more than 2 distinct OS threads, however many the parent owns.
  ThresholdGuard guard;
  GrB_Context parent = threaded_context(4);
  GrB_ContextConfig ccfg;
  ccfg.nthreads = 2;
  ccfg.chunk = 4;
  GrB_Context child = nullptr;
  ASSERT_EQ(GrB_Context_new(&child, GrB_NONBLOCKING, parent, &ccfg),
            GrB_SUCCESS);

  ref::Mat ra = testutil::random_mat(40, 40, 0.3, 901);
  ref::Mat rb = testutil::random_mat(40, 40, 0.3, 902);
  GrB_Matrix a = testutil::make_matrix(ra, child);
  GrB_Matrix b = testutil::make_matrix(rb, child);
  GrB_Matrix c = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&c, GrB_FP64, 40, 40, child), GrB_SUCCESS);

  std::set<std::thread::id> ids;
  {
    std::lock_guard<std::mutex> lock(g_ids_mu);
    g_ids = &ids;
  }
  grb::set_thread_observer(&record_thread);
  ASSERT_EQ(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, b, GrB_NULL),
            GrB_SUCCESS);
  ASSERT_EQ(GrB_wait(c, GrB_MATERIALIZE), GrB_SUCCESS);
  grb::set_thread_observer(nullptr);
  {
    std::lock_guard<std::mutex> lock(g_ids_mu);
    g_ids = nullptr;
  }

  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 2u) << "child context leaked past its budget";

  GrB_free(&a);
  GrB_free(&b);
  GrB_free(&c);
  GrB_free(&child);
  GrB_free(&parent);
}

TEST(ParallelContextTest, PoolWorkersParticipate) {
  // Rendezvous: the first thread into the loop waits (bounded) for a
  // second distinct thread, proving chunks really fan out to the pool
  // rather than all running on the caller.
  GrB_Context ctx = threaded_context(4);
  std::mutex mu;
  std::condition_variable cv;
  std::set<std::thread::id> seen;
  ctx->parallel_for(0, 64, [&](grb::Index, grb::Index) {
    std::unique_lock<std::mutex> lk(mu);
    seen.insert(std::this_thread::get_id());
    if (seen.size() >= 2) {
      cv.notify_all();
    } else {
      cv.wait_for(lk, std::chrono::seconds(10),
                  [&] { return seen.size() >= 2; });
    }
  });
  EXPECT_GE(seen.size(), 2u);
  GrB_free(&ctx);
}

}  // namespace
