// Multithreading (paper §III): thread safety of independent method
// calls, and the Figure 1 sharing pattern (GrB_wait + acquire/release).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tests/grb_test_util.hpp"

namespace {

TEST(ThreadingTest, IndependentCallsFromManyThreads) {
  // "independent method calls from multiple threads in a race-free
  // program return the same results as ... sequential execution".
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20;
  std::vector<std::thread> threads;
  std::vector<double> results(kThreads, 0.0);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results, &failures] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        ref::Mat ra = testutil::random_mat(16, 16, 0.3, 100 + t);
        ref::Mat rb = testutil::random_mat(16, 16, 0.3, 200 + t);
        GrB_Matrix a = testutil::make_matrix(ra);
        GrB_Matrix b = testutil::make_matrix(rb);
        GrB_Matrix c = nullptr;
        if (GrB_Matrix_new(&c, GrB_FP64, 16, 16) != GrB_SUCCESS ||
            GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    b, GrB_NULL) != GrB_SUCCESS) {
          failures.fetch_add(1);
          return;
        }
        double sum = 0;
        if (GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, c, GrB_NULL) !=
            GrB_SUCCESS) {
          failures.fetch_add(1);
          return;
        }
        results[t] = sum;
        GrB_free(&a);
        GrB_free(&b);
        GrB_free(&c);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  // Same seeds per thread on a single thread must reproduce the result.
  for (int t = 0; t < kThreads; ++t) {
    ref::Mat ra = testutil::random_mat(16, 16, 0.3, 100 + t);
    ref::Mat rb = testutil::random_mat(16, 16, 0.3, 200 + t);
    ref::Mat rc =
        ref::mxm(ra, rb, testutil::fn_plus, testutil::fn_times);
    double want = ref::reduce_all(rc, testutil::fn_plus).value_or(0.0);
    EXPECT_EQ(results[t], want) << "thread " << t;
  }
}

TEST(ThreadingTest, Figure1SharingPattern) {
  // The paper's Figure 1: thread 0 produces Esh, completes it, releases a
  // flag; thread 1 acquires the flag and consumes Esh.
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> flag{0};
    GrB_Matrix esh = nullptr;
    GrB_Matrix hres = nullptr;
    double expected_sum = 0;

    std::thread t0([&] {
      ref::Mat rd = testutil::random_mat(24, 24, 0.3, 300 + round);
      ref::Mat rc = testutil::random_mat(24, 24, 0.3, 400 + round);
      GrB_Matrix d = testutil::make_matrix(rd);
      GrB_Matrix c = testutil::make_matrix(rc);
      ASSERT_EQ(GrB_Matrix_new(&esh, GrB_FP64, 24, 24), GrB_SUCCESS);
      ASSERT_EQ(GrB_mxm(esh, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, d, c, GrB_NULL),
                GrB_SUCCESS);
      ASSERT_EQ(GrB_wait(esh, GrB_COMPLETE), GrB_SUCCESS);
      ref::Mat resh =
          ref::mxm(rd, rc, testutil::fn_plus, testutil::fn_times);
      expected_sum = ref::reduce_all(resh, testutil::fn_plus).value_or(0.0);
      flag.store(1, std::memory_order_release);
      GrB_free(&d);
      GrB_free(&c);
    });
    std::thread t1([&] {
      while (flag.load(std::memory_order_acquire) == 0) {
      }
      // Esh is complete and visible; consume it.
      ASSERT_EQ(GrB_Matrix_new(&hres, GrB_FP64, 24, 24), GrB_SUCCESS);
      ASSERT_EQ(GrB_apply(hres, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, esh,
                          GrB_NULL),
                GrB_SUCCESS);
      ASSERT_EQ(GrB_wait(hres, GrB_COMPLETE), GrB_SUCCESS);
    });
    t0.join();
    t1.join();
    double got = 0;
    ASSERT_EQ(GrB_reduce(&got, GrB_NULL, GrB_PLUS_MONOID_FP64, hres,
                         GrB_NULL),
              GrB_SUCCESS);
    EXPECT_EQ(got, expected_sum);
    GrB_free(&esh);
    GrB_free(&hres);
  }
}

TEST(ThreadingTest, SequenceSplitAcrossThreads) {
  // §V: one thread runs part of a sequence and completes it; a second
  // thread (after synchronization) continues the sequence and ends with
  // a materializing wait.
  std::atomic<int> flag{0};
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 10), GrB_SUCCESS);
  std::thread t0([&] {
    for (GrB_Index i = 0; i < 5; ++i)
      ASSERT_EQ(GrB_Vector_setElement(v, 1.0, i), GrB_SUCCESS);
    ASSERT_EQ(GrB_wait(v, GrB_COMPLETE), GrB_SUCCESS);
    flag.store(1, std::memory_order_release);
  });
  std::thread t1([&] {
    while (flag.load(std::memory_order_acquire) == 0) {
    }
    for (GrB_Index i = 5; i < 10; ++i)
      ASSERT_EQ(GrB_Vector_setElement(v, 2.0, i), GrB_SUCCESS);
    ASSERT_EQ(GrB_wait(v, GrB_MATERIALIZE), GrB_SUCCESS);
  });
  t0.join();
  t1.join();
  GrB_Index nv = 0;
  ASSERT_EQ(GrB_Vector_nvals(&nv, v), GrB_SUCCESS);
  EXPECT_EQ(nv, 10u);
  double sum = 0;
  ASSERT_EQ(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, v, GrB_NULL),
            GrB_SUCCESS);
  EXPECT_EQ(sum, 15.0);
  GrB_free(&v);
}

TEST(ThreadingTest, ConcurrentReadsOfCompletedObject) {
  // Multiple threads may read a completed object without synchronization
  // (reads don't mutate the COW data block).
  ref::Mat ra = testutil::random_mat(32, 32, 0.3, 777);
  GrB_Matrix a = testutil::make_matrix(ra);
  ASSERT_EQ(GrB_wait(a, GrB_COMPLETE), GrB_SUCCESS);
  double want = 0;
  ASSERT_EQ(GrB_reduce(&want, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL),
            GrB_SUCCESS);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 50; ++k) {
        double sum = 0;
        if (GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL) !=
                GrB_SUCCESS ||
            sum != want)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  GrB_free(&a);
}

TEST(ThreadingTest, GrBErrorIsThreadSafe) {
  // §V: two threads may call GrB_error concurrently on the same object.
  GrB_Vector v = nullptr;
  ASSERT_EQ(GrB_Vector_new(&v, GrB_FP64, 4), GrB_SUCCESS);
  GrB_Index idx[] = {0, 0};
  double vals[] = {1, 2};
  ASSERT_EQ(GrB_Vector_build(v, idx, vals, 2, GrB_NULL), GrB_SUCCESS);
  GrB_Index nv;
  (void)GrB_Vector_nvals(&nv, v);  // trigger the deferred failure
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        const char* msg = nullptr;
        if (GrB_error(&msg, v) != GrB_SUCCESS || msg == nullptr)
          bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  GrB_free(&v);
}

}  // namespace
