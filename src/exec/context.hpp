// GrB_Context: hierarchical execution contexts (paper §IV).
//
// A program starts in the top-level context created by GrB_init.  Nested
// contexts are created with context_new(parent, mode, config); they form a
// tree that is torn down by GrB_finalize.  Each GraphBLAS object belongs
// to exactly one context, all operands of an operation must share a
// context, and the context supplies execution resources (a thread pool)
// plus the blocking/nonblocking mode for operations on its objects.
//
// The paper leaves the contents of the `void* exec` initialization struct
// implementation-defined but requires it be documented.  Ours is
// grb::ContextConfig below.
#pragma once

#include <memory>
#include <string>

#include "core/info.hpp"
#include "exec/thread_pool.hpp"

namespace grb {

enum class Mode : int {
  kNonblocking = 0,
  kBlocking = 1,
};

// The documented, implementation-defined structure passed as the `exec`
// argument of GrB_Context_new (paper §IV / Figure 2).
struct ContextConfig {
  // Number of threads the context may use for internal parallelism.
  // 0 means "inherit from the parent context".
  int nthreads = 0;
  // Minimum number of loop iterations assigned to a thread before the
  // context bothers with parallel execution.
  Index chunk = 4096;
};

class Context {
 public:
  // `obs_id` is the stable telemetry identity of this context (see
  // obs/telemetry.hpp): 1 for the top context, 0 for the internal
  // serial helper, a fresh monotonic id for every nested context.
  Context(Mode mode, Context* parent, ContextConfig cfg, uint64_t obs_id);

  Mode mode() const { return mode_; }
  Context* parent() const { return parent_; }
  const ContextConfig& config() const { return cfg_; }
  int depth() const { return depth_; }
  uint64_t obs_id() const { return obs_id_; }

  // Effective thread count.  A context's own request (nthreads > 0) is
  // capped by every ancestor's explicit budget, so nested contexts carve
  // up their parent's allotment hierarchically and can never exceed it.
  // nthreads == 0 inherits the nearest ancestor's budget; with no explicit
  // budget anywhere on the chain the hardware decides.
  int effective_nthreads() const;

  // The pool used for internal parallelism; nullptr means "run inline".
  // Created lazily on first use.
  ThreadPool* pool();

  // Convenience: partitioned parallel loop on this context's resources,
  // with chunks of at least config().chunk iterations.
  void parallel_for(Index begin, Index end,
                    const std::function<void(Index, Index)>& body);

  // Same, but with a caller-chosen grain.  Kernels that iterate over
  // coarse work blocks (rather than rows/entries) pass grain 1 so the
  // blocks actually fan out.
  void parallel_for(Index begin, Index end, Index grain,
                    const std::function<void(Index, Index)>& body);

 private:
  Mode mode_;
  Context* parent_;
  ContextConfig cfg_;
  int depth_;
  uint64_t obs_id_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

// --- Global library state (GrB_init / GrB_finalize) ----------------------

// Initializes the library with the top-level context's mode.
// Calling twice without finalize returns kInvalidValue.
Info library_init(Mode mode);
Info library_finalize();
bool library_initialized();

// The top-level context (nullptr before init).
Context* top_context();

// Creates a context nested in `parent` (nullptr = top-level context).
// `config` may be nullptr (all defaults / inherit).
Info context_new(Context** ctx, Mode mode, Context* parent,
                 const ContextConfig* config);
Info context_free(Context* ctx);

// True if `ctx` is a live context (top-level or created and not freed).
bool context_is_live(const Context* ctx);

// Resolves a possibly-null context pointer (null = top-level).
Context* resolve_context(Context* ctx);

// A library-internal single-thread context whose parallel_for always runs
// inline.  Used as the serial fallback target; never in the live set.
Context* serial_context();

// Picks the context a kernel should run on: `ctx` itself when the job is
// big enough (`work` stored entries >= parallel_threshold()) and the
// context's budget allows more than one thread; otherwise the inline
// serial context.  This is the single serial-fallback gate every
// parallelized kernel goes through.
Context* exec_context(Context* ctx, size_t work);

// Library version (GrB_getVersion): 2.0.
inline constexpr unsigned kVersion = 2;
inline constexpr unsigned kSubversion = 0;

}  // namespace grb
