// ObjectBase: shared handle state for GrB_Scalar / GrB_Vector / GrB_Matrix.
//
// Implements the paper's §III/§V machinery:
//  * the *sequence* of deferred method calls that defines an object in
//    nonblocking mode (a per-object FIFO of closures);
//  * completion (GrB_wait(obj, GrB_COMPLETE)) — drain the queue and fold
//    pending tuples so the object's internal state is resolved in memory;
//  * materialization (GrB_wait(obj, GrB_MATERIALIZE)) — completion plus
//    "no more errors can be generated from those methods": the deferred
//    error, if any, is reported and the error state is cleared;
//  * the deferred-execution-error model: a failed deferred method poisons
//    the object, and any later method invocation involving it reports the
//    stored error until a materializing wait clears it;
//  * GrB_error(&str, obj): a per-object, mutex-guarded error string.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/info.hpp"
#include "exec/context.hpp"
#include "exec/fusion.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace grb {

enum class WaitMode : int {
  kComplete = 0,
  kMaterialize = 1,
};

// One deferred method in an object's sequence.  `op` is the GrB entry
// point that enqueued it (captured from obs::current_op(); static
// storage), so diagnostics and trace spans can name the originating
// method; `enqueued_ns` is the telemetry enqueue stamp (0 when telemetry
// was disabled at enqueue time) used to report the deferral gap between
// call and execution.  `node` is the fusion planner's view of the method
// (exec/fusion.hpp); the default is an opaque read-write op.
struct Deferred {
  std::function<Info()> fn;
  const char* op;
  uint64_t enqueued_ns;
  FuseNode node;
};

class ObjectBase {
 public:
  explicit ObjectBase(Context* ctx) : ctx_(resolve_context(ctx)) {}
  virtual ~ObjectBase() = default;

  ObjectBase(const ObjectBase&) = delete;
  ObjectBase& operator=(const ObjectBase&) = delete;

  Context* context() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ctx_;
  }
  Info switch_context(Context* new_ctx) GRB_EXCLUDES(mu_);

  Mode mode() const {
    Context* c = context();
    return c != nullptr ? c->mode() : Mode::kBlocking;
  }

  // Appends a deferred method to this object's sequence.  Called only in
  // nonblocking mode, by the operation layer, after API validation.
  // Containers override it to fold outstanding pending tuples into the
  // sequence first, preserving program order.  `node` carries the fusion
  // planner's description of the method (default: opaque read-write).
  virtual void enqueue(std::function<Info()> op, FuseNode node = FuseNode{})
      GRB_EXCLUDES(mu_);

  // Runs the sequence to completion (and folds pending tuples via
  // flush_pending).  Returns the first deferred execution error, which
  // stays stored (poisoning the object) until a materializing wait.
  // Must be called with mu_ free: the deferred closures it runs publish
  // their results under mu_ themselves.
  Info complete() GRB_EXCLUDES(mu_);

  // GrB_wait.  kComplete == complete(); kMaterialize also clears the
  // stored error after reporting it.
  Info wait(WaitMode mode) GRB_EXCLUDES(mu_);

  // The deferred-error check every method performs on its arguments
  // (paper §V: later methods in the sequence report earlier errors).
  Info pending_error() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return err_;
  }

  // Records an execution error against this object (blocking mode or
  // deferred execution) along with a message for GrB_error.
  void poison(Info info, const std::string& msg) GRB_EXCLUDES(mu_);

  // GrB_error: pointer to a per-object string, stable until the next
  // error recorded on the object.
  const char* error_string() const GRB_EXCLUDES(mu_);

  bool has_pending_ops() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return !queue_.empty();
  }

  // Pending-tuple prefix control used by the fusion planner's kFlush
  // nodes: fold (flush) or discard (drop) the tuples enqueued before the
  // absolute consumed-count `upto` — not whatever happens to be pending
  // at execution time, which may include tuples queued after a later
  // method.  Containers override; the base object has no fast path.
  virtual Info flush_prefix(uint64_t upto) GRB_EXCLUDES(mu_) {
    (void)upto;
    return Info::kSuccess;
  }
  virtual Info drop_prefix(uint64_t upto) GRB_EXCLUDES(mu_) {
    (void)upto;
    return Info::kSuccess;
  }

 protected:
  // Containers fold fast-path pending tuples here (called with no locks
  // held by complete()); default is a no-op.  Implementations take mu_
  // themselves, so the capability must be free on entry.
  virtual Info flush_pending() GRB_EXCLUDES(mu_) { return Info::kSuccess; }

  // True when the queued sequence already contains a kFlush node covering
  // absolute consumed-count `upto` — container enqueue overrides use this
  // to avoid injecting one flush node per deferred method when a single
  // earlier fold already batches the outstanding tuples.  Scans the live
  // queue (not a cached counter) so poison-time queue clears cannot leave
  // it stale.
  bool flush_queued_covering(uint64_t upto) const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->node.kind == FuseNode::Kind::kFlush &&
          it->node.flush_upto >= upto)
        return true;
    }
    return false;
  }

  mutable Mutex mu_;

 private:
  // The lock-held half of poison(): callers that already hold mu_ (e.g.
  // complete() failing a deferred method and clearing the queue in the
  // same critical section) record the error without a second acquire.
  // Returns true when this was the first error transition and the
  // flight recorder is live — the caller must then run
  // obs::fr_auto_dump(msg) *after* releasing mu_ (the dump allocates,
  // locks the recorder control mutex, and may write files; none of
  // that belongs in a critical section).
  bool poison_locked(Info info, const std::string& msg) GRB_REQUIRES(mu_);

  Context* ctx_ GRB_GUARDED_BY(mu_);
  std::vector<Deferred> queue_ GRB_GUARDED_BY(mu_);
  Info err_ GRB_GUARDED_BY(mu_) = Info::kSuccess;
  std::string errmsg_ GRB_GUARDED_BY(mu_);
};

// Shorthand used by the operation layer: execute `op` now (blocking mode)
// or append it to `out`'s sequence (nonblocking).  In blocking mode an
// execution error poisons the output and is returned immediately.
Info defer_or_run(ObjectBase* out, std::function<Info()> op,
                  FuseNode node = FuseNode{});

}  // namespace grb
