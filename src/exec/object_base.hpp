// ObjectBase: shared handle state for GrB_Scalar / GrB_Vector / GrB_Matrix.
//
// Implements the paper's §III/§V machinery:
//  * the *sequence* of deferred method calls that defines an object in
//    nonblocking mode (a per-object FIFO of closures);
//  * completion (GrB_wait(obj, GrB_COMPLETE)) — drain the queue and fold
//    pending tuples so the object's internal state is resolved in memory;
//  * materialization (GrB_wait(obj, GrB_MATERIALIZE)) — completion plus
//    "no more errors can be generated from those methods": the deferred
//    error, if any, is reported and the error state is cleared;
//  * the deferred-execution-error model: a failed deferred method poisons
//    the object, and any later method invocation involving it reports the
//    stored error until a materializing wait clears it;
//  * GrB_error(&str, obj): a per-object, mutex-guarded error string.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/info.hpp"
#include "exec/context.hpp"
#include "exec/fusion.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_annotations.hpp"

namespace grb {

enum class WaitMode : int {
  kComplete = 0,
  kMaterialize = 1,
};

// One deferred method in an object's sequence.  `op` is the GrB entry
// point that enqueued it (captured from obs::current_op(); static
// storage), so diagnostics and trace spans can name the originating
// method; `enqueued_ns` is the telemetry enqueue stamp (0 when telemetry
// was disabled at enqueue time) used to report the deferral gap between
// call and execution.  `node` is the fusion planner's view of the method
// (exec/fusion.hpp); the default is an opaque read-write op.  `ctx_id`
// is the home context's obs id at enqueue time (the tenant the eventual
// execution is attributed to) and `flow_id` the Chrome-trace flow id
// linking the enqueuing API span to the execution span (0 = no trace).
struct Deferred {
  std::function<Info()> fn;
  const char* op;
  uint64_t enqueued_ns;
  FuseNode node;
  uint64_t ctx_id = 0;
  uint64_t flow_id = 0;
};

class ObjectBase {
 public:
  explicit ObjectBase(Context* ctx) : ctx_(resolve_context(ctx)) {
    ctx_obs_id_.store(ctx_ != nullptr ? ctx_->obs_id() : 0,
                      std::memory_order_relaxed);
  }
  virtual ~ObjectBase() = default;

  ObjectBase(const ObjectBase&) = delete;
  ObjectBase& operator=(const ObjectBase&) = delete;

  Context* context() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ctx_;
  }
  Info switch_context(Context* new_ctx) GRB_EXCLUDES(mu_);

  // The home context's telemetry id, readable without mu_ so the
  // attribution fast paths (defer_or_run, enqueue) pay one relaxed load
  // instead of a lock round-trip.  Mirrors ctx_; updated by
  // switch_context.
  uint64_t obs_ctx_id() const {
    return ctx_obs_id_.load(std::memory_order_relaxed);
  }

  Mode mode() const {
    Context* c = context();
    return c != nullptr ? c->mode() : Mode::kBlocking;
  }

  // Appends a deferred method to this object's sequence.  Called only in
  // nonblocking mode, by the operation layer, after API validation.
  // Containers override it to fold outstanding pending tuples into the
  // sequence first, preserving program order.  `node` carries the fusion
  // planner's description of the method (default: opaque read-write).
  virtual void enqueue(std::function<Info()> op, FuseNode node = FuseNode{})
      GRB_EXCLUDES(mu_);

  // Runs the sequence to completion (and folds pending tuples via
  // flush_pending).  Returns the first deferred execution error, which
  // stays stored (poisoning the object) until a materializing wait.
  // Must be called with mu_ free: the deferred closures it runs publish
  // their results under mu_ themselves.
  //
  // Completion is where nonblocking mode goes to block, so it carries
  // the observability wrappers inline: stamp the thread's attribution
  // slot with this object's tenant, and — only when the stall watchdog
  // is armed — take the registered-drain slow path so a queue stuck
  // behind a slow deferred method trips a report naming this context.
  // With telemetry off this adds one relaxed flag load to the drain.
  Info complete() GRB_EXCLUDES(mu_) {
    uint32_t f = obs::flags();
    if (__builtin_expect(f != 0, 0)) {
      uint64_t ctx_id = obs_ctx_id();
      if (ctx_id != 0) obs::set_current_ctx(ctx_id);
      if ((f & obs::kWatchdogFlag) != 0) return complete_watched();
    }
    return complete_impl();
  }

  // GrB_wait.  kComplete == complete(); kMaterialize also clears the
  // stored error after reporting it.
  Info wait(WaitMode mode) GRB_EXCLUDES(mu_);

  // The deferred-error check every method performs on its arguments
  // (paper §V: later methods in the sequence report earlier errors).
  // It is also the one hook every container fast path shares, so it
  // stamps the thread's sticky attribution context: pending-tuple
  // appends (setElement/removeElement in nonblocking mode) never reach
  // enqueue/complete, yet their API spans must still bill to this
  // object's tenant.
  Info pending_error() const GRB_EXCLUDES(mu_) {
    if (obs::enabled()) {
      uint64_t id = obs_ctx_id();
      if (id != 0) obs::set_current_ctx(id);
    }
    MutexLock lock(mu_);
    return err_;
  }

  // Records an execution error against this object (blocking mode or
  // deferred execution) along with a message for GrB_error.
  void poison(Info info, const std::string& msg) GRB_EXCLUDES(mu_);

  // GrB_error: pointer to a per-object string, stable until the next
  // error recorded on the object.
  const char* error_string() const GRB_EXCLUDES(mu_);

  bool has_pending_ops() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return !queue_.empty();
  }

  // Pending-tuple prefix control used by the fusion planner's kFlush
  // nodes: fold (flush) or discard (drop) the tuples enqueued before the
  // absolute consumed-count `upto` — not whatever happens to be pending
  // at execution time, which may include tuples queued after a later
  // method.  Containers override; the base object has no fast path.
  virtual Info flush_prefix(uint64_t upto) GRB_EXCLUDES(mu_) {
    (void)upto;
    return Info::kSuccess;
  }
  virtual Info drop_prefix(uint64_t upto) GRB_EXCLUDES(mu_) {
    (void)upto;
    return Info::kSuccess;
  }

 protected:
  // Containers fold fast-path pending tuples here (called with no locks
  // held by complete()); default is a no-op.  Implementations take mu_
  // themselves, so the capability must be free on entry.
  virtual Info flush_pending() GRB_EXCLUDES(mu_) { return Info::kSuccess; }

  // True when the queued sequence already contains a kFlush node covering
  // absolute consumed-count `upto` — container enqueue overrides use this
  // to avoid injecting one flush node per deferred method when a single
  // earlier fold already batches the outstanding tuples.  Scans the live
  // queue (not a cached counter) so poison-time queue clears cannot leave
  // it stale.
  bool flush_queued_covering(uint64_t upto) const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->node.kind == FuseNode::Kind::kFlush &&
          it->node.flush_upto >= upto)
        return true;
    }
    return false;
  }

  mutable Mutex mu_;

 private:
  // The lock-held half of poison(): callers that already hold mu_ (e.g.
  // complete() failing a deferred method and clearing the queue in the
  // same critical section) record the error without a second acquire.
  // Returns true when this was the first error transition and the
  // flight recorder is live — the caller must then run
  // obs::fr_auto_dump(msg) *after* releasing mu_ (the dump allocates,
  // locks the recorder control mutex, and may write files; none of
  // that belongs in a critical section).
  bool poison_locked(Info info, const std::string& msg) GRB_REQUIRES(mu_);

  // The drain loop proper; complete() dispatches here directly, or via
  // complete_watched() — which brackets the drain in the watchdog stall
  // table — when the watchdog is armed, so a queue stuck behind a slow
  // or deadlocked deferred method is reported with this object's tenant.
  Info complete_impl() GRB_EXCLUDES(mu_);
  Info complete_watched() GRB_EXCLUDES(mu_);

  Context* ctx_ GRB_GUARDED_BY(mu_);
  // Lock-free mirror of ctx_->obs_id() for attribution paths that must
  // not take mu_ (memory snapshots, enqueue fast path).
  std::atomic<uint64_t> ctx_obs_id_{0};
  std::vector<Deferred> queue_ GRB_GUARDED_BY(mu_);
  Info err_ GRB_GUARDED_BY(mu_) = Info::kSuccess;
  std::string errmsg_ GRB_GUARDED_BY(mu_);
};

// Shorthand used by the operation layer: execute `op` now (blocking mode)
// or append it to `out`'s sequence (nonblocking).  In blocking mode an
// execution error poisons the output and is returned immediately.
Info defer_or_run(ObjectBase* out, std::function<Info()> op,
                  FuseNode node = FuseNode{});

}  // namespace grb
