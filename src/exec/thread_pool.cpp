#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstring>

#include "obs/memory.hpp"
#include "obs/telemetry.hpp"

namespace grb {
namespace {

std::atomic<void (*)(std::thread::id)> g_thread_observer{nullptr};

}  // namespace

void set_thread_observer(void (*observer)(std::thread::id)) {
  g_thread_observer.store(observer, std::memory_order_release);
}

std::byte* ScratchArena::request(int slot, size_t bytes) {
  Buf& b = bufs_[slot];
  const bool hit = b.cap >= bytes;
  if (!hit) {
    size_t cap = std::max(bytes, b.cap * 2);
    // Raw new[]: default-initialized, no value-init memset on a buffer
    // the caller is about to overwrite anyway.
    b.data.reset(new std::byte[cap]);
    obs::arena_credit(b.cap);
    obs::arena_charge(cap);
    b.cap = cap;
  }
  b.zeroed = 0;
  if (obs::stats_enabled()) obs::arena_request(hit);
  return b.data.get();
}

std::byte* ScratchArena::request_zeroed(int slot, size_t bytes) {
  Buf& b = bufs_[slot];
  const bool hit = b.cap >= bytes && b.zeroed >= bytes;
  if (b.cap < bytes) {
    size_t cap = std::max(bytes, b.cap * 2);
    b.data.reset(new std::byte[cap]);
    obs::arena_credit(b.cap);
    obs::arena_charge(cap);
    b.cap = cap;
    b.zeroed = 0;
  }
  if (b.zeroed < bytes)
    std::memset(b.data.get() + b.zeroed, 0, bytes - b.zeroed);
  // Dirty until the caller restores the zeros (mark_zeroed).
  b.granted_zeroed = std::max(b.zeroed, bytes);
  b.zeroed = 0;
  if (obs::stats_enabled()) obs::arena_request(hit);
  return b.data.get();
}

void ScratchArena::mark_zeroed(int slot) {
  Buf& b = bufs_[slot];
  b.zeroed = b.granted_zeroed;
}

void ScratchArena::purge() {
  for (Buf& b : bufs_) {
    b.data.reset();
    obs::arena_credit(b.cap);
    b.cap = 0;
    b.zeroed = 0;
    b.granted_zeroed = 0;
  }
}

ScratchArena& thread_arena() {
  static thread_local ScratchArena arena;
  return arena;
}

ThreadPool::ThreadPool(int nthreads)
    : nthreads_(std::max(1, nthreads)), obs_id_(obs::next_pool_id()) {
  // nthreads_ - 1 workers; the caller of parallel_for is the last lane.
  for (int i = 1; i < nthreads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::grab_and_run(Job& job, bool worker_lane) {
  Index i = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
  if (i >= job.end) return false;
  Index hi = std::min(job.end, i + job.chunk);
  if (auto* obs = g_thread_observer.load(std::memory_order_acquire))
    obs(std::this_thread::get_id());
  const bool telemetry = obs::enabled();
  if (telemetry) {
    obs::pool_chunk(obs_id_, worker_lane);
    obs::pool_busy_enter(obs_id_);
  }
  (*job.body)(i, hi);
  if (telemetry) obs::pool_busy_exit(obs_id_);
  if (job.pending_chunks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Taking mu_ orders the notify after the waiter's condition check, so
    // the last chunk's wakeup can never be lost.
    MutexLock lock(mu_);
    done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    bool parked = false;
    bool quit = false;
    uint64_t park_t0 = 0;
    {
      // The wait condition is an explicit loop (not a predicate lambda)
      // so the capability analysis sees the guarded reads under mu_.
      CvLock lock(mu_);
      while (!shutdown_ && generation_ == seen) {
        // One park per idle episode, not per spurious wakeup.  The
        // counter bump happens after the lock is released: the park
        // hook can lazily allocate this pool's counter block and land
        // a trace event, neither of which belongs under mu_.
        parked = true;
        if (park_t0 == 0 && obs::enabled()) park_t0 = obs::now_ns();
        lock.wait(work_cv_);
      }
      if (shutdown_) {
        quit = true;
      } else {
        seen = generation_;
        job = job_;
      }
    }
    if (parked && obs::enabled()) {
      obs::pool_park(obs_id_,
                     park_t0 != 0 ? obs::now_ns() - park_t0 : 0);
    }
    if (quit) return;
    if (job == nullptr) continue;
    while (grab_and_run(*job, /*worker_lane=*/true)) {
    }
  }
}

void ThreadPool::parallel_for(Index begin, Index end, Index grain,
                              const std::function<void(Index, Index)>& body) {
  if (begin >= end) return;
  Index n = end - begin;
  if (grain == 0) grain = 1;
  if (nthreads_ == 1 || n <= grain) {
    body(begin, end);
    return;
  }
  Index chunk = std::max<Index>(grain, n / (static_cast<Index>(nthreads_) * 4));
  Index nchunks = (n + chunk - 1) / chunk;
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->end = end;
  job->chunk = chunk;
  job->next.store(begin, std::memory_order_relaxed);
  job->pending_chunks.store(static_cast<Index>(nchunks),
                            std::memory_order_relaxed);
  obs::pool_submit(obs_id_, static_cast<uint64_t>(nchunks));
  {
    MutexLock lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  while (grab_and_run(*job, /*worker_lane=*/false)) {
  }
  CvLock lock(mu_);
  while (job->pending_chunks.load(std::memory_order_acquire) != 0)
    lock.wait(done_cv_);
}

}  // namespace grb
