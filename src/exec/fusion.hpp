// Deferred-sequence fusion planner (paper §III: nonblocking mode as an
// optimization opportunity).
//
// Every deferred method carries a FuseNode describing how the planner may
// treat it.  At completion time fusion_execute_batch() walks the queued
// sequence, eliminates dead writes (an output fully overwritten before
// any read), fuses runs of elementwise work into single passes over the
// data, and executes whatever remains eagerly — bitwise-identical to the
// eager path, which stays available as the GRB_FUSION=off ablation
// (mirroring GRB_SPGEMM=reference).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/info.hpp"
#include "core/type.hpp"

namespace grb {

class ObjectBase;
struct Deferred;
struct VectorData;
struct MatrixData;
class BinaryOp;

// A fused elementwise stage: z = f(x) evaluated per stored entry.  The
// indices are the entry's coordinates (column 0 for vectors) so
// index-dependent operators (GrB_IndexUnaryOp) fuse like value-only ones.
using MapFn = std::function<void(void* z, const void* x, Index i, Index j)>;

// Mapper construction is deferred to execution time (operator state such
// as bound scalars is captured by value inside the factory): the planner
// instantiates one MapFn per worker chunk, matching the eager kernels'
// per-chunk runner construction exactly.
using MapFactory = std::function<MapFn()>;

// Planner-facing metadata riding on each Deferred.  The default value
// (kOpaque, reads_out=true) describes an op the planner must treat as a
// black box that both reads and writes its target — always legal.
struct FuseNode {
  enum class Kind : uint8_t {
    kOpaque = 0,  // run the stored closure; no fusion
    kMap,         // out = map(src) — src is the snapshot or out itself
    kZip,         // out = out (op) zip_other, elementwise
    kFlush,       // fold the pending-tuple prefix tagged at enqueue time
  };

  Kind kind = Kind::kOpaque;
  // The closure reads the target's current contents (accumulator, mask
  // against old output, pending-tuple fold, ...).  Nodes with
  // reads_out=false && full_replace=true are "killers": everything the
  // target held before them is dead.
  bool reads_out = true;
  // The closure replaces the target's stored content entirely (no mask,
  // no accumulator, no complemented empty mask).
  bool full_replace = false;
  // Externally visible side effects beyond the target (eager metadata
  // already applied, e.g. resize): never eliminated even when dead.
  bool must_run = false;

  // kMap: out = mapper(src).  When vsrc/msrc are null the source is the
  // target itself (lazy self-map; legal because the queue is FIFO).
  MapFactory make_mapper;
  const Type* ztype = nullptr;  // mapper output domain before final cast
  std::shared_ptr<const VectorData> vsrc;
  std::shared_ptr<const MatrixData> msrc;

  // kZip: out = out (zip_op) zip_other with eWiseAdd (zip_union=true) or
  // eWiseMult structure; zip_out_is_x says which operand slot the target
  // feeds (x when true, y when false).
  std::shared_ptr<const VectorData> zip_other;
  const BinaryOp* zip_op = nullptr;
  bool zip_union = false;
  bool zip_out_is_x = false;

  // kFlush: fold exactly the pending tuples enqueued before this node —
  // flush_upto is the absolute consumed-tuple count the fold advances to
  // (container flush_prefix / drop_prefix contract).
  uint64_t flush_upto = 0;
};

// GRB_FUSION=off|on (default on); runtime override for tests/bench.
bool fusion_enabled();
void set_fusion_enabled(bool on);

// Executes one drained batch of `obj`'s deferred sequence: plans
// (DCE + chain grouping), runs fused groups and surviving nodes, and
// emits fusion telemetry.  On failure returns the failing op's Info and
// names it through *failed_op; poisoning stays with the caller
// (ObjectBase::complete), which owns the object's error state.
Info fusion_execute_batch(ObjectBase* obj, std::vector<Deferred>& batch,
                          const char** failed_op);

}  // namespace grb
