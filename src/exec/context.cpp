#include "exec/context.hpp"

#include <atomic>
#include <vector>

#include "core/global.hpp"
#include "exec/thread_pool.hpp"
#include "obs/decision.hpp"
#include "obs/telemetry.hpp"

namespace grb {

// Defined in ops/spgemm.cpp; declared here rather than including the
// ops layer from exec.
void spgemm_cost_cache_clear();
namespace {

// The live-context registry itself lives in core/global.{hpp,cpp}
// (grb::GlobalRegistry) with its lock discipline annotated; this file is
// its only accessor.
GlobalRegistry& global() { return global_registry(); }

int default_hw_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// Telemetry identities for nested contexts.  1 is reserved for the top
// context (stable across init/finalize cycles so metric labels stay
// comparable), 0 for "unattributed"; ids are never reused in-process.
uint64_t next_ctx_obs_id() {
  static std::atomic<uint64_t> next{2};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Context::Context(Mode mode, Context* parent, ContextConfig cfg,
                 uint64_t obs_id)
    : mode_(mode),
      parent_(parent),
      cfg_(cfg),
      depth_(parent == nullptr ? 0 : parent->depth() + 1),
      obs_id_(obs_id) {}

int Context::effective_nthreads() const {
  // Walk the ancestor chain taking the minimum over every explicit
  // budget: the nearest one supplies the request, the rest cap it.
  int budget = 0;
  for (const Context* c = this; c != nullptr; c = c->parent_) {
    int n = c->cfg_.nthreads;
    if (n > 0) budget = budget == 0 ? n : std::min(budget, n);
  }
  return budget > 0 ? budget : default_hw_threads();
}

ThreadPool* Context::pool() {
  int n = effective_nthreads();
  if (n <= 1) return nullptr;
  std::call_once(pool_once_, [&] { pool_ = std::make_unique<ThreadPool>(n); });
  return pool_.get();
}

void Context::parallel_for(Index begin, Index end,
                           const std::function<void(Index, Index)>& body) {
  parallel_for(begin, end, cfg_.chunk, body);
}

void Context::parallel_for(Index begin, Index end, Index grain,
                           const std::function<void(Index, Index)>& body) {
  if (begin >= end) return;
  ThreadPool* p = (end - begin > grain) ? pool() : nullptr;
  if (p == nullptr) {
    body(begin, end);
  } else {
    p->parallel_for(begin, end, grain, body);
  }
}

Info library_init(Mode mode) {
  auto& g = global();
  MutexLock lock(g.mu);
  if (g.initialized) return Info::kInvalidValue;
  if (mode != Mode::kBlocking && mode != Mode::kNonblocking)
    return Info::kInvalidValue;
  g.top = new Context(mode, nullptr, ContextConfig{}, obs::kTopContextId);
  g.live.insert(g.top);
  g.initialized = true;
  obs::ctx_register(obs::kTopContextId, 0);
  // GRB_STATS / GRB_TRACE env activation, so benches and tests get
  // telemetry with no code changes.
  obs::env_activate();
  return Info::kSuccess;
}

Info library_finalize() {
  std::vector<uint64_t> leaked;
  {
    auto& g = global();
    MutexLock lock(g.mu);
    if (!g.initialized) return Info::kInvalidValue;
    // GrB_finalize frees every context object (paper §IV).
    for (Context* c : g.live) {
      if (c != g.top) leaked.push_back(c->obs_id());
      delete c;
    }
    g.live.clear();
    g.top = nullptr;
    g.initialized = false;
  }
  // Fold the telemetry of contexts the program never freed into the
  // top context (retire order does not matter: each drain resolves to
  // the nearest live ancestor, and id 1 stays live).  Outside g.mu —
  // ctx_retire takes the obs registry lock.
  for (uint64_t id : leaked) obs::ctx_retire(id);
  // Release SpGEMM scratch held beyond kernel lifetimes: the calling
  // thread's arena (worker arenas died with their pool threads above)
  // and the per-snapshot symbolic-cost cache.
  thread_arena().purge();
  spgemm_cost_cache_clear();
  // Flush env-activated telemetry (trace dump, stats summary) once the
  // library state is down; worker pools are joined by the deletes above,
  // so no hook can fire mid-dump.
  obs::env_finalize();
  return Info::kSuccess;
}

bool library_initialized() {
  auto& g = global();
  MutexLock lock(g.mu);
  return g.initialized;
}

Context* top_context() {
  auto& g = global();
  MutexLock lock(g.mu);
  return g.top;
}

Info context_new(Context** ctx, Mode mode, Context* parent,
                 const ContextConfig* config) {
  if (ctx == nullptr) return Info::kNullPointer;
  if (mode != Mode::kBlocking && mode != Mode::kNonblocking)
    return Info::kInvalidValue;
  auto& g = global();
  MutexLock lock(g.mu);
  if (!g.initialized) return Info::kPanic;
  Context* p = parent == nullptr ? g.top : parent;
  if (g.live.find(p) == g.live.end()) return Info::kUninitializedObject;
  ContextConfig cfg = config != nullptr ? *config : ContextConfig{};
  auto* c = new Context(mode, p, cfg, next_ctx_obs_id());
  g.live.insert(c);
  obs::ctx_register(c->obs_id(), p->obs_id());
  *ctx = c;
  return Info::kSuccess;
}

Info context_free(Context* ctx) {
  if (ctx == nullptr) return Info::kNullPointer;
  uint64_t obs_id;
  {
    auto& g = global();
    MutexLock lock(g.mu);
    if (ctx == g.top) return Info::kInvalidValue;  // top dies with finalize
    auto it = g.live.find(ctx);
    if (it == g.live.end()) return Info::kUninitializedObject;
    // Implementation-defined rule (documented): a context with live child
    // contexts cannot be freed, since children resolve resources through
    // it.
    for (Context* c : g.live)
      if (c->parent() == ctx) return Info::kInvalidValue;
    // After this, ctx "behaves as an uninitialized object" (paper §IV):
    // objects still homed in it must be re-homed with GrB_Context_switch
    // before further use; operations validate liveness via
    // context_is_live.
    g.live.erase(it);
    obs_id = ctx->obs_id();
    delete ctx;
  }
  // Roll this context's telemetry up to its parent (child totals fold
  // into ancestors on free).  Outside g.mu — ctx_retire takes the obs
  // registry lock.
  obs::ctx_retire(obs_id);
  return Info::kSuccess;
}

bool context_is_live(const Context* ctx) {
  auto& g = global();
  MutexLock lock(g.mu);
  return g.live.find(const_cast<Context*>(ctx)) != g.live.end();
}

Context* resolve_context(Context* ctx) {
  return ctx != nullptr ? ctx : top_context();
}

Context* serial_context() {
  // Deliberately leaked, never in the live set: survives GrB_finalize so
  // in-flight serial fallbacks can't dangle across re-initialization.
  // obs id 0: serial-fallback work stays "unattributed" rather than
  // polluting a tenant's latency series with inline helper runs.
  static Context* serial =
      new Context(Mode::kBlocking, nullptr, ContextConfig{1, 4096}, 0);
  return serial;
}

Context* exec_context(Context* ctx, size_t work) {
  Context* chosen = serial_context();
  if (ctx != nullptr && ctx->effective_nthreads() > 1 &&
      work >= parallel_threshold()) {
    chosen = ctx;
  }
  // The single serial-fallback gate: every kernel passes its object's
  // HOME context through here, so this is also where the thread-local
  // attribution slot learns the tenant (sticky for the rest of the API
  // scope — api_return keys its counters by it).  The serial helper
  // (obs id 0) never overrides a known tenant.
  if (obs::enabled() && ctx != nullptr && ctx->obs_id() != 0) {
    obs::set_current_ctx(ctx->obs_id());
  }
  // Record which path this kernel took, attributed to the GrB op
  // currently on this thread.
  bool parallel = chosen != serial_context();
  if (obs::stats_enabled()) obs::count_path(parallel);
  // Decision audit: only when both paths were actually on the table — a
  // null / single-threaded context never had a choice to explain, and
  // emitting for it would drown real records in forced-serial noise.
  if (obs::decision_enabled() && ctx != nullptr &&
      ctx->effective_nthreads() > 1) {
    obs::decision_record(obs::DecisionSite::kExecPath,
                         parallel ? "parallel" : "serial",
                         parallel ? "serial" : "parallel",
                         static_cast<double>(work),
                         static_cast<double>(parallel_threshold()));
  }
  return chosen;
}

}  // namespace grb
