// A small persistent thread pool with a blocking parallel_for.
//
// Each GrB_Context that requests more than one thread owns one pool
// (paper §IV: contexts specify how resources such as threads are
// allocated).  parallel_for is cooperative: the calling thread executes
// chunks alongside the workers, so nthreads == 1 degenerates to an inline
// loop with no synchronization.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/type.hpp"
#include "util/thread_annotations.hpp"

namespace grb {

// Test hook: when installed, every pool lane (worker threads and the
// thread calling parallel_for) reports its id once per chunk it executes.
// Tests use this to assert that a context's thread budget actually caps
// the number of distinct threads a kernel runs on.  Pass nullptr to
// uninstall.  The observer must be thread-safe.
void set_thread_observer(void (*observer)(std::thread::id));

// --- Reusable per-thread scratch arena -----------------------------------
// Kernels request named scratch buffers (hash tables, dense SPAs, vector
// probes) that persist for the lifetime of the thread, so repeated ops
// stop paying allocation + first-touch page-fault cost.  Buffers only
// grow; `purge` releases them (GrB_finalize calls it on the user thread;
// worker arenas die with their pool's threads).
//
// Zeroed protocol: `request_zeroed` hands back a buffer whose first
// `bytes` are zero, then treats it as dirty.  A kernel that restores the
// zeros itself (e.g. a SPA clearing only the entries it touched) calls
// `mark_zeroed` so the next `request_zeroed` can skip the memset; if the
// kernel unwinds early the slot stays dirty and the next request pays
// one memset — never incorrect, only slower.
class ScratchArena {
 public:
  enum Slot {
    kHashKeys = 0,  // zeroed protocol: key 0 means "empty bucket"
    kHashVals,
    kHashPairs,
    kDenseFlags,    // zeroed protocol: flag 0 means "column absent"
    kDenseVals,
    kDenseTouched,
    kVecPresent,
    kVecVals,
    kSlotCount,
  };

  // purge() also settles the arena memory-attribution gauges, so a
  // dying thread's arena credits its bytes back (obs/memory.hpp).
  ~ScratchArena() { purge(); }

  std::byte* request(int slot, size_t bytes);
  std::byte* request_zeroed(int slot, size_t bytes);
  void mark_zeroed(int slot);
  void purge();

 private:
  struct Buf {
    std::unique_ptr<std::byte[]> data;
    size_t cap = 0;
    // Zeroed prefix available to the next request_zeroed, and the length
    // that mark_zeroed will restore (the extent of the last zeroed grant).
    size_t zeroed = 0;
    size_t granted_zeroed = 0;
  };
  Buf bufs_[kSlotCount];
};

// The calling thread's arena (thread_local).  Buffers handed out by one
// thread's arena must not be written by another thread; read-only sharing
// during a parallel region (e.g. a gathered vector probe) is fine.
ScratchArena& thread_arena();

class ThreadPool {
 public:
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int nthreads() const { return nthreads_; }

  // Stable id keying this pool's utilization gauges in obs::stats_json.
  int obs_id() const { return obs_id_; }

  // Runs body(lo, hi) over a partition of [begin, end) with chunks of at
  // least `grain` iterations.  Blocks until every chunk has finished.
  // body must not recursively call parallel_for on the same pool.
  void parallel_for(Index begin, Index end, Index grain,
                    const std::function<void(Index, Index)>& body)
      GRB_EXCLUDES(mu_);

 private:
  // One parallel_for invocation.  The struct is immutable except for the
  // two atomics, and is published to workers through mu_, so a straggler
  // holding a previous job's pointer can never observe torn state from a
  // newer job.
  struct Job {
    const std::function<void(Index, Index)>* body;
    Index end = 0;
    Index chunk = 1;
    std::atomic<Index> next{0};
    std::atomic<Index> pending_chunks{0};
  };

  void worker_loop() GRB_EXCLUDES(mu_);
  // `worker_lane` distinguishes chunks taken by pool workers ("steals"
  // in the utilization gauges) from chunks the parallel_for caller runs.
  bool grab_and_run(Job& job, bool worker_lane) GRB_EXCLUDES(mu_);

  int nthreads_;
  const int obs_id_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ GRB_GUARDED_BY(mu_) = false;

  // The current job is *published* to workers under mu_ (the straggler
  // comment on Job explains why); its own fields are immutable-or-atomic
  // and are accessed lock-free once a worker holds the shared_ptr.
  std::shared_ptr<Job> job_ GRB_GUARDED_BY(mu_);
  uint64_t generation_ GRB_GUARDED_BY(mu_) = 0;
};

}  // namespace grb
