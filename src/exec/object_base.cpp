#include "exec/object_base.hpp"

#include "obs/flight_recorder.hpp"

namespace grb {

Info ObjectBase::switch_context(Context* new_ctx) {
  Context* c = resolve_context(new_ctx);
  if (c == nullptr || !context_is_live(c)) return Info::kUninitializedObject;
  // Re-homing an object first resolves its state in the old context.
  Info info = complete();
  if (is_execution_error(info)) return info;
  MutexLock lock(mu_);
  ctx_ = c;
  ctx_obs_id_.store(c->obs_id(), std::memory_order_relaxed);
  return Info::kSuccess;
}

void ObjectBase::enqueue(std::function<Info()> op, FuseNode node) {
  // The entry-point name travels with the closure so a later failure
  // during complete() can name the method that caused it, and so the
  // trace can show the deferral gap between call and execution.  The
  // home context and (when tracing) a fresh flow id travel too: the
  // execution span replays the tenant attribution and closes the flow
  // arrow no matter which thread or API call later drains the queue.
  const char* op_name = obs::current_op();
  uint64_t enq_ns = obs::telemetry_enabled() ? obs::now_ns() : 0;
  uint64_t ctx_id = obs_ctx_id();
  if (obs::enabled() && ctx_id != 0) obs::set_current_ctx(ctx_id);
  uint64_t flow_id = obs::trace_enabled() ? obs::next_flow_id() : 0;
  size_t depth;
  {
    MutexLock lock(mu_);
    // Deliberate allocation under mu_: the deferred queue IS the growth
    // (suppressed in tools/grb_analyze_suppressions.json with rationale).
    queue_.push_back(Deferred{std::move(op), op_name, enq_ns,
                              std::move(node), ctx_id, flow_id});
    depth = queue_.size();
  }
  // The gauge sample can land in the trace buffer (its own mutex plus a
  // possible vector growth); keep that out of this object's critical
  // section.  The depth is a sample either way — a stale read after
  // unlock is indistinguishable from sampling a moment later.
  obs::queue_depth_sample(depth);
  if (obs::flight_enabled()) {
    obs::fr_record(obs::FrKind::kEnqueue, op_name,
                   static_cast<int32_t>(depth), ctx_id, flow_id);
  }
  // The flow start ("s") binds to the enclosing API span — emitted here,
  // still inside the entry point, but after mu_ is released (the trace
  // buffer has its own mutex and may grow).
  obs::flow_begin(op_name, flow_id);
}

Info ObjectBase::complete_watched() {
  // Watchdog-armed drain: registered in the stall table for the whole
  // drain so a queue stuck behind a slow deferred method trips a report
  // naming this object's tenant.
  int token = obs::stall_begin(obs::kStallCompletion, "ObjectBase::complete",
                               obs_ctx_id(), nullptr);
  Info info = complete_impl();
  obs::stall_end(token);
  return info;
}

Info ObjectBase::complete_impl() {
  // Drain until the queue stays empty.  Closures publish results under
  // mu_ themselves; we must not hold mu_ while running them.
  for (;;) {
    std::vector<Deferred> batch;
    {
      MutexLock lock(mu_);
      if (err_ != Info::kSuccess) {
        // A poisoned sequence stops executing; the error sticks.
        queue_.clear();
        return err_;
      }
      if (queue_.empty()) break;
      batch.swap(queue_);
    }
    obs::queue_drained(batch.size());
    // The fusion planner executes the batch: dead-write elimination,
    // fused elementwise passes, and eager execution of everything else —
    // or a pure eager walk under GRB_FUSION=off.  Per-method attribution
    // (CurrentOpScope, deferred spans, flight records) happens inside.
    const char* failed_op = nullptr;
    Info info = fusion_execute_batch(this, batch, &failed_op);
    // Deferred methods only validated their API contract eagerly; any
    // failure here is an execution-class failure for this object, even
    // when the code (e.g. GrB_INVALID_VALUE from build with a NULL dup,
    // paper SIX) is numerically in the API band.
    if (static_cast<int>(info) < 0) {
      // The message is built before taking mu_ — string concatenation
      // allocates, and an allocation must not throw with the lock held.
      std::string msg = std::string("deferred ") +
                        (failed_op != nullptr ? failed_op : "method") +
                        " failed: " + info_name(info);
      bool first;
      {
        // Record the error and discard the rest of the sequence in one
        // critical section, so no other thread can observe the object
        // poisoned but still holding methods it will never run.
        MutexLock lock(mu_);
        first = poison_locked(info, msg);
        queue_.clear();
      }
      if (first) obs::fr_auto_dump(msg.c_str());
      return info;
    }
  }
  Info info = flush_pending();
  if (static_cast<int>(info) < 0) {
    poison(info, std::string("pending-element flush failed: ") +
                     info_name(info));
    return info;
  }
  MutexLock lock(mu_);
  return err_;
}

Info ObjectBase::wait(WaitMode mode) {
  Info info = complete();
  if (mode == WaitMode::kMaterialize) {
    MutexLock lock(mu_);
    Info reported = err_;
    err_ = Info::kSuccess;
    // The message is kept for post-mortem GrB_error inspection.
    return reported != Info::kSuccess ? reported : info;
  }
  return info;
}

void ObjectBase::poison(Info info, const std::string& msg) {
  bool first;
  {
    MutexLock lock(mu_);
    first = poison_locked(info, msg);
  }
  if (first) obs::fr_auto_dump(msg.c_str());
}

bool ObjectBase::poison_locked(Info info, const std::string& msg) {
  if (err_ != Info::kSuccess) return false;
  err_ = info;
  errmsg_ = msg;
  // First error transition: log it so the temporally-detached failure
  // (the deferred method ran long after the call that queued it) is
  // attributable.  Only the lock-free ring record happens here; the
  // auto dump formats strings, takes the recorder's control mutex and
  // writes files, so callers run it after releasing mu_.
  if (!obs::flight_enabled()) return false;
  obs::fr_record(obs::FrKind::kPoison, obs::current_op(),
                 static_cast<int32_t>(info));
  return true;
}

const char* ObjectBase::error_string() const {
  MutexLock lock(mu_);
  return errmsg_.c_str();
}

Info defer_or_run(ObjectBase* out, std::function<Info()> op, FuseNode node) {
  // First touch of the output object inside an API call: stamp the
  // thread's attribution slot with its tenant (sticky for the scope).
  if (obs::enabled()) {
    uint64_t ctx_id = out->obs_ctx_id();
    if (ctx_id != 0) obs::set_current_ctx(ctx_id);
  }
  if (out->mode() == Mode::kBlocking) {
    Info info = op();
    if (static_cast<int>(info) < 0) {
      out->poison(info, std::string(obs::current_op()) +
                            " failed: " + info_name(info));
    }
    return info;
  }
  out->enqueue(std::move(op), std::move(node));
  return Info::kSuccess;
}

}  // namespace grb
