// Deferred-sequence fusion planner (see fusion.hpp).
//
// Plan shape: one linear walk of the drained batch.
//  * Dead-write elimination: the LAST killer (full_replace without
//    reading the target, not must_run) makes every earlier non-must_run
//    node dead — its only effect, writing the target, is overwritten
//    before anyone can observe it (reads force completion first, so a
//    mid-queue read never sees an elided state).  Dead pending-tuple
//    folds convert to drop_prefix so a later fold cannot resurrect the
//    killed tuples.
//  * Chain grouping: surviving contiguous runs of fusable kMap/kZip
//    nodes (length >= 2) execute as one fused pass group.  Because at
//    most one killer survives and every survivor before it is must_run
//    (never fusable), snapshot-source map heads can only open a group.
//  * Everything else runs eagerly, exactly as the pre-planner loop did.
#include "exec/fusion.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "containers/matrix.hpp"
#include "containers/vector.hpp"
#include "exec/object_base.hpp"
#include "obs/decision.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "ops/fused_exec.hpp"

namespace grb {
namespace {

// -1 = unresolved (consult GRB_FUSION on first use), else 0/1.
std::atomic<int> g_fusion{-1};

int resolve_fusion_from_env() {
  const char* env = std::getenv("GRB_FUSION");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0))
    return 0;
  return 1;
}

bool is_killer(const FuseNode& n) {
  return !n.reads_out && n.full_replace && !n.must_run &&
         n.kind != FuseNode::Kind::kFlush;
}

bool is_fusable(const FuseNode& n, bool is_vector) {
  if (n.must_run) return false;
  if (n.kind == FuseNode::Kind::kMap) return true;
  // Zip fusion is vector-only (matrix elementwise stays opaque).
  return n.kind == FuseNode::Kind::kZip && is_vector;
}

// The eager per-node execution the planner falls back to — identical to
// the historical complete() loop body, attribution included.  The scope
// replays the node's enqueue-time context so the execution is charged to
// its tenant, and flow_step closes the enqueue→exec arrow.
Info run_node_eager(Deferred& d) {
  obs::CurrentOpScope op_scope(d.op, d.ctx_id);
  if (obs::flight_enabled())
    obs::fr_record(obs::FrKind::kDeferredExec, d.op, 0, d.ctx_id, d.flow_id);
  uint64_t t0 = obs::telemetry_enabled() ? obs::now_ns() : 0;
  obs::flow_step(d.op, d.flow_id);
  Info info = d.fn();
  obs::deferred_return(d.op, t0, d.enqueued_ns, static_cast<int>(info) < 0);
  return info;
}

}  // namespace

bool fusion_enabled() {
  int v = g_fusion.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_fusion_from_env();
    g_fusion.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_fusion_enabled(bool on) {
  g_fusion.store(on ? 1 : 0, std::memory_order_relaxed);
}

Info fusion_execute_batch(ObjectBase* obj, std::vector<Deferred>& batch,
                          const char** failed_op) {
  auto run_eager_from = [&](size_t from) -> Info {
    for (size_t k = from; k < batch.size(); ++k) {
      Info info = run_node_eager(batch[k]);
      if (static_cast<int>(info) < 0) {
        *failed_op = batch[k].op;
        return info;
      }
    }
    return Info::kSuccess;
  };
  if (!fusion_enabled() || batch.size() < 2) return run_eager_from(0);

  auto* vec = dynamic_cast<Vector*>(obj);
  auto* mat = dynamic_cast<Matrix*>(obj);
  const bool is_vector = vec != nullptr;
  if (vec == nullptr && mat == nullptr) return run_eager_from(0);

  uint64_t plan_t0 = obs::trace_enabled() ? obs::now_ns() : 0;
  const size_t n = batch.size();
  constexpr size_t npos = ~size_t{0};

  // --- Dead-write elimination -------------------------------------------
  size_t last_killer = npos;
  for (size_t k = 0; k < n; ++k)
    if (is_killer(batch[k].node)) last_killer = k;
  std::vector<uint8_t> dead(n, 0);
  uint64_t dead_writes = 0;
  if (last_killer != npos) {
    for (size_t k = 0; k < last_killer; ++k) {
      if (!batch[k].node.must_run) {
        dead[k] = 1;
        ++dead_writes;
      }
    }
  }

  // --- Contiguous fusable runs ------------------------------------------
  struct Group {
    size_t b, e;  // [b, e)
  };
  std::vector<Group> groups;
  size_t run_start = npos;
  auto close_run = [&](size_t end) {
    if (run_start != npos && end - run_start >= 2)
      groups.push_back(Group{run_start, end});
    run_start = npos;
  };
  for (size_t k = 0; k < n; ++k) {
    const FuseNode& nd = batch[k].node;
    if (dead[k] != 0 || !is_fusable(nd, is_vector)) {
      close_run(k);
      continue;
    }
    // A map whose source is an input snapshot restarts the chain from
    // that snapshot; it may only open a group.
    if (nd.kind == FuseNode::Kind::kMap &&
        (nd.vsrc != nullptr || nd.msrc != nullptr))
      close_run(k);
    if (run_start == npos) run_start = k;
  }
  close_run(n);

  uint64_t chains = groups.size();
  uint64_t ops_fused = 0;
  for (const Group& g : groups) ops_fused += g.e - g.b;
  // Decision audit: one record per batch the planner actually rewrote
  // (chains found or writes killed) — predicted cost is the node count
  // the fused plan executes, the alternative the eager replay of the
  // full batch.  Measured after execution with the nodes that ran
  // fused, so a plan that predicted big fusion wins but mostly fell
  // back to eager shows up as a mispredict.
  obs::DecisionTicket plan_ticket;
  if (chains > 0 || dead_writes > 0) {
    obs::fusion_plan(chains, ops_fused, dead_writes);
    plan_ticket = obs::decision_record(
        obs::DecisionSite::kFusionPlan, "fused", "eager",
        static_cast<double>(n - dead_writes),
        static_cast<double>(n), "fusion.plan");
    if (obs::flight_enabled())
      obs::fr_record(obs::FrKind::kFusionPlan, "fusion.plan",
                     static_cast<int32_t>(ops_fused));
    if (obs::trace_enabled()) obs::fusion_span("fusion.plan", plan_t0);
  }

  // --- Execute -----------------------------------------------------------
  size_t gi = 0;
  for (size_t k = 0; k < n; ++k) {
    if (dead[k] != 0) {
      // Dead writes are skipped wholesale (no execution, no telemetry);
      // a dead pending-tuple fold still discards its tuple prefix so a
      // later fold cannot resurrect what the killer erased.
      if (batch[k].node.kind == FuseNode::Kind::kFlush) {
        Info info = obj->drop_prefix(batch[k].node.flush_upto);
        if (static_cast<int>(info) < 0) {
          *failed_op = batch[k].op;
          return info;
        }
      }
      continue;
    }
    if (gi < groups.size() && groups[gi].b == k) {
      const Group& g = groups[gi++];
      if (obs::flight_enabled())
        obs::fr_record(obs::FrKind::kFusionExec, batch[g.b].op,
                       static_cast<int32_t>(g.e - g.b), batch[g.b].ctx_id,
                       batch[g.b].flow_id);
      uint64_t exec_t0 = obs::trace_enabled() ? obs::now_ns() : 0;
      Info info = is_vector
                      ? run_fused_vector_group(vec, batch, g.b, g.e)
                      : run_fused_matrix_group(mat, batch, g.b, g.e);
      if (obs::trace_enabled()) obs::fusion_span("fusion.exec", exec_t0);
      if (static_cast<int>(info) < 0) {
        *failed_op = batch[g.b].op;
        return info;
      }
      k = g.e - 1;
      continue;
    }
    Info info = run_node_eager(batch[k]);
    if (static_cast<int>(info) < 0) {
      *failed_op = batch[k].op;
      return info;
    }
  }
  obs::decision_measure(plan_ticket, n - dead_writes);
  return Info::kSuccess;
}

}  // namespace grb
