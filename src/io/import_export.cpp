#include "io/import_export.hpp"

#include <algorithm>
#include <numeric>

namespace grb {
namespace {

bool is_matrix_format(Format f) {
  return f == Format::kCsrMatrix || f == Format::kCscMatrix ||
         f == Format::kCooMatrix || f == Format::kDenseRowMatrix ||
         f == Format::kDenseColMatrix;
}

bool is_vector_format(Format f) {
  return f == Format::kSparseVector || f == Format::kDenseVector;
}

// Sorts the column indices (and values) of each CSR row in place.
void sort_rows(MatrixData& m) {
  size_t sz = m.type->size();
  std::vector<size_t> order;
  std::vector<Index> tmp_col;
  std::vector<std::byte> tmp_val;
  for (Index r = 0; r < m.nrows; ++r) {
    size_t lo = m.ptr[r], hi = m.ptr[r + 1];
    if (hi - lo < 2) continue;
    bool sorted = true;
    for (size_t k = lo + 1; k < hi; ++k)
      if (m.col[k] < m.col[k - 1]) {
        sorted = false;
        break;
      }
    if (sorted) continue;
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return m.col[lo + a] < m.col[lo + b];
    });
    tmp_col.assign(m.col.begin() + lo, m.col.begin() + hi);
    tmp_val.resize((hi - lo) * sz);
    std::memcpy(tmp_val.data(), m.vals.at(lo), (hi - lo) * sz);
    for (size_t k = 0; k < order.size(); ++k) {
      m.col[lo + k] = tmp_col[order[k]];
      std::memcpy(m.vals.at(lo + k), tmp_val.data() + order[k] * sz, sz);
    }
  }
}

Info build_from_coo(MatrixData& m, const Index* ri, const Index* ci,
                    const void* values, Index nvals) {
  size_t sz = m.type->size();
  for (Index k = 0; k < nvals; ++k)
    if (ri[k] >= m.nrows || ci[k] >= m.ncols) return Info::kInvalidIndex;
  std::vector<size_t> order(nvals);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ri[a] != ri[b] ? ri[a] < ri[b] : ci[a] < ci[b];
  });
  const auto* src = static_cast<const std::byte*>(values);
  m.col.resize(nvals);
  m.vals.resize(nvals);
  for (Index k = 0; k < nvals; ++k) {
    m.ptr[ri[order[k]] + 1] += 1;
    m.col[k] = ci[order[k]];
    std::memcpy(m.vals.at(k), src + order[k] * sz, sz);
  }
  for (Index r = 0; r < m.nrows; ++r) m.ptr[r + 1] += m.ptr[r];
  // Duplicate coordinates are invalid for import (no dup operator).
  for (Index r = 0; r < m.nrows; ++r)
    for (size_t k = m.ptr[r] + 1; k < m.ptr[r + 1]; ++k)
      if (m.col[k] == m.col[k - 1]) return Info::kInvalidValue;
  return Info::kSuccess;
}

}  // namespace

Info matrix_import(Matrix** a, const Type* type, Index nrows, Index ncols,
                   const Index* indptr, const Index* indices,
                   const void* values, Index indptr_len, Index indices_len,
                   Index values_len, Format format, Context* ctx) {
  if (a == nullptr || type == nullptr) return Info::kNullPointer;
  if (!is_matrix_format(format)) return Info::kInvalidValue;
  size_t sz = type->size();
  auto data = std::make_shared<MatrixData>(type, nrows, ncols);

  switch (format) {
    case Format::kCsrMatrix: {
      if (indptr == nullptr || (values == nullptr && values_len > 0))
        return Info::kNullPointer;
      if (indptr_len != nrows + 1) return Info::kInvalidValue;
      Index nvals = indptr[nrows];
      if (nvals > 0 && (indices == nullptr || values == nullptr))
        return Info::kNullPointer;
      if (indices_len < nvals || values_len < nvals)
        return Info::kInvalidValue;
      for (Index r = 0; r < nrows; ++r)
        if (indptr[r] > indptr[r + 1]) return Info::kInvalidValue;
      for (Index k = 0; k < nvals; ++k)
        if (indices[k] >= ncols) return Info::kInvalidIndex;
      data->ptr.assign(indptr, indptr + nrows + 1);
      data->col.assign(indices, indices + nvals);
      data->vals.resize(nvals);
      if (nvals > 0) std::memcpy(data->vals.data(), values, nvals * sz);
      sort_rows(*data);
      break;
    }
    case Format::kCscMatrix: {
      if (indptr == nullptr) return Info::kNullPointer;
      if (indptr_len != ncols + 1) return Info::kInvalidValue;
      Index nvals = indptr[ncols];
      if (nvals > 0 && (indices == nullptr || values == nullptr))
        return Info::kNullPointer;
      if (indices_len < nvals || values_len < nvals)
        return Info::kInvalidValue;
      // Expand CSC to COO (row = indices[k], col = containing column).
      std::vector<Index> ri(nvals), ci(nvals);
      for (Index c = 0; c < ncols; ++c) {
        if (indptr[c] > indptr[c + 1]) return Info::kInvalidValue;
        for (Index k = indptr[c]; k < indptr[c + 1]; ++k) {
          ri[k] = indices[k];
          ci[k] = c;
        }
      }
      GRB_RETURN_IF_ERROR(
          build_from_coo(*data, ri.data(), ci.data(), values, nvals));
      break;
    }
    case Format::kCooMatrix: {
      // Table III: indptr = column indices, indices = row indices.
      Index nvals = values_len;
      if (nvals > 0 &&
          (indptr == nullptr || indices == nullptr || values == nullptr))
        return Info::kNullPointer;
      if (indptr_len != nvals || indices_len != nvals)
        return Info::kInvalidValue;
      GRB_RETURN_IF_ERROR(
          build_from_coo(*data, indices, indptr, values, nvals));
      break;
    }
    case Format::kDenseRowMatrix:
    case Format::kDenseColMatrix: {
      if (values == nullptr && nrows * ncols > 0) return Info::kNullPointer;
      if (values_len < nrows * ncols) return Info::kInvalidValue;
      const auto* src = static_cast<const std::byte*>(values);
      data->col.resize(nrows * ncols);
      data->vals.resize(nrows * ncols);
      size_t w = 0;
      for (Index r = 0; r < nrows; ++r) {
        for (Index c = 0; c < ncols; ++c, ++w) {
          data->col[w] = c;
          size_t off = format == Format::kDenseRowMatrix
                           ? (static_cast<size_t>(r) * ncols + c)
                           : (static_cast<size_t>(c) * nrows + r);
          std::memcpy(data->vals.at(w), src + off * sz, sz);
        }
        data->ptr[r + 1] = w;
      }
      break;
    }
    default:
      return Info::kInvalidValue;
  }

  Matrix* out = nullptr;
  GRB_RETURN_IF_ERROR(Matrix::new_(&out, type, nrows, ncols, ctx));
  out->publish(std::move(data));
  *a = out;
  return Info::kSuccess;
}

Info matrix_export_size(Index* indptr_len, Index* indices_len,
                        Index* values_len, Format format, const Matrix* a) {
  if (indptr_len == nullptr || indices_len == nullptr ||
      values_len == nullptr)
    return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  if (!is_matrix_format(format)) return Info::kInvalidValue;
  Index nvals = 0;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->nvals(&nvals));
  switch (format) {
    case Format::kCsrMatrix:
      *indptr_len = a->nrows() + 1;
      *indices_len = nvals;
      *values_len = nvals;
      break;
    case Format::kCscMatrix:
      *indptr_len = a->ncols() + 1;
      *indices_len = nvals;
      *values_len = nvals;
      break;
    case Format::kCooMatrix:
      *indptr_len = nvals;
      *indices_len = nvals;
      *values_len = nvals;
      break;
    case Format::kDenseRowMatrix:
    case Format::kDenseColMatrix:
      *indptr_len = 0;
      *indices_len = 0;
      *values_len = a->nrows() * a->ncols();
      break;
    default:
      return Info::kInvalidValue;
  }
  return Info::kSuccess;
}

Info matrix_export(Index* indptr, Index* indices, void* values,
                   Format format, const Matrix* a) {
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  if (!is_matrix_format(format)) return Info::kInvalidValue;
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  size_t sz = snap->type->size();
  Index nvals = snap->nvals();
  switch (format) {
    case Format::kCsrMatrix: {
      if (indptr == nullptr ||
          (nvals > 0 && (indices == nullptr || values == nullptr)))
        return Info::kNullPointer;
      std::copy(snap->ptr.begin(), snap->ptr.end(), indptr);
      std::copy(snap->col.begin(), snap->col.end(), indices);
      if (nvals > 0) std::memcpy(values, snap->vals.data(), nvals * sz);
      break;
    }
    case Format::kCscMatrix: {
      if (indptr == nullptr ||
          (nvals > 0 && (indices == nullptr || values == nullptr)))
        return Info::kNullPointer;
      auto t = format_transpose_view(snap);  // CSC of A == CSR of A'
      std::copy(t->ptr.begin(), t->ptr.end(), indptr);
      std::copy(t->col.begin(), t->col.end(), indices);
      if (nvals > 0) std::memcpy(values, t->vals.data(), nvals * sz);
      break;
    }
    case Format::kCooMatrix: {
      if (nvals > 0 &&
          (indptr == nullptr || indices == nullptr || values == nullptr))
        return Info::kNullPointer;
      size_t w = 0;
      for (Index r = 0; r < snap->nrows; ++r) {
        for (size_t k = snap->ptr[r]; k < snap->ptr[r + 1]; ++k, ++w) {
          indices[w] = r;            // rows in `indices` (Table III)
          indptr[w] = snap->col[k];  // cols in `indptr` (Table III)
        }
      }
      if (nvals > 0) std::memcpy(values, snap->vals.data(), nvals * sz);
      break;
    }
    case Format::kDenseRowMatrix:
    case Format::kDenseColMatrix: {
      if (values == nullptr && snap->nrows * snap->ncols > 0)
        return Info::kNullPointer;
      auto* dst = static_cast<std::byte*>(values);
      std::memset(dst, 0,
                  static_cast<size_t>(snap->nrows) * snap->ncols * sz);
      for (Index r = 0; r < snap->nrows; ++r) {
        for (size_t k = snap->ptr[r]; k < snap->ptr[r + 1]; ++k) {
          Index c = snap->col[k];
          size_t off = format == Format::kDenseRowMatrix
                           ? (static_cast<size_t>(r) * snap->ncols + c)
                           : (static_cast<size_t>(c) * snap->nrows + r);
          std::memcpy(dst + off * sz, snap->vals.at(k), sz);
        }
      }
      break;
    }
    default:
      return Info::kInvalidValue;
  }
  return Info::kSuccess;
}

Info matrix_export_hint(Format* format, const Matrix* a) {
  if (format == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  *format = Format::kCsrMatrix;  // internal storage is CSR
  return Info::kSuccess;
}

Info vector_import(Vector** v, const Type* type, Index n,
                   const Index* indices, const void* values,
                   Index indices_len, Index values_len, Format format,
                   Context* ctx) {
  if (v == nullptr || type == nullptr) return Info::kNullPointer;
  if (!is_vector_format(format)) return Info::kInvalidValue;
  size_t sz = type->size();
  auto data = std::make_shared<VectorData>(type, n);
  if (format == Format::kSparseVector) {
    Index nvals = values_len;
    if (nvals > 0 && (indices == nullptr || values == nullptr))
      return Info::kNullPointer;
    if (indices_len != nvals) return Info::kInvalidValue;
    for (Index k = 0; k < nvals; ++k)
      if (indices[k] >= n) return Info::kInvalidIndex;
    std::vector<size_t> order(nvals);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return indices[a] < indices[b]; });
    const auto* src = static_cast<const std::byte*>(values);
    data->ind.resize(nvals);
    data->vals.resize(nvals);
    for (Index k = 0; k < nvals; ++k) {
      data->ind[k] = indices[order[k]];
      if (k > 0 && data->ind[k] == data->ind[k - 1])
        return Info::kInvalidValue;  // duplicates invalid on import
      std::memcpy(data->vals.at(k), src + order[k] * sz, sz);
    }
  } else {  // kDenseVector
    if (values == nullptr && n > 0) return Info::kNullPointer;
    if (values_len < n) return Info::kInvalidValue;
    data->ind.resize(n);
    data->vals.resize(n);
    std::iota(data->ind.begin(), data->ind.end(), Index{0});
    if (n > 0) std::memcpy(data->vals.data(), values, n * sz);
  }
  Vector* out = nullptr;
  GRB_RETURN_IF_ERROR(Vector::new_(&out, type, n, ctx));
  out->publish(std::move(data));
  *v = out;
  return Info::kSuccess;
}

Info vector_export_size(Index* indices_len, Index* values_len, Format format,
                        const Vector* v) {
  if (indices_len == nullptr || values_len == nullptr)
    return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  if (!is_vector_format(format)) return Info::kInvalidValue;
  Index nvals = 0;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->nvals(&nvals));
  if (format == Format::kSparseVector) {
    *indices_len = nvals;
    *values_len = nvals;
  } else {
    *indices_len = 0;
    *values_len = v->size();
  }
  return Info::kSuccess;
}

Info vector_export(Index* indices, void* values, Format format,
                   const Vector* v) {
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  if (!is_vector_format(format)) return Info::kInvalidValue;
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&snap));
  size_t sz = snap->type->size();
  if (format == Format::kSparseVector) {
    Index nvals = snap->nvals();
    if (nvals > 0 && (indices == nullptr || values == nullptr))
      return Info::kNullPointer;
    std::copy(snap->ind.begin(), snap->ind.end(), indices);
    if (nvals > 0) std::memcpy(values, snap->vals.data(), nvals * sz);
  } else {
    if (values == nullptr && snap->n > 0) return Info::kNullPointer;
    auto* dst = static_cast<std::byte*>(values);
    std::memset(dst, 0, static_cast<size_t>(snap->n) * sz);
    for (size_t k = 0; k < snap->ind.size(); ++k)
      std::memcpy(dst + static_cast<size_t>(snap->ind[k]) * sz,
                  snap->vals.at(k), sz);
  }
  return Info::kSuccess;
}

Info vector_export_hint(Format* format, const Vector* v) {
  if (format == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  // Heuristic mirroring the paper's intent: suggest the cheaper format.
  Index nvals = 0;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->nvals(&nvals));
  *format = (nvals * 2 >= v->size()) ? Format::kDenseVector
                                     : Format::kSparseVector;
  return Info::kSuccess;
}

}  // namespace grb
