// Minimal Matrix Market I/O (coordinate format) so examples can exchange
// graphs with other tools.  Supports real/integer/pattern fields and the
// general/symmetric symmetry modes.
#pragma once

#include <string>

#include "ops/common.hpp"

namespace grb {

// Reads a Matrix Market file into a new FP64 matrix (pattern entries
// become 1.0; symmetric files are expanded).
Info read_matrix_market(Matrix** a, const std::string& path, Context* ctx);

// Writes a matrix as "coordinate real general" (values cast to double).
Info write_matrix_market(const Matrix* a, const std::string& path);

}  // namespace grb
