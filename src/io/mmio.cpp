#include "io/mmio.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace grb {

Info read_matrix_market(Matrix** a, const std::string& path, Context* ctx) {
  if (a == nullptr) return Info::kNullPointer;
  std::ifstream in(path);
  if (!in) return Info::kInvalidValue;
  std::string line;
  if (!std::getline(in, line)) return Info::kInvalidValue;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" ||
      format != "coordinate")
    return Info::kInvalidValue;
  bool pattern = field == "pattern";
  bool symmetric = symmetry == "symmetric";
  if (field != "real" && field != "integer" && field != "pattern")
    return Info::kInvalidValue;
  if (symmetry != "general" && symmetry != "symmetric")
    return Info::kInvalidValue;

  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  Index nrows = 0, ncols = 0, nnz = 0;
  dims >> nrows >> ncols >> nnz;

  std::vector<Index> ri, ci;
  std::vector<double> vals;
  ri.reserve(nnz);
  ci.reserve(nnz);
  vals.reserve(nnz);
  for (Index k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) return Info::kInvalidValue;
    std::istringstream row(line);
    Index i = 0, j = 0;
    double v = 1.0;
    row >> i >> j;
    if (!pattern) row >> v;
    if (i == 0 || j == 0 || i > nrows || j > ncols)
      return Info::kInvalidValue;
    ri.push_back(i - 1);
    ci.push_back(j - 1);
    vals.push_back(v);
    if (symmetric && i != j) {
      ri.push_back(j - 1);
      ci.push_back(i - 1);
      vals.push_back(v);
    }
  }
  Matrix* out = nullptr;
  GRB_RETURN_IF_ERROR(Matrix::new_(&out, TypeFP64(), nrows, ncols, ctx));
  const BinaryOp* dup = get_binary_op(BinOpCode::kPlus, TypeCode::kFP64);
  Info info = out->build(ri.data(), ci.data(), vals.data(),
                         static_cast<Index>(ri.size()), dup, TypeFP64());
  if (static_cast<int>(info) < 0) {
    Matrix::free(out);
    return info;
  }
  GRB_RETURN_IF_ERROR(out->wait(WaitMode::kMaterialize));
  *a = out;
  return Info::kSuccess;
}

Info write_matrix_market(const Matrix* a, const std::string& path) {
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  if (!types_compatible(TypeFP64(), snap->type))
    return Info::kDomainMismatch;
  std::ofstream out(path);
  if (!out) return Info::kInvalidValue;
  out.precision(17);  // round-trip-exact doubles
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << snap->nrows << " " << snap->ncols << " " << snap->nvals() << "\n";
  CastFn cast = cast_fn(TypeFP64(), snap->type);
  for (Index r = 0; r < snap->nrows; ++r) {
    for (size_t k = snap->ptr[r]; k < snap->ptr[r + 1]; ++k) {
      double v;
      if (cast != nullptr) {
        cast(&v, snap->vals.at(k));
      } else {
        std::memcpy(&v, snap->vals.at(k), sizeof(double));
      }
      out << (r + 1) << " " << (snap->col[k] + 1) << " " << v << "\n";
    }
  }
  return out.good() ? Info::kSuccess : Info::kInvalidValue;
}

}  // namespace grb
