// Serialize/deserialize API (paper §VII.B): an opaque byte-stream format
// suitable for sending objects "over the wire".
//
// The format is implementation-private (the paper explicitly allows this)
// and exploits that freedom to be compact: column indices are
// delta-encoded per row as LEB128 varints, which is what makes the
// paper's "custom serialization can save both space and compute time"
// claim measurable against CSR export (bench_m3_serialize).
//
// Layout (little-endian):
//   magic "GRB2" | u8 kind (1=matrix, 2=vector) | u8 typecode |
//   u64 type size | u64 dims... | u64 nvals |
//   varint-encoded structure | raw values | u64 FNV-1a checksum
// UDT payloads are raw bytes; deserialize of a UDT requires the caller to
// supply the (structurally identical) type handle.
#pragma once

#include "ops/common.hpp"

namespace grb {

Info matrix_serialize_size(Index* size, const Matrix* a);
// `size` in/out: capacity in, bytes written out.
Info matrix_serialize(void* buffer, Index* size, const Matrix* a);
// `type` may be nullptr for builtin-typed payloads; required for UDTs.
Info matrix_deserialize(Matrix** a, const Type* type, const void* buffer,
                        Index size, Context* ctx);

Info vector_serialize_size(Index* size, const Vector* v);
Info vector_serialize(void* buffer, Index* size, const Vector* v);
Info vector_deserialize(Vector** v, const Type* type, const void* buffer,
                        Index size, Context* ctx);

}  // namespace grb
