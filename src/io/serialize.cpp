#include "io/serialize.hpp"

namespace grb {
namespace {

constexpr uint32_t kMagic = 0x32425247;  // "GRB2"
constexpr uint8_t kKindMatrix = 1;
constexpr uint8_t kKindVector = 2;

// --- primitive writers/readers ---------------------------------------------

class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(uint32_t v) { raw(&v, 4); }
  void u64(uint64_t v) { raw(&v, 8); }
  void raw(const void* p, size_t n) {
    if (n == 0) return;
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void varint(uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<uint8_t>(v));
  }
  const std::vector<std::byte>& data() const { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  Reader(const void* p, size_t n)
      : p_(static_cast<const std::byte*>(p)), n_(n) {}

  bool u8(uint8_t* v) {
    if (pos_ + 1 > n_) return false;
    *v = static_cast<uint8_t>(p_[pos_++]);
    return true;
  }
  bool u32(uint32_t* v) { return raw(v, 4); }
  bool u64(uint64_t* v) { return raw(v, 8); }
  bool raw(void* out, size_t n) {
    if (pos_ + n > n_) return false;
    if (n > 0) std::memcpy(out, p_ + pos_, n);
    pos_ += n;
    return true;
  }
  const void* peek(size_t n) const { return pos_ + n <= n_ ? p_ + pos_ : nullptr; }
  bool skip(size_t n) {
    if (pos_ + n > n_) return false;
    pos_ += n;
    return true;
  }
  bool varint(uint64_t* v) {
    uint64_t out = 0;
    int shift = 0;
    for (;;) {
      uint8_t b;
      if (!u8(&b) || shift > 63) return false;
      out |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    *v = out;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  const std::byte* p_;
  size_t n_;
  size_t pos_ = 0;
};

uint64_t fnv1a(const void* p, size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::byte> encode_matrix(const MatrixData& m) {
  Writer w;
  w.u32(kMagic);
  w.u8(kKindMatrix);
  w.u8(static_cast<uint8_t>(m.type->code()));
  w.u64(m.type->size());
  w.u64(m.nrows);
  w.u64(m.ncols);
  w.u64(m.nvals());
  for (Index r = 0; r < m.nrows; ++r) {
    size_t lo = m.ptr[r], hi = m.ptr[r + 1];
    w.varint(hi - lo);
    Index prev = 0;
    for (size_t k = lo; k < hi; ++k) {
      w.varint(m.col[k] - prev);  // strictly increasing within a row
      prev = m.col[k];
    }
  }
  w.raw(m.vals.data(), m.vals.byte_size());
  Writer out;
  out.raw(w.data().data(), w.data().size());
  out.u64(fnv1a(w.data().data(), w.data().size()));
  return out.data();
}

std::vector<std::byte> encode_vector(const VectorData& v) {
  Writer w;
  w.u32(kMagic);
  w.u8(kKindVector);
  w.u8(static_cast<uint8_t>(v.type->code()));
  w.u64(v.type->size());
  w.u64(v.n);
  w.u64(v.nvals());
  Index prev = 0;
  for (size_t k = 0; k < v.ind.size(); ++k) {
    w.varint(v.ind[k] - prev);
    prev = v.ind[k];
  }
  w.raw(v.vals.data(), v.vals.byte_size());
  Writer out;
  out.raw(w.data().data(), w.data().size());
  out.u64(fnv1a(w.data().data(), w.data().size()));
  return out.data();
}

// Validates header + checksum; resolves the payload type.
Info open_payload(Reader* r, const void* buffer, Index size, uint8_t kind,
                  const Type* user_type, const Type** type_out) {
  if (buffer == nullptr) return Info::kNullPointer;
  if (size < 12) return Info::kInvalidObject;
  uint64_t stored_sum;
  std::memcpy(&stored_sum, static_cast<const std::byte*>(buffer) + size - 8,
              8);
  if (fnv1a(buffer, size - 8) != stored_sum) return Info::kInvalidObject;
  uint32_t magic;
  uint8_t k, tc;
  uint64_t tsize;
  if (!r->u32(&magic) || magic != kMagic) return Info::kInvalidObject;
  if (!r->u8(&k) || k != kind) return Info::kInvalidObject;
  if (!r->u8(&tc)) return Info::kInvalidObject;
  if (!r->u64(&tsize)) return Info::kInvalidObject;
  if (tc == static_cast<uint8_t>(TypeCode::kUdt)) {
    if (user_type == nullptr) return Info::kNullPointer;
    if (user_type->size() != tsize) return Info::kDomainMismatch;
    *type_out = user_type;
  } else {
    if (tc >= kNumBuiltinTypes) return Info::kInvalidObject;
    const Type* t = Type::builtin(static_cast<TypeCode>(tc));
    if (t == nullptr || t->size() != tsize) return Info::kInvalidObject;
    if (user_type != nullptr && user_type != t) return Info::kDomainMismatch;
    *type_out = t;
  }
  return Info::kSuccess;
}

}  // namespace

Info matrix_serialize_size(Index* size, const Matrix* a) {
  if (size == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  // Exact size via a dry encode: simple, and still cheaper than the
  // round-trip through a non-opaque format it is compared against.
  *size = static_cast<Index>(encode_matrix(*snap).size());
  return Info::kSuccess;
}

Info matrix_serialize(void* buffer, Index* size, const Matrix* a) {
  if (buffer == nullptr || size == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  auto bytes = encode_matrix(*snap);
  if (bytes.size() > *size) return Info::kInsufficientSpace;
  std::memcpy(buffer, bytes.data(), bytes.size());
  *size = static_cast<Index>(bytes.size());
  return Info::kSuccess;
}

Info matrix_deserialize(Matrix** a, const Type* type, const void* buffer,
                        Index size, Context* ctx) {
  if (a == nullptr) return Info::kNullPointer;
  Reader r(buffer, size - 8);
  const Type* t = nullptr;
  GRB_RETURN_IF_ERROR(open_payload(&r, buffer, size, kKindMatrix, type, &t));
  uint64_t nrows, ncols, nvals;
  if (!r.u64(&nrows) || !r.u64(&ncols) || !r.u64(&nvals))
    return Info::kInvalidObject;
  auto data = std::make_shared<MatrixData>(t, nrows, ncols);
  data->col.reserve(nvals);
  for (Index row = 0; row < nrows; ++row) {
    uint64_t len;
    if (!r.varint(&len)) return Info::kInvalidObject;
    Index prev = 0;
    for (uint64_t k = 0; k < len; ++k) {
      uint64_t delta;
      if (!r.varint(&delta)) return Info::kInvalidObject;
      prev += delta;
      if (prev >= ncols) return Info::kInvalidObject;
      data->col.push_back(prev);
    }
    data->ptr[row + 1] = data->col.size();
  }
  if (data->col.size() != nvals) return Info::kInvalidObject;
  data->vals.resize(nvals);
  if (!r.raw(data->vals.data(), nvals * t->size()))
    return Info::kInvalidObject;
  Matrix* out = nullptr;
  GRB_RETURN_IF_ERROR(Matrix::new_(&out, t, nrows, ncols, ctx));
  out->publish(std::move(data));
  *a = out;
  return Info::kSuccess;
}

Info vector_serialize_size(Index* size, const Vector* v) {
  if (size == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&snap));
  *size = static_cast<Index>(encode_vector(*snap).size());
  return Info::kSuccess;
}

Info vector_serialize(void* buffer, Index* size, const Vector* v) {
  if (buffer == nullptr || size == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&snap));
  auto bytes = encode_vector(*snap);
  if (bytes.size() > *size) return Info::kInsufficientSpace;
  std::memcpy(buffer, bytes.data(), bytes.size());
  *size = static_cast<Index>(bytes.size());
  return Info::kSuccess;
}

Info vector_deserialize(Vector** v, const Type* type, const void* buffer,
                        Index size, Context* ctx) {
  if (v == nullptr) return Info::kNullPointer;
  Reader r(buffer, size - 8);
  const Type* t = nullptr;
  GRB_RETURN_IF_ERROR(open_payload(&r, buffer, size, kKindVector, type, &t));
  uint64_t n, nvals;
  if (!r.u64(&n) || !r.u64(&nvals)) return Info::kInvalidObject;
  auto data = std::make_shared<VectorData>(t, n);
  data->ind.reserve(nvals);
  Index prev = 0;
  for (uint64_t k = 0; k < nvals; ++k) {
    uint64_t delta;
    if (!r.varint(&delta)) return Info::kInvalidObject;
    prev += delta;
    if (prev >= n) return Info::kInvalidObject;
    data->ind.push_back(prev);
  }
  data->vals.resize(nvals);
  if (!r.raw(data->vals.data(), nvals * t->size()))
    return Info::kInvalidObject;
  Vector* out = nullptr;
  GRB_RETURN_IF_ERROR(Vector::new_(&out, t, n, ctx));
  out->publish(std::move(data));
  *v = out;
  return Info::kSuccess;
}

}  // namespace grb
