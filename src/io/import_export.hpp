// Import/export between GraphBLAS containers and the non-opaque formats
// of paper §VII.A / Table III.
//
// Table III quirk followed verbatim: in GrB_COO_MATRIX the `indptr`
// array holds COLUMN indices and `indices` holds ROW indices.
//
// Dense exports materialize absent elements as zero bytes of the domain
// (documented implementation behaviour; the spec's dense formats assume
// all elements are stored).
#pragma once

#include "ops/common.hpp"

namespace grb {

// GrB_Format with pinned values (paper §IX requires enumeration values be
// specified so programs link against any conforming library).
enum class Format : int {
  kCsrMatrix = 0,
  kCscMatrix = 1,
  kCooMatrix = 2,
  kDenseRowMatrix = 3,
  kDenseColMatrix = 4,
  kSparseVector = 5,
  kDenseVector = 6,
};

// --- matrices ---------------------------------------------------------------

// Constructs a new matrix from external arrays (the data is copied; the
// caller keeps ownership of its arrays).  Array lengths are validated
// against the format's requirements.  `values_len` counts elements.
Info matrix_import(Matrix** a, const Type* type, Index nrows, Index ncols,
                   const Index* indptr, const Index* indices,
                   const void* values, Index indptr_len, Index indices_len,
                   Index values_len, Format format, Context* ctx);

// Sizes (in elements) of the arrays matrix_export will fill, so the user
// can allocate them by any means (paper: custom allocator, mmap, ...).
Info matrix_export_size(Index* indptr_len, Index* indices_len,
                        Index* values_len, Format format, const Matrix* a);

Info matrix_export(Index* indptr, Index* indices, void* values,
                   Format format, const Matrix* a);

// The implementation's preferred export format (never GrB_NO_VALUE here:
// the internal storage is CSR).
Info matrix_export_hint(Format* format, const Matrix* a);

// --- vectors ----------------------------------------------------------------

Info vector_import(Vector** v, const Type* type, Index n,
                   const Index* indices, const void* values,
                   Index indices_len, Index values_len, Format format,
                   Context* ctx);
Info vector_export_size(Index* indices_len, Index* values_len, Format format,
                        const Vector* v);
Info vector_export(Index* indices, void* values, Format format,
                   const Vector* v);
Info vector_export_hint(Format* format, const Vector* v);

}  // namespace grb
