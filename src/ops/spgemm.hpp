// Adaptive SpGEMM engine (paper §II: performance lives or dies on
// avoiding per-scalar overhead and wasted memory traffic).
//
// A cheap symbolic pass computes per-row flop counts (sum over A(i,k) of
// nnz(B(k,:))) and from them an nnz upper bound per row.  The counts
// drive three decisions:
//
//   1. per-row accumulator selection — a compact open-addressing hash
//      SPA for sparse/hypersparse rows, a dense O(ncols) SPA only when
//      the row's flop estimate justifies touching every column AND the
//      dense footprint fits a byte budget (so a 2^40-column hypersparse
//      matrix can never OOM the kernel);
//   2. flop-balanced (not row-balanced) contiguous block partitioning
//      handed to the GrB_Context thread pool;
//   3. exact reserve() of per-block output staging, killing per-entry
//      reallocation; the final CSR arrays are sized exactly and filled
//      with block-sized memcpys.
//
// Unlike the seed kernel (structural symbolic expansion + full numeric
// re-expansion), the engine expands each row ONCE: the numeric pass
// accumulates into block-local staging, and assembly is a copy.  All
// accumulators fold the products of a row in identical (ka, kb) visit
// order and emit columns sorted, so hash/dense/reference modes, any
// partition, and any thread count produce bitwise-identical results —
// the determinism contract of DESIGN.md §7.
//
// Scratch (hash tables, dense SPA, probe bitmaps) lives in the per-
// thread ScratchArena (exec/thread_pool.hpp), so repeated ops stop
// paying allocation + first-touch page-fault cost.
//
// Overrides: GRB_SPGEMM=hash|dense|auto|reference pins the accumulator
// choice (reference = the seed two-pass dense-SPA kernel, kept for
// ablation benches and the differential oracle); GRB_SPGEMM_DENSE_BUDGET
// sets the dense-scratch byte cap.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "containers/matrix.hpp"
#include "containers/vector.hpp"
#include "exec/context.hpp"
#include "exec/thread_pool.hpp"
#include "obs/decision.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace grb {

enum class SpgemmMode {
  kAuto = 0,       // per-row heuristic (the default)
  kHash = 1,       // always hash SPA
  kDense = 2,      // dense SPA whenever the budget allows
  kReference = 3,  // seed two-pass dense-SPA kernel (ablation baseline)
};

SpgemmMode spgemm_mode();
void set_spgemm_mode(SpgemmMode mode);

// Byte cap for any O(ncols)-shaped scratch (dense SPA, transpose column
// pointers, dense vector gathers).  Default 64 MiB; GRB_SPGEMM_DENSE_BUDGET
// overrides.
size_t spgemm_dense_budget();
void set_spgemm_dense_budget(size_t bytes);

// --- symbolic pass ---------------------------------------------------------

// Per-row flop counts for A*B: flops[i] = sum over A(i,k) with
// k < nrows(B) of nnz(B(k,:)).  total is the whole-product estimate the
// masked-dot cost model and the flops telemetry reuse.
struct SpgemmRowCosts {
  std::vector<uint64_t> flops;
  uint64_t total = 0;
};

// Computes (or returns a cached copy of) the row costs for the snapshot
// pair.  Snapshots are immutable copy-on-write values, so pointer
// identity keys a small cache: strategy probes, the engine, and the
// flops telemetry all reuse one O(nnz(A)) scan per (A, B) pair.
std::shared_ptr<const SpgemmRowCosts> spgemm_row_costs(
    const std::shared_ptr<const MatrixData>& a,
    const std::shared_ptr<const MatrixData>& b);

// Drops cached cost entries (library_finalize).
void spgemm_cost_cache_clear();

// --- accumulator policy ----------------------------------------------------

// Resolved per-product policy: which accumulator does a row with
// `row_flops` estimated products get?
struct SpgemmPolicy {
  SpgemmMode mode;
  bool dense_ok;         // dense footprint fits the byte budget
  bool dense_always;     // footprint small enough to always prefer dense
  uint64_t dense_flops;  // flop threshold justifying an O(ncols) touch

  bool use_dense(uint64_t row_flops) const {
    switch (mode) {
      case SpgemmMode::kDense:
        // A pinned dense mode still honors the budget: over it, the
        // hash SPA is the only allocation that cannot abort the process.
        return dense_ok;
      case SpgemmMode::kHash:
        return false;
      default:
        return dense_ok && (dense_always || row_flops >= dense_flops);
    }
  }
};

SpgemmPolicy spgemm_policy(Index ncols, size_t zsize);

// Flop-balanced contiguous row blocks: boundaries[b]..boundaries[b+1] is
// block b, chosen so each block carries ~total/nblocks of the weight
// flops[i] + 1 (the +1 keeps empty rows from collapsing into one block).
std::vector<Index> spgemm_partition(const SpgemmRowCosts& costs, Index nrows,
                                    Index nblocks);

// --- accumulators ----------------------------------------------------------

// Block-local staged output: rows are appended in order, assembly copies
// the whole block into the final CSR arrays with one memcpy each.
struct SpgemmStage {
  std::vector<Index> col;
  std::vector<std::byte> vals;

  // Appends room for n entries; returns write cursors.
  std::pair<Index*, std::byte*> grow(size_t n, size_t zsize) {
    size_t oc = col.size();
    col.resize(oc + n);
    size_t ov = vals.size();
    vals.resize(ov + n * zsize);
    return {col.data() + oc, vals.data() + ov};
  }
};

// Open-addressing hash SPA sized to the row's flop estimate.  Keys are
// stored as column+1 so a zero-filled table means "all empty", which
// lets the arena's zeroed-buffer protocol cover the key array.  The
// touched list stores (column, slot) pairs: after the sorted emit the
// row resets its keys by direct slot index — open-addressing probe
// chains are never broken by deletion because the whole table empties
// at once.
class HashSpa {
 public:
  void begin_row(ScratchArena& arena, uint64_t expected, size_t zsize) {
    zsize_ = zsize;
    size_t want = 16;
    while (want < 2 * expected) want <<= 1;  // load factor <= 1/2
    mask_ = want - 1;
    keys_ = reinterpret_cast<Index*>(
        arena.request_zeroed(ScratchArena::kHashKeys, want * sizeof(Index)));
    vals_ = arena.request(ScratchArena::kHashVals, want * zsize);
    pairs_ = reinterpret_cast<Pair*>(
        arena.request(ScratchArena::kHashPairs, want * sizeof(Pair)));
    count_ = 0;
  }

  // Returns the accumulator slot for column j; *fresh reports first touch.
  void* probe(Index j, bool* fresh) {
    const Index key = j + 1;
    uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 29;
    size_t idx = static_cast<size_t>(h) & mask_;
    for (;;) {
      Index cur = keys_[idx];
      if (cur == key) {
        *fresh = false;
        return vals_ + idx * zsize_;
      }
      if (cur == 0) {
        keys_[idx] = key;
        pairs_[count_++] = Pair{j, static_cast<Index>(idx)};
        *fresh = true;
        return vals_ + idx * zsize_;
      }
      idx = (idx + 1) & mask_;
    }
  }

  size_t count() const { return count_; }

  // Sorted emit into (cols, vals), then table reset (restores the zeroed
  // key array and tells the arena so).
  void drain(ScratchArena& arena, Index* cols, std::byte* vals) {
    std::sort(pairs_, pairs_ + count_,
              [](const Pair& x, const Pair& y) { return x.col < y.col; });
    for (size_t k = 0; k < count_; ++k) {
      cols[k] = pairs_[k].col;
      std::memcpy(vals + k * zsize_, vals_ + pairs_[k].slot * zsize_, zsize_);
    }
    for (size_t k = 0; k < count_; ++k) keys_[pairs_[k].slot] = 0;
    arena.mark_zeroed(ScratchArena::kHashKeys);
    count_ = 0;
  }

 private:
  struct Pair {
    Index col;
    Index slot;
  };
  size_t zsize_ = 0;
  size_t mask_ = 0;
  Index* keys_ = nullptr;
  std::byte* vals_ = nullptr;
  Pair* pairs_ = nullptr;
  size_t count_ = 0;
};

// Dense flag + value SPA over all of ncols.  Only constructed when the
// policy says the footprint is affordable.
class DenseSpa {
 public:
  void init(ScratchArena& arena, Index ncols, size_t zsize) {
    zsize_ = zsize;
    size_t n = static_cast<size_t>(ncols);
    flags_ = reinterpret_cast<uint8_t*>(
        arena.request_zeroed(ScratchArena::kDenseFlags, n));
    vals_ = arena.request(ScratchArena::kDenseVals, n * zsize);
    touched_ = reinterpret_cast<Index*>(
        arena.request(ScratchArena::kDenseTouched, n * sizeof(Index)));
    count_ = 0;
  }

  void* probe(Index j, bool* fresh) {
    void* slot = vals_ + static_cast<size_t>(j) * zsize_;
    if (flags_[j] == 0) {
      flags_[j] = 1;
      touched_[count_++] = j;
      *fresh = true;
    } else {
      *fresh = false;
    }
    return slot;
  }

  size_t count() const { return count_; }

  void drain(ScratchArena& arena, Index* cols, std::byte* vals) {
    std::sort(touched_, touched_ + count_);
    for (size_t k = 0; k < count_; ++k) {
      Index j = touched_[k];
      cols[k] = j;
      std::memcpy(vals + k * zsize_, vals_ + static_cast<size_t>(j) * zsize_,
                  zsize_);
      flags_[j] = 0;
    }
    arena.mark_zeroed(ScratchArena::kDenseFlags);
    count_ = 0;
  }

 private:
  size_t zsize_ = 0;
  uint8_t* flags_ = nullptr;
  std::byte* vals_ = nullptr;
  Index* touched_ = nullptr;
  size_t count_ = 0;
};

namespace spgemm_detail {

// Expands row i of A*B into the SPA, then drains the sorted row into the
// block stage.  Returns the row's output count.  The (ka, kb) fold order
// here is THE accumulation order for every mode — see the determinism
// note at the top of the file.
template <class Spa, class Runner>
Index expand_row(const MatrixData& a, const MatrixData& b, Index i,
                 size_t zsize, Spa& spa, Runner& runner, ValueBuf& prod,
                 SpgemmStage& out, ScratchArena& arena) {
  for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
    Index k = a.col[ka];
    if (k >= b.nrows) continue;
    const void* aval = a.vals.at(ka);
    for (size_t kb = b.ptr[k]; kb < b.ptr[k + 1]; ++kb) {
      bool fresh;
      void* slot = spa.probe(b.col[kb], &fresh);
      if (fresh) {
        runner.mul(slot, aval, b.vals.at(kb));
      } else {
        runner.mul(prod.data(), aval, b.vals.at(kb));
        runner.add(slot, prod.data());
      }
    }
  }
  size_t n = spa.count();
  auto [cols, vals] = out.grow(n, zsize);
  spa.drain(arena, cols, vals);
  return static_cast<Index>(n);
}

}  // namespace spgemm_detail

// The seed two-pass kernel, kept verbatim as the ablation baseline and
// the differential oracle's reference mode: structural symbolic pass +
// full numeric re-expansion, both over a per-chunk O(ncols) dense SPA.
template <class MakeRunner>
std::shared_ptr<MatrixData> spgemm_reference_kernel(Context* ctx,
                                                    const MatrixData& a,
                                                    const MatrixData& b,
                                                    const Type* ztype,
                                                    MakeRunner&& make_runner) {
  auto t = std::make_shared<MatrixData>(ztype, a.nrows, b.ncols);
  Index nrows = a.nrows, ncols = b.ncols;
  size_t zsize = ztype->size();

  // Symbolic pass: structural row counts.
  std::vector<Index> counts(nrows, 0);
  ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
    std::vector<uint8_t> flag(ncols, 0);
    std::vector<Index> touched;
    for (Index i = lo; i < hi; ++i) {
      touched.clear();
      for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
        Index k = a.col[ka];
        for (size_t kb = b.ptr[k]; kb < b.ptr[k + 1]; ++kb) {
          Index j = b.col[kb];
          if (!flag[j]) {
            flag[j] = 1;
            touched.push_back(j);
          }
        }
      }
      counts[i] = static_cast<Index>(touched.size());
      for (Index j : touched) flag[j] = 0;
    }
  });
  for (Index i = 0; i < nrows; ++i) t->ptr[i + 1] = t->ptr[i] + counts[i];
  t->col.resize(t->ptr[nrows]);
  t->vals.resize(t->ptr[nrows]);

  // Numeric pass.
  ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
    auto runner = make_runner();
    std::vector<uint8_t> flag(ncols, 0);
    std::vector<std::byte> spa(static_cast<size_t>(ncols) * zsize);
    std::vector<Index> touched;
    ValueBuf prod(zsize);
    for (Index i = lo; i < hi; ++i) {
      touched.clear();
      for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
        Index k = a.col[ka];
        const void* aval = a.vals.at(ka);
        for (size_t kb = b.ptr[k]; kb < b.ptr[k + 1]; ++kb) {
          Index j = b.col[kb];
          void* slot = spa.data() + static_cast<size_t>(j) * zsize;
          if (!flag[j]) {
            flag[j] = 1;
            touched.push_back(j);
            runner.mul(slot, aval, b.vals.at(kb));
          } else {
            runner.mul(prod.data(), aval, b.vals.at(kb));
            runner.add(slot, prod.data());
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      size_t w = t->ptr[i];
      for (Index j : touched) {
        t->col[w] = j;
        std::memcpy(t->vals.at(w), spa.data() + static_cast<size_t>(j) * zsize,
                    zsize);
        flag[j] = 0;
        ++w;
      }
    }
  });
  return t;
}

// The adaptive engine: single fused numeric pass into flop-balanced
// block staging, then an exact-size assembly copy.
template <class MakeRunner>
std::shared_ptr<MatrixData> spgemm_mxm(Context* ctx, const MatrixData& a,
                                       const MatrixData& b, const Type* ztype,
                                       const SpgemmRowCosts& costs,
                                       MakeRunner&& make_runner) {
  if (spgemm_mode() == SpgemmMode::kReference) {
    return spgemm_reference_kernel(ctx, a, b, ztype,
                                   std::forward<MakeRunner>(make_runner));
  }
  auto t = std::make_shared<MatrixData>(ztype, a.nrows, b.ncols);
  const Index nrows = a.nrows;
  if (nrows == 0 || costs.total == 0) return t;
  const size_t zsize = ztype->size();
  const SpgemmPolicy policy = spgemm_policy(b.ncols, zsize);

  const int nthreads = ctx->effective_nthreads();
  const Index nblocks =
      nthreads > 1 ? std::min<Index>(nrows, static_cast<Index>(nthreads) * 8)
                   : 1;
  const std::vector<Index> bounds = spgemm_partition(costs, nrows, nblocks);

  std::vector<Index> counts(nrows, 0);
  std::vector<SpgemmStage> stage(nblocks);
  const bool stats = obs::stats_enabled();
  std::atomic<uint64_t> rows_hash{0}, rows_dense{0};

  // Decision audit: one summary record per multiply.  The per-row
  // accumulator classification is a pure function of the symbolic costs
  // and the policy, so the audited choice can be derived up front (one
  // cheap pass over flops[]) and the ticket brackets the whole numeric
  // kernel; measurement lands after assembly with the actual products
  // written.  "mixed" means both accumulators ran.
  obs::DecisionTicket ticket;
  const char* strategy = "hash";
  if (obs::decision_enabled() || obs::prof_enabled()) {
    uint64_t pre_dense = 0, pre_hash = 0;
    for (Index i = 0; i < nrows; ++i) {
      const uint64_t f = costs.flops[i];
      if (f == 0) continue;
      (policy.use_dense(f) ? pre_dense : pre_hash) += 1;
    }
    strategy = pre_dense == 0 ? "hash"
               : pre_hash == 0 ? "dense"
                               : "mixed";
    const char* rejected = pre_dense == 0   ? "dense"
                           : pre_hash == 0 ? "hash"
                                           : "uniform";
    ticket = obs::decision_record(
        obs::DecisionSite::kSpgemmAccum, strategy, rejected,
        static_cast<double>(costs.total),
        static_cast<double>(policy.dense_flops));
  }
  obs::ProfScope prof(strategy);

  ctx->parallel_for(0, nblocks, 1, [&](Index blo, Index bhi) {
    auto runner = make_runner();
    ScratchArena& arena = thread_arena();
    HashSpa hspa;
    DenseSpa dspa;
    bool dense_ready = false;
    ValueBuf prod(zsize);
    uint64_t local_hash = 0, local_dense = 0;
    for (Index blk = blo; blk < bhi; ++blk) {
      const Index rlo = bounds[blk], rhi = bounds[blk + 1];
      SpgemmStage& out = stage[blk];
      size_t ub = 0;
      for (Index i = rlo; i < rhi; ++i)
        ub += static_cast<size_t>(
            std::min<uint64_t>(costs.flops[i], b.ncols));
      out.col.reserve(ub);
      out.vals.reserve(ub * zsize);
      for (Index i = rlo; i < rhi; ++i) {
        const uint64_t f = costs.flops[i];
        if (f == 0) continue;
        if (policy.use_dense(f)) {
          if (!dense_ready) {
            dspa.init(arena, b.ncols, zsize);
            dense_ready = true;
          }
          counts[i] = spgemm_detail::expand_row(a, b, i, zsize, dspa, runner,
                                                prod, out, arena);
          ++local_dense;
        } else {
          hspa.begin_row(arena, std::min<uint64_t>(f, b.ncols), zsize);
          counts[i] = spgemm_detail::expand_row(a, b, i, zsize, hspa, runner,
                                                prod, out, arena);
          ++local_hash;
        }
      }
    }
    if (stats) {
      rows_hash.fetch_add(local_hash, std::memory_order_relaxed);
      rows_dense.fetch_add(local_dense, std::memory_order_relaxed);
    }
  });

  for (Index i = 0; i < nrows; ++i) t->ptr[i + 1] = t->ptr[i] + counts[i];
  t->col.resize(t->ptr[nrows]);
  t->vals.resize(t->ptr[nrows]);
  ctx->parallel_for(0, nblocks, 1, [&](Index blo, Index bhi) {
    for (Index blk = blo; blk < bhi; ++blk) {
      const SpgemmStage& s = stage[blk];
      if (s.col.empty()) continue;
      const size_t off = t->ptr[bounds[blk]];
      std::copy(s.col.begin(), s.col.end(), t->col.begin() + off);
      std::memcpy(t->vals.at(off), s.vals.data(), s.vals.size());
    }
  });
  if (stats) {
    obs::spgemm_rows(rows_hash.load(std::memory_order_relaxed),
                     rows_dense.load(std::memory_order_relaxed));
    obs::spgemm_flops_estimated(costs.total);
  }
  // Actual products written = output nnz; collisions make it smaller
  // than the symbolic estimate, and a >2x gap counts as a mispredict.
  obs::decision_measure(ticket, static_cast<uint64_t>(t->ptr[nrows]));
  return t;
}

// Seed serial SPA kernel for vxm (u^T * A), kept as the reference mode;
// allocates O(ncols(A)) scratch unconditionally.
template <class MakeRunner>
std::shared_ptr<VectorData> vxm_reference_kernel(const VectorData& u,
                                                 const MatrixData& a,
                                                 const Type* ztype,
                                                 MakeRunner&& make_runner) {
  auto t = std::make_shared<VectorData>(ztype, a.ncols);
  size_t zsize = ztype->size();
  auto runner = make_runner();
  std::vector<uint8_t> flag(a.ncols, 0);
  std::vector<std::byte> spa(static_cast<size_t>(a.ncols) * zsize);
  std::vector<Index> touched;
  ValueBuf prod(zsize);
  for (size_t ku = 0; ku < u.ind.size(); ++ku) {
    Index i = u.ind[ku];
    const void* uval = u.vals.at(ku);
    for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
      Index j = a.col[ka];
      void* slot = spa.data() + static_cast<size_t>(j) * zsize;
      if (!flag[j]) {
        flag[j] = 1;
        touched.push_back(j);
        runner.mul(slot, uval, a.vals.at(ka));
      } else {
        runner.mul(prod.data(), uval, a.vals.at(ka));
        runner.add(slot, prod.data());
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  t->ind.reserve(touched.size());
  t->vals.reserve(touched.size());
  for (Index j : touched) {
    t->ind.push_back(j);
    t->vals.push_back(spa.data() + static_cast<size_t>(j) * zsize);
  }
  return t;
}

// Adaptive vxm: the output row u^T * A is one SpGEMM row, so it reuses
// the same policy and accumulators (the hypersparse-ncols fix for the
// vector ops).
template <class MakeRunner>
std::shared_ptr<VectorData> vxm_spa(const VectorData& u, const MatrixData& a,
                                    const Type* ztype,
                                    MakeRunner&& make_runner) {
  if (spgemm_mode() == SpgemmMode::kReference) {
    return vxm_reference_kernel(u, a, ztype,
                                std::forward<MakeRunner>(make_runner));
  }
  auto t = std::make_shared<VectorData>(ztype, a.ncols);
  const size_t zsize = ztype->size();
  uint64_t flops = 0;
  for (Index i : u.ind) {
    if (i < a.nrows) flops += a.ptr[i + 1] - a.ptr[i];
  }
  if (flops == 0) return t;
  const SpgemmPolicy policy = spgemm_policy(a.ncols, zsize);
  auto runner = make_runner();
  ScratchArena& arena = thread_arena();
  ValueBuf prod(zsize);
  const bool dense = policy.use_dense(flops);
  // The whole product is one SPA row, so the audit mirrors the per-row
  // accumulator question exactly: predicted flops vs the policy's
  // dense threshold, measured as entries drained.
  obs::DecisionTicket ticket = obs::decision_record(
      obs::DecisionSite::kSpgemmAccum, dense ? "dense" : "hash",
      dense ? "hash" : "dense", static_cast<double>(flops),
      static_cast<double>(policy.dense_flops));
  obs::ProfScope prof(dense ? "dense" : "hash");
  HashSpa hspa;
  DenseSpa dspa;
  if (dense) {
    dspa.init(arena, a.ncols, zsize);
  } else {
    hspa.begin_row(arena, std::min<uint64_t>(flops, a.ncols), zsize);
  }
  auto accumulate = [&](auto& spa) {
    for (size_t ku = 0; ku < u.ind.size(); ++ku) {
      Index i = u.ind[ku];
      if (i >= a.nrows) continue;
      const void* uval = u.vals.at(ku);
      for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
        bool fresh;
        void* slot = spa.probe(a.col[ka], &fresh);
        if (fresh) {
          runner.mul(slot, uval, a.vals.at(ka));
        } else {
          runner.mul(prod.data(), uval, a.vals.at(ka));
          runner.add(slot, prod.data());
        }
      }
    }
    size_t n = spa.count();
    t->ind.resize(n);
    t->vals.resize(n);
    if (n != 0) {
      spa.drain(arena, t->ind.data(),
                reinterpret_cast<std::byte*>(t->vals.at(0)));
    }
  };
  if (dense) {
    accumulate(dspa);
  } else {
    accumulate(hspa);
  }
  if (obs::stats_enabled()) {
    obs::spgemm_rows(dense ? 0 : 1, dense ? 1 : 0);
    obs::spgemm_flops_estimated(flops);
  }
  obs::decision_measure(ticket, static_cast<uint64_t>(t->ind.size()));
  return t;
}

// Budget-gated vector probe for the dot-product kernels (mxv, parallel
// vxm): gathers u into dense present/value scratch when u.n is
// affordable, and falls back to binary search over u's sorted coordinate
// list for hypersparse dimensions.  Built on the caller's arena; workers
// only read it during the parallel region.
class VecProbe {
 public:
  void init(const VectorData& u) {
    u_ = &u;
    usize_ = u.type->size();
    const uint64_t footprint =
        static_cast<uint64_t>(u.n) * (usize_ + 1);
    dense_ = footprint <= spgemm_dense_budget();
    if (!dense_) return;
    ScratchArena& arena = thread_arena();
    size_t n = static_cast<size_t>(u.n);
    present_ = reinterpret_cast<uint8_t*>(
        arena.request_zeroed(ScratchArena::kVecPresent, n));
    bytes_ = arena.request(ScratchArena::kVecVals, n * usize_);
    for (size_t k = 0; k < u.ind.size(); ++k) {
      present_[u.ind[k]] = 1;
      std::memcpy(bytes_ + static_cast<size_t>(u.ind[k]) * usize_,
                  u.vals.at(k), usize_);
    }
  }

  // Value pointer for index i, or nullptr when u(i) is absent.
  const void* find(Index i) const {
    if (dense_) {
      return present_[i] != 0 ? bytes_ + static_cast<size_t>(i) * usize_
                              : nullptr;
    }
    auto it = std::lower_bound(u_->ind.begin(), u_->ind.end(), i);
    if (it == u_->ind.end() || *it != i) return nullptr;
    return u_->vals.at(static_cast<size_t>(it - u_->ind.begin()));
  }

 private:
  const VectorData* u_ = nullptr;
  size_t usize_ = 0;
  bool dense_ = false;
  uint8_t* present_ = nullptr;
  std::byte* bytes_ = nullptr;
};

}  // namespace grb
