// GrB_apply: unary-op, bound-binary-op (bind-1st/2nd), and the
// GraphBLAS 2.0 index-unary-op variants (paper §VIII.B).
//
// apply preserves the stored structure of its input; only values change:
//   w<m,r> = w (+) f(u, ind(u), 1, s)
//   C<M,r> = C (+) f(A', ind(A'), 2, s)
// When the input is transposed, the indices seen by the operator are the
// *post-transpose* locations, as the paper specifies.
#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

// ---- generic "map stored values" kernels ---------------------------------

// make_mapper() yields a per-chunk callable fn(z, x, i) so mapper
// scratch buffers are private to each parallel chunk; every output
// entry depends only on its own input entry, so chunking cannot change
// the result.
template <class MakeMapper>
std::shared_ptr<VectorData> map_vector(Context* ctx, const VectorData& u,
                                       const Type* ztype,
                                       MakeMapper&& make_mapper) {
  auto t = std::make_shared<VectorData>(ztype, u.n);
  t->ind = u.ind;
  t->vals.resize(u.ind.size());
  Index nvals = static_cast<Index>(u.ind.size());
  ctx->parallel_for(0, nvals, [&](Index lo, Index hi) {
    auto fn = make_mapper();
    for (Index k = lo; k < hi; ++k) {
      fn(t->vals.at(k), u.vals.at(k), u.ind[k]);
    }
  });
  return t;
}

// make_mapper() yields a per-chunk callable fn(z, x, i, j) so mapper
// scratch buffers are private to each parallel chunk (no data races).
template <class MakeMapper>
std::shared_ptr<MatrixData> map_matrix(Context* ctx, const MatrixData& a,
                                       const Type* ztype,
                                       MakeMapper&& make_mapper) {
  auto t = std::make_shared<MatrixData>(ztype, a.nrows, a.ncols);
  t->ptr = a.ptr;
  t->col = a.col;
  t->vals.resize(a.col.size());
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    auto fn = make_mapper();
    for (Index r = lo; r < hi; ++r) {
      for (size_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
        fn(t->vals.at(k), a.vals.at(k), r, a.col[k]);
      }
    }
  });
  return t;
}

// ---- validation -----------------------------------------------------------

Info validate_apply_v(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const Type* op_in, const Type* op_out,
                      const Vector* u) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u}));
  if (u == nullptr) return Info::kNullPointer;
  if (u->size() != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  if (op_in != nullptr) GRB_RETURN_IF_ERROR(check_cast(op_in, u->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), op_out));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), op_out));
  return Info::kSuccess;
}

Info validate_apply_m(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                      const Type* op_in, const Type* op_out, const Matrix* a,
                      const Descriptor& d) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  if (ar != c->nrows() || ac != c->ncols()) return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  if (op_in != nullptr) GRB_RETURN_IF_ERROR(check_cast(op_in, a->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), op_out));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), op_out));
  return Info::kSuccess;
}

WritebackSpec make_spec(const BinaryOp* accum, bool have_mask,
                        const Descriptor& d) {
  return WritebackSpec{accum, have_mask, d.mask_structure(), d.mask_comp(),
                       d.replace()};
}

// Captures a scalar argument for deferred execution, cast into `to`.
Info capture_scalar(ValueBuf* buf, const Type* to, const void* s,
                    const Type* stype) {
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(to, stype));
  buf->resize(to->size());
  cast_value(to, buf->data(), stype, s);
  return Info::kSuccess;
}

// ---- shared deferral -------------------------------------------------------
// Every apply form is a structure-preserving value map over its input.
// `factory` builds the per-chunk mapper (4-arg form; vectors pass j = 0)
// used by BOTH the eager closure and — when the writeback is a plain
// replace (no mask, no accumulator) — the fusion planner, so the fused
// and eager paths run literally the same kernel.
//
// Plain self-apply (u == w) skips the eager input snapshot and reads
// w->current_canonical() inside the closure instead: by FIFO ordering of the
// deferred queue both see the same data, and staying lazy is what lets
// the planner accumulate apply→apply chains instead of forcing a
// materialization per call.

Info defer_vec_map(Vector* w, const Vector* u, const Vector* mask,
                   const BinaryOp* accum, const Descriptor& d,
                   const Type* ztype, MapFactory factory) {
  const bool plain = mask == nullptr && accum == nullptr && !d.mask_comp();
  const bool lazy_self = plain && u == w;
  std::shared_ptr<const VectorData> u_snap, m_snap;
  if (!lazy_self)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  FuseNode node;
  if (plain) {
    node.kind = FuseNode::Kind::kMap;
    node.ztype = ztype;
    node.make_mapper = factory;
    node.full_replace = true;
    if (!lazy_self) {
      // Overwrites w from u's snapshot without reading w: a chain head
      // and a dead-write killer.
      node.reads_out = false;
      node.vsrc = u_snap;
    }
  }
  return defer_or_run(
      w,
      [w, u_snap, m_snap, spec, ztype,
       factory = std::move(factory)]() -> Info {
        std::shared_ptr<const VectorData> uu =
            u_snap != nullptr ? u_snap : w->current_canonical();
        Context* ectx = exec_context(w->context(), uu->nvals());
        auto t = map_vector(ectx, *uu, ztype, [&] {
          return [fn = factory()](void* z, const void* x, Index i) mutable {
            fn(z, x, i, 0);
          };
        });
        auto c_old = w->current_canonical();
        w->publish(
            writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      },
      std::move(node));
}

Info defer_mat_map(Matrix* c, const Matrix* a, const Matrix* mask,
                   const BinaryOp* accum, const Descriptor& d,
                   const Type* ztype, MapFactory factory) {
  const bool t0 = d.tran0();
  const bool plain = mask == nullptr && accum == nullptr && !d.mask_comp();
  const bool lazy_self = plain && a == c && !t0;
  std::shared_ptr<const MatrixData> a_snap, m_snap;
  if (!lazy_self)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  FuseNode node;
  if (plain) {
    if (!t0) {
      node.kind = FuseNode::Kind::kMap;
      node.ztype = ztype;
      node.make_mapper = factory;
      node.full_replace = true;
      if (!lazy_self) {
        node.reads_out = false;
        node.msrc = a_snap;
      }
    } else {
      // Transposed input: the pass is not a map over the stored layout,
      // so it stays opaque — but it still fully replaces c without
      // reading it (any self-read completed at snapshot time above).
      node.reads_out = false;
      node.full_replace = true;
    }
  }
  return defer_or_run(
      c,
      [c, a_snap, m_snap, spec, ztype, t0,
       factory = std::move(factory)]() -> Info {
        std::shared_ptr<const MatrixData> base =
            a_snap != nullptr ? a_snap : c->current_canonical();
        std::shared_ptr<const MatrixData> av =
            t0 ? format_transpose_view(base) : base;
        auto t = map_matrix(exec_context(c->context(), av->nvals()), *av,
                            ztype, [&] { return factory(); });
        auto c_old = c->current_canonical();
        c->publish(
            writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      },
      std::move(node));
}

}  // namespace

// ---- unary-op apply --------------------------------------------------------

Info apply(Vector* w, const Vector* mask, const BinaryOp* accum,
           const UnaryOp* op, const Vector* u, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  const Descriptor& d = resolve_desc(desc);
  const Type* ut = u->type();
  return defer_vec_map(w, u, mask, accum, d, op->ztype(),
                       [op, ut]() -> MapFn {
                         return [run = UnRunner(op, ut)](
                                    void* z, const void* x, Index,
                                    Index) mutable { run.run(z, x); };
                       });
}

Info apply(Matrix* c, const Matrix* mask, const BinaryOp* accum,
           const UnaryOp* op, const Matrix* a, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  const Type* at = a->type();
  return defer_mat_map(c, a, mask, accum, d, op->ztype(),
                       [op, at]() -> MapFn {
                         return [run = UnRunner(op, at)](
                                    void* z, const void* x, Index,
                                    Index) mutable { run.run(z, x); };
                       });
}

// ---- bound-binary apply -----------------------------------------------------

Info apply_bind1st(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Vector* u, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->ytype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->xtype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  const Type* ut = u->type();
  return defer_vec_map(
      w, u, mask, accum, d, op->ztype(), [op, sv, ut]() -> MapFn {
        return [&op = *op, sv, u2y = Caster(op->ytype(), ut),
                yb = ValueBuf(op->ytype()->size())](void* z, const void* x,
                                                    Index, Index) mutable {
          u2y.run(yb.data(), x);
          op.apply(z, sv.data(), yb.data());
        };
      });
}

Info apply_bind2nd(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->ytype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  const Type* ut = u->type();
  return defer_vec_map(
      w, u, mask, accum, d, op->ztype(), [op, sv, ut]() -> MapFn {
        return [&op = *op, sv, u2x = Caster(op->xtype(), ut),
                xb = ValueBuf(op->xtype()->size())](void* z, const void* x,
                                                    Index, Index) mutable {
          u2x.run(xb.data(), x);
          op.apply(z, xb.data(), sv.data());
        };
      });
}

Info apply_bind1st(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Matrix* a, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->ytype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->xtype(), s, stype));
  const Type* at = a->type();
  return defer_mat_map(
      c, a, mask, accum, d, op->ztype(), [op, sv, at]() -> MapFn {
        return [&op = *op, sv, a2y = Caster(op->ytype(), at),
                yb = ValueBuf(op->ytype()->size())](void* z, const void* x,
                                                    Index, Index) mutable {
          a2y.run(yb.data(), x);
          op.apply(z, sv.data(), yb.data());
        };
      });
}

Info apply_bind2nd(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->ytype(), s, stype));
  const Type* at = a->type();
  return defer_mat_map(
      c, a, mask, accum, d, op->ztype(), [op, sv, at]() -> MapFn {
        return [&op = *op, sv, a2x = Caster(op->xtype(), at),
                xb = ValueBuf(op->xtype()->size())](void* z, const void* x,
                                                    Index, Index) mutable {
          a2x.run(xb.data(), x);
          op.apply(z, xb.data(), sv.data());
        };
      });
}

// ---- index-unary apply (GraphBLAS 2.0) -------------------------------------

Info apply_indexop(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->stype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  const Type* ut = u->type();
  const Type* xt = op->value_agnostic() ? ut : op->xtype();
  return defer_vec_map(
      w, u, mask, accum, d, op->ztype(), [op, sv, ut, xt]() -> MapFn {
        return [&op = *op, sv, u2x = Caster(xt, ut),
                xb = ValueBuf(xt->size())](void* z, const void* x, Index i,
                                           Index) mutable {
          Index indices[1] = {i};
          u2x.run(xb.data(), x);
          op.apply(z, xb.data(), indices, 1, sv.data());
        };
      });
}

Info apply_indexop(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->stype(), s, stype));
  const Type* at = a->type();
  const Type* xt = op->value_agnostic() ? at : op->xtype();
  return defer_mat_map(
      c, a, mask, accum, d, op->ztype(), [op, sv, at, xt]() -> MapFn {
        return [&op = *op, sv, a2x = Caster(xt, at),
                xb = ValueBuf(xt->size())](void* z, const void* x, Index i,
                                           Index j) mutable {
          Index indices[2] = {i, j};
          a2x.run(xb.data(), x);
          op.apply(z, xb.data(), indices, 2, sv.data());
        };
      });
}

}  // namespace grb
