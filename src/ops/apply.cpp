// GrB_apply: unary-op, bound-binary-op (bind-1st/2nd), and the
// GraphBLAS 2.0 index-unary-op variants (paper §VIII.B).
//
// apply preserves the stored structure of its input; only values change:
//   w<m,r> = w (+) f(u, ind(u), 1, s)
//   C<M,r> = C (+) f(A', ind(A'), 2, s)
// When the input is transposed, the indices seen by the operator are the
// *post-transpose* locations, as the paper specifies.
#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

// ---- generic "map stored values" kernels ---------------------------------

// make_mapper() yields a per-chunk callable fn(z, x, i) so mapper
// scratch buffers are private to each parallel chunk; every output
// entry depends only on its own input entry, so chunking cannot change
// the result.
template <class MakeMapper>
std::shared_ptr<VectorData> map_vector(Context* ctx, const VectorData& u,
                                       const Type* ztype,
                                       MakeMapper&& make_mapper) {
  auto t = std::make_shared<VectorData>(ztype, u.n);
  t->ind = u.ind;
  t->vals.resize(u.ind.size());
  Index nvals = static_cast<Index>(u.ind.size());
  ctx->parallel_for(0, nvals, [&](Index lo, Index hi) {
    auto fn = make_mapper();
    for (Index k = lo; k < hi; ++k) {
      fn(t->vals.at(k), u.vals.at(k), u.ind[k]);
    }
  });
  return t;
}

// make_mapper() yields a per-chunk callable fn(z, x, i, j) so mapper
// scratch buffers are private to each parallel chunk (no data races).
template <class MakeMapper>
std::shared_ptr<MatrixData> map_matrix(Context* ctx, const MatrixData& a,
                                       const Type* ztype,
                                       MakeMapper&& make_mapper) {
  auto t = std::make_shared<MatrixData>(ztype, a.nrows, a.ncols);
  t->ptr = a.ptr;
  t->col = a.col;
  t->vals.resize(a.col.size());
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    auto fn = make_mapper();
    for (Index r = lo; r < hi; ++r) {
      for (size_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
        fn(t->vals.at(k), a.vals.at(k), r, a.col[k]);
      }
    }
  });
  return t;
}

// ---- validation -----------------------------------------------------------

Info validate_apply_v(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const Type* op_in, const Type* op_out,
                      const Vector* u) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u}));
  if (u == nullptr) return Info::kNullPointer;
  if (u->size() != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  if (op_in != nullptr) GRB_RETURN_IF_ERROR(check_cast(op_in, u->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), op_out));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), op_out));
  return Info::kSuccess;
}

Info validate_apply_m(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                      const Type* op_in, const Type* op_out, const Matrix* a,
                      const Descriptor& d) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  if (ar != c->nrows() || ac != c->ncols()) return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  if (op_in != nullptr) GRB_RETURN_IF_ERROR(check_cast(op_in, a->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), op_out));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), op_out));
  return Info::kSuccess;
}

WritebackSpec make_spec(const BinaryOp* accum, bool have_mask,
                        const Descriptor& d) {
  return WritebackSpec{accum, have_mask, d.mask_structure(), d.mask_comp(),
                       d.replace()};
}

// Captures a scalar argument for deferred execution, cast into `to`.
Info capture_scalar(ValueBuf* buf, const Type* to, const void* s,
                    const Type* stype) {
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(to, stype));
  buf->resize(to->size());
  cast_value(to, buf->data(), stype, s);
  return Info::kSuccess;
}

}  // namespace

// ---- unary-op apply --------------------------------------------------------

Info apply(Vector* w, const Vector* mask, const BinaryOp* accum,
           const UnaryOp* op, const Vector* u, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  return defer_or_run(w, [w, u_snap, m_snap, op, spec]() -> Info {
    Context* ectx = exec_context(w->context(), u_snap->nvals());
    auto t = map_vector(ectx, *u_snap, op->ztype(), [&] {
      return [run = UnRunner(op, u_snap->type)](void* z, const void* x,
                                                Index) mutable {
        run.run(z, x);
      };
    });
    auto c_old = w->current_data();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

Info apply(Matrix* c, const Matrix* mask, const BinaryOp* accum,
           const UnaryOp* op, const Matrix* a, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, op, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? transpose_data(*a_snap) : a_snap;
    auto t = map_matrix(exec_context(c->context(), av->nvals()), *av,
                        op->ztype(), [&] {
      return [run = UnRunner(op, av->type)](void* z, const void* x, Index,
                                            Index) mutable {
        run.run(z, x);
      };
    });
    auto c_old = c->current_data();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

// ---- bound-binary apply -----------------------------------------------------

Info apply_bind1st(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Vector* u, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->ytype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->xtype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  return defer_or_run(w, [w, u_snap, m_snap, op, sv, spec]() -> Info {
    Context* ectx = exec_context(w->context(), u_snap->nvals());
    auto t = map_vector(ectx, *u_snap, op->ztype(), [&] {
      return [&op = *op, &sv, u2y = Caster(op->ytype(), u_snap->type),
              yb = ValueBuf(op->ytype()->size())](void* z, const void* x,
                                                  Index) mutable {
        u2y.run(yb.data(), x);
        op.apply(z, sv.data(), yb.data());
      };
    });
    auto c_old = w->current_data();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

Info apply_bind2nd(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->ytype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  return defer_or_run(w, [w, u_snap, m_snap, op, sv, spec]() -> Info {
    Context* ectx = exec_context(w->context(), u_snap->nvals());
    auto t = map_vector(ectx, *u_snap, op->ztype(), [&] {
      return [&op = *op, &sv, u2x = Caster(op->xtype(), u_snap->type),
              xb = ValueBuf(op->xtype()->size())](void* z, const void* x,
                                                  Index) mutable {
        u2x.run(xb.data(), x);
        op.apply(z, xb.data(), sv.data());
      };
    });
    auto c_old = w->current_data();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

Info apply_bind1st(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Matrix* a, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->ytype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->xtype(), s, stype));
  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, op, sv, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? transpose_data(*a_snap) : a_snap;
    auto t = map_matrix(exec_context(c->context(), av->nvals()), *av,
                        op->ztype(), [&] {
      return [&op = *op, &sv, a2y = Caster(op->ytype(), av->type),
              yb = ValueBuf(op->ytype()->size())](
                 void* z, const void* x, Index, Index) mutable {
        a2y.run(yb.data(), x);
        op.apply(z, sv.data(), yb.data());
      };
    });
    auto c_old = c->current_data();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

Info apply_bind2nd(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->ytype(), s, stype));
  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, op, sv, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? transpose_data(*a_snap) : a_snap;
    auto t = map_matrix(exec_context(c->context(), av->nvals()), *av,
                        op->ztype(), [&] {
      return [&op = *op, &sv, a2x = Caster(op->xtype(), av->type),
              xb = ValueBuf(op->xtype()->size())](
                 void* z, const void* x, Index, Index) mutable {
        a2x.run(xb.data(), x);
        op.apply(z, xb.data(), sv.data());
      };
    });
    auto c_old = c->current_data();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

// ---- index-unary apply (GraphBLAS 2.0) -------------------------------------

Info apply_indexop(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(
      validate_apply_v(w, mask, accum, op->xtype(), op->ztype(), u));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->stype(), s, stype));
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  return defer_or_run(w, [w, u_snap, m_snap, op, sv, spec]() -> Info {
    const bool agnostic = op->value_agnostic();
    const Type* xt = agnostic ? u_snap->type : op->xtype();
    Context* ectx = exec_context(w->context(), u_snap->nvals());
    auto t = map_vector(ectx, *u_snap, op->ztype(), [&] {
      return [&op = *op, &sv, u2x = Caster(xt, u_snap->type),
              xb = ValueBuf(xt->size())](void* z, const void* x,
                                         Index i) mutable {
        Index indices[1] = {i};
        u2x.run(xb.data(), x);
        op.apply(z, xb.data(), indices, 1, sv.data());
      };
    });
    auto c_old = w->current_data();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

Info apply_indexop(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc) {
  if (op == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(
      validate_apply_m(c, mask, accum, op->xtype(), op->ztype(), a, d));
  ValueBuf sv;
  GRB_RETURN_IF_ERROR(capture_scalar(&sv, op->stype(), s, stype));
  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec = make_spec(accum, mask != nullptr, d);
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, op, sv, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? transpose_data(*a_snap) : a_snap;
    const bool agnostic = op->value_agnostic();
    const Type* xt = agnostic ? av->type : op->xtype();
    auto t = map_matrix(exec_context(c->context(), av->nvals()), *av,
                        op->ztype(), [&] {
      return [&op = *op, &sv, a2x = Caster(xt, av->type),
              xb = ValueBuf(xt->size())](void* z, const void* x, Index i,
                                         Index j) mutable {
        Index indices[2] = {i, j};
        a2x.run(xb.data(), x);
        op.apply(z, xb.data(), indices, 2, sv.data());
      };
    });
    auto c_old = c->current_data();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

}  // namespace grb
