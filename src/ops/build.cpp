// GrB_Vector_build / GrB_Matrix_build.
//
// Duplicate handling follows GraphBLAS 2.0 (paper §IX): the `dup`
// operator is now OPTIONAL.  When dup == NULL, the presence of duplicate
// coordinates is treated as an execution error (kInvalidValue), reported
// immediately in blocking mode or at completion in nonblocking mode.
// Out-of-range coordinates are the execution error kIndexOutOfBounds.

#include <algorithm>
#include <numeric>

#include "core/binary_op.hpp"
#include "containers/matrix.hpp"
#include "containers/vector.hpp"

namespace grb {
namespace {

// Applies dup left-to-right over a run of values with identical
// coordinates, in their input order: acc = dup(acc, next).
// All values are already in the container's domain T.
void reduce_run(const BinaryOp* dup, const Type* t, const ValueArray& vals,
                const std::vector<size_t>& order, size_t lo, size_t hi,
                void* out, ValueBuf& in_x, ValueBuf& in_y) {
  cast_value(t, out, t, vals.at(order[lo]));
  CastFn to_x = cast_fn(dup->xtype(), t);
  CastFn to_y = cast_fn(dup->ytype(), t);
  CastFn from_z = cast_fn(t, dup->ztype());
  ValueBuf z(dup->ztype()->size());
  for (size_t k = lo + 1; k < hi; ++k) {
    // Cast current accumulator and the next value into the op domains.
    if (to_x != nullptr) {
      to_x(in_x.data(), out);
    } else {
      std::memcpy(in_x.data(), out, t->size());
    }
    if (to_y != nullptr) {
      to_y(in_y.data(), vals.at(order[k]));
    } else {
      std::memcpy(in_y.data(), vals.at(order[k]), t->size());
    }
    dup->apply(z.data(), in_x.data(), in_y.data());
    if (from_z != nullptr) {
      from_z(out, z.data());
    } else {
      std::memcpy(out, z.data(), t->size());
    }
  }
}

}  // namespace

Info Vector::build(const Index* indices, const void* values, Index nvals,
                   const BinaryOp* dup, const Type* value_type) {
  GRB_RETURN_IF_ERROR(pending_error());
  if (nvals > 0 && (indices == nullptr || values == nullptr))
    return Info::kNullPointer;
  if (value_type == nullptr) return Info::kNullPointer;
  if (!types_compatible(type_, value_type)) return Info::kDomainMismatch;
  if (dup != nullptr) {
    if (!types_compatible(dup->xtype(), type_) ||
        !types_compatible(dup->ytype(), type_) ||
        !types_compatible(type_, dup->ztype()))
      return Info::kDomainMismatch;
  }
  // "Output not empty" is an API error and must be checked eagerly, which
  // requires resolving this object's own pending state.
  Index cur_nvals = 0;
  GRB_RETURN_IF_ERROR(this->nvals(&cur_nvals));
  if (cur_nvals != 0) return Info::kOutputNotEmpty;
  Index n = size();

  // Capture the caller's arrays: build's inputs need not outlive the call.
  std::vector<Index> ind(indices, indices + nvals);
  ValueArray vals(type_->size());
  vals.reserve(nvals);
  {
    CastFn cast = cast_fn(type_, value_type);
    ValueBuf tmp(type_->size());
    const auto* src = static_cast<const std::byte*>(values);
    for (Index k = 0; k < nvals; ++k) {
      const void* s = src + k * value_type->size();
      if (cast != nullptr) {
        cast(tmp.data(), s);
        vals.push_back(tmp.data());
      } else {
        vals.push_back(s);
      }
    }
  }

  auto op = [this, n, ind = std::move(ind), vals = std::move(vals),
             dup]() -> Info {
    for (Index i : ind)
      if (i >= n) return Info::kIndexOutOfBounds;
    std::vector<size_t> order(ind.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return ind[a] < ind[b]; });
    auto out = std::make_shared<VectorData>(type_, n);
    ValueBuf acc(type_->size());
    ValueBuf in_x(dup != nullptr ? dup->xtype()->size() : type_->size());
    ValueBuf in_y(dup != nullptr ? dup->ytype()->size() : type_->size());
    size_t k = 0;
    while (k < order.size()) {
      size_t run_end = k + 1;
      while (run_end < order.size() && ind[order[run_end]] == ind[order[k]])
        ++run_end;
      if (run_end - k > 1 && dup == nullptr) return Info::kInvalidValue;
      if (dup == nullptr) {
        out->ind.push_back(ind[order[k]]);
        out->vals.push_back(vals.at(order[k]));
      } else {
        reduce_run(dup, type_, vals, order, k, run_end, acc.data(), in_x,
                   in_y);
        out->ind.push_back(ind[order[k]]);
        out->vals.push_back(acc.data());
      }
      k = run_end;
    }
    publish(std::move(out));
    return Info::kSuccess;
  };
  return defer_or_run(this, std::move(op), FuseNode{});
}

Info Matrix::build(const Index* row_indices, const Index* col_indices,
                   const void* values, Index nvals, const BinaryOp* dup,
                   const Type* value_type) {
  GRB_RETURN_IF_ERROR(pending_error());
  if (nvals > 0 && (row_indices == nullptr || col_indices == nullptr ||
                    values == nullptr))
    return Info::kNullPointer;
  if (value_type == nullptr) return Info::kNullPointer;
  if (!types_compatible(type_, value_type)) return Info::kDomainMismatch;
  if (dup != nullptr) {
    if (!types_compatible(dup->xtype(), type_) ||
        !types_compatible(dup->ytype(), type_) ||
        !types_compatible(type_, dup->ztype()))
      return Info::kDomainMismatch;
  }
  Index cur_nvals = 0;
  GRB_RETURN_IF_ERROR(this->nvals(&cur_nvals));
  if (cur_nvals != 0) return Info::kOutputNotEmpty;
  Index nr = nrows(), nc = ncols();

  std::vector<Index> ri(row_indices, row_indices + nvals);
  std::vector<Index> ci(col_indices, col_indices + nvals);
  ValueArray vals(type_->size());
  vals.reserve(nvals);
  {
    CastFn cast = cast_fn(type_, value_type);
    ValueBuf tmp(type_->size());
    const auto* src = static_cast<const std::byte*>(values);
    for (Index k = 0; k < nvals; ++k) {
      const void* s = src + k * value_type->size();
      if (cast != nullptr) {
        cast(tmp.data(), s);
        vals.push_back(tmp.data());
      } else {
        vals.push_back(s);
      }
    }
  }

  auto op = [this, nr, nc, ri = std::move(ri), ci = std::move(ci),
             vals = std::move(vals), dup]() -> Info {
    for (size_t k = 0; k < ri.size(); ++k)
      if (ri[k] >= nr || ci[k] >= nc) return Info::kIndexOutOfBounds;
    std::vector<size_t> order(ri.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return ri[a] != ri[b] ? ri[a] < ri[b] : ci[a] < ci[b];
    });
    auto out = std::make_shared<MatrixData>(type_, nr, nc);
    ValueBuf acc(type_->size());
    ValueBuf in_x(dup != nullptr ? dup->xtype()->size() : type_->size());
    ValueBuf in_y(dup != nullptr ? dup->ytype()->size() : type_->size());
    size_t k = 0;
    while (k < order.size()) {
      size_t run_end = k + 1;
      while (run_end < order.size() && ri[order[run_end]] == ri[order[k]] &&
             ci[order[run_end]] == ci[order[k]])
        ++run_end;
      if (run_end - k > 1 && dup == nullptr) return Info::kInvalidValue;
      Index r = ri[order[k]];
      if (dup == nullptr) {
        cast_value(type_, acc.data(), type_, vals.at(order[k]));
      } else {
        reduce_run(dup, type_, vals, order, k, run_end, acc.data(), in_x,
                   in_y);
      }
      out->col.push_back(ci[order[k]]);
      out->vals.push_back(acc.data());
      out->ptr[r + 1] += 1;  // row counts; prefix-summed below
      k = run_end;
    }
    for (Index r = 0; r < nr; ++r) out->ptr[r + 1] += out->ptr[r];
    publish(std::move(out));
    return Info::kSuccess;
  };
  return defer_or_run(this, std::move(op), FuseNode{});
}

}  // namespace grb
