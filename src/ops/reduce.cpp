// GrB_reduce: matrix -> vector (row reduce), and vector/matrix -> scalar.
//
// Scalar-producing variants come in two flavours (paper §VI):
//  * typed-output (GraphBLAS 1.X style): an empty input reduces to the
//    monoid identity, and execution cannot be deferred;
//  * GrB_Scalar-output: an empty input yields an EMPTY scalar, and the
//    reduction joins the scalar's deferred sequence like any other op.
// The GrB_Scalar flavour also admits a plain associative BinaryOp in
// place of a monoid (Table II) since no identity value is needed.
#include <algorithm>

#include "obs/telemetry.hpp"
#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

// Scalar reductions use a fixed blocked association: the stored values
// are split into constant-size blocks, each block is folded
// left-to-right (seeded by a cast of its first value), and the block
// partials are combined in ascending block order.  The block size is a
// compile-time constant -- never the thread count or a context's chunk
// -- so the association, and therefore the result bits, depend only on
// the input.  Serial and parallel execution walk the identical fold
// tree.
constexpr size_t kReduceBlock = 4096;

// Folds all stored values with the monoid; returns presence.
bool reduce_all_vector(Context* ctx, const VectorData& u, const Monoid* m,
                       void* out) {
  size_t n = u.ind.size();
  if (n == 0) return false;
  const Type* mt = m->type();
  Context* ectx = exec_context(ctx, n);
  size_t nb = (n + kReduceBlock - 1) / kReduceBlock;
  ValueArray partials(mt->size());
  partials.resize(nb);
  ectx->parallel_for(0, static_cast<Index>(nb), 1,
                     [&](Index blo, Index bhi) {
    BinRunner run(m->op(), mt, u.type);
    Caster u2m(mt, u.type);
    for (Index b = blo; b < bhi; ++b) {
      size_t k = static_cast<size_t>(b) * kReduceBlock;
      size_t kend = std::min(n, k + kReduceBlock);
      void* acc = partials.at(b);
      u2m.run(acc, u.vals.at(k));
      for (++k; k < kend; ++k) {
        if (m->is_terminal(acc)) break;
        run.run(acc, acc, u.vals.at(k));
      }
    }
  });
  std::memcpy(out, partials.at(0), mt->size());
  BinRunner comb(m->op(), mt, mt);
  for (size_t b = 1; b < nb; ++b) {
    if (m->is_terminal(out)) break;
    comb.run(out, out, partials.at(b));
  }
  return true;
}

bool reduce_all_matrix(Context* ctx, const MatrixData& a, const Monoid* m,
                       void* out) {
  size_t n = a.col.size();
  if (n == 0) return false;
  const Type* mt = m->type();
  Context* ectx = exec_context(ctx, n);
  size_t nb = (n + kReduceBlock - 1) / kReduceBlock;
  ValueArray partials(mt->size());
  partials.resize(nb);
  ectx->parallel_for(0, static_cast<Index>(nb), 1,
                     [&](Index blo, Index bhi) {
    BinRunner run(m->op(), mt, a.type);
    Caster a2m(mt, a.type);
    for (Index b = blo; b < bhi; ++b) {
      size_t k = static_cast<size_t>(b) * kReduceBlock;
      size_t kend = std::min(n, k + kReduceBlock);
      void* acc = partials.at(b);
      a2m.run(acc, a.vals.at(k));
      for (++k; k < kend; ++k) {
        if (m->is_terminal(acc)) break;
        run.run(acc, acc, a.vals.at(k));
      }
    }
  });
  std::memcpy(out, partials.at(0), mt->size());
  BinRunner comb(m->op(), mt, mt);
  for (size_t b = 1; b < nb; ++b) {
    if (m->is_terminal(out)) break;
    comb.run(out, out, partials.at(b));
  }
  return true;
}

// Blocked fold with a plain binary op (no identity, no terminal).
bool reduce_all_vector_binop(Context* ctx, const VectorData& u,
                             const BinaryOp* op, void* out) {
  size_t n = u.ind.size();
  if (n == 0) return false;
  const Type* zt = op->ztype();
  Context* ectx = exec_context(ctx, n);
  size_t nb = (n + kReduceBlock - 1) / kReduceBlock;
  ValueArray partials(zt->size());
  partials.resize(nb);
  ectx->parallel_for(0, static_cast<Index>(nb), 1,
                     [&](Index blo, Index bhi) {
    BinRunner run(op, zt, u.type);
    Caster u2z(zt, u.type);
    for (Index b = blo; b < bhi; ++b) {
      size_t k = static_cast<size_t>(b) * kReduceBlock;
      size_t kend = std::min(n, k + kReduceBlock);
      void* acc = partials.at(b);
      u2z.run(acc, u.vals.at(k));
      for (++k; k < kend; ++k) run.run(acc, acc, u.vals.at(k));
    }
  });
  std::memcpy(out, partials.at(0), zt->size());
  BinRunner comb(op, zt, zt);
  for (size_t b = 1; b < nb; ++b) comb.run(out, out, partials.at(b));
  return true;
}

bool reduce_all_matrix_binop(Context* ctx, const MatrixData& a,
                             const BinaryOp* op, void* out) {
  size_t n = a.col.size();
  if (n == 0) return false;
  const Type* zt = op->ztype();
  Context* ectx = exec_context(ctx, n);
  size_t nb = (n + kReduceBlock - 1) / kReduceBlock;
  ValueArray partials(zt->size());
  partials.resize(nb);
  ectx->parallel_for(0, static_cast<Index>(nb), 1,
                     [&](Index blo, Index bhi) {
    BinRunner run(op, zt, a.type);
    Caster a2z(zt, a.type);
    for (Index b = blo; b < bhi; ++b) {
      size_t k = static_cast<size_t>(b) * kReduceBlock;
      size_t kend = std::min(n, k + kReduceBlock);
      void* acc = partials.at(b);
      a2z.run(acc, a.vals.at(k));
      for (++k; k < kend; ++k) run.run(acc, acc, a.vals.at(k));
    }
  });
  std::memcpy(out, partials.at(0), zt->size());
  BinRunner comb(op, zt, zt);
  for (size_t b = 1; b < nb; ++b) comb.run(out, out, partials.at(b));
  return true;
}

// Writes `sum` (in sum_type, or nothing when !present) into the scalar
// handle honoring the optional accumulator.
Info scalar_writeback(Scalar* out, const BinaryOp* accum,
                      const Type* sum_type, const void* sum, bool present) {
  auto old = out->current_data();
  const Type* st = old->type;
  auto next = std::make_shared<ScalarData>(st);
  if (accum != nullptr && old->present && present) {
    BinRunner run(accum, st, sum_type);
    ValueBuf z(accum->ztype()->size());
    run.run(z.data(), old->value.data(), sum);
    next->present = true;
    cast_value(st, next->value.data(), accum->ztype(), z.data());
  } else if (present) {
    next->present = true;
    cast_value(st, next->value.data(), sum_type, sum);
  } else if (accum != nullptr && old->present) {
    next->present = true;
    std::memcpy(next->value.data(), old->value.data(), st->size());
  }
  out->publish(std::move(next));
  return Info::kSuccess;
}

}  // namespace

Info reduce_to_vector(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, a}));
  if (monoid == nullptr || a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  (void)ac;
  if (ar != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(monoid->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), monoid->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), monoid->type()));

  std::shared_ptr<const MatrixData> a_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  std::shared_ptr<const VectorData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0();
  return defer_or_run(w, [w, a_snap, m_snap, monoid, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? format_transpose_view(a_snap) : a_snap;
    const Type* mt = monoid->type();
    auto t = std::make_shared<VectorData>(mt, av->nrows);
    // Count nonempty rows first, then fill in parallel.
    std::vector<Index> slot(av->nrows + 1, 0);
    for (Index r = 0; r < av->nrows; ++r)
      slot[r + 1] = slot[r] + (av->ptr[r + 1] > av->ptr[r] ? 1 : 0);
    t->ind.resize(slot[av->nrows]);
    t->vals.resize(slot[av->nrows]);
    Context* ectx = exec_context(w->context(), av->nvals());
    ectx->parallel_for(0, av->nrows, [&](Index lo, Index hi) {
      BinRunner run(monoid->op(), mt, av->type);
      Caster a2m(mt, av->type);
      for (Index r = lo; r < hi; ++r) {
        size_t k = av->ptr[r], kend = av->ptr[r + 1];
        if (k == kend) continue;
        Index s = slot[r];
        t->ind[s] = r;
        void* acc = t->vals.at(s);
        a2m.run(acc, av->vals.at(k));
        for (++k; k < kend; ++k) {
          if (monoid->is_terminal(acc)) break;
          run.run(acc, acc, av->vals.at(k));
        }
      }
    });
    auto c_old = w->current_canonical();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  }, FuseNode{});
}

// ---- typed-output scalar reduce (1.X style, always immediate) -------------

Info reduce_to_scalar(void* out, const Type* out_type, const BinaryOp* accum,
                      const Monoid* monoid, const Vector* u,
                      const Descriptor* /*desc*/) {
  if (out == nullptr || out_type == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({u}));
  if (monoid == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(monoid->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(out_type, monoid->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out_type, monoid->type()));
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&snap));
  ValueBuf sum(monoid->type()->size());
  Vector* uv = const_cast<Vector*>(u);
  if (!reduce_all_vector(uv->context(), *snap, monoid, sum.data()))
    std::memcpy(sum.data(), monoid->identity(), monoid->type()->size());
  if (accum != nullptr) {
    BinRunner run(accum, out_type, monoid->type());
    ValueBuf z(accum->ztype()->size());
    run.run(z.data(), out, sum.data());
    cast_value(out_type, out, accum->ztype(), z.data());
  } else {
    cast_value(out_type, out, monoid->type(), sum.data());
  }
  return Info::kSuccess;
}

Info reduce_to_scalar(void* out, const Type* out_type, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* /*desc*/) {
  if (out == nullptr || out_type == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({a}));
  if (monoid == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(monoid->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(out_type, monoid->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out_type, monoid->type()));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  ValueBuf sum(monoid->type()->size());
  Matrix* am = const_cast<Matrix*>(a);
  if (!reduce_all_matrix(am->context(), *snap, monoid, sum.data()))
    std::memcpy(sum.data(), monoid->identity(), monoid->type()->size());
  if (accum != nullptr) {
    BinRunner run(accum, out_type, monoid->type());
    ValueBuf z(accum->ztype()->size());
    run.run(z.data(), out, sum.data());
    cast_value(out_type, out, accum->ztype(), z.data());
  } else {
    cast_value(out_type, out, monoid->type(), sum.data());
  }
  return Info::kSuccess;
}

// ---- GrB_Scalar-output reduce (2.0, deferrable, empty-aware) --------------

Info reduce_to_scalar(Scalar* out, const BinaryOp* accum,
                      const Monoid* monoid, const Vector* u,
                      const Descriptor* /*desc*/) {
  GRB_RETURN_IF_ERROR(validate_objects({out, u}));
  if (monoid == nullptr || u == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(monoid->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(out->type(), monoid->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out->type(), monoid->type()));
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&snap));
  return defer_or_run(out, [out, accum, monoid, snap]() -> Info {
    if (obs::stats_enabled()) obs::add_scalars(snap->nvals());
    ValueBuf sum(monoid->type()->size());
    bool present =
        reduce_all_vector(out->context(), *snap, monoid, sum.data());
    return scalar_writeback(out, accum, monoid->type(), sum.data(), present);
  }, FuseNode{});
}

Info reduce_to_scalar(Scalar* out, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* /*desc*/) {
  GRB_RETURN_IF_ERROR(validate_objects({out, a}));
  if (monoid == nullptr || a == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(monoid->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(out->type(), monoid->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out->type(), monoid->type()));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  return defer_or_run(out, [out, accum, monoid, snap]() -> Info {
    if (obs::stats_enabled()) obs::add_scalars(snap->nvals());
    ValueBuf sum(monoid->type()->size());
    bool present =
        reduce_all_matrix(out->context(), *snap, monoid, sum.data());
    return scalar_writeback(out, accum, monoid->type(), sum.data(), present);
  }, FuseNode{});
}

// ---- GrB_Scalar-output reduce with a plain BinaryOp (Table II) ------------

Info reduce_to_scalar_binop(Scalar* out, const BinaryOp* accum,
                            const BinaryOp* op, const Vector* u,
                            const Descriptor* /*desc*/) {
  GRB_RETURN_IF_ERROR(validate_objects({out, u}));
  if (op == nullptr || u == nullptr) return Info::kNullPointer;
  if (op->ztype() != op->xtype() || op->ztype() != op->ytype())
    return Info::kDomainMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->ztype(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(out->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out->type(), op->ztype()));
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&snap));
  return defer_or_run(out, [out, accum, op, snap]() -> Info {
    if (obs::stats_enabled()) obs::add_scalars(snap->nvals());
    ValueBuf sum(op->ztype()->size());
    bool present =
        reduce_all_vector_binop(out->context(), *snap, op, sum.data());
    return scalar_writeback(out, accum, op->ztype(), sum.data(), present);
  }, FuseNode{});
}

Info reduce_to_scalar_binop(Scalar* out, const BinaryOp* accum,
                            const BinaryOp* op, const Matrix* a,
                            const Descriptor* /*desc*/) {
  GRB_RETURN_IF_ERROR(validate_objects({out, a}));
  if (op == nullptr || a == nullptr) return Info::kNullPointer;
  if (op->ztype() != op->xtype() || op->ztype() != op->ytype())
    return Info::kDomainMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->ztype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(out->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, out->type(), op->ztype()));
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&snap));
  return defer_or_run(out, [out, accum, op, snap]() -> Info {
    if (obs::stats_enabled()) obs::add_scalars(snap->nvals());
    ValueBuf sum(op->ztype()->size());
    bool present =
        reduce_all_matrix_binop(out->context(), *snap, op, sum.data());
    return scalar_writeback(out, accum, op->ztype(), sum.data(), present);
  }, FuseNode{});
}

}  // namespace grb
