// transpose_data helper (used by every op honoring GrB_DESC_T0/T1) and
// the GrB_transpose operation.
#include "ops/common.hpp"

namespace grb {

std::shared_ptr<const MatrixData> transpose_data(const MatrixData& a) {
  auto out = std::make_shared<MatrixData>(a.type, a.ncols, a.nrows);
  size_t nnz = a.col.size();
  out->col.resize(nnz);
  out->vals.resize(nnz);
  // Counting sort by column: counts -> offsets -> scatter.  Rows of the
  // result come out sorted because the scatter scans a in row order.
  std::vector<Index> next(a.ncols + 1, 0);
  for (size_t k = 0; k < nnz; ++k) next[a.col[k] + 1] += 1;
  for (Index c = 0; c < a.ncols; ++c) next[c + 1] += next[c];
  for (Index c = 0; c <= a.ncols; ++c) out->ptr[c] = next[c];
  for (Index r = 0; r < a.nrows; ++r) {
    for (size_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
      Index c = a.col[k];
      Index slot = next[c]++;
      out->col[slot] = r;
      out->vals.set(slot, a.vals.at(k));
    }
  }
  return out;
}

Info transpose(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const Matrix* a, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  // With GrB_DESC_T0 the two transpositions cancel: T = A.
  bool tran = !d.tran0();
  Index t_rows = tran ? a->ncols() : a->nrows();
  Index t_cols = tran ? a->nrows() : a->ncols();
  if (c->nrows() != t_rows || c->ncols() != t_cols)
    return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), a->type()));

  std::shared_ptr<const MatrixData> a_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  std::shared_ptr<const MatrixData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));

  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  auto op = [c, a_snap, m_snap, spec, tran]() -> Info {
    std::shared_ptr<const MatrixData> t =
        tran ? format_transpose_view(a_snap) : a_snap;
    // c's queue is FIFO: predecessors have published by now.
    std::shared_ptr<const MatrixData> c_old = c->current_canonical();
    auto result = writeback_matrix(c->context(), *c_old, *t, m_snap.get(),
                                   spec);
    c->publish(std::move(result));
    return Info::kSuccess;
  };
  return defer_or_run(c, std::move(op), FuseNode{});
}

}  // namespace grb
