// Shared declarations for the GraphBLAS operation layer.
//
// Every operation follows the same shape (GraphBLAS math spec):
//   1. eager API validation (null handles, context agreement, deferred
//      errors on every operand, dimension and domain checks);
//   2. input snapshotting (forces completion of inputs, COW-shares their
//      data blocks);
//   3. a closure that computes T = op(inputs) and funnels it through the
//      masked/accumulated write-back
//         Z = accum ? (C odot T) : T ;  C<M, replace> = Z
//      which is either run now (blocking) or appended to the output's
//      sequence (nonblocking).
#pragma once

#include "containers/matrix.hpp"
#include "containers/scalar.hpp"
#include "containers/vector.hpp"
#include "core/binary_op.hpp"
#include "core/descriptor.hpp"
#include "core/global.hpp"
#include "core/index_unary_op.hpp"
#include "core/monoid.hpp"
#include "core/semiring.hpp"
#include "core/unary_op.hpp"

namespace grb {

// ---- validation helpers (ops/validate.cpp) -------------------------------

// Null / liveness / deferred-error / context-agreement checks.  `objs` may
// contain nullptrs for optional arguments (they are skipped).  The first
// object must be the (non-null) output.
Info validate_objects(std::initializer_list<const ObjectBase*> objs);

// Convenience for "must be castable" checks.
inline Info check_cast(const Type* to, const Type* from) {
  return types_compatible(to, from) ? Info::kSuccess : Info::kDomainMismatch;
}

// Accumulator domain checks: accum(x <- C, y <- T) with result cast to C.
Info check_accum(const BinaryOp* accum, const Type* ctype,
                 const Type* ttype);

// ---- transpose helper (ops/transpose.cpp) --------------------------------

// Returns A transposed (CSC-of-A reinterpreted as CSR), sorted rows.
std::shared_ptr<const MatrixData> transpose_data(const MatrixData& a);

// ---- write-back machinery (ops/writeback_*.cpp) --------------------------

struct WritebackSpec {
  const BinaryOp* accum = nullptr;  // optional
  bool have_mask = false;
  bool mask_structure = false;
  bool mask_comp = false;
  bool replace = false;
};

// Applies Z = accum ? (C odot T) : T ; C<M,r> = Z and returns the new
// vector contents.  `t` values are in t.type's domain; the result is in
// c_old.type's domain.  `mask` is ignored unless spec.have_mask.
std::shared_ptr<VectorData> writeback_vector(
    Context* ctx, const VectorData& c_old, const VectorData& t,
    const VectorData* mask, const WritebackSpec& spec);

std::shared_ptr<MatrixData> writeback_matrix(
    Context* ctx, const MatrixData& c_old, const MatrixData& t,
    const MatrixData* mask, const WritebackSpec& spec);

// ---- operation entry points ----------------------------------------------
// All follow the C API argument order.  `desc` may be nullptr.

// mxm / mxv / vxm
Info mxm(Matrix* c, const Matrix* mask, const BinaryOp* accum,
         const Semiring* s, const Matrix* a, const Matrix* b,
         const Descriptor* desc);
Info mxv(Vector* w, const Vector* mask, const BinaryOp* accum,
         const Semiring* s, const Matrix* a, const Vector* u,
         const Descriptor* desc);
Info vxm(Vector* w, const Vector* mask, const BinaryOp* accum,
         const Semiring* s, const Vector* u, const Matrix* a,
         const Descriptor* desc);

// element-wise (set intersection / union).  The op is a BinaryOp; the
// Monoid/Semiring variants of the C API degrade to it.
Info ewise_mult(Vector* w, const Vector* mask, const BinaryOp* accum,
                const BinaryOp* op, const Vector* u, const Vector* v,
                const Descriptor* desc);
Info ewise_mult(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                const BinaryOp* op, const Matrix* a, const Matrix* b,
                const Descriptor* desc);
Info ewise_add(Vector* w, const Vector* mask, const BinaryOp* accum,
               const BinaryOp* op, const Vector* u, const Vector* v,
               const Descriptor* desc);
Info ewise_add(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const BinaryOp* op, const Matrix* a, const Matrix* b,
               const Descriptor* desc);

// apply: unary, bound-binary, and the 2.0 index-unary variants (§VIII.B).
Info apply(Vector* w, const Vector* mask, const BinaryOp* accum,
           const UnaryOp* op, const Vector* u, const Descriptor* desc);
Info apply(Matrix* c, const Matrix* mask, const BinaryOp* accum,
           const UnaryOp* op, const Matrix* a, const Descriptor* desc);
// bind-first: z = op(s, u(i)); bind-second: z = op(u(i), s).
Info apply_bind1st(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Vector* u, const Descriptor* desc);
Info apply_bind2nd(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc);
Info apply_bind1st(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const void* s, const Type* stype,
                   const Matrix* a, const Descriptor* desc);
Info apply_bind2nd(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const BinaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc);
Info apply_indexop(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Vector* u, const void* s,
                   const Type* stype, const Descriptor* desc);
Info apply_indexop(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const IndexUnaryOp* op, const Matrix* a, const void* s,
                   const Type* stype, const Descriptor* desc);

// select (§VIII.C): functional input mask via a boolean IndexUnaryOp.
Info select(Vector* w, const Vector* mask, const BinaryOp* accum,
            const IndexUnaryOp* op, const Vector* u, const void* s,
            const Type* stype, const Descriptor* desc);
Info select(Matrix* c, const Matrix* mask, const BinaryOp* accum,
            const IndexUnaryOp* op, const Matrix* a, const void* s,
            const Type* stype, const Descriptor* desc);

// reduce
Info reduce_to_vector(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* desc);
// typed-output variants (GraphBLAS 1.X style: empty input yields the
// monoid identity).
Info reduce_to_scalar(void* out, const Type* out_type, const BinaryOp* accum,
                      const Monoid* monoid, const Vector* u,
                      const Descriptor* desc);
Info reduce_to_scalar(void* out, const Type* out_type, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* desc);
// GrB_Scalar-output variants (§VI: empty input yields an EMPTY scalar).
Info reduce_to_scalar(Scalar* out, const BinaryOp* accum,
                      const Monoid* monoid, const Vector* u,
                      const Descriptor* desc);
Info reduce_to_scalar(Scalar* out, const BinaryOp* accum,
                      const Monoid* monoid, const Matrix* a,
                      const Descriptor* desc);
// Table II: GrB_Scalar-output reduce with a plain associative BinaryOp in
// place of a monoid (no identity needed since the output can be empty).
Info reduce_to_scalar_binop(Scalar* out, const BinaryOp* accum,
                            const BinaryOp* op, const Vector* u,
                            const Descriptor* desc);
Info reduce_to_scalar_binop(Scalar* out, const BinaryOp* accum,
                            const BinaryOp* op, const Matrix* a,
                            const Descriptor* desc);

// extract
Info extract(Vector* w, const Vector* mask, const BinaryOp* accum,
             const Vector* u, const Index* indices, Index ni,
             const Descriptor* desc);
Info extract(Matrix* c, const Matrix* mask, const BinaryOp* accum,
             const Matrix* a, const Index* rows, Index nrows,
             const Index* cols, Index ncols, const Descriptor* desc);
Info extract_col(Vector* w, const Vector* mask, const BinaryOp* accum,
                 const Matrix* a, const Index* rows, Index nrows, Index col,
                 const Descriptor* desc);

// assign
Info assign(Vector* w, const Vector* mask, const BinaryOp* accum,
            const Vector* u, const Index* indices, Index ni,
            const Descriptor* desc);
Info assign(Matrix* c, const Matrix* mask, const BinaryOp* accum,
            const Matrix* a, const Index* rows, Index nrows,
            const Index* cols, Index ncols, const Descriptor* desc);
Info assign_row(Matrix* c, const Vector* mask, const BinaryOp* accum,
                const Vector* u, Index row, const Index* cols, Index ncols,
                const Descriptor* desc);
Info assign_col(Matrix* c, const Vector* mask, const BinaryOp* accum,
                const Vector* u, const Index* rows, Index nrows, Index col,
                const Descriptor* desc);
Info assign_scalar(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const void* s, const Type* stype, const Index* indices,
                   Index ni, const Descriptor* desc);
Info assign_scalar(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const void* s, const Type* stype, const Index* rows,
                   Index nrows, const Index* cols, Index ncols,
                   const Descriptor* desc);
// GrB_Scalar variants (Table II); an empty scalar deletes the targeted
// region (under the mask) like an annihilating assign.
Info assign_scalar(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const Scalar* s, const Index* indices, Index ni,
                   const Descriptor* desc);
Info assign_scalar(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const Scalar* s, const Index* rows, Index nrows,
                   const Index* cols, Index ncols, const Descriptor* desc);

// transpose / kronecker / diag
Info transpose(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const Matrix* a, const Descriptor* desc);
Info kronecker(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const BinaryOp* op, const Matrix* a, const Matrix* b,
               const Descriptor* desc);
// C is a (square) matrix with vector v on diagonal k (GrB_Matrix_diag).
Info matrix_diag(Matrix** c, const Vector* v, int64_t k);

}  // namespace grb
