#include "ops/common.hpp"

namespace grb {

Info validate_objects(std::initializer_list<const ObjectBase*> objs) {
  // The first entry is the operation's output and is mandatory; the
  // remaining entries may be nullptr (optional mask, etc.).
  if (objs.size() == 0 || *objs.begin() == nullptr)
    return Info::kNullPointer;
  const ObjectBase* first = *objs.begin();
  Context* ctx = first->context();
  if (ctx == nullptr || !context_is_live(ctx))
    return Info::kUninitializedObject;
  for (const ObjectBase* o : objs) {
    if (o == nullptr) continue;
    // Paper §V: a method involving an object whose sequence has a deferred
    // execution error reports that error.
    GRB_RETURN_IF_ERROR(o->pending_error());
    // Paper §IV: all GraphBLAS objects in a method must share a context.
    if (o->context() != ctx) return Info::kInvalidValue;
  }
  return Info::kSuccess;
}

Info check_accum(const BinaryOp* accum, const Type* ctype,
                 const Type* ttype) {
  if (accum == nullptr) return Info::kSuccess;
  GRB_RETURN_IF_ERROR(check_cast(accum->xtype(), ctype));
  GRB_RETURN_IF_ERROR(check_cast(accum->ytype(), ttype));
  GRB_RETURN_IF_ERROR(check_cast(ctype, accum->ztype()));
  return Info::kSuccess;
}

}  // namespace grb
