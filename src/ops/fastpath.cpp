// Statically typed semiring kernels for hot (semiring, type) pairs.
//
// The paper's Motivation (§II) observes that an opaque function-pointer
// call per scalar operation is a real performance penalty in C API
// implementations.  Kernels here instantiate the same mxm/vxm/mxv
// algorithms with inlined arithmetic; the dispatcher falls back to the
// generic path for everything else.  bench_m2_fastpath_ablation measures
// the difference, reproducing the claim.
#include <algorithm>

#include "ops/mxm.hpp"

namespace grb {
namespace {

std::atomic<bool> g_fastpath_enabled{true};
std::atomic<int> g_mxm_strategy{0};  // MxmStrategy::kAuto

template <class T>
struct MulTimes {
  T operator()(T a, T b) const { return static_cast<T>(a * b); }
};
template <class T>
struct MulPlus {
  T operator()(T a, T b) const { return static_cast<T>(a + b); }
};
template <class T>
struct MulSecond {
  T operator()(T, T b) const { return b; }
};
template <class T>
struct MulFirst {
  T operator()(T a, T) const { return a; }
};
template <class T>
struct MulLand {
  T operator()(T a, T b) const { return a && b; }
};
template <class T>
struct AddPlus {
  T operator()(T a, T b) const { return static_cast<T>(a + b); }
};
template <class T>
struct AddMin {
  T operator()(T a, T b) const { return a < b ? a : b; }
};
template <class T>
struct AddMax {
  T operator()(T a, T b) const { return a > b ? a : b; }
};
template <class T>
struct AddLor {
  T operator()(T a, T b) const { return a || b; }
};

template <class T, class Mul, class Add>
class TypedRunner {
 public:
  void mul(void* z, const void* a, const void* b) {
    T x, y;
    std::memcpy(&x, a, sizeof(T));
    std::memcpy(&y, b, sizeof(T));
    T r = Mul()(x, y);
    std::memcpy(z, &r, sizeof(T));
  }
  void add(void* acc, const void* z) {
    T x, y;
    std::memcpy(&x, acc, sizeof(T));
    std::memcpy(&y, z, sizeof(T));
    T r = Add()(x, y);
    std::memcpy(acc, &r, sizeof(T));
  }
};

// True when the semiring is exactly <add, mul> over T with no casts.
template <class T>
bool matches(const Semiring* s, BinOpCode add, BinOpCode mul,
             const Type* atype, const Type* btype) {
  const Type* t = type_of<T>();
  return s->add()->op()->opcode() == add && s->mul()->opcode() == mul &&
         s->mul()->ztype() == t && s->mul()->xtype() == t &&
         s->mul()->ytype() == t && atype == t && btype == t;
}

// Dispatches one (add, mul, T) combination for all three kernels via a
// caller-supplied functor so each kernel body is instantiated once per
// combination.
template <class Invoke>
auto dispatch(const Semiring* s, const Type* atype, const Type* btype,
              Invoke&& invoke) -> decltype(invoke(TypedRunner<double, MulTimes<double>, AddPlus<double>>{})) {
  using R = decltype(invoke(
      TypedRunner<double, MulTimes<double>, AddPlus<double>>{}));
#define GRB_TRY_COMBO(T, ADDC, MULC, ADDF, MULF)                        \
  if (matches<T>(s, BinOpCode::ADDC, BinOpCode::MULC, atype, btype))    \
    return invoke(TypedRunner<T, MULF<T>, ADDF<T>>{});
  GRB_TRY_COMBO(double, kPlus, kTimes, AddPlus, MulTimes)
  GRB_TRY_COMBO(float, kPlus, kTimes, AddPlus, MulTimes)
  GRB_TRY_COMBO(int64_t, kPlus, kTimes, AddPlus, MulTimes)
  GRB_TRY_COMBO(int32_t, kPlus, kTimes, AddPlus, MulTimes)
  GRB_TRY_COMBO(uint64_t, kPlus, kTimes, AddPlus, MulTimes)
  GRB_TRY_COMBO(double, kMin, kPlus, AddMin, MulPlus)
  GRB_TRY_COMBO(int64_t, kMin, kPlus, AddMin, MulPlus)
  GRB_TRY_COMBO(int32_t, kMin, kPlus, AddMin, MulPlus)
  GRB_TRY_COMBO(double, kMax, kPlus, AddMax, MulPlus)
  GRB_TRY_COMBO(int64_t, kMax, kPlus, AddMax, MulPlus)
  GRB_TRY_COMBO(double, kMin, kSecond, AddMin, MulSecond)
  GRB_TRY_COMBO(double, kMin, kFirst, AddMin, MulFirst)
  GRB_TRY_COMBO(double, kPlus, kSecond, AddPlus, MulSecond)
  GRB_TRY_COMBO(bool, kLor, kLand, AddLor, MulLand)
#undef GRB_TRY_COMBO
  return R{};  // null shared_ptr: no fast kernel registered
}

}  // namespace

MxmStrategy mxm_strategy() {
  return static_cast<MxmStrategy>(
      g_mxm_strategy.load(std::memory_order_relaxed));
}

void set_mxm_strategy(MxmStrategy strategy) {
  g_mxm_strategy.store(static_cast<int>(strategy),
                       std::memory_order_relaxed);
}

bool fastpath_enabled() {
  return g_fastpath_enabled.load(std::memory_order_relaxed);
}

void set_fastpath_enabled(bool enabled) {
  g_fastpath_enabled.store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<MatrixData> fastpath_mxm(Context* ctx, const MatrixData& a,
                                         const MatrixData& b,
                                         const Semiring* s,
                                         const SpgemmRowCosts& costs) {
  if (!fastpath_enabled()) return nullptr;
  // The typed kernels instantiate the same adaptive engine (and its
  // accumulator templates) as the generic path — only the scalar ops
  // are statically inlined.
  return dispatch(s, a.type, b.type, [&](auto runner) {
    return spgemm_mxm(ctx, a, b, s->mul()->ztype(), costs,
                      [runner] { return runner; });
  });
}

std::shared_ptr<MatrixData> fastpath_masked_dot_mxm(Context* ctx,
                                                    const MatrixData& a,
                                                    const MatrixData& bt,
                                                    const MatrixData& mask,
                                                    const Semiring* s) {
  if (!fastpath_enabled()) return nullptr;
  return dispatch(s, a.type, bt.type, [&](auto runner) {
    return mxm_masked_dot_kernel(ctx, a, bt, mask, s->mul()->ztype(),
                                 [runner] { return runner; });
  });
}

std::shared_ptr<VectorData> fastpath_vxm(const VectorData& u,
                                         const MatrixData& a,
                                         const Semiring* s) {
  if (!fastpath_enabled()) return nullptr;
  return dispatch(s, u.type, a.type, [&](auto runner) {
    return vxm_spa(u, a, s->mul()->ztype(), [runner] { return runner; });
  });
}

std::shared_ptr<VectorData> fastpath_vxm_dot(Context* ctx,
                                             const VectorData& u,
                                             const MatrixData& at,
                                             const Semiring* s) {
  if (!fastpath_enabled()) return nullptr;
  return dispatch(s, u.type, at.type, [&](auto runner) {
    return vxm_dot_kernel(ctx, u, at, s->mul()->ztype(),
                          [runner] { return runner; });
  });
}

std::shared_ptr<VectorData> fastpath_mxv(Context* ctx, const MatrixData& a,
                                         const VectorData& u,
                                         const Semiring* s) {
  if (!fastpath_enabled()) return nullptr;
  return dispatch(s, a.type, u.type, [&](auto runner) {
    return mxv_kernel(ctx, a, u, s->mul()->ztype(),
                      [runner] { return runner; });
  });
}

}  // namespace grb
