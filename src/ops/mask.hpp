// Mask cursors: streaming membership/truthiness tests over the sorted
// index lists of mask containers.  A cursor is advanced with
// monotonically nondecreasing queries (the write-back merges are sorted),
// so each test is amortized O(1).
#pragma once

#include "containers/matrix.hpp"
#include "containers/vector.hpp"
#include "ops/common.hpp"

namespace grb {

class VectorMaskCursor {
 public:
  VectorMaskCursor(const VectorData* mask, const WritebackSpec& spec)
      : m_(spec.have_mask ? mask : nullptr),
        structure_(spec.mask_structure),
        comp_(spec.mask_comp) {}

  // Starts the cursor at the first mask entry >= start, so range-blocked
  // parallel merges don't rescan the mask prefix per block.
  VectorMaskCursor(const VectorData* mask, const WritebackSpec& spec,
                   Index start)
      : VectorMaskCursor(mask, spec) {
    if (m_ != nullptr)
      pos_ = std::lower_bound(m_->ind.begin(), m_->ind.end(), start) -
             m_->ind.begin();
  }

  // Queries must be nondecreasing in i.
  bool test(Index i) {
    if (m_ == nullptr) return !comp_;  // no mask: all-true (comp: all-false)
    while (pos_ < m_->ind.size() && m_->ind[pos_] < i) ++pos_;
    bool present = pos_ < m_->ind.size() && m_->ind[pos_] == i;
    bool v = structure_ ? present
                        : (present &&
                           value_as_bool(m_->type, m_->vals.at(pos_)));
    return v != comp_;
  }

 private:
  const VectorData* m_;
  bool structure_;
  bool comp_;
  size_t pos_ = 0;
};

class MatrixRowMaskCursor {
 public:
  MatrixRowMaskCursor(const MatrixData* mask, Index row,
                      const WritebackSpec& spec)
      : structure_(spec.mask_structure), comp_(spec.mask_comp) {
    if (spec.have_mask && mask != nullptr && row < mask->nrows) {
      m_ = mask;
      pos_ = mask->ptr[row];
      end_ = mask->ptr[row + 1];
    }
  }

  // Queries must be nondecreasing in j within the row.
  bool test(Index j) {
    if (m_ == nullptr) return !comp_;  // no mask
    while (pos_ < end_ && m_->col[pos_] < j) ++pos_;
    bool present = pos_ < end_ && m_->col[pos_] == j;
    bool v = structure_ ? present
                        : (present &&
                           value_as_bool(m_->type, m_->vals.at(pos_)));
    return v != comp_;
  }

  bool no_mask() const { return m_ == nullptr; }

 private:
  const MatrixData* m_ = nullptr;
  bool structure_;
  bool comp_;
  size_t pos_ = 0;
  size_t end_ = 0;
};

}  // namespace grb
