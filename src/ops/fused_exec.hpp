// Fused execution of planner-selected deferred-op runs (exec/fusion.hpp).
//
// A group is a contiguous run of fusable kMap/kZip nodes targeting one
// container.  Instead of one full materialize-and-writeback pass per op,
// the group composes the maps into a per-entry chain, merges at most at
// zip boundaries, and publishes the target once — bitwise-identical to
// the eager per-op path by construction (same runners, same casts, same
// merge order).
#pragma once

#include <cstddef>
#include <vector>

#include "core/info.hpp"

// Registry of the only translation units allowed to grant the fusable
// capabilities (FuseNode::Kind::kMap / kZip).  A grant is a promise that
// this file's chunking, casting, and merge order match the fused
// executor below; tools/grb_analyze.py (fusion-grant-coverage) enforces
// the parity both ways — a kMap/kZip assignment outside this list, or a
// listed file that no longer grants, fails the gate.  Register a kernel
// here only after teaching run_fused_*_group to execute its node shape.
#define GRB_FUSABLE_KERNEL_FILES \
  "src/ops/apply.cpp",           \
  "src/ops/ewise_vector.cpp"

namespace grb {

class Vector;
class Matrix;
struct Deferred;

// Executes batch[b, e) as fused passes over `w`'s data, publishing once.
// Emits the same per-node telemetry (op scopes, deferred spans, flight
// records, scalar counts) the eager walk would.
Info run_fused_vector_group(Vector* w, std::vector<Deferred>& batch,
                            size_t b, size_t e);

// Matrix groups contain kMap chains only (matrix elementwise ops stay
// opaque to the planner).
Info run_fused_matrix_group(Matrix* c, std::vector<Deferred>& batch,
                            size_t b, size_t e);

}  // namespace grb
