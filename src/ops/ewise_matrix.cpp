// eWiseMult (set intersection) and eWiseAdd (set union) for matrices.
// Row-parallel two-phase assembly (structural count, then fill).
#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

Info validate_ewise_m(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                      const BinaryOp* op, const Matrix* a, const Matrix* b,
                      const Descriptor& d) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a, b}));
  if (op == nullptr || a == nullptr || b == nullptr)
    return Info::kNullPointer;
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  Index br = d.tran1() ? b->ncols() : b->nrows();
  Index bc = d.tran1() ? b->nrows() : b->ncols();
  if (ar != c->nrows() || ac != c->ncols() || br != c->nrows() ||
      bc != c->ncols())
    return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->xtype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(op->ytype(), b->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), op->ztype()));
  return Info::kSuccess;
}

// Merges row r of a and b; emit(j, ak, bk) with npos for absent sides.
template <bool kUnion, class Emit>
void merge_ewise_row(const MatrixData& a, const MatrixData& b, Index r,
                     Emit&& emit) {
  size_t ak = a.ptr[r], aend = a.ptr[r + 1];
  size_t bk = b.ptr[r], bend = b.ptr[r + 1];
  while (ak < aend && bk < bend) {
    if (a.col[ak] == b.col[bk]) {
      emit(a.col[ak], ak, bk);
      ++ak;
      ++bk;
    } else if (a.col[ak] < b.col[bk]) {
      if constexpr (kUnion) emit(a.col[ak], ak, MatrixData::npos);
      ++ak;
    } else {
      if constexpr (kUnion) emit(b.col[bk], MatrixData::npos, bk);
      ++bk;
    }
  }
  if constexpr (kUnion) {
    for (; ak < aend; ++ak) emit(a.col[ak], ak, MatrixData::npos);
    for (; bk < bend; ++bk) emit(b.col[bk], MatrixData::npos, bk);
  }
}

// Dense×dense fast path: both operands are full, so union and
// intersection coincide and every output cell is op(a, b) at the same
// row-major slot — no merge, no structural pass, one flat loop.  The
// result is published as a dense block; value order matches the CSR
// merge exactly (row-major == full-CSR compact order), so downstream
// canonicalization is bitwise-identical to the generic path.
std::shared_ptr<MatrixData> compute_ewise_dense(Context* ctx,
                                                const MatrixData& a,
                                                const MatrixData& b,
                                                const BinaryOp* op) {
  auto t = std::make_shared<MatrixData>(op->ztype(), a.nrows, a.ncols,
                                        MatFormat::kDense);
  Index cells = a.nrows * a.ncols;
  t->full_nvals = cells;
  t->vals.resize(cells);
  Index cols = a.ncols;
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    BinRunner run(op, a.type, b.type);
    for (Index r = lo; r < hi; ++r) {
      for (Index j = 0; j < cols; ++j) {
        size_t k = r * cols + j;
        run.run(t->vals.at(k), a.vals.at(k), b.vals.at(k));
      }
    }
  });
  return t;
}

template <bool kUnion>
std::shared_ptr<MatrixData> compute_ewise_m(Context* ctx,
                                            const MatrixData& a,
                                            const MatrixData& b,
                                            const BinaryOp* op) {
  auto t = std::make_shared<MatrixData>(op->ztype(), a.nrows, a.ncols);
  std::vector<Index> counts(a.nrows, 0);
  auto count = [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      Index n = 0;
      merge_ewise_row<kUnion>(a, b, r, [&](Index, size_t, size_t) { ++n; });
      counts[r] = n;
    }
  };
  ctx->parallel_for(0, a.nrows, count);
  for (Index r = 0; r < a.nrows; ++r) t->ptr[r + 1] = t->ptr[r] + counts[r];
  t->col.resize(t->ptr[a.nrows]);
  t->vals.resize(t->ptr[a.nrows]);

  auto fill = [&](Index lo, Index hi) {
    BinRunner run(op, a.type, b.type);
    Caster a2z(op->ztype(), a.type);
    Caster b2z(op->ztype(), b.type);
    for (Index r = lo; r < hi; ++r) {
      size_t w = t->ptr[r];
      merge_ewise_row<kUnion>(a, b, r, [&](Index j, size_t ak, size_t bk) {
        t->col[w] = j;
        void* dst = t->vals.at(w);
        if (ak == MatrixData::npos) {
          b2z.run(dst, b.vals.at(bk));
        } else if (bk == MatrixData::npos) {
          a2z.run(dst, a.vals.at(ak));
        } else {
          run.run(dst, a.vals.at(ak), b.vals.at(bk));
        }
        ++w;
      });
    }
  };
  ctx->parallel_for(0, a.nrows, fill);
  return t;
}

template <bool kUnion>
Info ewise_m(Matrix* c, const Matrix* mask, const BinaryOp* accum,
             const BinaryOp* op, const Matrix* a, const Matrix* b,
             const Descriptor* desc) {
  const Descriptor& d = resolve_desc(desc);
  GRB_RETURN_IF_ERROR(validate_ewise_m(c, mask, accum, op, a, b, d));
  // Native snapshots: dense×dense inputs take the flat-loop fast path
  // below without expanding to CSR first.
  std::shared_ptr<const MatrixData> a_snap, b_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot_native(&a_snap));
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(b)->snapshot_native(&b_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0(), t1 = d.tran1();
  // Plain replace: overwrites c from input snapshots without reading it
  // (a self-input completed at snapshot time), so earlier queued writes
  // to c are dead.  Stays opaque to chain fusion.
  FuseNode node;
  if (mask == nullptr && accum == nullptr && !d.mask_comp()) {
    node.reads_out = false;
    node.full_replace = true;
  }
  return defer_or_run(
      c,
      [c, a_snap, b_snap, m_snap, op, spec, t0, t1]() -> Info {
        Context* ectx = exec_context(
            c->context(), a_snap->nvals() + b_snap->nvals());
        // Dense×dense with an identity write-back (unmasked,
        // unaccumulated, no cast): publish the flat-loop result directly.
        if (!t0 && !t1 && a_snap->format == MatFormat::kDense &&
            b_snap->format == MatFormat::kDense && m_snap == nullptr &&
            spec.accum == nullptr && !spec.mask_comp &&
            op->ztype() == c->type()) {
          c->publish(compute_ewise_dense(ectx, *a_snap, *b_snap, op));
          return Info::kSuccess;
        }
        std::shared_ptr<const MatrixData> av =
            t0 ? format_transpose_view(a_snap) : format_csr_view(a_snap);
        std::shared_ptr<const MatrixData> bv =
            t1 ? format_transpose_view(b_snap) : format_csr_view(b_snap);
        auto t = compute_ewise_m<kUnion>(ectx, *av, *bv, op);
        auto c_old = c->current_canonical();
        c->publish(
            writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      },
      std::move(node));
}

}  // namespace

Info ewise_mult(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                const BinaryOp* op, const Matrix* a, const Matrix* b,
                const Descriptor* desc) {
  return ewise_m<false>(c, mask, accum, op, a, b, desc);
}

Info ewise_add(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const BinaryOp* op, const Matrix* a, const Matrix* b,
               const Descriptor* desc) {
  return ewise_m<true>(c, mask, accum, op, a, b, desc);
}

}  // namespace grb
