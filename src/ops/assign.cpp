// GrB_assign: w<m>(I) = u;  C<M>(I,J) = A;  row/col/scalar variants, plus
// the GrB_Scalar variants of Table II.
//
// Assign differs from every other operation in its write-back: positions
// of C *outside* the assigned region keep their values in Z even without
// an accumulator.  So the computation is
//   Z = C;  Z(region) updated from the source (accum-aware; a source hole
//           deletes the target entry unless accumulating);
//   C<M, replace> = Z   over the FULL C domain (GrB_assign semantics).
// Duplicate indices in I/J are undefined per the spec; this
// implementation applies updates in order with "last one wins".
#include <algorithm>

#include "ops/common.hpp"
#include "ops/mask.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

bool is_all(const Index* indices) { return indices == all_indices(); }

struct IndexList {
  bool all = false;
  std::vector<Index> list;
  Index size(Index domain) const {
    return all ? domain : static_cast<Index>(list.size());
  }
  Index at(Index k) const { return all ? k : list[k]; }
};

Info capture_indices(IndexList* out, const Index* indices, Index n,
                     Index domain) {
  if (is_all(indices)) {
    out->all = true;
    return Info::kSuccess;
  }
  if (indices == nullptr && n > 0) return Info::kNullPointer;
  out->list.assign(indices, indices + n);
  for (Index i : out->list)
    if (i >= domain) return Info::kInvalidIndex;
  return Info::kSuccess;
}

// One update at a target position: has=false means "source hole".
struct Update {
  Index pos;     // target index (vector) or target column (matrix row)
  bool has;
  size_t src;    // value slot in the source ValueArray (valid when has)
};

// Sorts updates by position, keeping only the last per position.
void canonicalize(std::vector<Update>* ups) {
  std::stable_sort(ups->begin(), ups->end(),
                   [](const Update& a, const Update& b) {
                     return a.pos < b.pos;
                   });
  size_t w = 0;
  for (size_t k = 0; k < ups->size(); ++k) {
    if (k + 1 < ups->size() && (*ups)[k + 1].pos == (*ups)[k].pos) continue;
    (*ups)[w++] = (*ups)[k];
  }
  ups->resize(w);
}

// Merges a sorted C segment [c_lo, c_hi) (indices via cix, values via
// cvals) with canonical updates, emitting the Z segment.  Values from the
// source are in `src_type`; output entries are in ctype.
class UpdateMerger {
 public:
  UpdateMerger(const Type* ctype, const Type* src_type,
               const BinaryOp* accum, const ValueArray* src_vals)
      : ctype_(ctype),
        accum_(accum),
        src2c_(ctype, src_type),
        src_vals_(src_vals),
        run_(accum != nullptr
                 ? std::make_unique<BinRunner>(accum, ctype, src_type)
                 : nullptr),
        z2c_(accum != nullptr ? Caster(ctype, accum->ztype())
                              : Caster(ctype, ctype)),
        zb_(accum != nullptr ? accum->ztype()->size() : ctype->size()),
        cb_(ctype->size()) {}

  // emit(index, value_ptr): value already in ctype.
  template <class GetIdx, class GetVal, class Emit>
  void merge(size_t c_lo, size_t c_hi, GetIdx&& cidx, GetVal&& cval,
             const std::vector<Update>& ups, Emit&& emit) {
    size_t ck = c_lo, uk = 0;
    while (ck < c_hi || uk < ups.size()) {
      bool has_c = ck < c_hi;
      bool has_u = uk < ups.size();
      Index i;
      if (has_c && has_u) {
        i = std::min(cidx(ck), ups[uk].pos);
        has_c = cidx(ck) == i;
        has_u = ups[uk].pos == i;
      } else {
        i = has_c ? cidx(ck) : ups[uk].pos;
      }
      if (!has_u) {
        emit(i, cval(ck));  // untouched C entry
      } else if (ups[uk].has) {
        const void* sval = src_vals_->at(ups[uk].src);
        if (accum_ != nullptr && has_c) {
          run_->run(zb_.data(), cval(ck), sval);
          z2c_.run(cb_.data(), zb_.data());
          emit(i, cb_.data());
        } else {
          src2c_.run(cb_.data(), sval);
          emit(i, cb_.data());
        }
      } else {
        // Source hole: delete unless accumulating.
        if (accum_ != nullptr && has_c) emit(i, cval(ck));
      }
      if (has_c) ++ck;
      if (has_u) ++uk;
    }
  }

 private:
  const Type* ctype_;
  const BinaryOp* accum_;
  Caster src2c_;
  const ValueArray* src_vals_;
  std::unique_ptr<BinRunner> run_;
  Caster z2c_;
  ValueBuf zb_, cb_;
};

// Final mask pass: C<M, replace> = Z over the full domain.
std::shared_ptr<VectorData> mask_merge_vector(const VectorData& c,
                                              const VectorData& z,
                                              const VectorData* mask,
                                              const WritebackSpec& spec) {
  auto out = std::make_shared<VectorData>(c.type, c.n);
  VectorMaskCursor mcur(mask, spec);
  size_t ck = 0, zk = 0;
  while (ck < c.ind.size() || zk < z.ind.size()) {
    bool has_c = ck < c.ind.size();
    bool has_z = zk < z.ind.size();
    Index i;
    if (has_c && has_z) {
      i = std::min(c.ind[ck], z.ind[zk]);
      has_c = c.ind[ck] == i;
      has_z = z.ind[zk] == i;
    } else {
      i = has_c ? c.ind[ck] : z.ind[zk];
    }
    if (mcur.test(i)) {
      if (has_z) {
        out->ind.push_back(i);
        out->vals.push_back(z.vals.at(zk));
      }
    } else if (!spec.replace && has_c) {
      out->ind.push_back(i);
      out->vals.push_back(c.vals.at(ck));
    }
    if (has_c) ++ck;
    if (has_z) ++zk;
  }
  return out;
}

std::shared_ptr<MatrixData> mask_merge_matrix(Context* ctx,
                                              const MatrixData& c,
                                              const MatrixData& z,
                                              const MatrixData* mask,
                                              const WritebackSpec& spec) {
  auto out = std::make_shared<MatrixData>(c.type, c.nrows, c.ncols);
  std::vector<Index> counts(c.nrows, 0);
  auto walk = [&](Index r, auto&& emit) {
    MatrixRowMaskCursor mcur(mask, r, spec);
    size_t ck = c.ptr[r], cend = c.ptr[r + 1];
    size_t zk = z.ptr[r], zend = z.ptr[r + 1];
    while (ck < cend || zk < zend) {
      bool has_c = ck < cend;
      bool has_z = zk < zend;
      Index j;
      if (has_c && has_z) {
        j = std::min(c.col[ck], z.col[zk]);
        has_c = c.col[ck] == j;
        has_z = z.col[zk] == j;
      } else {
        j = has_c ? c.col[ck] : z.col[zk];
      }
      if (mcur.test(j)) {
        if (has_z) emit(j, z.vals.at(zk));
      } else if (!spec.replace && has_c) {
        emit(j, c.vals.at(ck));
      }
      if (has_c) ++ck;
      if (has_z) ++zk;
    }
  };
  ctx->parallel_for(0, c.nrows, [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      Index n = 0;
      walk(r, [&](Index, const void*) { ++n; });
      counts[r] = n;
    }
  });
  for (Index r = 0; r < c.nrows; ++r)
    out->ptr[r + 1] = out->ptr[r] + counts[r];
  out->col.resize(out->ptr[c.nrows]);
  out->vals.resize(out->ptr[c.nrows]);
  ctx->parallel_for(0, c.nrows, [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      size_t w = out->ptr[r];
      walk(r, [&](Index j, const void* v) {
        out->col[w] = j;
        out->vals.set(w, v);
        ++w;
      });
    }
  });
  return out;
}

// Shared implementation for all vector assigns: `updates` target w's
// index space; src values live in src_vals (type src_type).
Info run_vector_assign(Vector* w, const Vector* mask, const BinaryOp* accum,
                       std::vector<Update> updates, ValueArray src_vals,
                       const Type* src_type, const Descriptor& d,
                       std::shared_ptr<const VectorData> m_snap) {
  canonicalize(&updates);
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  return defer_or_run(w, [w, m_snap, accum, updates = std::move(updates),
                          src_vals = std::move(src_vals), src_type,
                          spec]() -> Info {
    auto c_old = w->current_canonical();
    auto z = std::make_shared<VectorData>(c_old->type, c_old->n);
    UpdateMerger merger(c_old->type, src_type, accum, &src_vals);
    merger.merge(
        0, c_old->ind.size(), [&](size_t k) { return c_old->ind[k]; },
        [&](size_t k) { return c_old->vals.at(k); }, updates,
        [&](Index i, const void* v) {
          z->ind.push_back(i);
          z->vals.push_back(v);
        });
    if (!spec.have_mask && !spec.mask_comp) {
      w->publish(std::move(z));
    } else {
      w->publish(mask_merge_vector(*c_old, *z, m_snap.get(), spec));
    }
    return Info::kSuccess;
  }, FuseNode{});
}

// Shared implementation for matrix assigns: per-row canonical updates.
Info run_matrix_assign(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                       std::vector<std::pair<Index, Update>> updates,
                       ValueArray src_vals, const Type* src_type,
                       const Descriptor& d,
                       std::shared_ptr<const MatrixData> m_snap) {
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  return defer_or_run(c, [c, m_snap, accum, updates = std::move(updates),
                          src_vals = std::move(src_vals), src_type,
                          spec]() -> Info {
    auto c_old = c->current_canonical();
    // Group updates by target row (stable: program order preserved).
    std::vector<std::pair<Index, Update>> ups = updates;
    std::stable_sort(ups.begin(), ups.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    auto z = std::make_shared<MatrixData>(c_old->type, c_old->nrows,
                                          c_old->ncols);
    UpdateMerger merger(c_old->type, src_type, accum, &src_vals);
    std::vector<Update> rowups;
    size_t uk = 0;
    for (Index r = 0; r < c_old->nrows; ++r) {
      rowups.clear();
      while (uk < ups.size() && ups[uk].first == r) {
        rowups.push_back(ups[uk].second);
        ++uk;
      }
      if (rowups.empty()) {
        for (size_t k = c_old->ptr[r]; k < c_old->ptr[r + 1]; ++k) {
          z->col.push_back(c_old->col[k]);
          z->vals.push_back_from(c_old->vals, k);
        }
      } else {
        canonicalize(&rowups);
        merger.merge(
            c_old->ptr[r], c_old->ptr[r + 1],
            [&](size_t k) { return c_old->col[k]; },
            [&](size_t k) { return c_old->vals.at(k); }, rowups,
            [&](Index j, const void* v) {
              z->col.push_back(j);
              z->vals.push_back(v);
            });
      }
      z->ptr[r + 1] = z->col.size();
    }
    if (!spec.have_mask && !spec.mask_comp) {
      c->publish(std::move(z));
    } else {
      c->publish(
          mask_merge_matrix(c->context(), *c_old, *z, m_snap.get(), spec));
    }
    return Info::kSuccess;
  }, FuseNode{});
}

}  // namespace

// ---- vector assigns --------------------------------------------------------

Info assign(Vector* w, const Vector* mask, const BinaryOp* accum,
            const Vector* u, const Index* indices, Index ni,
            const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u}));
  if (u == nullptr) return Info::kNullPointer;
  Index eff_ni = is_all(indices) ? w->size() : ni;
  if (eff_ni != u->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(w->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), u->type()));
  IndexList il;
  GRB_RETURN_IF_ERROR(capture_indices(&il, indices, ni, w->size()));

  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));

  std::vector<Update> updates;
  updates.reserve(eff_ni);
  ValueArray vals(u_snap->type->size());
  vals.reserve(u_snap->ind.size());
  size_t next = 0;  // walk u's sparse entries alongside k
  for (Index k = 0; k < eff_ni; ++k) {
    while (next < u_snap->ind.size() && u_snap->ind[next] < k) ++next;
    bool has = next < u_snap->ind.size() && u_snap->ind[next] == k;
    size_t slot = 0;
    if (has) {
      slot = vals.size();
      vals.push_back(u_snap->vals.at(next));
    }
    updates.push_back({il.at(k), has, slot});
  }
  return run_vector_assign(w, mask, accum, std::move(updates),
                           std::move(vals), u_snap->type, d,
                           std::move(m_snap));
}

Info assign_scalar(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const void* s, const Type* stype, const Index* indices,
                   Index ni, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask}));
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(w->type(), stype));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), stype));
  IndexList il;
  GRB_RETURN_IF_ERROR(capture_indices(&il, indices, ni, w->size()));
  Index eff_ni = il.all ? w->size() : static_cast<Index>(il.list.size());

  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  ValueArray vals(stype->size());
  vals.push_back(s);
  std::vector<Update> updates;
  updates.reserve(eff_ni);
  for (Index k = 0; k < eff_ni; ++k) updates.push_back({il.at(k), true, 0});
  return run_vector_assign(w, mask, accum, std::move(updates),
                           std::move(vals), stype, d, std::move(m_snap));
}

Info assign_scalar(Vector* w, const Vector* mask, const BinaryOp* accum,
                   const Scalar* s, const Index* indices, Index ni,
                   const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, s}));
  if (s == nullptr) return Info::kNullPointer;
  std::shared_ptr<const ScalarData> s_snap;
  GRB_RETURN_IF_ERROR(const_cast<Scalar*>(s)->snapshot(&s_snap));
  if (s_snap->present) {
    return assign_scalar(w, mask, accum, s_snap->value.data(), s_snap->type,
                         indices, ni, desc);
  }
  // Empty scalar: the targeted positions receive "holes" (deleted unless
  // accumulating) -- uniform with an all-empty source vector (§VI).
  GRB_RETURN_IF_ERROR(check_cast(w->type(), s_snap->type));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), s_snap->type));
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  IndexList il;
  GRB_RETURN_IF_ERROR(capture_indices(&il, indices, ni, w->size()));
  Index eff_ni = il.all ? w->size() : static_cast<Index>(il.list.size());
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  std::vector<Update> updates;
  updates.reserve(eff_ni);
  for (Index k = 0; k < eff_ni; ++k) updates.push_back({il.at(k), false, 0});
  return run_vector_assign(w, mask, accum, std::move(updates),
                           ValueArray(s_snap->type->size()), s_snap->type, d,
                           std::move(m_snap));
}

// ---- matrix assigns --------------------------------------------------------

Info assign(Matrix* c, const Matrix* mask, const BinaryOp* accum,
            const Matrix* a, const Index* rows, Index nrows,
            const Index* cols, Index ncols, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  Index eff_nr = is_all(rows) ? c->nrows() : nrows;
  Index eff_nc = is_all(cols) ? c->ncols() : ncols;
  if (eff_nr != ar || eff_nc != ac) return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), a->type()));
  IndexList ri, ci;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, c->nrows()));
  GRB_RETURN_IF_ERROR(capture_indices(&ci, cols, ncols, c->ncols()));

  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  std::shared_ptr<const MatrixData> av =
      d.tran0() ? format_transpose_view(a_snap) : a_snap;

  std::vector<std::pair<Index, Update>> updates;
  updates.reserve(static_cast<size_t>(eff_nr) * eff_nc);
  ValueArray vals(av->type->size());
  vals.reserve(av->col.size());
  for (Index r = 0; r < eff_nr; ++r) {
    Index target_row = ri.at(r);
    size_t next = av->ptr[r];
    for (Index k = 0; k < eff_nc; ++k) {
      while (next < av->ptr[r + 1] && av->col[next] < k) ++next;
      bool has = next < av->ptr[r + 1] && av->col[next] == k;
      size_t slot = 0;
      if (has) {
        slot = vals.size();
        vals.push_back(av->vals.at(next));
      }
      updates.push_back({target_row, Update{ci.at(k), has, slot}});
    }
  }
  return run_matrix_assign(c, mask, accum, std::move(updates),
                           std::move(vals), av->type, d, std::move(m_snap));
}

Info assign_row(Matrix* c, const Vector* mask, const BinaryOp* accum,
                const Vector* u, Index row, const Index* cols, Index ncols,
                const Descriptor* desc) {
  // The row-vector mask of GrB_Row_assign masks only the row being
  // written.  This implementation supports the common unmasked form and
  // reports kNotImplemented for a row mask (documented in DESIGN.md).
  if (mask != nullptr) return Info::kNotImplemented;
  GRB_RETURN_IF_ERROR(validate_objects({c, u}));
  if (u == nullptr) return Info::kNullPointer;
  if (row >= c->nrows()) return Info::kInvalidIndex;
  const Descriptor& d = resolve_desc(desc);
  Index eff_nc = is_all(cols) ? c->ncols() : ncols;
  if (eff_nc != u->size()) return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), u->type()));
  IndexList ci;
  GRB_RETURN_IF_ERROR(capture_indices(&ci, cols, ncols, c->ncols()));
  std::shared_ptr<const VectorData> u_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));

  std::vector<std::pair<Index, Update>> updates;
  updates.reserve(eff_nc);
  ValueArray vals(u_snap->type->size());
  size_t next = 0;
  for (Index k = 0; k < eff_nc; ++k) {
    while (next < u_snap->ind.size() && u_snap->ind[next] < k) ++next;
    bool has = next < u_snap->ind.size() && u_snap->ind[next] == k;
    size_t slot = 0;
    if (has) {
      slot = vals.size();
      vals.push_back(u_snap->vals.at(next));
    }
    updates.push_back({row, Update{ci.at(k), has, slot}});
  }
  return run_matrix_assign(c, nullptr, accum, std::move(updates),
                           std::move(vals), u_snap->type, d, nullptr);
}

Info assign_col(Matrix* c, const Vector* mask, const BinaryOp* accum,
                const Vector* u, const Index* rows, Index nrows, Index col,
                const Descriptor* desc) {
  if (mask != nullptr) return Info::kNotImplemented;
  GRB_RETURN_IF_ERROR(validate_objects({c, u}));
  if (u == nullptr) return Info::kNullPointer;
  if (col >= c->ncols()) return Info::kInvalidIndex;
  const Descriptor& d = resolve_desc(desc);
  Index eff_nr = is_all(rows) ? c->nrows() : nrows;
  if (eff_nr != u->size()) return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), u->type()));
  IndexList ri;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, c->nrows()));
  std::shared_ptr<const VectorData> u_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));

  std::vector<std::pair<Index, Update>> updates;
  updates.reserve(eff_nr);
  ValueArray vals(u_snap->type->size());
  size_t next = 0;
  for (Index k = 0; k < eff_nr; ++k) {
    while (next < u_snap->ind.size() && u_snap->ind[next] < k) ++next;
    bool has = next < u_snap->ind.size() && u_snap->ind[next] == k;
    size_t slot = 0;
    if (has) {
      slot = vals.size();
      vals.push_back(u_snap->vals.at(next));
    }
    updates.push_back({ri.at(k), Update{col, has, slot}});
  }
  return run_matrix_assign(c, nullptr, accum, std::move(updates),
                           std::move(vals), u_snap->type, d, nullptr);
}

Info assign_scalar(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const void* s, const Type* stype, const Index* rows,
                   Index nrows, const Index* cols, Index ncols,
                   const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask}));
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), stype));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), stype));
  IndexList ri, ci;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, c->nrows()));
  GRB_RETURN_IF_ERROR(capture_indices(&ci, cols, ncols, c->ncols()));
  Index eff_nr = ri.all ? c->nrows() : static_cast<Index>(ri.list.size());
  Index eff_nc = ci.all ? c->ncols() : static_cast<Index>(ci.list.size());

  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const MatrixData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  ValueArray vals(stype->size());
  vals.push_back(s);
  std::vector<std::pair<Index, Update>> updates;
  updates.reserve(static_cast<size_t>(eff_nr) * eff_nc);
  for (Index r = 0; r < eff_nr; ++r)
    for (Index k = 0; k < eff_nc; ++k)
      updates.push_back({ri.at(r), Update{ci.at(k), true, 0}});
  return run_matrix_assign(c, mask, accum, std::move(updates),
                           std::move(vals), stype, d, std::move(m_snap));
}

Info assign_scalar(Matrix* c, const Matrix* mask, const BinaryOp* accum,
                   const Scalar* s, const Index* rows, Index nrows,
                   const Index* cols, Index ncols, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, s}));
  if (s == nullptr) return Info::kNullPointer;
  std::shared_ptr<const ScalarData> s_snap;
  GRB_RETURN_IF_ERROR(const_cast<Scalar*>(s)->snapshot(&s_snap));
  if (s_snap->present) {
    return assign_scalar(c, mask, accum, s_snap->value.data(), s_snap->type,
                         rows, nrows, cols, ncols, desc);
  }
  GRB_RETURN_IF_ERROR(check_cast(c->type(), s_snap->type));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), s_snap->type));
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  IndexList ri, ci;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, c->nrows()));
  GRB_RETURN_IF_ERROR(capture_indices(&ci, cols, ncols, c->ncols()));
  Index eff_nr = ri.all ? c->nrows() : static_cast<Index>(ri.list.size());
  Index eff_nc = ci.all ? c->ncols() : static_cast<Index>(ci.list.size());
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const MatrixData> m_snap;
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  std::vector<std::pair<Index, Update>> updates;
  updates.reserve(static_cast<size_t>(eff_nr) * eff_nc);
  for (Index r = 0; r < eff_nr; ++r)
    for (Index k = 0; k < eff_nc; ++k)
      updates.push_back({ri.at(r), Update{ci.at(k), false, 0}});
  return run_matrix_assign(c, mask, accum, std::move(updates),
                           ValueArray(s_snap->type->size()), s_snap->type, d,
                           std::move(m_snap));
}

}  // namespace grb
