// Masked/accumulated write-back for matrices:
//   Z = accum ? (C odot T) : T ;  C<M, replace> = Z
//
// Two-phase row-parallel assembly: the survivor pattern per position is
// purely structural (presence in C, presence in T, mask bit), so phase 1
// counts each output row, a prefix sum sizes the result, and phase 2
// computes values straight into place.
#include "obs/telemetry.hpp"
#include "ops/common.hpp"
#include "ops/mask.hpp"

namespace grb {
namespace {

// Classifies each union position of row r; calls emit(i, j, ck, tk) for
// survivors, where exactly one of ck/tk may be npos.
template <class Emit>
void merge_row(const MatrixData& c, const MatrixData& t,
               const MatrixData* mask, const WritebackSpec& spec, Index r,
               Emit&& emit) {
  MatrixRowMaskCursor mcur(mask, r, spec);
  bool accum = spec.accum != nullptr;
  size_t ck = c.ptr[r], cend = c.ptr[r + 1];
  size_t tk = t.ptr[r], tend = t.ptr[r + 1];
  while (ck < cend || tk < tend) {
    bool has_c = ck < cend;
    bool has_t = tk < tend;
    Index j;
    if (has_c && has_t) {
      j = std::min(c.col[ck], t.col[tk]);
      has_c = c.col[ck] == j;
      has_t = t.col[tk] == j;
    } else {
      j = has_c ? c.col[ck] : t.col[tk];
    }
    bool m = mcur.test(j);
    if (m) {
      if (has_t) {
        emit(j, has_c ? ck : MatrixData::npos, tk);
      } else if (accum) {
        emit(j, ck, MatrixData::npos);
      }
    } else if (!spec.replace && has_c) {
      emit(j, ck, MatrixData::npos);  // keep old C value
    }
    if (has_c) ++ck;
    if (has_t) ++tk;
  }
}

}  // namespace

std::shared_ptr<MatrixData> writeback_matrix(Context* ctx,
                                             const MatrixData& c_old,
                                             const MatrixData& t,
                                             const MatrixData* mask,
                                             const WritebackSpec& spec) {
  const Type* ctype = c_old.type;
  auto out = std::make_shared<MatrixData>(ctype, c_old.nrows, c_old.ncols);
  Index nrows = c_old.nrows;
  Context* ectx = exec_context(ctx, c_old.nvals() + t.nvals());

  // Phase 1: structural row counts.
  std::vector<Index> counts(nrows, 0);
  auto count_rows = [&](Index lo, Index hi) {
    for (Index r = lo; r < hi; ++r) {
      Index n = 0;
      merge_row(c_old, t, mask, spec, r,
                [&](Index, size_t, size_t) { ++n; });
      counts[r] = n;
    }
  };
  ectx->parallel_for(0, nrows, count_rows);
  for (Index r = 0; r < nrows; ++r) out->ptr[r + 1] = out->ptr[r] + counts[r];
  Index total = out->ptr[nrows];
  out->col.resize(total);
  out->vals.resize(total);

  // Phase 2: fill values.
  const BinaryOp* accum = spec.accum;
  CastFn t2c = cast_fn(ctype, t.type);
  CastFn c2x = accum != nullptr ? cast_fn(accum->xtype(), ctype) : nullptr;
  CastFn t2y = accum != nullptr ? cast_fn(accum->ytype(), t.type) : nullptr;
  CastFn z2c = accum != nullptr ? cast_fn(ctype, accum->ztype()) : nullptr;

  auto fill_rows = [&](Index lo, Index hi) {
    ValueBuf xbuf(accum != nullptr ? accum->xtype()->size() : 0);
    ValueBuf ybuf(accum != nullptr ? accum->ytype()->size() : 0);
    ValueBuf zbuf(accum != nullptr ? accum->ztype()->size() : 0);
    for (Index r = lo; r < hi; ++r) {
      size_t w = out->ptr[r];
      merge_row(c_old, t, mask, spec, r, [&](Index j, size_t ck, size_t tk) {
        out->col[w] = j;
        void* dst = out->vals.at(w);
        if (tk == MatrixData::npos) {
          // survivor carries the old C value unchanged
          std::memcpy(dst, c_old.vals.at(ck), ctype->size());
        } else if (accum != nullptr && ck != MatrixData::npos) {
          if (c2x != nullptr) {
            c2x(xbuf.data(), c_old.vals.at(ck));
          } else {
            std::memcpy(xbuf.data(), c_old.vals.at(ck), ctype->size());
          }
          if (t2y != nullptr) {
            t2y(ybuf.data(), t.vals.at(tk));
          } else {
            std::memcpy(ybuf.data(), t.vals.at(tk), t.type->size());
          }
          accum->apply(zbuf.data(), xbuf.data(), ybuf.data());
          if (z2c != nullptr) {
            z2c(dst, zbuf.data());
          } else {
            std::memcpy(dst, zbuf.data(), ctype->size());
          }
        } else {
          if (t2c != nullptr) {
            t2c(dst, t.vals.at(tk));
          } else {
            std::memcpy(dst, t.vals.at(tk), ctype->size());
          }
        }
        ++w;
      });
    }
  };
  ectx->parallel_for(0, nrows, fill_rows);
  if (obs::stats_enabled()) obs::add_scalars(out->nvals());
  return out;
}

}  // namespace grb
