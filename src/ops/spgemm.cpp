#include "ops/spgemm.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace grb {
namespace {

// Dense scratch small enough to always prefer (cache-resident SPA beats
// a hash table when the whole thing fits in L2).
constexpr uint64_t kSmallDenseBytes = 256u << 10;
constexpr size_t kDefaultDenseBudget = 64u << 20;

// -1 = not yet resolved; resolved lazily so GRB_SPGEMM is honored no
// matter which entry point touches the engine first.
std::atomic<int> g_mode{-1};
std::atomic<uint64_t> g_dense_budget{0};

SpgemmMode resolve_mode_from_env() {
  const char* env = std::getenv("GRB_SPGEMM");
  if (env != nullptr) {
    if (std::strcmp(env, "hash") == 0) return SpgemmMode::kHash;
    if (std::strcmp(env, "dense") == 0) return SpgemmMode::kDense;
    if (std::strcmp(env, "reference") == 0) return SpgemmMode::kReference;
  }
  return SpgemmMode::kAuto;
}

uint64_t resolve_budget_from_env() {
  const char* env = std::getenv("GRB_SPGEMM_DENSE_BUDGET");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v != 0) return v;
  }
  return kDefaultDenseBudget;
}

}  // namespace

SpgemmMode spgemm_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m >= 0) return static_cast<SpgemmMode>(m);
  SpgemmMode resolved = resolve_mode_from_env();
  // A concurrent first use resolves to the same value; a concurrent
  // set_spgemm_mode may overwrite this store, which is the newer intent.
  g_mode.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_spgemm_mode(SpgemmMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

size_t spgemm_dense_budget() {
  uint64_t b = g_dense_budget.load(std::memory_order_relaxed);
  if (b != 0) return static_cast<size_t>(b);
  uint64_t resolved = resolve_budget_from_env();
  g_dense_budget.store(resolved, std::memory_order_relaxed);
  return static_cast<size_t>(resolved);
}

void set_spgemm_dense_budget(size_t bytes) {
  g_dense_budget.store(bytes != 0 ? bytes : kDefaultDenseBudget,
                       std::memory_order_relaxed);
}

SpgemmPolicy spgemm_policy(Index ncols, size_t zsize) {
  SpgemmPolicy p;
  p.mode = spgemm_mode();
  // Dense footprint per thread: flag byte + value + touched index per
  // column.
  const uint64_t footprint =
      static_cast<uint64_t>(ncols) * (1 + zsize + sizeof(Index));
  p.dense_ok = footprint <= spgemm_dense_budget();
  p.dense_always = footprint <= kSmallDenseBytes;
  // A row whose products touch a meaningful fraction of the columns
  // amortizes the O(ncols) clear; below that the hash SPA's working set
  // is proportional to the row's actual output.
  p.dense_flops = std::max<uint64_t>(16, ncols / 64);
  return p;
}

std::vector<Index> spgemm_partition(const SpgemmRowCosts& costs, Index nrows,
                                    Index nblocks) {
  std::vector<Index> bounds(static_cast<size_t>(nblocks) + 1, nrows);
  bounds[0] = 0;
  if (nblocks <= 1) return bounds;
  const uint64_t total = costs.total + nrows;  // weights are flops + 1
  uint64_t seen = 0;
  Index b = 1;
  for (Index i = 0; i < nrows && b < nblocks; ++i) {
    seen += costs.flops[i] + 1;
    // Close block b once its share of the weight is consumed.
    while (b < nblocks &&
           seen * static_cast<uint64_t>(nblocks) >=
               total * static_cast<uint64_t>(b)) {
      bounds[b++] = i + 1;
    }
  }
  return bounds;
}

// --- per-snapshot cost cache ------------------------------------------------

namespace {

// Snapshots are immutable and shared_ptr-held; a tiny ring keyed by
// weak_ptr identity is enough to de-duplicate the strategy probe, the
// engine and the flops telemetry within (and across) calls.  lock()
// validates that the slot still refers to the same live snapshots.
struct CostCacheEntry {
  std::weak_ptr<const MatrixData> a;
  std::weak_ptr<const MatrixData> b;
  std::shared_ptr<const SpgemmRowCosts> costs;
};

constexpr size_t kCostCacheSlots = 4;
std::mutex g_cost_mu;
CostCacheEntry g_cost_cache[kCostCacheSlots];
size_t g_cost_next = 0;

}  // namespace

std::shared_ptr<const SpgemmRowCosts> spgemm_row_costs(
    const std::shared_ptr<const MatrixData>& a,
    const std::shared_ptr<const MatrixData>& b) {
  {
    std::lock_guard<std::mutex> lock(g_cost_mu);
    for (CostCacheEntry& e : g_cost_cache) {
      if (e.costs != nullptr && e.a.lock() == a && e.b.lock() == b) {
        return e.costs;
      }
    }
  }
  auto costs = std::make_shared<SpgemmRowCosts>();
  costs->flops.assign(a->nrows, 0);
  uint64_t total = 0;
  for (Index i = 0; i < a->nrows; ++i) {
    uint64_t f = 0;
    for (size_t ka = a->ptr[i]; ka < a->ptr[i + 1]; ++ka) {
      Index k = a->col[ka];
      if (k < b->nrows) f += b->ptr[k + 1] - b->ptr[k];
    }
    costs->flops[i] = f;
    total += f;
  }
  costs->total = total;
  {
    std::lock_guard<std::mutex> lock(g_cost_mu);
    g_cost_cache[g_cost_next] = {a, b, costs};
    g_cost_next = (g_cost_next + 1) % kCostCacheSlots;
  }
  return costs;
}

void spgemm_cost_cache_clear() {
  std::lock_guard<std::mutex> lock(g_cost_mu);
  for (CostCacheEntry& e : g_cost_cache) e = CostCacheEntry{};
  g_cost_next = 0;
}

}  // namespace grb
