// GrB_extract: w<m> = u(I);  C<M> = A(I,J);  w<m> = A(I, j) (column).
//
// Index lists may be GrB_ALL (grb::all_indices()), may repeat, and may be
// in arbitrary order.  Out-of-range indices are the API error
// kInvalidIndex (checked eagerly, before anything is modified).
#include <algorithm>

#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

bool is_all(const Index* indices) { return indices == all_indices(); }

// Captures an index list (or synthesizes 0..n-1 semantics for GrB_ALL).
struct IndexList {
  bool all = false;
  std::vector<Index> list;

  Index size(Index domain) const {
    return all ? domain : static_cast<Index>(list.size());
  }
  Index at(Index k) const { return all ? k : list[k]; }
};

Info capture_indices(IndexList* out, const Index* indices, Index n,
                     Index domain) {
  if (is_all(indices)) {
    out->all = true;
    return Info::kSuccess;
  }
  if (indices == nullptr && n > 0) return Info::kNullPointer;
  out->list.assign(indices, indices + n);
  for (Index i : out->list)
    if (i >= domain) return Info::kInvalidIndex;
  return Info::kSuccess;
}

}  // namespace

Info extract(Vector* w, const Vector* mask, const BinaryOp* accum,
             const Vector* u, const Index* indices, Index ni,
             const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u}));
  if (u == nullptr) return Info::kNullPointer;
  Index eff_ni = is_all(indices) ? u->size() : ni;
  if (eff_ni != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(w->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), u->type()));
  IndexList il;
  GRB_RETURN_IF_ERROR(capture_indices(&il, indices, ni, u->size()));

  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  return defer_or_run(
      w, [w, u_snap, m_snap, il = std::move(il), eff_ni, spec]() -> Info {
        auto t = std::make_shared<VectorData>(u_snap->type, eff_ni);
        if (il.all) {
          t->ind = u_snap->ind;
          t->vals = u_snap->vals;
        } else {
          for (Index k = 0; k < eff_ni; ++k) {
            size_t pos = u_snap->find(il.at(k));
            if (pos != VectorData::npos) {
              t->ind.push_back(k);
              t->vals.push_back(u_snap->vals.at(pos));
            }
          }
        }
        auto c_old = w->current_canonical();
        w->publish(
            writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      }, FuseNode{});
}

Info extract(Matrix* c, const Matrix* mask, const BinaryOp* accum,
             const Matrix* a, const Index* rows, Index nrows,
             const Index* cols, Index ncols, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  Index eff_nr = is_all(rows) ? ar : nrows;
  Index eff_nc = is_all(cols) ? ac : ncols;
  if (eff_nr != c->nrows() || eff_nc != c->ncols())
    return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(c->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), a->type()));
  IndexList ri, ci;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, ar));
  GRB_RETURN_IF_ERROR(capture_indices(&ci, cols, ncols, ac));

  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, ri = std::move(ri),
                          ci = std::move(ci), eff_nr, eff_nc, spec,
                          t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? format_transpose_view(a_snap) : a_snap;
    auto t = std::make_shared<MatrixData>(av->type, eff_nr, eff_nc);
    // Column gather plan: source col -> sorted list of output columns.
    std::vector<std::pair<Index, Index>> colmap;  // (src col, out col)
    if (!ci.all) {
      colmap.reserve(ci.list.size());
      for (Index k = 0; k < eff_nc; ++k) colmap.push_back({ci.at(k), k});
      std::sort(colmap.begin(), colmap.end());
    }
    std::vector<std::pair<Index, size_t>> rowbuf;  // (out col, src pos)
    for (Index r = 0; r < eff_nr; ++r) {
      Index src = ri.all ? r : ri.at(r);
      rowbuf.clear();
      for (size_t k = av->ptr[src]; k < av->ptr[src + 1]; ++k) {
        Index j = av->col[k];
        if (ci.all) {
          rowbuf.push_back({j, k});
        } else {
          auto lo = std::lower_bound(
              colmap.begin(), colmap.end(), std::pair<Index, Index>{j, 0});
          for (auto it = lo; it != colmap.end() && it->first == j; ++it)
            rowbuf.push_back({it->second, k});
        }
      }
      std::sort(rowbuf.begin(), rowbuf.end());
      for (auto& [oc, pos] : rowbuf) {
        t->col.push_back(oc);
        t->vals.push_back(av->vals.at(pos));
      }
      t->ptr[r + 1] = t->col.size();
    }
    auto c_old = c->current_canonical();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  }, FuseNode{});
}

Info extract_col(Vector* w, const Vector* mask, const BinaryOp* accum,
                 const Matrix* a, const Index* rows, Index nrows, Index col,
                 const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  // With T0 the extraction reads a row of A instead of a column.
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  if (col >= ac) return Info::kInvalidIndex;
  Index eff_nr = is_all(rows) ? ar : nrows;
  if (eff_nr != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(w->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), a->type()));
  IndexList ri;
  GRB_RETURN_IF_ERROR(capture_indices(&ri, rows, nrows, ar));

  std::shared_ptr<const MatrixData> a_snap;
  std::shared_ptr<const VectorData> m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0();
  return defer_or_run(w, [w, a_snap, m_snap, ri = std::move(ri), eff_nr,
                          col, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? format_transpose_view(a_snap) : a_snap;
    auto t = std::make_shared<VectorData>(av->type, eff_nr);
    for (Index k = 0; k < eff_nr; ++k) {
      Index src = ri.all ? k : ri.at(k);
      size_t pos = av->find(src, col);
      if (pos != MatrixData::npos) {
        t->ind.push_back(k);
        t->vals.push_back(av->vals.at(pos));
      }
    }
    auto c_old = w->current_canonical();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  }, FuseNode{});
}

}  // namespace grb
