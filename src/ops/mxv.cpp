// GrB_mxv: w<m,r> = w (+) A*u over a semiring.
#include <algorithm>

#include "obs/telemetry.hpp"
#include "ops/mxm.hpp"

namespace grb {

Info mxv(Vector* w, const Vector* mask, const BinaryOp* accum,
         const Semiring* s, const Matrix* a, const Vector* u,
         const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, a, u}));
  if (s == nullptr || a == nullptr || u == nullptr)
    return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  if (ac != u->size() || ar != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->xtype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->ytype(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), s->mul()->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), s->mul()->ztype()));

  // Native snapshot: a hypersparse A runs the compact-row kernel below
  // without ever expanding to full CSR.
  std::shared_ptr<const MatrixData> a_snap;
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot_native(&a_snap));
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0();
  // Plain replace: w is rebuilt from the snapshots without reading its
  // old state (a self-input completed at snapshot time), so earlier
  // queued writes to w are dead.  Opaque to chain fusion.
  FuseNode node;
  if (mask == nullptr && accum == nullptr && !d.mask_comp()) {
    node.reads_out = false;
    node.full_replace = true;
  }
  return defer_or_run(w, [w, a_snap, u_snap, m_snap, s, spec, t0]() -> Info {
    Context* ctx =
        exec_context(w->context(), a_snap->nvals() + u_snap->nvals());
    std::shared_ptr<VectorData> t;
    std::shared_ptr<const MatrixData> av;
    if (!t0 && a_snap->format == MatFormat::kHyper) {
      // Hypersparse fast path: visit only the nonempty rows.  Bitwise-
      // identical to the CSR kernel (same per-row fold order).
      av = a_snap;
      t = mxv_hyper_kernel(ctx, *av, *u_snap, s->mul()->ztype(), [&] {
        return SemiringRunner(s, av->type, u_snap->type);
      });
    } else {
      av = t0 ? format_transpose_view(a_snap) : format_csr_view(a_snap);
      t = fastpath_mxv(ctx, *av, *u_snap, s);
      if (t == nullptr) {
        // mul's x comes from the matrix, y from the vector.
        t = mxv_kernel(ctx, *av, *u_snap, s->mul()->ztype(), [&] {
          return SemiringRunner(s, av->type, u_snap->type);
        });
      }
    }
    // SpMV flop metric: one multiply-add per stored A entry (upper
    // bound; sparse u skips some).
    if (obs::stats_enabled()) obs::add_flops(av->nvals());
    auto c_old = w->current_canonical();
    // Identity write-back (see mxm.cpp): unmasked, unaccumulated, no
    // cast — T replaces w wholesale.
    if (m_snap == nullptr && spec.accum == nullptr &&
        t->type == c_old->type) {
      if (obs::stats_enabled()) obs::add_scalars(t->nvals());
      w->publish(std::move(t));
    } else {
      w->publish(writeback_vector(ctx, *c_old, *t, m_snap.get(), spec));
    }
    return Info::kSuccess;
  }, std::move(node));
}

}  // namespace grb
