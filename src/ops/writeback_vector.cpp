// Masked/accumulated write-back for vectors:
//   Z = accum ? (C odot T) : T ;  w<M, replace> = Z
//
// Range-blocked two-phase assembly, mirroring writeback_matrix: the
// survivor pattern per position is purely structural (presence in C,
// presence in T, mask bit), so phase 1 counts each block, a prefix sum
// sizes the result, and phase 2 computes values straight into place.
// The serial path is the same algorithm with a single block covering
// [0, n), so parallel output is bitwise-identical to serial output.
#include <algorithm>

#include "obs/telemetry.hpp"
#include "ops/common.hpp"
#include "ops/mask.hpp"

namespace grb {
namespace {

// Classifies each union position in [ilo, ihi) starting at stream
// offsets ck/tk; calls emit(i, ck, tk) for survivors, where exactly one
// of ck/tk may be npos.
template <class Emit>
void merge_range(const VectorData& c, const VectorData& t,
                 const VectorData* mask, const WritebackSpec& spec,
                 size_t ck, size_t tk, Index ilo, Index ihi, Emit&& emit) {
  VectorMaskCursor mcur(mask, spec, ilo);
  bool accum = spec.accum != nullptr;
  size_t cend = c.ind.size(), tend = t.ind.size();
  while ((ck < cend && c.ind[ck] < ihi) || (tk < tend && t.ind[tk] < ihi)) {
    bool has_c = ck < cend && c.ind[ck] < ihi;
    bool has_t = tk < tend && t.ind[tk] < ihi;
    Index i;
    if (has_c && has_t) {
      i = std::min(c.ind[ck], t.ind[tk]);
      has_c = c.ind[ck] == i;
      has_t = t.ind[tk] == i;
    } else {
      i = has_c ? c.ind[ck] : t.ind[tk];
    }
    bool m = mcur.test(i);
    if (m) {
      if (has_t) {
        emit(i, has_c ? ck : VectorData::npos, tk);
      } else if (accum) {
        // Z keeps C-only entries when accumulating.
        emit(i, ck, VectorData::npos);
      }
      // no accum, only C: entry is annihilated (Z = T).
    } else if (!spec.replace && has_c) {
      emit(i, ck, VectorData::npos);  // keep old C value
    }
    if (has_c) ++ck;
    if (has_t) ++tk;
  }
}

}  // namespace

std::shared_ptr<VectorData> writeback_vector(Context* ctx,
                                             const VectorData& c_old,
                                             const VectorData& t,
                                             const VectorData* mask,
                                             const WritebackSpec& spec) {
  const Type* ctype = c_old.type;
  auto out = std::make_shared<VectorData>(ctype, c_old.n);
  size_t work = c_old.ind.size() + t.ind.size();
  Context* ectx = exec_context(ctx, work);
  Index block = ectx->effective_nthreads() > 1
                    ? std::max<Index>(1, ectx->config().chunk)
                    : std::max<Index>(1, c_old.n);
  Index nb = c_old.n == 0 ? 0 : (c_old.n + block - 1) / block;

  // Phase 1: block start offsets and structural survivor counts.
  std::vector<size_t> cstart(nb), tstart(nb);
  std::vector<Index> counts(nb, 0);
  ectx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    for (Index b = blo; b < bhi; ++b) {
      Index ilo = b * block;
      Index ihi = std::min<Index>(c_old.n, ilo + block);
      cstart[b] = std::lower_bound(c_old.ind.begin(), c_old.ind.end(), ilo) -
                  c_old.ind.begin();
      tstart[b] =
          std::lower_bound(t.ind.begin(), t.ind.end(), ilo) - t.ind.begin();
      Index n = 0;
      merge_range(c_old, t, mask, spec, cstart[b], tstart[b], ilo, ihi,
                  [&](Index, size_t, size_t) { ++n; });
      counts[b] = n;
    }
  });
  std::vector<size_t> offs(nb + 1, 0);
  for (Index b = 0; b < nb; ++b) offs[b + 1] = offs[b] + counts[b];
  out->ind.resize(offs[nb]);
  out->vals.resize(offs[nb]);

  // Phase 2: fill values.
  const BinaryOp* accum = spec.accum;
  CastFn t2c = cast_fn(ctype, t.type);
  CastFn c2x = accum != nullptr ? cast_fn(accum->xtype(), ctype) : nullptr;
  CastFn t2y = accum != nullptr ? cast_fn(accum->ytype(), t.type) : nullptr;
  CastFn z2c = accum != nullptr ? cast_fn(ctype, accum->ztype()) : nullptr;
  ectx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    ValueBuf xbuf(accum != nullptr ? accum->xtype()->size() : 0);
    ValueBuf ybuf(accum != nullptr ? accum->ytype()->size() : 0);
    ValueBuf zbuf(accum != nullptr ? accum->ztype()->size() : 0);
    for (Index b = blo; b < bhi; ++b) {
      Index ilo = b * block;
      Index ihi = std::min<Index>(c_old.n, ilo + block);
      size_t w = offs[b];
      merge_range(
          c_old, t, mask, spec, cstart[b], tstart[b], ilo, ihi,
          [&](Index i, size_t ck, size_t tk) {
            out->ind[w] = i;
            void* dst = out->vals.at(w);
            if (tk == VectorData::npos) {
              // survivor carries the old C value unchanged
              std::memcpy(dst, c_old.vals.at(ck), ctype->size());
            } else if (accum != nullptr && ck != VectorData::npos) {
              if (c2x != nullptr) {
                c2x(xbuf.data(), c_old.vals.at(ck));
              } else {
                std::memcpy(xbuf.data(), c_old.vals.at(ck), ctype->size());
              }
              if (t2y != nullptr) {
                t2y(ybuf.data(), t.vals.at(tk));
              } else {
                std::memcpy(ybuf.data(), t.vals.at(tk), t.type->size());
              }
              accum->apply(zbuf.data(), xbuf.data(), ybuf.data());
              if (z2c != nullptr) {
                z2c(dst, zbuf.data());
              } else {
                std::memcpy(dst, zbuf.data(), ctype->size());
              }
            } else {
              if (t2c != nullptr) {
                t2c(dst, t.vals.at(tk));
              } else {
                std::memcpy(dst, t.vals.at(tk), ctype->size());
              }
            }
            ++w;
          });
    }
  });
  if (obs::stats_enabled()) obs::add_scalars(out->nvals());
  return out;
}

}  // namespace grb
