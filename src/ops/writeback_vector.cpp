// Masked/accumulated write-back for vectors:
//   Z = accum ? (C odot T) : T ;  w<M, replace> = Z
#include "ops/common.hpp"
#include "ops/mask.hpp"

namespace grb {

std::shared_ptr<VectorData> writeback_vector(Context* /*ctx*/,
                                             const VectorData& c_old,
                                             const VectorData& t,
                                             const VectorData* mask,
                                             const WritebackSpec& spec) {
  const Type* ctype = c_old.type;
  auto out = std::make_shared<VectorData>(ctype, c_old.n);
  out->ind.reserve(c_old.ind.size() + t.ind.size());
  out->vals.reserve(c_old.ind.size() + t.ind.size());

  VectorMaskCursor mcur(mask, spec);
  const BinaryOp* accum = spec.accum;
  CastFn t2c = cast_fn(ctype, t.type);
  CastFn c2x = accum != nullptr ? cast_fn(accum->xtype(), ctype) : nullptr;
  CastFn t2y = accum != nullptr ? cast_fn(accum->ytype(), t.type) : nullptr;
  CastFn z2c = accum != nullptr ? cast_fn(ctype, accum->ztype()) : nullptr;
  ValueBuf xbuf(accum != nullptr ? accum->xtype()->size() : 0);
  ValueBuf ybuf(accum != nullptr ? accum->ytype()->size() : 0);
  ValueBuf zbuf(accum != nullptr ? accum->ztype()->size() : 0);
  ValueBuf cvt(ctype->size());

  auto push_cast_t = [&](size_t tk) {
    if (t2c != nullptr) {
      t2c(cvt.data(), t.vals.at(tk));
      out->vals.push_back(cvt.data());
    } else {
      out->vals.push_back(t.vals.at(tk));
    }
  };
  auto push_accum = [&](size_t ck, size_t tk) {
    if (c2x != nullptr) {
      c2x(xbuf.data(), c_old.vals.at(ck));
    } else {
      std::memcpy(xbuf.data(), c_old.vals.at(ck), ctype->size());
    }
    if (t2y != nullptr) {
      t2y(ybuf.data(), t.vals.at(tk));
    } else {
      std::memcpy(ybuf.data(), t.vals.at(tk), t.type->size());
    }
    accum->apply(zbuf.data(), xbuf.data(), ybuf.data());
    if (z2c != nullptr) {
      z2c(cvt.data(), zbuf.data());
      out->vals.push_back(cvt.data());
    } else {
      out->vals.push_back(zbuf.data());
    }
  };

  size_t ck = 0, tk = 0;
  while (ck < c_old.ind.size() || tk < t.ind.size()) {
    bool has_c = ck < c_old.ind.size();
    bool has_t = tk < t.ind.size();
    Index i;
    if (has_c && has_t) {
      i = std::min(c_old.ind[ck], t.ind[tk]);
      has_c = c_old.ind[ck] == i;
      has_t = t.ind[tk] == i;
    } else {
      i = has_c ? c_old.ind[ck] : t.ind[tk];
    }
    bool m = mcur.test(i);
    if (m) {
      if (has_t) {
        out->ind.push_back(i);
        if (accum != nullptr && has_c) {
          push_accum(ck, tk);
        } else {
          push_cast_t(tk);
        }
      } else if (accum != nullptr) {
        // Z keeps C-only entries when accumulating.
        out->ind.push_back(i);
        out->vals.push_back(c_old.vals.at(ck));
      }
      // no accum, only C: entry is annihilated (Z = T).
    } else {
      if (!spec.replace && has_c) {
        out->ind.push_back(i);
        out->vals.push_back(c_old.vals.at(ck));
      }
    }
    if (has_c) ++ck;
    if (has_t) ++tk;
  }
  return out;
}

}  // namespace grb
