// eWiseMult (set intersection) and eWiseAdd (set union) for vectors.
//
// Two paths produce identical bits: a single-pass serial merge, and a
// range-blocked parallel merge that partitions the index space [0, n)
// into fixed blocks, locates each block's start in both operand streams
// by binary search, counts survivors per block, prefix-sums, and fills
// values straight into place.  Every output entry depends only on the
// operands at its own index, so the partition cannot change the result.
#include <algorithm>

#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

Info validate_ewise_v(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const BinaryOp* op, const Vector* u, const Vector* v) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u, v}));
  if (op == nullptr || u == nullptr || v == nullptr)
    return Info::kNullPointer;
  if (u->size() != w->size() || v->size() != w->size())
    return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->xtype(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(op->ytype(), v->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), op->ztype()));
  return Info::kSuccess;
}

template <bool kUnion>
std::shared_ptr<VectorData> compute_ewise(const VectorData& u,
                                          const VectorData& v,
                                          const BinaryOp* op) {
  auto t = std::make_shared<VectorData>(op->ztype(), u.n);
  BinRunner run(op, u.type, v.type);
  // For union, single-sided entries are typecast into the op's ztype.
  Caster u2z(op->ztype(), u.type);
  Caster v2z(op->ztype(), v.type);
  ValueBuf zb(op->ztype()->size());
  size_t a = 0, b = 0;
  while (a < u.ind.size() && b < v.ind.size()) {
    if (u.ind[a] == v.ind[b]) {
      run.run(zb.data(), u.vals.at(a), v.vals.at(b));
      t->ind.push_back(u.ind[a]);
      t->vals.push_back(zb.data());
      ++a;
      ++b;
    } else if (u.ind[a] < v.ind[b]) {
      if constexpr (kUnion) {
        u2z.run(zb.data(), u.vals.at(a));
        t->ind.push_back(u.ind[a]);
        t->vals.push_back(zb.data());
      }
      ++a;
    } else {
      if constexpr (kUnion) {
        v2z.run(zb.data(), v.vals.at(b));
        t->ind.push_back(v.ind[b]);
        t->vals.push_back(zb.data());
      }
      ++b;
    }
  }
  if constexpr (kUnion) {
    for (; a < u.ind.size(); ++a) {
      u2z.run(zb.data(), u.vals.at(a));
      t->ind.push_back(u.ind[a]);
      t->vals.push_back(zb.data());
    }
    for (; b < v.ind.size(); ++b) {
      v2z.run(zb.data(), v.vals.at(b));
      t->ind.push_back(v.ind[b]);
      t->vals.push_back(zb.data());
    }
  }
  return t;
}

// Walks the merged streams of u and v over indices < ihi starting at
// stream offsets a/b; emit(i, uk, vk) with VectorData::npos for the
// absent side (union only).
template <bool kUnion, class Emit>
void merge_ewise_range(const VectorData& u, const VectorData& v, size_t a,
                       size_t b, Index ihi, Emit&& emit) {
  size_t ae = u.ind.size(), be = v.ind.size();
  while (a < ae && u.ind[a] < ihi && b < be && v.ind[b] < ihi) {
    if (u.ind[a] == v.ind[b]) {
      emit(u.ind[a], a, b);
      ++a;
      ++b;
    } else if (u.ind[a] < v.ind[b]) {
      if constexpr (kUnion) emit(u.ind[a], a, VectorData::npos);
      ++a;
    } else {
      if constexpr (kUnion) emit(v.ind[b], VectorData::npos, b);
      ++b;
    }
  }
  if constexpr (kUnion) {
    for (; a < ae && u.ind[a] < ihi; ++a)
      emit(u.ind[a], a, VectorData::npos);
    for (; b < be && v.ind[b] < ihi; ++b)
      emit(v.ind[b], VectorData::npos, b);
  }
}

template <bool kUnion>
std::shared_ptr<VectorData> compute_ewise_blocked(Context* ctx,
                                                  const VectorData& u,
                                                  const VectorData& v,
                                                  const BinaryOp* op) {
  auto t = std::make_shared<VectorData>(op->ztype(), u.n);
  Index block = std::max<Index>(1, ctx->config().chunk);
  Index nb = (u.n + block - 1) / block;
  std::vector<size_t> ustart(nb), vstart(nb);
  std::vector<Index> counts(nb, 0);
  ctx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    for (Index b = blo; b < bhi; ++b) {
      Index ilo = b * block;
      Index ihi = std::min<Index>(u.n, ilo + block);
      ustart[b] = std::lower_bound(u.ind.begin(), u.ind.end(), ilo) -
                  u.ind.begin();
      vstart[b] = std::lower_bound(v.ind.begin(), v.ind.end(), ilo) -
                  v.ind.begin();
      Index n = 0;
      merge_ewise_range<kUnion>(u, v, ustart[b], vstart[b], ihi,
                                [&](Index, size_t, size_t) { ++n; });
      counts[b] = n;
    }
  });
  std::vector<size_t> offs(nb + 1, 0);
  for (Index b = 0; b < nb; ++b) offs[b + 1] = offs[b] + counts[b];
  t->ind.resize(offs[nb]);
  t->vals.resize(offs[nb]);
  ctx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    BinRunner run(op, u.type, v.type);
    Caster u2z(op->ztype(), u.type);
    Caster v2z(op->ztype(), v.type);
    for (Index b = blo; b < bhi; ++b) {
      Index ihi = std::min<Index>(u.n, (b + 1) * block);
      size_t w = offs[b];
      merge_ewise_range<kUnion>(
          u, v, ustart[b], vstart[b], ihi,
          [&](Index i, size_t uk, size_t vk) {
            t->ind[w] = i;
            void* dst = t->vals.at(w);
            if (uk == VectorData::npos) {
              v2z.run(dst, v.vals.at(vk));
            } else if (vk == VectorData::npos) {
              u2z.run(dst, u.vals.at(uk));
            } else {
              run.run(dst, u.vals.at(uk), v.vals.at(vk));
            }
            ++w;
          });
    }
  });
  return t;
}

template <bool kUnion>
Info ewise_v(Vector* w, const Vector* mask, const BinaryOp* accum,
             const BinaryOp* op, const Vector* u, const Vector* v,
             const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_ewise_v(w, mask, accum, op, u, v));
  const Descriptor& d = resolve_desc(desc);
  // Plain replaces participate in fusion; self operands stay lazy (the
  // closure reads w->current_canonical() at execution, which by queue FIFO is
  // identical to snapshotting here) so chains over w keep accumulating
  // instead of forcing a materialization per call.
  const bool plain = mask == nullptr && accum == nullptr && !d.mask_comp();
  const bool u_self = plain && u == w;
  const bool v_self = plain && v == w;
  std::shared_ptr<const VectorData> u_snap, v_snap, m_snap;
  if (!u_self)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (!v_self)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&v_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  FuseNode node;
  if (u_self && v_self) {
    // w = op(w, w): both streams are identical, so the merge degenerates
    // to a structure-preserving self map.
    node.kind = FuseNode::Kind::kMap;
    node.ztype = op->ztype();
    node.full_replace = true;
    const Type* wt = w->type();
    node.make_mapper = [op, wt]() -> MapFn {
      return [run = BinRunner(op, wt, wt)](void* z, const void* x, Index,
                                           Index) mutable {
        run.run(z, x, x);
      };
    };
  } else if (u_self || v_self) {
    // Exactly one operand is the target: a zip of the running chain
    // against the other operand's snapshot.
    node.kind = FuseNode::Kind::kZip;
    node.ztype = op->ztype();
    node.full_replace = true;
    node.zip_other = u_self ? v_snap : u_snap;
    node.zip_op = op;
    node.zip_union = kUnion;
    node.zip_out_is_x = u_self;
  } else if (plain) {
    // Overwrites w from input snapshots without reading it: a killer.
    node.reads_out = false;
    node.full_replace = true;
  }
  return defer_or_run(
      w,
      [w, u_snap, v_snap, m_snap, op, spec]() -> Info {
        std::shared_ptr<const VectorData> uu =
            u_snap != nullptr ? u_snap : w->current_canonical();
        std::shared_ptr<const VectorData> vv =
            v_snap != nullptr ? v_snap : w->current_canonical();
        Context* ectx =
            exec_context(w->context(), uu->nvals() + vv->nvals());
        auto t = ectx->effective_nthreads() > 1
                     ? compute_ewise_blocked<kUnion>(ectx, *uu, *vv, op)
                     : compute_ewise<kUnion>(*uu, *vv, op);
        auto c_old = w->current_canonical();
        w->publish(
            writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      },
      std::move(node));
}

}  // namespace

Info ewise_mult(Vector* w, const Vector* mask, const BinaryOp* accum,
                const BinaryOp* op, const Vector* u, const Vector* v,
                const Descriptor* desc) {
  return ewise_v<false>(w, mask, accum, op, u, v, desc);
}

Info ewise_add(Vector* w, const Vector* mask, const BinaryOp* accum,
               const BinaryOp* op, const Vector* u, const Vector* v,
               const Descriptor* desc) {
  return ewise_v<true>(w, mask, accum, op, u, v, desc);
}

}  // namespace grb
