// eWiseMult (set intersection) and eWiseAdd (set union) for vectors.
#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

Info validate_ewise_v(Vector* w, const Vector* mask, const BinaryOp* accum,
                      const BinaryOp* op, const Vector* u, const Vector* v) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u, v}));
  if (op == nullptr || u == nullptr || v == nullptr)
    return Info::kNullPointer;
  if (u->size() != w->size() || v->size() != w->size())
    return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->xtype(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(op->ytype(), v->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), op->ztype()));
  return Info::kSuccess;
}

template <bool kUnion>
std::shared_ptr<VectorData> compute_ewise(const VectorData& u,
                                          const VectorData& v,
                                          const BinaryOp* op) {
  auto t = std::make_shared<VectorData>(op->ztype(), u.n);
  BinRunner run(op, u.type, v.type);
  // For union, single-sided entries are typecast into the op's ztype.
  Caster u2z(op->ztype(), u.type);
  Caster v2z(op->ztype(), v.type);
  ValueBuf zb(op->ztype()->size());
  size_t a = 0, b = 0;
  while (a < u.ind.size() && b < v.ind.size()) {
    if (u.ind[a] == v.ind[b]) {
      run.run(zb.data(), u.vals.at(a), v.vals.at(b));
      t->ind.push_back(u.ind[a]);
      t->vals.push_back(zb.data());
      ++a;
      ++b;
    } else if (u.ind[a] < v.ind[b]) {
      if constexpr (kUnion) {
        u2z.run(zb.data(), u.vals.at(a));
        t->ind.push_back(u.ind[a]);
        t->vals.push_back(zb.data());
      }
      ++a;
    } else {
      if constexpr (kUnion) {
        v2z.run(zb.data(), v.vals.at(b));
        t->ind.push_back(v.ind[b]);
        t->vals.push_back(zb.data());
      }
      ++b;
    }
  }
  if constexpr (kUnion) {
    for (; a < u.ind.size(); ++a) {
      u2z.run(zb.data(), u.vals.at(a));
      t->ind.push_back(u.ind[a]);
      t->vals.push_back(zb.data());
    }
    for (; b < v.ind.size(); ++b) {
      v2z.run(zb.data(), v.vals.at(b));
      t->ind.push_back(v.ind[b]);
      t->vals.push_back(zb.data());
    }
  }
  return t;
}

template <bool kUnion>
Info ewise_v(Vector* w, const Vector* mask, const BinaryOp* accum,
             const BinaryOp* op, const Vector* u, const Vector* v,
             const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_ewise_v(w, mask, accum, op, u, v));
  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, v_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&v_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  return defer_or_run(w, [w, u_snap, v_snap, m_snap, op, spec]() -> Info {
    auto t = compute_ewise<kUnion>(*u_snap, *v_snap, op);
    auto c_old = w->current_data();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  });
}

}  // namespace

Info ewise_mult(Vector* w, const Vector* mask, const BinaryOp* accum,
                const BinaryOp* op, const Vector* u, const Vector* v,
                const Descriptor* desc) {
  return ewise_v<false>(w, mask, accum, op, u, v, desc);
}

Info ewise_add(Vector* w, const Vector* mask, const BinaryOp* accum,
               const BinaryOp* op, const Vector* u, const Vector* v,
               const Descriptor* desc) {
  return ewise_v<true>(w, mask, accum, op, u, v, desc);
}

}  // namespace grb
