// Internal mxm/mxv/vxm kernel interfaces and the typed fast-path hooks.
//
// The row-wise SpGEMM accumulators and the adaptive engine itself live
// in ops/spgemm.hpp; this header keeps the semiring runner, the
// dot-product kernels, strategy knobs and the fastpath dispatch surface.
#pragma once

#include "ops/common.hpp"
#include "ops/op_apply.hpp"
#include "ops/spgemm.hpp"

namespace grb {

// Generic semiring runner over type-erased values: multiply casts the
// stored a/b values into the multiplier's domains, add folds a ztype
// product into a ztype accumulator with the monoid.  This is the
// "function-pointer call per scalar operation" path the paper's §II
// motivation describes; fastpath.cpp provides statically typed
// replacements for hot (semiring, type) pairs.
class SemiringRunner {
 public:
  SemiringRunner(const Semiring* s, const Type* atype, const Type* btype)
      : mul_(s->mul(), atype, btype),
        add_(s->add()->op(), s->mul()->ztype(), s->mul()->ztype()) {}

  // z (mul ztype) = a * b
  void mul(void* z, const void* a, const void* b) { mul_.run(z, a, b); }
  // acc = acc (+) z, both in mul ztype
  void add(void* acc, const void* z) { add_.run(acc, acc, z); }

 private:
  BinRunner mul_;
  BinRunner add_;
};

// Column-parallel dot-product kernel for vxm (u^T * A).  `at` is A
// transposed (CSR of A'), so output entry j folds the products of u(i)
// and A(i,j) over at's row j in ascending i — exactly the order the
// serial SPA kernel accumulates them in, which makes the two paths
// bitwise-identical even for non-associative floating-point rounding.
// u is probed through the budget-gated VecProbe (dense gather when
// affordable, binary search for hypersparse dimensions).
template <class MakeRunner>
std::shared_ptr<VectorData> vxm_dot_kernel(Context* ctx,
                                           const VectorData& u,
                                           const MatrixData& at,
                                           const Type* ztype,
                                           MakeRunner&& make_runner) {
  auto t = std::make_shared<VectorData>(ztype, at.nrows);
  size_t zsize = ztype->size();
  VecProbe probe;
  probe.init(u);
  // Structural pass: does output position j receive any product?
  std::vector<uint8_t> hit(at.nrows, 0);
  ctx->parallel_for(0, at.nrows, [&](Index lo, Index hi) {
    for (Index j = lo; j < hi; ++j) {
      for (size_t ka = at.ptr[j]; ka < at.ptr[j + 1]; ++ka) {
        if (probe.find(at.col[ka]) != nullptr) {
          hit[j] = 1;
          break;
        }
      }
    }
  });
  std::vector<Index> slot(at.nrows + 1, 0);
  for (Index j = 0; j < at.nrows; ++j) slot[j + 1] = slot[j] + hit[j];
  t->ind.resize(slot[at.nrows]);
  t->vals.resize(slot[at.nrows]);
  ctx->parallel_for(0, at.nrows, [&](Index lo, Index hi) {
    auto runner = make_runner();
    ValueBuf acc(zsize), prod(zsize);
    for (Index j = lo; j < hi; ++j) {
      if (!hit[j]) continue;
      bool first = true;
      for (size_t ka = at.ptr[j]; ka < at.ptr[j + 1]; ++ka) {
        const void* uval = probe.find(at.col[ka]);
        if (uval == nullptr) continue;
        if (first) {
          runner.mul(acc.data(), uval, at.vals.at(ka));
          first = false;
        } else {
          runner.mul(prod.data(), uval, at.vals.at(ka));
          runner.add(acc.data(), prod.data());
        }
      }
      Index s = slot[j];
      t->ind[s] = j;
      t->vals.set(s, acc.data());
    }
  });
  return t;
}

// Row-parallel dot-product kernel for mxv (A * u).  u is probed through
// the budget-gated VecProbe; each row of A then probes it.
template <class MakeRunner>
std::shared_ptr<VectorData> mxv_kernel(Context* ctx, const MatrixData& a,
                                       const VectorData& u,
                                       const Type* ztype,
                                       MakeRunner&& make_runner) {
  auto t = std::make_shared<VectorData>(ztype, a.nrows);
  size_t zsize = ztype->size();
  VecProbe probe;
  probe.init(u);
  // Structural pass: does row i hit any entry of u?
  std::vector<uint8_t> hit(a.nrows, 0);
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
        if (probe.find(a.col[ka]) != nullptr) {
          hit[i] = 1;
          break;
        }
      }
    }
  });
  std::vector<Index> slot(a.nrows + 1, 0);
  for (Index i = 0; i < a.nrows; ++i) slot[i + 1] = slot[i] + hit[i];
  t->ind.resize(slot[a.nrows]);
  t->vals.resize(slot[a.nrows]);
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    auto runner = make_runner();
    ValueBuf acc(zsize), prod(zsize);
    for (Index i = lo; i < hi; ++i) {
      if (!hit[i]) continue;
      bool first = true;
      for (size_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
        const void* uval = probe.find(a.col[ka]);
        if (uval == nullptr) continue;
        if (first) {
          runner.mul(acc.data(), a.vals.at(ka), uval);
          first = false;
        } else {
          runner.mul(prod.data(), a.vals.at(ka), uval);
          runner.add(acc.data(), prod.data());
        }
      }
      Index s = slot[i];
      t->ind[s] = i;
      t->vals.set(s, acc.data());
    }
  });
  return t;
}

// Hypersparse variant of mxv_kernel: iterates only the nonempty rows
// listed in a.hrow (a must be MatFormat::kHyper, whose ptr array is
// compacted to hrow.size()+1 entries).  Per-row fold order matches the
// CSR kernel exactly — same column order, same first/add sequence — and
// nonempty rows are visited in ascending row id, so the output is
// bitwise-identical to running mxv_kernel on the expanded CSR view.
template <class MakeRunner>
std::shared_ptr<VectorData> mxv_hyper_kernel(Context* ctx,
                                             const MatrixData& a,
                                             const VectorData& u,
                                             const Type* ztype,
                                             MakeRunner&& make_runner) {
  auto t = std::make_shared<VectorData>(ztype, a.nrows);
  size_t zsize = ztype->size();
  VecProbe probe;
  probe.init(u);
  Index nh = a.hrow.size();
  // Structural pass over the compact row list only.
  std::vector<uint8_t> hit(nh, 0);
  ctx->parallel_for(0, nh, [&](Index lo, Index hi) {
    for (Index h = lo; h < hi; ++h) {
      for (size_t ka = a.ptr[h]; ka < a.ptr[h + 1]; ++ka) {
        if (probe.find(a.col[ka]) != nullptr) {
          hit[h] = 1;
          break;
        }
      }
    }
  });
  std::vector<Index> slot(nh + 1, 0);
  for (Index h = 0; h < nh; ++h) slot[h + 1] = slot[h] + hit[h];
  t->ind.resize(slot[nh]);
  t->vals.resize(slot[nh]);
  ctx->parallel_for(0, nh, [&](Index lo, Index hi) {
    auto runner = make_runner();
    ValueBuf acc(zsize), prod(zsize);
    for (Index h = lo; h < hi; ++h) {
      if (!hit[h]) continue;
      bool first = true;
      for (size_t ka = a.ptr[h]; ka < a.ptr[h + 1]; ++ka) {
        const void* uval = probe.find(a.col[ka]);
        if (uval == nullptr) continue;
        if (first) {
          runner.mul(acc.data(), a.vals.at(ka), uval);
          first = false;
        } else {
          runner.mul(prod.data(), a.vals.at(ka), uval);
          runner.add(acc.data(), prod.data());
        }
      }
      Index s = slot[h];
      t->ind[s] = a.hrow[h];
      t->vals.set(s, acc.data());
    }
  });
  return t;
}

// Masked dot-product SpGEMM: computes T only at the structural-mask
// positions, C(i,j) = A(i,:) . B(:,j), via sorted-intersection merges of
// A's row i and B'(j,:).  This is the kernel masked multiplies like
// triangle counting want: work is O(nnz(M) * avg-row) instead of the
// full Gustavson expansion.  `bt` is B transposed (CSR of B').
template <class MakeRunner>
std::shared_ptr<MatrixData> mxm_masked_dot_kernel(Context* ctx,
                                                  const MatrixData& a,
                                                  const MatrixData& bt,
                                                  const MatrixData& mask,
                                                  const Type* ztype,
                                                  MakeRunner&& make_runner) {
  auto t = std::make_shared<MatrixData>(ztype, a.nrows, bt.nrows);
  Index nrows = a.nrows;
  size_t zsize = ztype->size();

  // Pass 1: which mask positions have a nonempty intersection?
  std::vector<Index> counts(nrows, 0);
  auto intersects = [&](Index i, Index j) {
    size_t ka = a.ptr[i], ea = a.ptr[i + 1];
    size_t kb = bt.ptr[j], eb = bt.ptr[j + 1];
    while (ka < ea && kb < eb) {
      if (a.col[ka] == bt.col[kb]) return true;
      if (a.col[ka] < bt.col[kb]) {
        ++ka;
      } else {
        ++kb;
      }
    }
    return false;
  };
  ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      Index n = 0;
      if (i < mask.nrows) {
        for (size_t km = mask.ptr[i]; km < mask.ptr[i + 1]; ++km) {
          Index j = mask.col[km];
          if (j < bt.nrows && intersects(i, j)) ++n;
        }
      }
      counts[i] = n;
    }
  });
  for (Index i = 0; i < nrows; ++i) t->ptr[i + 1] = t->ptr[i] + counts[i];
  t->col.resize(t->ptr[nrows]);
  t->vals.resize(t->ptr[nrows]);

  // Pass 2: dot products straight into place.
  ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
    auto runner = make_runner();
    ValueBuf acc(zsize), prod(zsize);
    for (Index i = lo; i < hi; ++i) {
      if (i >= mask.nrows) continue;
      size_t w = t->ptr[i];
      for (size_t km = mask.ptr[i]; km < mask.ptr[i + 1]; ++km) {
        Index j = mask.col[km];
        if (j >= bt.nrows) continue;
        size_t ka = a.ptr[i], ea = a.ptr[i + 1];
        size_t kb = bt.ptr[j], eb = bt.ptr[j + 1];
        bool first = true;
        while (ka < ea && kb < eb) {
          if (a.col[ka] == bt.col[kb]) {
            if (first) {
              runner.mul(acc.data(), a.vals.at(ka), bt.vals.at(kb));
              first = false;
            } else {
              runner.mul(prod.data(), a.vals.at(ka), bt.vals.at(kb));
              runner.add(acc.data(), prod.data());
            }
            ++ka;
            ++kb;
          } else if (a.col[ka] < bt.col[kb]) {
            ++ka;
          } else {
            ++kb;
          }
        }
        if (!first) {
          t->col[w] = j;
          std::memcpy(t->vals.at(w), acc.data(), zsize);
          ++w;
        }
      }
    }
  });
  return t;
}

enum class MxmStrategy {
  kAuto = 0,       // heuristic: masked-dot for sparse structural masks
  kGustavson = 1,  // always row-wise SPA
  kMaskedDot = 2,  // always masked dot products (needs structural mask)
};

// Global strategy override for the masked-mxm ablation bench.
MxmStrategy mxm_strategy();
void set_mxm_strategy(MxmStrategy strategy);

// ---- typed fast path (ops/fastpath.cpp) -----------------------------------

// Global switch so the M2 ablation bench can force the generic path.
bool fastpath_enabled();
void set_fastpath_enabled(bool enabled);

// Attempt a statically typed mxm/vxm/mxv; returns nullptr when the
// (semiring, types) combination has no registered fast kernel.  `costs`
// is the shared symbolic pass, so the typed kernels instantiate the
// same adaptive accumulators with no extra scan.
std::shared_ptr<MatrixData> fastpath_mxm(Context* ctx, const MatrixData& a,
                                         const MatrixData& b,
                                         const Semiring* s,
                                         const SpgemmRowCosts& costs);
std::shared_ptr<MatrixData> fastpath_masked_dot_mxm(Context* ctx,
                                                    const MatrixData& a,
                                                    const MatrixData& bt,
                                                    const MatrixData& mask,
                                                    const Semiring* s);
std::shared_ptr<VectorData> fastpath_vxm(const VectorData& u,
                                         const MatrixData& a,
                                         const Semiring* s);
// Parallel variant over A transposed (see vxm_dot_kernel).
std::shared_ptr<VectorData> fastpath_vxm_dot(Context* ctx,
                                             const VectorData& u,
                                             const MatrixData& at,
                                             const Semiring* s);
std::shared_ptr<VectorData> fastpath_mxv(Context* ctx, const MatrixData& a,
                                         const VectorData& u,
                                         const Semiring* s);

}  // namespace grb
