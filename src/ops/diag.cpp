// GrB_Matrix_diag: builds a new square matrix whose k'th diagonal holds
// the entries of vector v (k > 0: superdiagonal; k < 0: subdiagonal).
#include "ops/common.hpp"

namespace grb {

Info matrix_diag(Matrix** c, const Vector* v, int64_t k) {
  if (c == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(validate_objects({v}));
  std::shared_ptr<const VectorData> v_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(v)->snapshot(&v_snap));
  Index n = v_snap->n + static_cast<Index>(k < 0 ? -k : k);
  Matrix* out = nullptr;
  GRB_RETURN_IF_ERROR(Matrix::new_(&out, v_snap->type, n, n,
                                   const_cast<Vector*>(v)->context()));
  auto data = std::make_shared<MatrixData>(v_snap->type, n, n);
  // Entry v(i) lands at (i, i+k) for k >= 0, or (i-k, i) for k < 0;
  // rows are visited in increasing order so CSR comes out sorted.
  std::vector<Index> rows(v_snap->ind.size());
  std::vector<Index> cols(v_snap->ind.size());
  for (size_t t = 0; t < v_snap->ind.size(); ++t) {
    Index i = v_snap->ind[t];
    rows[t] = k >= 0 ? i : i + static_cast<Index>(-k);
    cols[t] = k >= 0 ? i + static_cast<Index>(k) : i;
  }
  for (size_t t = 0; t < rows.size(); ++t) data->ptr[rows[t] + 1] += 1;
  for (Index r = 0; r < n; ++r) data->ptr[r + 1] += data->ptr[r];
  data->col.resize(rows.size());
  data->vals.resize(rows.size());
  for (size_t t = 0; t < rows.size(); ++t) {
    // rows[] is already strictly increasing, so slots fill in order.
    Index slot = data->ptr[rows[t]];
    data->col[slot] = cols[t];
    data->vals.set(slot, v_snap->vals.at(t));
  }
  out->publish(std::move(data));
  *c = out;
  return Info::kSuccess;
}

}  // namespace grb
