// GrB_select (paper §VIII.C): the functional input mask.
//   w<m,r> = w (+) u<f(u, ind(u), 1, s)>
//   C<M,r> = C (+) A'<f(A', ind(A'), 2, s)>
// Entries where the boolean index-unary operator returns true are kept
// with their original values; the rest are annihilated.
#include <algorithm>

#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

Info check_select_op(const IndexUnaryOp* op) {
  if (op == nullptr) return Info::kNullPointer;
  // The operator must return a value interpretable as boolean.
  if (!types_compatible(TypeBool(), op->ztype())) return Info::kDomainMismatch;
  return Info::kSuccess;
}

// Shared per-entry evaluator: true -> keep.
class Keeper {
 public:
  Keeper(const IndexUnaryOp* op, const Type* input_type, const void* s)
      : op_(op),
        x_cast_(op->value_agnostic() ? input_type : op->xtype(), input_type),
        xb_((op->value_agnostic() ? input_type : op->xtype())->size()),
        zb_(op->ztype()->size()),
        s_(s) {}

  bool keep(const void* x, Index* indices, Index n) {
    x_cast_.run(xb_.data(), x);
    op_->apply(zb_.data(), xb_.data(), indices, n, s_);
    return value_as_bool(op_->ztype(), zb_.data());
  }

 private:
  const IndexUnaryOp* op_;
  Caster x_cast_;
  ValueBuf xb_, zb_;
  const void* s_;
};

}  // namespace

Info select(Vector* w, const Vector* mask, const BinaryOp* accum,
            const IndexUnaryOp* op, const Vector* u, const void* s,
            const Type* stype, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(check_select_op(op));
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u}));
  if (u == nullptr) return Info::kNullPointer;
  if (u->size() != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  if (op->xtype() != nullptr)
    GRB_RETURN_IF_ERROR(check_cast(op->xtype(), u->type()));
  // Selected values keep the input domain.
  GRB_RETURN_IF_ERROR(check_cast(w->type(), u->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), u->type()));
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(op->stype(), stype));
  ValueBuf sv(op->stype()->size());
  cast_value(op->stype(), sv.data(), stype, s);

  const Descriptor& d = resolve_desc(desc);
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  return defer_or_run(w, [w, u_snap, m_snap, op, sv, spec]() -> Info {
    // Entry-parallel two-phase: evaluate the keep bits once into a
    // bitmap, prefix-sum per fixed block, then gather survivors in
    // place.  Survivor order is input order, so the result is the same
    // stable compaction whatever the chunking.
    Index nvals = u_snap->nvals();
    Context* ectx = exec_context(w->context(), nvals);
    std::vector<uint8_t> keep_bits(nvals);
    ectx->parallel_for(0, nvals, [&](Index lo, Index hi) {
      Keeper keeper(op, u_snap->type, sv.data());
      for (Index k = lo; k < hi; ++k) {
        Index indices[1] = {u_snap->ind[k]};
        keep_bits[k] = keeper.keep(u_snap->vals.at(k), indices, 1);
      }
    });
    Index block = std::max<Index>(1, ectx->config().chunk);
    Index nb = nvals == 0 ? 0 : (nvals + block - 1) / block;
    std::vector<size_t> offs(nb + 1, 0);
    for (Index b = 0; b < nb; ++b) {
      Index hi = std::min<Index>(nvals, (b + 1) * block);
      size_t n = 0;
      for (Index k = b * block; k < hi; ++k) n += keep_bits[k];
      offs[b + 1] = offs[b] + n;
    }
    auto t = std::make_shared<VectorData>(u_snap->type, u_snap->n);
    t->ind.resize(offs[nb]);
    t->vals.resize(offs[nb]);
    ectx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
      for (Index b = blo; b < bhi; ++b) {
        Index hi = std::min<Index>(nvals, (b + 1) * block);
        size_t w = offs[b];
        for (Index k = b * block; k < hi; ++k) {
          if (keep_bits[k]) {
            t->ind[w] = u_snap->ind[k];
            t->vals.set(w, u_snap->vals.at(k));
            ++w;
          }
        }
      }
    });
    auto c_old = w->current_canonical();
    w->publish(
        writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  }, FuseNode{});
}

Info select(Matrix* c, const Matrix* mask, const BinaryOp* accum,
            const IndexUnaryOp* op, const Matrix* a, const void* s,
            const Type* stype, const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(check_select_op(op));
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a}));
  if (a == nullptr) return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  if (ar != c->nrows() || ac != c->ncols()) return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  if (op->xtype() != nullptr)
    GRB_RETURN_IF_ERROR(check_cast(op->xtype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), a->type()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), a->type()));
  if (s == nullptr || stype == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(check_cast(op->stype(), stype));
  ValueBuf sv(op->stype()->size());
  cast_value(op->stype(), sv.data(), stype, s);

  std::shared_ptr<const MatrixData> a_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0();
  return defer_or_run(c, [c, a_snap, m_snap, op, sv, spec, t0]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t0 ? format_transpose_view(a_snap) : a_snap;
    // Row-parallel two-phase: evaluate the keep bits once into a bitmap,
    // prefix-sum, then gather survivors.
    Index nrows = av->nrows;
    std::vector<uint8_t> keep_bits(av->col.size());
    std::vector<Index> counts(nrows, 0);
    Context* ctx = exec_context(c->context(), av->nvals());
    ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
      Keeper keeper(op, av->type, sv.data());
      for (Index r = lo; r < hi; ++r) {
        Index n = 0;
        for (size_t k = av->ptr[r]; k < av->ptr[r + 1]; ++k) {
          Index indices[2] = {r, av->col[k]};
          bool keep = keeper.keep(av->vals.at(k), indices, 2);
          keep_bits[k] = keep;
          n += keep;
        }
        counts[r] = n;
      }
    });
    auto t = std::make_shared<MatrixData>(av->type, nrows, av->ncols);
    for (Index r = 0; r < nrows; ++r) t->ptr[r + 1] = t->ptr[r] + counts[r];
    t->col.resize(t->ptr[nrows]);
    t->vals.resize(t->ptr[nrows]);
    ctx->parallel_for(0, nrows, [&](Index lo, Index hi) {
      for (Index r = lo; r < hi; ++r) {
        size_t w = t->ptr[r];
        for (size_t k = av->ptr[r]; k < av->ptr[r + 1]; ++k) {
          if (keep_bits[k]) {
            t->col[w] = av->col[k];
            t->vals.set(w, av->vals.at(k));
            ++w;
          }
        }
      }
    });
    auto c_old = c->current_canonical();
    c->publish(
        writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
    return Info::kSuccess;
  }, FuseNode{});
}

}  // namespace grb
