// GrB_vxm: w<m,r> = w (+) u^T * A over a semiring.
#include <algorithm>

#include "obs/telemetry.hpp"
#include "ops/mxm.hpp"

namespace grb {
namespace {

// Adapter flipping mul's operand order: vxm feeds (u_i, a_ij) but the
// multiplier's x operand is the vector value and y the matrix value,
// while vxm_kernel streams (uval, aval) already in that order.
class VxmRunner {
 public:
  VxmRunner(const Semiring* s, const Type* utype, const Type* atype)
      : mul_(s->mul(), utype, atype),
        add_(s->add()->op(), s->mul()->ztype(), s->mul()->ztype()) {}
  void mul(void* z, const void* u, const void* a) { mul_.run(z, u, a); }
  void add(void* acc, const void* z) { add_.run(acc, acc, z); }

 private:
  BinRunner mul_;
  BinRunner add_;
};

}  // namespace

Info vxm(Vector* w, const Vector* mask, const BinaryOp* accum,
         const Semiring* s, const Vector* u, const Matrix* a,
         const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({w, mask, u, a}));
  if (s == nullptr || a == nullptr || u == nullptr)
    return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  // In vxm, INP1 is the matrix.
  Index ar = d.tran1() ? a->ncols() : a->nrows();
  Index ac = d.tran1() ? a->nrows() : a->ncols();
  if (ar != u->size() || ac != w->size()) return Info::kDimensionMismatch;
  if (mask != nullptr && mask->size() != w->size())
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->xtype(), u->type()));
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->ytype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(w->type(), s->mul()->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, w->type(), s->mul()->ztype()));

  std::shared_ptr<const MatrixData> a_snap;
  std::shared_ptr<const VectorData> u_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  GRB_RETURN_IF_ERROR(const_cast<Vector*>(u)->snapshot(&u_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Vector*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t1 = d.tran1();
  // Plain replace: w is rebuilt from the snapshots without reading its
  // old state (a self-input completed at snapshot time), so earlier
  // queued writes to w are dead.  Opaque to chain fusion.
  FuseNode node;
  if (mask == nullptr && accum == nullptr && !d.mask_comp()) {
    node.reads_out = false;
    node.full_replace = true;
  }
  return defer_or_run(w, [w, a_snap, u_snap, m_snap, s, spec, t1]() -> Info {
    std::shared_ptr<const MatrixData> av =
        t1 ? format_transpose_view(a_snap) : a_snap;
    size_t work = av->nvals() + u_snap->nvals();
    Context* ectx = exec_context(w->context(), work);
    std::shared_ptr<VectorData> t;
    // The dot path transposes A, which allocates O(ncols(A)) column
    // pointers — unaffordable for hypersparse dims; the adaptive serial
    // SPA handles those within the byte budget.
    bool can_transpose =
        static_cast<uint64_t>(av->ncols) * 2 * sizeof(Index) <=
        spgemm_dense_budget();
    if (ectx->effective_nthreads() > 1 && can_transpose) {
      // Parallel path: column dot products over A'.  Fold order per
      // output entry matches the serial SPA (ascending row index), so
      // the result is bitwise-identical to the serial path.
      auto at = format_transpose_view(av);
      t = fastpath_vxm_dot(ectx, *u_snap, *at, s);
      if (t == nullptr) {
        t = vxm_dot_kernel(ectx, *u_snap, *at, s->mul()->ztype(), [&] {
          return VxmRunner(s, u_snap->type, at->type);
        });
      }
    } else {
      t = fastpath_vxm(*u_snap, *av, s);
      if (t == nullptr) {
        t = vxm_spa(*u_snap, *av, s->mul()->ztype(), [&] {
          return VxmRunner(s, u_snap->type, av->type);
        });
      }
    }
    if (obs::stats_enabled()) obs::add_flops(av->nvals());
    auto c_old = w->current_canonical();
    // Identity write-back (see mxm.cpp): unmasked, unaccumulated, no
    // cast — T replaces w wholesale.
    if (m_snap == nullptr && spec.accum == nullptr &&
        t->type == c_old->type) {
      if (obs::stats_enabled()) obs::add_scalars(t->nvals());
      w->publish(std::move(t));
    } else {
      w->publish(
          writeback_vector(w->context(), *c_old, *t, m_snap.get(), spec));
    }
    return Info::kSuccess;
  }, std::move(node));
}

}  // namespace grb
