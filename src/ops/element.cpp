// setElement / removeElement / extractElement / extractTuples for
// vectors and matrices.
//
// setElement and removeElement use the pending-tuple fast path: in
// nonblocking mode each call is O(1) and the tuples are folded into the
// sparse structure on completion — the bulk-ingest pattern that
// nonblocking mode exists to allow (measured by bench_m1_nonblocking).

#include "containers/matrix.hpp"
#include "containers/vector.hpp"
#include "obs/telemetry.hpp"

namespace grb {

// --- Vector ---------------------------------------------------------------

Info Vector::set_element(const void* value, const Type* value_type,
                         Index i) {
  if (value == nullptr || value_type == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(pending_error());
  if (!types_compatible(type_, value_type)) return Info::kDomainMismatch;
  if (i >= size()) return Info::kInvalidIndex;
  {
    MutexLock lock(mu_);
    pend_.push_back({i, false});
    ValueBuf cast(type_->size());
    cast_value(type_, cast.data(), value_type, value);
    pend_vals_.push_back(cast.data());
    obs::pending_tuples_sample(pend_.size());
  }
  if (mode() == Mode::kBlocking) return complete();
  return Info::kSuccess;
}

Info Vector::remove_element(Index i) {
  GRB_RETURN_IF_ERROR(pending_error());
  if (i >= size()) return Info::kInvalidIndex;
  {
    MutexLock lock(mu_);
    pend_.push_back({i, true});
    obs::pending_tuples_sample(pend_.size());
  }
  if (mode() == Mode::kBlocking) return complete();
  return Info::kSuccess;
}

Info Vector::extract_element(void* out, const Type* out_type, Index i) {
  if (out == nullptr || out_type == nullptr) return Info::kNullPointer;
  if (!types_compatible(out_type, type_)) return Info::kDomainMismatch;
  if (i >= size()) return Info::kInvalidIndex;
  // Native block: find() is O(1) on bitmap/dense, no expansion needed.
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  size_t pos = snap->find(i);
  if (pos == VectorData::npos) return Info::kNoValue;
  cast_value(out_type, out, snap->type, snap->vals.at(pos));
  return Info::kSuccess;
}

Info Vector::extract_tuples(Index* indices, void* values, Index* n,
                            const Type* value_type) {
  if (n == nullptr) return Info::kNullPointer;
  if (values != nullptr && value_type == nullptr) return Info::kNullPointer;
  if (values != nullptr && !types_compatible(value_type, type_))
    return Info::kDomainMismatch;
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(snapshot(&snap));
  if (*n < snap->nvals()) return Info::kInsufficientSpace;
  *n = snap->nvals();
  CastFn cast = values != nullptr ? cast_fn(value_type, snap->type) : nullptr;
  for (size_t k = 0; k < snap->ind.size(); ++k) {
    if (indices != nullptr) indices[k] = snap->ind[k];
    if (values != nullptr) {
      auto* dst = static_cast<std::byte*>(values) + k * value_type->size();
      if (cast != nullptr) {
        cast(dst, snap->vals.at(k));
      } else {
        std::memcpy(dst, snap->vals.at(k), snap->type->size());
      }
    }
  }
  return Info::kSuccess;
}

// --- Matrix ---------------------------------------------------------------

Info Matrix::set_element(const void* value, const Type* value_type, Index i,
                         Index j) {
  if (value == nullptr || value_type == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(pending_error());
  if (!types_compatible(type_, value_type)) return Info::kDomainMismatch;
  {
    MutexLock lock(mu_);
    if (i >= nrows_ || j >= ncols_) return Info::kInvalidIndex;
    pend_.push_back({i, j, false});
    ValueBuf cast(type_->size());
    cast_value(type_, cast.data(), value_type, value);
    pend_vals_.push_back(cast.data());
    obs::pending_tuples_sample(pend_.size());
  }
  if (mode() == Mode::kBlocking) return complete();
  return Info::kSuccess;
}

Info Matrix::remove_element(Index i, Index j) {
  GRB_RETURN_IF_ERROR(pending_error());
  {
    MutexLock lock(mu_);
    if (i >= nrows_ || j >= ncols_) return Info::kInvalidIndex;
    pend_.push_back({i, j, true});
    obs::pending_tuples_sample(pend_.size());
  }
  if (mode() == Mode::kBlocking) return complete();
  return Info::kSuccess;
}

Info Matrix::extract_element(void* out, const Type* out_type, Index i,
                             Index j) {
  if (out == nullptr || out_type == nullptr) return Info::kNullPointer;
  if (!types_compatible(out_type, type_)) return Info::kDomainMismatch;
  if (i >= nrows() || j >= ncols()) return Info::kInvalidIndex;
  // Native block: find() is O(1) on bitmap/dense, no expansion needed.
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  size_t pos = snap->find(i, j);
  if (pos == MatrixData::npos) return Info::kNoValue;
  cast_value(out_type, out, snap->type, snap->vals.at(pos));
  return Info::kSuccess;
}

Info Matrix::extract_tuples(Index* row_indices, Index* col_indices,
                            void* values, Index* n,
                            const Type* value_type) {
  if (n == nullptr) return Info::kNullPointer;
  if (values != nullptr && value_type == nullptr) return Info::kNullPointer;
  if (values != nullptr && !types_compatible(value_type, type_))
    return Info::kDomainMismatch;
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(snapshot(&snap));
  if (*n < snap->nvals()) return Info::kInsufficientSpace;
  *n = snap->nvals();
  CastFn cast = values != nullptr ? cast_fn(value_type, snap->type) : nullptr;
  size_t k = 0;
  for (Index r = 0; r < snap->nrows; ++r) {
    for (size_t p = snap->ptr[r]; p < snap->ptr[r + 1]; ++p, ++k) {
      if (row_indices != nullptr) row_indices[k] = r;
      if (col_indices != nullptr) col_indices[k] = snap->col[p];
      if (values != nullptr) {
        auto* dst = static_cast<std::byte*>(values) + k * value_type->size();
        if (cast != nullptr) {
          cast(dst, snap->vals.at(p));
        } else {
          std::memcpy(dst, snap->vals.at(p), snap->type->size());
        }
      }
    }
  }
  return Info::kSuccess;
}

}  // namespace grb
