// GrB_mxm: C<M,r> = C (+) A*B over a semiring.
#include <algorithm>

#include "containers/format.hpp"
#include "obs/decision.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "ops/mxm.hpp"

namespace grb {

Info mxm(Matrix* c, const Matrix* mask, const BinaryOp* accum,
         const Semiring* s, const Matrix* a, const Matrix* b,
         const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a, b}));
  if (s == nullptr || a == nullptr || b == nullptr)
    return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  Index br = d.tran1() ? b->ncols() : b->nrows();
  Index bc = d.tran1() ? b->nrows() : b->ncols();
  if (ac != br) return Info::kDimensionMismatch;
  if (ar != c->nrows() || bc != c->ncols()) return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->xtype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(s->mul()->ytype(), b->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), s->mul()->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), s->mul()->ztype()));

  std::shared_ptr<const MatrixData> a_snap, b_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(b)->snapshot(&b_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0(), t1 = d.tran1();
  // Plain replace: c is rebuilt from the snapshots without reading its
  // old state (a self-input completed at snapshot time), so earlier
  // queued writes to c are dead.  Opaque to chain fusion.
  FuseNode node;
  if (mask == nullptr && accum == nullptr && !d.mask_comp()) {
    node.reads_out = false;
    node.full_replace = true;
  }
  return defer_or_run(
      c,
      [c, a_snap, b_snap, m_snap, s, spec, t0, t1]() -> Info {
        std::shared_ptr<const MatrixData> av =
            t0 ? format_transpose_view(a_snap) : a_snap;
        std::shared_ptr<const MatrixData> bv =
            t1 ? format_transpose_view(b_snap) : b_snap;
        Context* ctx =
            exec_context(c->context(), av->nvals() + bv->nvals());
        std::shared_ptr<MatrixData> t;
        // One symbolic pass per snapshot pair: the strategy cost model,
        // the adaptive engine and the flops telemetry all share it (and
        // the per-snapshot cache de-duplicates repeated calls on the
        // same inputs).  Computed lazily so a pinned masked-dot run
        // never pays the O(nvals(A)) scan.
        std::shared_ptr<const SpgemmRowCosts> costs;
        auto row_costs = [&]() -> const SpgemmRowCosts& {
          if (costs == nullptr) costs = spgemm_row_costs(av, bv);
          return *costs;
        };
        // Masked dot-product strategy: correct whenever the mask is
        // structural and not complemented (T is only ever read at
        // mask-true positions by the write-back).  The heuristic picks
        // it when the mask is sparse enough that per-position dots beat
        // the full Gustavson expansion.
        obs::DecisionTicket dot_ticket;
        if (m_snap != nullptr && spec.mask_structure && !spec.mask_comp) {
          MxmStrategy strat = mxm_strategy();
          bool use_dot = strat == MxmStrategy::kMaskedDot;
          // Transposing B allocates O(ncols(B)) column pointers; the
          // dot strategy is off the table for hypersparse column
          // dimensions the budget cannot afford.
          bool bt_ok = static_cast<uint64_t>(bv->ncols) * 2 *
                           sizeof(Index) <=
                       spgemm_dense_budget();
          if (strat == MxmStrategy::kAuto && bt_ok) {
            // Cost model: Gustavson expands every (i,k) of A into row k
            // of B; masked dot merges A(i,:) with B'(j,:) per mask entry.
            size_t avg_arow =
                av->nrows ? av->nvals() / av->nrows + 1 : 1;
            size_t avg_bcol =
                bv->ncols ? bv->nvals() / bv->ncols + 1 : 1;
            size_t flops_dot = m_snap->nvals() * (avg_arow + avg_bcol) +
                               bv->nvals();  // + transpose of B
            use_dot = flops_dot < row_costs().total;
            // Decision audit: the one genuinely adaptive branch here is
            // the auto heuristic — pinned strategies never had a choice.
            dot_ticket = obs::decision_record(
                obs::DecisionSite::kMaskedDot, use_dot ? "dot" : "saxpy",
                use_dot ? "saxpy" : "dot",
                static_cast<double>(use_dot ? flops_dot
                                            : row_costs().total),
                static_cast<double>(use_dot ? row_costs().total
                                            : flops_dot));
          }
          if (use_dot && bt_ok) {
            obs::ProfScope prof("dot");
            auto bt = format_transpose_view(bv);
            t = fastpath_masked_dot_mxm(ctx, *av, *bt, *m_snap, s);
            if (t == nullptr) {
              t = mxm_masked_dot_kernel(ctx, *av, *bt, *m_snap,
                                        s->mul()->ztype(), [&] {
                                          return SemiringRunner(
                                              s, av->type, bt->type);
                                        });
            }
          }
        }
        if (t == nullptr) t = fastpath_mxm(ctx, *av, *bv, s, row_costs());
        if (t == nullptr) {
          t = spgemm_mxm(ctx, *av, *bv, s->mul()->ztype(), row_costs(),
                         [&] { return SemiringRunner(s, av->type, bv->type); });
        }
        obs::decision_measure(dot_ticket,
                              static_cast<uint64_t>(t->nvals()));
        if (obs::stats_enabled()) {
          // SpGEMM flop metric: every A(i,k) expands into row k of B
          // (multiply count of the Gustavson formulation) — the cached
          // symbolic total, not a second scan.
          obs::add_flops(row_costs().total);
        }
        // Hand the symbolic flop total to the format cost model: the
        // publish below re-evaluates c's storage format, and the
        // already-paid symbolic pass is a free density signal.
        if (costs != nullptr) format_hint_flops(costs->total);
        auto c_old = c->current_canonical();
        // Identity write-back: with no mask and no accumulator Z = T
        // replaces C wholesale, so when no cast is needed T itself is
        // published and the per-element merged rebuild is skipped.  The
        // kernels emit sorted deduplicated rows, so T is already a
        // valid materialized matrix.
        if (m_snap == nullptr && spec.accum == nullptr &&
            t->type == c_old->type) {
          if (obs::stats_enabled()) obs::add_scalars(t->nvals());
          c->publish(std::move(t));
        } else {
          c->publish(
              writeback_matrix(ctx, *c_old, *t, m_snap.get(), spec));
        }
        return Info::kSuccess;
      },
      std::move(node));
}

}  // namespace grb
