// Fused group execution: map-chain composition and stage-through-merge
// elementwise passes (see fused_exec.hpp for the contract).
//
// Bitwise identity with the eager path rests on two facts:
//  * every per-entry computation replays the eager kernels' exact cast
//    sequence — mapper into the op's ztype, then the writeback cast into
//    the target domain, between every pair of chained ops (including the
//    deliberately lossy double cast on single-sided union entries);
//  * every output entry depends only on its own input entries, so thread
//    partitioning cannot change results (the same argument the eager
//    blocked kernels rely on).
#include "ops/fused_exec.hpp"

#include <algorithm>
#include <memory>

#include "containers/matrix.hpp"
#include "containers/vector.hpp"
#include "exec/context.hpp"
#include "exec/fusion.hpp"
#include "exec/object_base.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "ops/op_apply.hpp"

namespace grb {
namespace {

// One pending map stage: mapper into `ztype`, then the cast into the
// target domain the eager writeback would perform.
struct Stage {
  const MapFactory* make;
  const Type* ztype;
};

// Per-chunk runner applying the composed stage list to one value.  An
// empty chain is the identity (bytewise copy in the target domain).
class ChainRunner {
 public:
  ChainRunner(const std::vector<Stage>& stages, const Type* wtype)
      : wsize_(wtype->size()), wb_(wtype->size()) {
    steps_.reserve(stages.size());
    for (const Stage& s : stages)
      steps_.push_back(Step{(*s.make)(), Caster(wtype, s.ztype),
                            ValueBuf(s.ztype->size())});
  }

  void run(void* dst, const void* x, Index i, Index j) {
    if (steps_.empty()) {
      std::memcpy(dst, x, wsize_);
      return;
    }
    const void* cur = x;
    for (size_t s = 0; s < steps_.size(); ++s) {
      Step& st = steps_[s];
      st.fn(st.zb.data(), cur, i, j);
      void* out = (s + 1 == steps_.size()) ? dst : wb_.data();
      st.cast.run(out, st.zb.data());
      cur = out;
    }
  }

 private:
  struct Step {
    MapFn fn;
    Caster cast;
    ValueBuf zb;
  };
  std::vector<Step> steps_;
  size_t wsize_;
  ValueBuf wb_;
};

std::shared_ptr<VectorData> apply_stages_vec(Context* ctx,
                                             const VectorData& u,
                                             const Type* wtype,
                                             const std::vector<Stage>& st) {
  auto t = std::make_shared<VectorData>(wtype, u.n);
  t->ind = u.ind;
  t->vals.resize(u.ind.size());
  Index nvals = static_cast<Index>(u.ind.size());
  ctx->parallel_for(0, nvals, [&](Index lo, Index hi) {
    ChainRunner chain(st, wtype);
    for (Index k = lo; k < hi; ++k)
      chain.run(t->vals.at(k), u.vals.at(k), u.ind[k], 0);
  });
  return t;
}

std::shared_ptr<MatrixData> apply_stages_mat(Context* ctx,
                                             const MatrixData& a,
                                             const Type* ctype,
                                             const std::vector<Stage>& st) {
  auto t = std::make_shared<MatrixData>(ctype, a.nrows, a.ncols);
  t->ptr = a.ptr;
  t->col = a.col;
  t->vals.resize(a.col.size());
  ctx->parallel_for(0, a.nrows, [&](Index lo, Index hi) {
    ChainRunner chain(st, ctype);
    for (Index r = lo; r < hi; ++r) {
      for (size_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
        chain.run(t->vals.at(k), a.vals.at(k), r, a.col[k]);
    }
  });
  return t;
}

// Runtime-flagged version of the eager merge walk (compute_ewise /
// merge_ewise_range in ewise_vector.cpp): streams x and y over indices
// < ihi starting at offsets a/b; emit(i, xk, yk) with npos for the
// absent side (union only).
template <class Emit>
void merge_range(const VectorData& x, const VectorData& y, size_t a,
                 size_t b, Index ihi, bool uni, Emit&& emit) {
  size_t ae = x.ind.size(), be = y.ind.size();
  while (a < ae && x.ind[a] < ihi && b < be && y.ind[b] < ihi) {
    if (x.ind[a] == y.ind[b]) {
      emit(x.ind[a], a, b);
      ++a;
      ++b;
    } else if (x.ind[a] < y.ind[b]) {
      if (uni) emit(x.ind[a], a, VectorData::npos);
      ++a;
    } else {
      if (uni) emit(y.ind[b], VectorData::npos, b);
      ++b;
    }
  }
  if (uni) {
    for (; a < ae && x.ind[a] < ihi; ++a) emit(x.ind[a], a, VectorData::npos);
    for (; b < be && y.ind[b] < ihi; ++b) emit(y.ind[b], VectorData::npos, b);
  }
}

// Per-chunk zip worker: feeds the target side through the pending map
// chain, then replays the eager ewise kernel's cast/runner sequence,
// ending in the target domain (the eager writeback's final cast).
class ZipWorker {
 public:
  ZipWorker(const std::vector<Stage>& stages, const Type* wtype,
            const FuseNode& nd)
      : self_is_x_(nd.zip_out_is_x),
        chain_(stages, wtype),
        run_(nd.zip_op, self_is_x_ ? wtype : nd.zip_other->type,
             self_is_x_ ? nd.zip_other->type : wtype),
        self2z_(nd.zip_op->ztype(), wtype),
        other2z_(nd.zip_op->ztype(), nd.zip_other->type),
        z2w_(wtype, nd.zip_op->ztype()),
        zb_(nd.zip_op->ztype()->size()),
        sb_(wtype->size()) {}

  // dst: wtype storage.  xk/yk index the x-side / y-side streams
  // (VectorData::npos for the absent side on union entries).
  void emit(void* dst, const VectorData& xs, const VectorData& ys, Index i,
            size_t xk, size_t yk) {
    if (xk != VectorData::npos && yk != VectorData::npos) {
      const void* xv = xs.vals.at(xk);
      const void* yv = ys.vals.at(yk);
      if (self_is_x_) {
        chain_.run(sb_.data(), xv, i, 0);
        xv = sb_.data();
      } else {
        chain_.run(sb_.data(), yv, i, 0);
        yv = sb_.data();
      }
      run_.run(zb_.data(), xv, yv);
      z2w_.run(dst, zb_.data());
    } else if (yk == VectorData::npos) {
      emit_single(dst, xs, i, xk, self_is_x_);
    } else {
      emit_single(dst, ys, i, yk, !self_is_x_);
    }
  }

 private:
  void emit_single(void* dst, const VectorData& side, Index i, size_t k,
                   bool is_self) {
    if (is_self) {
      // Chain output is already in the target domain; the eager path
      // still casts it through the op's ztype and back (a deliberate
      // round trip we must replicate for bitwise identity).
      chain_.run(sb_.data(), side.vals.at(k), i, 0);
      self2z_.run(zb_.data(), sb_.data());
    } else {
      other2z_.run(zb_.data(), side.vals.at(k));
    }
    z2w_.run(dst, zb_.data());
  }

  bool self_is_x_;
  ChainRunner chain_;
  BinRunner run_;
  Caster self2z_, other2z_, z2w_;
  ValueBuf zb_, sb_;
};

std::shared_ptr<VectorData> fused_zip_serial(const VectorData& self,
                                             const std::vector<Stage>& st,
                                             const Type* wtype,
                                             const FuseNode& nd) {
  const VectorData& xs = nd.zip_out_is_x ? self : *nd.zip_other;
  const VectorData& ys = nd.zip_out_is_x ? *nd.zip_other : self;
  auto t = std::make_shared<VectorData>(wtype, self.n);
  ZipWorker wkr(st, wtype, nd);
  ValueBuf wb(wtype->size());
  merge_range(xs, ys, 0, 0, self.n, nd.zip_union,
              [&](Index i, size_t xk, size_t yk) {
                wkr.emit(wb.data(), xs, ys, i, xk, yk);
                t->ind.push_back(i);
                t->vals.push_back(wb.data());
              });
  return t;
}

std::shared_ptr<VectorData> fused_zip_blocked(Context* ctx,
                                              const VectorData& self,
                                              const std::vector<Stage>& st,
                                              const Type* wtype,
                                              const FuseNode& nd) {
  const VectorData& xs = nd.zip_out_is_x ? self : *nd.zip_other;
  const VectorData& ys = nd.zip_out_is_x ? *nd.zip_other : self;
  auto t = std::make_shared<VectorData>(wtype, self.n);
  Index block = std::max<Index>(1, ctx->config().chunk);
  Index nb = (self.n + block - 1) / block;
  std::vector<size_t> xstart(nb), ystart(nb);
  std::vector<Index> counts(nb, 0);
  ctx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    for (Index b = blo; b < bhi; ++b) {
      Index ilo = b * block;
      Index ihi = std::min<Index>(self.n, ilo + block);
      xstart[b] = std::lower_bound(xs.ind.begin(), xs.ind.end(), ilo) -
                  xs.ind.begin();
      ystart[b] = std::lower_bound(ys.ind.begin(), ys.ind.end(), ilo) -
                  ys.ind.begin();
      Index cnt = 0;
      merge_range(xs, ys, xstart[b], ystart[b], ihi, nd.zip_union,
                  [&](Index, size_t, size_t) { ++cnt; });
      counts[b] = cnt;
    }
  });
  std::vector<size_t> offs(nb + 1, 0);
  for (Index b = 0; b < nb; ++b) offs[b + 1] = offs[b] + counts[b];
  t->ind.resize(offs[nb]);
  t->vals.resize(offs[nb]);
  ctx->parallel_for(0, nb, 1, [&](Index blo, Index bhi) {
    ZipWorker wkr(st, wtype, nd);
    for (Index b = blo; b < bhi; ++b) {
      Index ihi = std::min<Index>(self.n, (b + 1) * block);
      size_t w = offs[b];
      merge_range(xs, ys, xstart[b], ystart[b], ihi, nd.zip_union,
                  [&](Index i, size_t xk, size_t yk) {
                    t->ind[w] = i;
                    wkr.emit(t->vals.at(w), xs, ys, i, xk, yk);
                    ++w;
                  });
    }
  });
  return t;
}

}  // namespace

Info run_fused_vector_group(Vector* w, std::vector<Deferred>& batch,
                            size_t b, size_t e) {
  const Type* wtype = w->current_canonical()->type;
  std::shared_ptr<const VectorData> cur;
  std::vector<Stage> stages;
  for (size_t k = b; k < e; ++k) {
    Deferred& d = batch[k];
    // Attribution matches the eager walk node for node: scope (with the
    // node's enqueue-time tenant), flight record, flow step, deferred
    // span, scalar count — only the data passes fuse.
    obs::CurrentOpScope op_scope(d.op, d.ctx_id);
    if (obs::flight_enabled())
      obs::fr_record(obs::FrKind::kDeferredExec, d.op, 0, d.ctx_id,
                     d.flow_id);
    uint64_t t0 = obs::telemetry_enabled() ? obs::now_ns() : 0;
    obs::flow_step(d.op, d.flow_id);
    const FuseNode& nd = d.node;
    if (nd.kind == FuseNode::Kind::kMap) {
      if (nd.vsrc != nullptr)
        cur = nd.vsrc;  // snapshot-source head: chain restarts here
      else if (cur == nullptr)
        cur = w->current_canonical();
      stages.push_back(Stage{&nd.make_mapper, nd.ztype});
    } else {  // kZip
      if (cur == nullptr) cur = w->current_canonical();
      Context* ectx = exec_context(w->context(),
                                   cur->nvals() + nd.zip_other->nvals());
      cur = ectx->effective_nthreads() > 1
                ? fused_zip_blocked(ectx, *cur, stages, wtype, nd)
                : fused_zip_serial(*cur, stages, wtype, nd);
      stages.clear();
    }
    if (k + 1 == e && !stages.empty()) {
      Context* ectx = exec_context(w->context(), cur->nvals());
      cur = apply_stages_vec(ectx, *cur, wtype, stages);
      stages.clear();
    }
    if (obs::stats_enabled()) obs::add_scalars(cur->nvals());
    obs::deferred_return(d.op, t0, d.enqueued_ns, false);
  }
  w->publish(std::move(cur));
  return Info::kSuccess;
}

Info run_fused_matrix_group(Matrix* c, std::vector<Deferred>& batch,
                            size_t b, size_t e) {
  const Type* ctype = c->current_canonical()->type;
  std::shared_ptr<const MatrixData> cur;
  std::vector<Stage> stages;
  for (size_t k = b; k < e; ++k) {
    Deferred& d = batch[k];
    obs::CurrentOpScope op_scope(d.op, d.ctx_id);
    if (obs::flight_enabled())
      obs::fr_record(obs::FrKind::kDeferredExec, d.op, 0, d.ctx_id,
                     d.flow_id);
    uint64_t t0 = obs::telemetry_enabled() ? obs::now_ns() : 0;
    obs::flow_step(d.op, d.flow_id);
    const FuseNode& nd = d.node;
    if (nd.msrc != nullptr)
      cur = nd.msrc;
    else if (cur == nullptr)
      cur = c->current_canonical();
    stages.push_back(Stage{&nd.make_mapper, nd.ztype});
    if (k + 1 == e) {
      Context* ectx = exec_context(c->context(), cur->nvals());
      cur = apply_stages_mat(ectx, *cur, ctype, stages);
      stages.clear();
    }
    if (obs::stats_enabled()) obs::add_scalars(cur->nvals());
    obs::deferred_return(d.op, t0, d.enqueued_ns, false);
  }
  c->publish(std::move(cur));
  return Info::kSuccess;
}

}  // namespace grb
