// Cast-wrapped operator application helpers (internal).
//
// GraphBLAS operations typecast stored values into the operator's input
// domains and the operator's result into the output domain.  These small
// runners hoist the cast-function lookups out of the inner loops.
#pragma once

#include "core/binary_op.hpp"
#include "core/unary_op.hpp"

namespace grb {

// dst (dst_type) <- src (src_type); memcpy when identical.
class Caster {
 public:
  Caster(const Type* dst_type, const Type* src_type)
      : fn_(cast_fn(dst_type, src_type)), size_(dst_type->size()) {}

  void run(void* dst, const void* src) const {
    if (fn_ != nullptr) {
      fn_(dst, src);
    } else {
      std::memcpy(dst, src, size_);
    }
  }

 private:
  CastFn fn_;
  size_t size_;
};

// z (op->ztype) = op(cast(x), cast(y)) where x/y arrive in xt/yt domains.
class BinRunner {
 public:
  BinRunner(const BinaryOp* op, const Type* xt, const Type* yt)
      : op_(op),
        x_cast_(op->xtype(), xt),
        y_cast_(op->ytype(), yt),
        xb_(op->xtype()->size()),
        yb_(op->ytype()->size()) {}

  void run(void* z, const void* x, const void* y) {
    x_cast_.run(xb_.data(), x);
    y_cast_.run(yb_.data(), y);
    op_->apply(z, xb_.data(), yb_.data());
  }

 private:
  const BinaryOp* op_;
  Caster x_cast_, y_cast_;
  ValueBuf xb_, yb_;
};

// z (op->ztype) = op(cast(x)).
class UnRunner {
 public:
  UnRunner(const UnaryOp* op, const Type* xt)
      : op_(op), x_cast_(op->xtype(), xt), xb_(op->xtype()->size()) {}

  void run(void* z, const void* x) {
    x_cast_.run(xb_.data(), x);
    op_->apply(z, xb_.data());
  }

 private:
  const UnaryOp* op_;
  Caster x_cast_;
  ValueBuf xb_;
};

}  // namespace grb
