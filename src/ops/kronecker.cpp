// GrB_kronecker: C<M,r> = C (+) kron(A, B) with a binary operator.
#include <algorithm>

#include "ops/common.hpp"
#include "ops/op_apply.hpp"

namespace grb {

Info kronecker(Matrix* c, const Matrix* mask, const BinaryOp* accum,
               const BinaryOp* op, const Matrix* a, const Matrix* b,
               const Descriptor* desc) {
  GRB_RETURN_IF_ERROR(validate_objects({c, mask, a, b}));
  if (op == nullptr || a == nullptr || b == nullptr)
    return Info::kNullPointer;
  const Descriptor& d = resolve_desc(desc);
  Index ar = d.tran0() ? a->ncols() : a->nrows();
  Index ac = d.tran0() ? a->nrows() : a->ncols();
  Index br = d.tran1() ? b->ncols() : b->nrows();
  Index bc = d.tran1() ? b->nrows() : b->ncols();
  if (c->nrows() != ar * br || c->ncols() != ac * bc)
    return Info::kDimensionMismatch;
  if (mask != nullptr &&
      (mask->nrows() != c->nrows() || mask->ncols() != c->ncols()))
    return Info::kDimensionMismatch;
  GRB_RETURN_IF_ERROR(check_cast(op->xtype(), a->type()));
  GRB_RETURN_IF_ERROR(check_cast(op->ytype(), b->type()));
  GRB_RETURN_IF_ERROR(check_cast(c->type(), op->ztype()));
  GRB_RETURN_IF_ERROR(check_accum(accum, c->type(), op->ztype()));

  std::shared_ptr<const MatrixData> a_snap, b_snap, m_snap;
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(a)->snapshot(&a_snap));
  GRB_RETURN_IF_ERROR(const_cast<Matrix*>(b)->snapshot(&b_snap));
  if (mask != nullptr)
    GRB_RETURN_IF_ERROR(const_cast<Matrix*>(mask)->snapshot(&m_snap));
  WritebackSpec spec{accum, mask != nullptr, d.mask_structure(),
                     d.mask_comp(), d.replace()};
  bool t0 = d.tran0(), t1 = d.tran1();
  return defer_or_run(
      c, [c, a_snap, b_snap, m_snap, op, spec, t0, t1]() -> Info {
        std::shared_ptr<const MatrixData> av =
            t0 ? format_transpose_view(a_snap) : a_snap;
        std::shared_ptr<const MatrixData> bv =
            t1 ? format_transpose_view(b_snap) : b_snap;
        Index nrows = av->nrows * bv->nrows;
        Index ncols = av->ncols * bv->ncols;
        auto t = std::make_shared<MatrixData>(op->ztype(), nrows, ncols);
        // Row r of T combines row r / b.nrows of A with row r % b.nrows
        // of B; output columns are ja * b.ncols + jb, already sorted.
        for (Index r = 0; r < nrows; ++r) {
          Index ia = r / bv->nrows;
          Index ib = r % bv->nrows;
          t->ptr[r + 1] =
              t->ptr[r] + (av->ptr[ia + 1] - av->ptr[ia]) *
                              (bv->ptr[ib + 1] - bv->ptr[ib]);
        }
        t->col.resize(t->ptr[nrows]);
        t->vals.resize(t->ptr[nrows]);
        c->context()->parallel_for(0, nrows, [&](Index lo, Index hi) {
          BinRunner run(op, av->type, bv->type);
          for (Index r = lo; r < hi; ++r) {
            Index ia = r / bv->nrows;
            Index ib = r % bv->nrows;
            size_t w = t->ptr[r];
            for (size_t ka = av->ptr[ia]; ka < av->ptr[ia + 1]; ++ka) {
              for (size_t kb = bv->ptr[ib]; kb < bv->ptr[ib + 1]; ++kb) {
                t->col[w] = av->col[ka] * bv->ncols + bv->col[kb];
                run.run(t->vals.at(w), av->vals.at(ka), bv->vals.at(kb));
                ++w;
              }
            }
          }
        });
        auto c_old = c->current_canonical();
        c->publish(
            writeback_matrix(c->context(), *c_old, *t, m_snap.get(), spec));
        return Info::kSuccess;
      }, FuseNode{});
}

}  // namespace grb
