// Portable Clang thread-safety (capability) annotations and an annotated
// mutex vocabulary for the whole library.
//
// Under Clang with -Wthread-safety the GRB_* macros expand to the
// capability attributes, so locking contracts ("member X is guarded by
// mutex M", "function F must not be called with M held") become
// compile-time errors instead of comments.  Under every other compiler
// the macros expand to nothing and grb::Mutex degrades to a thin
// std::mutex wrapper with identical codegen.
//
// The annotated vocabulary:
//  * grb::Mutex        — a capability ("mutex") wrapping std::mutex;
//  * grb::MutexLock    — scoped acquire/release (std::lock_guard shape);
//  * grb::CvLock       — scoped acquire/release that can wait on a
//                        std::condition_variable.  cv.wait's unlock/relock
//                        is atomic from the caller's perspective, so the
//                        analysis treats the capability as held across the
//                        wait — which is exactly the invariant callers rely
//                        on for the guarded members they re-check after
//                        waking.
//
// Build with the contract enforced: cmake --preset tsa (Clang only); see
// DESIGN.md "Static contracts".
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define GRB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GRB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

#define GRB_CAPABILITY(x) GRB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define GRB_SCOPED_CAPABILITY \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GRB_GUARDED_BY(x) GRB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define GRB_PT_GUARDED_BY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define GRB_ACQUIRE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define GRB_RELEASE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define GRB_TRY_ACQUIRE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define GRB_REQUIRES(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define GRB_EXCLUDES(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define GRB_RETURN_CAPABILITY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define GRB_ASSERT_CAPABILITY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define GRB_NO_THREAD_SAFETY_ANALYSIS \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace grb {

// An annotated mutex.  std::mutex itself carries no capability attributes
// in libstdc++, so the analysis can only follow locks taken through this
// wrapper; all library mutexes must be grb::Mutex.
class GRB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRB_ACQUIRE() { mu_.lock(); }
  void unlock() GRB_RELEASE() { mu_.unlock(); }
  bool try_lock() GRB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For condition-variable interop (CvLock) only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// Scoped acquire/release (std::lock_guard shape).
class GRB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GRB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Scoped acquire/release that can block on a condition variable.  Callers
// re-check guarded state in an explicit `while (...) lock.wait(cv);` loop
// — never a predicate lambda, which the analysis would treat as a separate
// function that does not hold the capability.
class GRB_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(Mutex& mu) GRB_ACQUIRE(mu) : lock_(mu.native()) {}
  ~CvLock() GRB_RELEASE() {}

  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace grb
