// Portable Clang thread-safety (capability) annotations and an annotated
// mutex vocabulary for the whole library.
//
// Under Clang with -Wthread-safety the GRB_* macros expand to the
// capability attributes, so locking contracts ("member X is guarded by
// mutex M", "function F must not be called with M held") become
// compile-time errors instead of comments.  Under every other compiler
// the macros expand to nothing and grb::Mutex degrades to a thin
// std::mutex wrapper with identical codegen.
//
// The annotated vocabulary:
//  * grb::Mutex        — a capability ("mutex") wrapping std::mutex;
//  * grb::MutexLock    — scoped acquire/release (std::lock_guard shape);
//  * grb::CvLock       — scoped acquire/release that can wait on a
//                        std::condition_variable.  cv.wait's unlock/relock
//                        is atomic from the caller's perspective, so the
//                        analysis treats the capability as held across the
//                        wait — which is exactly the invariant callers rely
//                        on for the guarded members they re-check after
//                        waking.
//
// Build with the contract enforced: cmake --preset tsa (Clang only); see
// DESIGN.md "Static contracts".
//
// The scoped lockers double as the lock-contention profiler's probes
// (DESIGN.md §14): behind the usual one-atomic-load gate they record
// per-site acquisition/wait counters, and — when the stall watchdog is
// armed — stamp the mutex with its current holder (site + context) and
// register blocked waits in the stall table.  The site name defaults to
// the calling function via __builtin_FUNCTION(), so call sites need no
// annotation; pass an explicit site string to distinguish multiple
// lockers inside one function.  Site names must never contain '.'
// (stats_get splits "lock.<site>.<field>" on the last dot).
#pragma once

#include <condition_variable>
#include <mutex>

#include "obs/telemetry.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define GRB_LOCK_SITE __builtin_FUNCTION()
#else
#define GRB_LOCK_SITE "(unknown)"
#endif

#if defined(__clang__) && !defined(SWIG)
#define GRB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GRB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

#define GRB_CAPABILITY(x) GRB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define GRB_SCOPED_CAPABILITY \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GRB_GUARDED_BY(x) GRB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define GRB_PT_GUARDED_BY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define GRB_ACQUIRE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define GRB_RELEASE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define GRB_TRY_ACQUIRE(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define GRB_REQUIRES(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define GRB_EXCLUDES(...) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define GRB_RETURN_CAPABILITY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define GRB_ASSERT_CAPABILITY(x) \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define GRB_NO_THREAD_SAFETY_ANALYSIS \
  GRB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace grb {

// An annotated mutex.  std::mutex itself carries no capability attributes
// in libstdc++, so the analysis can only follow locks taken through this
// wrapper; all library mutexes must be grb::Mutex.
class GRB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRB_ACQUIRE() { mu_.lock(); }
  void unlock() GRB_RELEASE() { mu_.unlock(); }
  bool try_lock() GRB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For condition-variable interop (CvLock) only.
  std::mutex& native() { return mu_; }

  // Watchdog holder stamp: which site/context took the scoped lock, and
  // when.  Written only while the watchdog is armed; read (racily, all
  // relaxed atomics) by the watchdog thread to name the holder blocking
  // a stalled waiter.  Bare lock()/unlock() calls do not stamp.
  obs::LockOwnerInfo& owner() { return owner_; }

 private:
  std::mutex mu_;
  obs::LockOwnerInfo owner_;
};

// Scoped acquire/release (std::lock_guard shape).  With stats or the
// watchdog enabled the acquisition is profiled: an uncontended grab is
// try_lock + one counter bump, a contended one is timed and fed to the
// per-site wait histogram, and a blocked wait is visible to the
// watchdog (with this mutex's current holder) until it acquires.
//
// The constructor bodies mix try_lock/lock along runtime-gated paths
// the static analysis cannot follow; the GRB_ACQUIRE contract at the
// declaration is what call sites check against, so the bodies opt out.
//
// The profiled acquisition is deliberately out-of-line (noinline, cold
// path): MutexLock guards every hot mutex in the library, and keeping
// the inlined constructor down to "one relaxed load, one predicted
// branch, lock" is what holds the telemetry-off overhead contract.
class GRB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const char* site = GRB_LOCK_SITE)
      GRB_ACQUIRE(mu) GRB_NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    uint32_t f = obs::flags();
    if (__builtin_expect(
            (f & (obs::kStatsFlag | obs::kWatchdogFlag)) == 0, 1)) {
      mu_.lock();
      return;
    }
    profiled_acquire(f, site);
  }
  ~MutexLock() GRB_RELEASE() {
    if (__builtin_expect(watch_, 0)) mu_.owner().clear();
    mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  __attribute__((noinline)) void profiled_acquire(uint32_t f,
                                                  const char* site) {
    if (mu_.try_lock()) {
      if ((f & obs::kStatsFlag) != 0) obs::lock_acquired(site);
    } else {
      int token = -1;
      if ((f & obs::kWatchdogFlag) != 0) {
        token = obs::stall_begin(obs::kStallLockWait, site,
                                 obs::current_ctx(), &mu_.owner());
      }
      uint64_t t0 = obs::now_ns();
      mu_.lock();
      obs::stall_end(token);
      if ((f & obs::kStatsFlag) != 0) {
        obs::lock_wait(site, obs::now_ns() - t0);
      }
    }
    if ((f & obs::kWatchdogFlag) != 0) {
      mu_.owner().set(site, obs::current_ctx(), obs::now_ns());
      watch_ = true;
    }
  }

  Mutex& mu_;
  bool watch_ = false;
};

// Scoped acquire/release that can block on a condition variable.  Callers
// re-check guarded state in an explicit `while (...) lock.wait(cv);` loop
// — never a predicate lambda, which the analysis would treat as a separate
// function that does not hold the capability.
class GRB_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(Mutex& mu, const char* site = GRB_LOCK_SITE)
      GRB_ACQUIRE(mu) GRB_NO_THREAD_SAFETY_ANALYSIS
      : mu_(&mu), site_(site), lock_(mu.native(), std::defer_lock) {
    uint32_t f = obs::flags();
    if (__builtin_expect(
            (f & (obs::kStatsFlag | obs::kWatchdogFlag)) == 0, 1)) {
      lock_.lock();
      return;
    }
    profiled_acquire(f);
  }
  ~CvLock() GRB_RELEASE() {
    if (watch_) mu_->owner().clear();
  }

  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  void wait(std::condition_variable& cv) {
    // cv.wait releases the mutex while parked; drop the holder stamp so
    // a worker idling in its park loop does not read as an eternal
    // holder to the watchdog, and re-stamp on wake (fresh since_ns:
    // holding after a wake is a new tenure).
    if (watch_) mu_->owner().clear();
    cv.wait(lock_);
    if (watch_) mu_->owner().set(site_, obs::current_ctx(), obs::now_ns());
  }

 private:
  __attribute__((noinline)) void profiled_acquire(uint32_t f) {
    if (lock_.try_lock()) {
      if ((f & obs::kStatsFlag) != 0) obs::lock_acquired(site_);
    } else {
      int token = -1;
      if ((f & obs::kWatchdogFlag) != 0) {
        token = obs::stall_begin(obs::kStallLockWait, site_,
                                 obs::current_ctx(), &mu_->owner());
      }
      uint64_t t0 = obs::now_ns();
      lock_.lock();
      obs::stall_end(token);
      if ((f & obs::kStatsFlag) != 0) {
        obs::lock_wait(site_, obs::now_ns() - t0);
      }
    }
    if ((f & obs::kWatchdogFlag) != 0) {
      mu_->owner().set(site_, obs::current_ctx(), obs::now_ns());
      watch_ = true;
    }
  }

  Mutex* mu_;
  const char* site_;
  std::unique_lock<std::mutex> lock_;
  bool watch_ = false;
};

}  // namespace grb
