#include "util/prng.hpp"

// Header-only; this TU anchors the target's util sources.
