// Deterministic PRNG (splitmix64 seeding a xoshiro256**) used by the
// workload generators, tests, and benches, so every run is reproducible.
#pragma once

#include <cstdint>

namespace grb {

class Prng {
 public:
  explicit Prng(uint64_t seed) {
    uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace grb
