#include "util/generator.hpp"

#include <algorithm>

namespace grb {
namespace {

Info build_fp64(Matrix** out, Index nrows, Index ncols,
                std::vector<Index>& ri, std::vector<Index>& ci,
                std::vector<double>& vals, Context* ctx) {
  Matrix* a = nullptr;
  GRB_RETURN_IF_ERROR(Matrix::new_(&a, TypeFP64(), nrows, ncols, ctx));
  const BinaryOp* dup = get_binary_op(BinOpCode::kPlus, TypeCode::kFP64);
  Info info = a->build(ri.data(), ci.data(), vals.data(),
                       static_cast<Index>(ri.size()), dup, TypeFP64());
  if (static_cast<int>(info) >= 0) info = a->wait(WaitMode::kMaterialize);
  if (static_cast<int>(info) < 0) {
    Matrix::free(a);
    return info;
  }
  *out = a;
  return Info::kSuccess;
}

}  // namespace

Info rmat_matrix(Matrix** out, int scale, Index edge_factor,
                 const RmatParams& p, Context* ctx) {
  if (out == nullptr) return Info::kNullPointer;
  if (scale < 1 || scale > 30) return Info::kInvalidValue;
  Index n = Index{1} << scale;
  Index m = edge_factor * n;
  Prng rng(p.seed);
  std::vector<Index> ri, ci;
  std::vector<double> vals;
  ri.reserve(m);
  ci.reserve(m);
  vals.reserve(m);
  for (Index e = 0; e < m; ++e) {
    Index i = 0, j = 0;
    for (int bit = 0; bit < scale; ++bit) {
      double r = rng.uniform();
      int quadrant = r < p.a                ? 0
                     : r < p.a + p.b        ? 1
                     : r < p.a + p.b + p.c  ? 2
                                            : 3;
      i = (i << 1) | (quadrant >> 1);
      j = (j << 1) | (quadrant & 1);
    }
    if (p.remove_self_loops && i == j) continue;
    double w = rng.uniform();
    ri.push_back(i);
    ci.push_back(j);
    vals.push_back(w == 0.0 ? 1.0 : w);
    if (p.symmetrize) {
      ri.push_back(j);
      ci.push_back(i);
      vals.push_back(w == 0.0 ? 1.0 : w);
    }
  }
  return build_fp64(out, n, n, ri, ci, vals, ctx);
}

Info erdos_renyi_matrix(Matrix** out, Index n, Index m, uint64_t seed,
                        Context* ctx) {
  if (out == nullptr) return Info::kNullPointer;
  if (n == 0) return Info::kInvalidValue;
  Prng rng(seed);
  std::vector<Index> ri(m), ci(m);
  std::vector<double> vals(m);
  for (Index e = 0; e < m; ++e) {
    ri[e] = rng.below(n);
    ci[e] = rng.below(n);
    double w = rng.uniform();
    vals[e] = w == 0.0 ? 1.0 : w;
  }
  return build_fp64(out, n, n, ri, ci, vals, ctx);
}

Info ring_matrix(Matrix** out, Index n, Context* ctx) {
  if (out == nullptr) return Info::kNullPointer;
  if (n == 0) return Info::kInvalidValue;
  std::vector<Index> ri(n), ci(n);
  std::vector<double> vals(n, 1.0);
  for (Index i = 0; i < n; ++i) {
    ri[i] = i;
    ci[i] = (i + 1) % n;
  }
  return build_fp64(out, n, n, ri, ci, vals, ctx);
}

Info grid_matrix(Matrix** out, Index rows, Index cols, Context* ctx) {
  if (out == nullptr) return Info::kNullPointer;
  if (rows == 0 || cols == 0) return Info::kInvalidValue;
  Index n = rows * cols;
  std::vector<Index> ri, ci;
  std::vector<double> vals;
  auto vid = [cols](Index r, Index c) { return r * cols + c; };
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        ri.push_back(vid(r, c));
        ci.push_back(vid(r, c + 1));
        vals.push_back(1.0);
        ri.push_back(vid(r, c + 1));
        ci.push_back(vid(r, c));
        vals.push_back(1.0);
      }
      if (r + 1 < rows) {
        ri.push_back(vid(r, c));
        ci.push_back(vid(r + 1, c));
        vals.push_back(1.0);
        ri.push_back(vid(r + 1, c));
        ci.push_back(vid(r, c));
        vals.push_back(1.0);
      }
    }
  }
  return build_fp64(out, n, n, ri, ci, vals, ctx);
}

Info random_vector(Vector** out, Index n, Index nvals, uint64_t seed,
                   Context* ctx) {
  if (out == nullptr) return Info::kNullPointer;
  if (nvals > n) return Info::kInvalidValue;
  Prng rng(seed);
  // Sample distinct indices by rejection into a sorted set.
  std::vector<Index> ind;
  ind.reserve(nvals);
  if (nvals * 2 >= n) {
    // Dense-ish: sample by inclusion to guarantee termination.
    ind.resize(n);
    for (Index i = 0; i < n; ++i) ind[i] = i;
    for (Index i = 0; i < n; ++i) std::swap(ind[i], ind[rng.below(n)]);
    ind.resize(nvals);
    std::sort(ind.begin(), ind.end());
  } else {
    while (ind.size() < nvals) {
      Index i = rng.below(n);
      auto it = std::lower_bound(ind.begin(), ind.end(), i);
      if (it == ind.end() || *it != i) ind.insert(it, i);
    }
  }
  std::vector<double> vals(nvals);
  for (auto& v : vals) {
    double w = rng.uniform();
    v = w == 0.0 ? 1.0 : w;
  }
  Vector* v = nullptr;
  GRB_RETURN_IF_ERROR(Vector::new_(&v, TypeFP64(), n, ctx));
  Info info = v->build(ind.data(), vals.data(), nvals, nullptr, TypeFP64());
  if (static_cast<int>(info) >= 0) info = v->wait(WaitMode::kMaterialize);
  if (static_cast<int>(info) < 0) {
    Vector::free(v);
    return info;
  }
  *out = v;
  return Info::kSuccess;
}

}  // namespace grb
