#include "util/timer.hpp"

// Header-only; this TU anchors the target's util sources.
