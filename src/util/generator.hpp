// Synthetic graph/workload generators (the paper prescribes no datasets;
// see DESIGN.md "Substitutions").  All generators are deterministic in
// their seed.
#pragma once

#include "ops/common.hpp"
#include "util/prng.hpp"

namespace grb {

struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool remove_self_loops = true;
  bool symmetrize = false;  // make the graph undirected
  uint64_t seed = 42;
};

// R-MAT graph: n = 2^scale vertices, ~edge_factor*n edges, FP64 weights
// in (0, 1].  Duplicate edges are summed.
Info rmat_matrix(Matrix** out, int scale, Index edge_factor,
                 const RmatParams& params, Context* ctx);

// Erdős–Rényi G(n, m): m distinct-ish edges uniformly at random.
Info erdos_renyi_matrix(Matrix** out, Index n, Index m, uint64_t seed,
                        Context* ctx);

// Directed ring of n vertices (i -> (i+1) % n), weight 1.0.
Info ring_matrix(Matrix** out, Index n, Context* ctx);

// 2D grid graph (rows x cols vertices, 4-neighbourhood, symmetric).
Info grid_matrix(Matrix** out, Index rows, Index cols, Context* ctx);

// Random sparse vector with `nvals` distinct entries, values in (0, 1].
Info random_vector(Vector** out, Index n, Index nvals, uint64_t seed,
                   Context* ctx);

}  // namespace grb
