// Anchor translation unit for the C API veneer.
//
// The veneer itself (include/graphblas/GraphBLAS.h) is header-only so the
// polymorphic GrB_* overloads can be inline; compiling it here once
// guarantees the public header is self-contained and warning-clean.
#include "graphblas/GraphBLAS.h"
